//! QCQ and #QCQ: quantifier alternation inside the FAQ framework
//! (Table 1 rows 1–2, §7.2.1).
//!
//! Evaluates a ∀∃ sentence, counts the satisfying heads of a quantified
//! query, and prints the width table separating faqw from the Chen–Dalmau
//! prefix width.
//!
//! Run with: `cargo run --example quantified_queries`

use faq::apps::cq::Atom;
use faq::apps::qcq::{chen_dalmau_family, QuantifiedCq, Quantifier};
use faq::core::width::faqw_exact;
use faq::core::{QueryShape, Tag};
use faq::factor::Domains;
use faq::hypergraph::{Var, VarSet};
use faq::semiring::AggId;

fn main() {
    sentence();
    counting();
    width_table();
}

fn sentence() {
    println!("== QCQ sentence: ∀x0 ∃x1 (E(x0, x1)) ==");
    let e = Atom { vars: vec![Var(0), Var(1)], tuples: vec![vec![0, 1], vec![1, 0], vec![2, 0]] };
    let q = QuantifiedCq {
        domains: Domains::uniform(2, 3),
        free: vec![],
        prefix: vec![(Var(0), Quantifier::ForAll), (Var(1), Quantifier::Exists)],
        atoms: vec![e],
    };
    println!("holds: {}\n", q.holds().unwrap());
}

fn counting() {
    println!("== #QCQ: count x0 with ∀x1 ∃x2 (S(x0,x1) ∧ T(x1,x2)) ==");
    let s = Atom {
        vars: vec![Var(0), Var(1)],
        tuples: vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![2, 0], vec![2, 1]],
    };
    let t = Atom { vars: vec![Var(1), Var(2)], tuples: vec![vec![0, 1], vec![1, 0]] };
    let q = QuantifiedCq {
        domains: Domains::new(vec![3, 2, 2]),
        free: vec![Var(0)],
        prefix: vec![(Var(1), Quantifier::ForAll), (Var(2), Quantifier::Exists)],
        atoms: vec![s, t],
    };
    println!("insideout count = {}", q.count().unwrap());
    println!("naive count     = {}\n", q.count_naive().unwrap());
}

fn width_table() {
    println!("== faqw vs prefix width on the Chen–Dalmau family (§7.2.1) ==");
    println!("  n | PW = n+1 | faqw");
    for n in 2u32..=6 {
        let mut seq: Vec<(Var, Tag)> = (0..n).map(|i| (Var(i), Tag::Product)).collect();
        seq.push((Var(n), Tag::Semiring(AggId(1))));
        let mut edges = vec![(0..n).map(Var).collect::<VarSet>()];
        for i in 0..n {
            edges.push([Var(i), Var(n)].into_iter().collect());
        }
        let shape = QueryShape {
            seq,
            edges,
            mul_idempotent: true,
            closed_ops: [AggId(1)].into_iter().collect(),
        };
        let r = faqw_exact(&shape, 100_000).unwrap();
        println!("  {n} |    {}    | {:.3}", n + 1, r.width);
    }
    // An instantiated member of the family:
    let d = 2u32;
    let mut s_tuples = Vec::new();
    for a in 0..d {
        for b in 0..d {
            s_tuples.push(vec![a, b]);
        }
    }
    let r_tuples: Vec<Vec<u32>> = (0..d).map(|x| vec![x, 0]).collect();
    let q = chen_dalmau_family(2, d, s_tuples, r_tuples);
    println!("instantiated n=2 sentence holds: {}", q.holds().unwrap());
}
