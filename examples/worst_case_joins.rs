//! Worst-case-optimal joins vs pairwise plans (Table 1 row "Joins").
//!
//! On the skewed hub instance the pairwise plan materializes Θ(N²)
//! intermediates while OutsideIn (LeapFrog TrieJoin inside InsideOut) touches
//! O(N^{3/2}) — here the output is empty, so the gap is stark.
//!
//! Run with: `cargo run --example worst_case_joins --release`

use faq::apps::joins::{skewed_triangle_instance, triangle_query};
use faq::join::pairwise_hash_join;
use std::time::Instant;

fn main() {
    println!("  N (edges) | insideout ms | pairwise ms | intermediate rows");
    for n in [200u32, 400, 800, 1600] {
        let edges = skewed_triangle_instance(n);
        let q = triangle_query(&edges, n);

        let t0 = Instant::now();
        let out = q.evaluate().expect("join succeeds");
        let t_io = t0.elapsed().as_secs_f64() * 1e3;

        let factors: Vec<_> = q.relations.iter().map(|r| r.to_factor()).collect();
        let refs: Vec<&_> = factors.iter().collect();
        let t0 = Instant::now();
        let hj = pairwise_hash_join(&refs, |a, b| a * b, |&x| x == 0);
        let t_hj = t0.elapsed().as_secs_f64() * 1e3;

        // The Θ(N²) blow-up lives in the first binary step R ⋈ S.
        let first_step = pairwise_hash_join(&refs[..2], |a, b| a * b, |&x| x == 0);
        println!(
            "  {:9} | {t_io:12.3} | {t_hj:11.3} | triangles={}, pairwise R⋈S rows={}",
            edges.len(),
            out.factor.len(),
            first_step.len()
        );
        let _ = hj;
    }
}
