//! Graphical-model inference with the FAQ engine (Table 1 rows 5–6).
//!
//! Builds a 3×4 grid MRF, computes the partition function, single-variable
//! marginals and a MAP assignment, and cross-checks against brute force.
//!
//! Run with: `cargo run --example graphical_model`

use faq::apps::pgm;
use faq::hypergraph::Var;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2016);
    let model = pgm::random_grid(3, 4, 3, &mut rng);
    println!("grid MRF: {} variables, {} potentials", model.num_vars(), model.potentials.len());

    let z = model.partition_function().expect("inference succeeds");
    println!("partition function Z = {z:.6}");

    let marg = model.marginal(&[Var(0)]).expect("marginal succeeds");
    println!("unnormalized marginal of x0:");
    for (row, val) in marg.iter() {
        println!("  x0 = {} : {:.6}  (p = {:.4})", row[0], val, val / z);
    }

    let (assignment, map_value) = model.map_assignment().expect("MAP succeeds");
    println!("MAP value  = {map_value:.6}");
    println!("MAP assignment = {assignment:?}");
    println!("score(assignment) = {:.6}", model.score(&assignment));

    // Cross-check on a small model.
    let small = pgm::random_chain(6, 3, &mut rng);
    let fast = small.partition_function().unwrap();
    let slow = small.marginal_naive(&[]).unwrap().get(&[]).copied().unwrap();
    println!("\nchain cross-check: insideout Z = {fast:.9}, brute force Z = {slow:.9}");
    assert!((fast - slow).abs() < 1e-9 * (1.0 + slow.abs()));
    println!("agreement within 1e-9 ✓");
}
