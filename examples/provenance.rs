//! Provenance polynomials through the FAQ engine.
//!
//! Annotate every input tuple of a triangle join with its own indeterminate,
//! evaluate over `ℕ[X]`, and read off *how* each output tuple was derived.
//! Specializing the polynomials (the semiring homomorphism `ℕ[X] → ℕ`)
//! answers counting and deletion-propagation questions after the fact —
//! the factorized-database connection the paper draws in §2.2/§8.4.
//!
//! Run with: `cargo run --example provenance`

use faq::semiring::{Polynomial, ProvenanceSemiring};
use faq::*;
use std::collections::BTreeMap;

fn main() {
    // A tiny directed graph; each edge tuple gets an indeterminate x_i.
    let edges: Vec<(u32, u32)> = vec![(0, 1), (1, 2), (0, 2), (2, 0), (1, 0), (2, 1)];
    let annotate = |a: Var, b: Var| {
        Factor::new(
            vec![a, b],
            edges
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| (vec![x, y], Polynomial::var(i as u32)))
                .collect(),
        )
        .unwrap()
    };
    let (a, b, c) = (Var(0), Var(1), Var(2));
    let op = SingleSemiringDomain::<ProvenanceSemiring>::OP;
    // ϕ = Σ_{a,b,c} E(a,b)·E(b,c)·E(a,c): the full triangle provenance.
    let q = FaqQuery::new(
        SingleSemiringDomain::new(ProvenanceSemiring),
        Domains::uniform(3, 3),
        vec![],
        vec![(a, VarAgg::Semiring(op)), (b, VarAgg::Semiring(op)), (c, VarAgg::Semiring(op))],
        vec![annotate(a, b), annotate(b, c), annotate(a, c)],
    )
    .unwrap();

    let out = Engine::new().evaluate(&q).unwrap();
    let poly = out.scalar().cloned().unwrap_or_else(Polynomial::zero);
    println!("triangle provenance polynomial ({} monomials):", poly.num_terms());
    println!("  {poly}");

    // Counting homomorphism: all tuples present once.
    let ones: BTreeMap<u32, u64> = (0..edges.len() as u32).map(|i| (i, 1)).collect();
    println!("ordered triangles (all edges present): {}", poly.eval(&ones, 0));

    // Deletion propagation: what if edge (0,1) — indeterminate x0 — is removed?
    let mut without = ones.clone();
    without.insert(0, 0);
    println!("…after deleting edge (0,1):           {}", poly.eval(&without, 0));

    // Multiplicity reasoning: edge (1,2) duplicated three times.
    let mut tripled = ones;
    tripled.insert(1, 3);
    println!("…with edge (1,2) at multiplicity 3:   {}", poly.eval(&tripled, 0));
}
