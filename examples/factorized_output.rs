//! Output representations beyond the listing (paper §8.4).
//!
//! Runs InsideOut's elimination phases only, keeps the output in factorized
//! form (value factors + guards), and demonstrates: O~(1) value queries,
//! support membership, streaming enumeration, and materialization — without
//! ever paying for the full output unless asked.
//!
//! Run with: `cargo run --example factorized_output`

use faq::core::output::FactorizedOutput;
use faq::core::{FaqQuery, VarAgg};
use faq::factor::{Domains, Factor};
use faq::hypergraph::Var;
use faq::semiring::CountDomain;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    // A 3-attribute join with one summed-out variable:
    // ϕ(x0, x1, x2) = Σ_{x3} R(x0,x1) S(x1,x2) T(x2,x3).
    let mut rng = StdRng::seed_from_u64(1);
    let d = 16u32;
    let mk = |rng: &mut StdRng, a: u32, b: u32, n: usize| {
        let mut tuples = std::collections::BTreeSet::new();
        for _ in 0..n {
            tuples.insert(vec![rng.gen_range(0..d), rng.gen_range(0..d)]);
        }
        Factor::new(vec![Var(a), Var(b)], tuples.into_iter().map(|t| (t, 1u64)).collect()).unwrap()
    };
    let r = mk(&mut rng, 0, 1, 60);
    let s = mk(&mut rng, 1, 2, 60);
    let t = mk(&mut rng, 2, 3, 60);
    let q = FaqQuery::new(
        CountDomain,
        Domains::uniform(4, d),
        vec![Var(0), Var(1), Var(2)],
        vec![(Var(3), VarAgg::Semiring(CountDomain::SUM))],
        vec![r, s, t],
    )
    .unwrap();

    let fo = FactorizedOutput::compute(&q).expect("elimination succeeds");
    println!(
        "factorized output: {} value factor(s), {} guard(s), free order {:?}",
        fo.value_factors.len(),
        fo.guards.len(),
        fo.free_order
    );

    // Value queries without materializing.
    let probe = [0u32, 0, 0];
    match fo.value_query(&probe, 1u64, |a, b| a * b) {
        Some(v) => println!("ϕ{probe:?} = {v}"),
        None => println!("ϕ{probe:?} = 0 (not in the output)"),
    }

    // Streaming enumeration with bounded delay: take the first five tuples.
    println!("first five output tuples (lexicographic):");
    for tuple in fo.iter_support().take(5) {
        let val = fo.value_query(&tuple, 1u64, |a, b| a * b).unwrap();
        println!("  {tuple:?} → {val}");
    }

    // Materialize and compare sizes.
    let listing = fo.materialize(1u64, |a, b| a * b, |&x| x == 0);
    let factorized_rows: usize =
        fo.value_factors.iter().chain(fo.guards.iter()).map(|f| f.len()).sum();
    println!(
        "listing representation: {} rows; factorized form stores {} rows total",
        listing.len(),
        factorized_rows
    );
}
