//! Reproduce the expression-tree figures of the paper (Figures 2–6).
//!
//! Prints the compressed expression trees of Example 6.2 (semiring
//! aggregates, Figures 2–3) and Example 6.19 (product aggregates, extended
//! components and the dangling node, Figures 4–6), plus the precedence poset
//! and a few equivalent-ordering checks.
//!
//! Run with: `cargo run --example expression_trees`

use faq::core::evo::{are_equivalent_orderings, is_equivalent_ordering, linear_extensions};
use faq::core::{ExecPolicy, QueryShape, Tag};
use faq::hypergraph::{Var, VarSet};
use faq::semiring::AggId;

const SUM: Tag = Tag::Semiring(AggId(0));
const MAX: Tag = Tag::Semiring(AggId(1));

fn vs(ids: &[u32]) -> VarSet {
    ids.iter().map(|&i| Var(i)).collect()
}

fn main() {
    example_6_2();
    example_6_19();
    example_6_13();
}

/// Figures 2–3: ϕ = Σ1 Σ2 max3 Σ4 Σ5 max6 max7 ψ12 ψ135 ψ14 ψ246 ψ27 ψ37.
fn example_6_2() {
    println!("== Example 6.2 (Figures 2–3) ==");
    let shape = QueryShape {
        seq: vec![
            (Var(1), SUM),
            (Var(2), SUM),
            (Var(3), MAX),
            (Var(4), SUM),
            (Var(5), SUM),
            (Var(6), MAX),
            (Var(7), MAX),
        ],
        edges: vec![
            vs(&[1, 2]),
            vs(&[1, 3, 5]),
            vs(&[1, 4]),
            vs(&[2, 4, 6]),
            vs(&[2, 7]),
            vs(&[3, 7]),
        ],
        mul_idempotent: false,
        closed_ops: Default::default(),
    };
    println!("{}", shape.expr_tree());
    let (linex, complete) = linear_extensions(&shape, 10_000);
    println!("|LinEx(P)| = {} (complete: {complete})", linex.len());
    println!();
}

/// Figures 4–6: ϕ = max1 max2 Σ3 Σ4 Π5 max6 Π7 max8 (nine {0,1} factors).
fn example_6_19() {
    println!("== Example 6.19 (Figures 4–6) ==");
    let shape = QueryShape {
        seq: vec![
            (Var(1), MAX),
            (Var(2), MAX),
            (Var(3), SUM),
            (Var(4), SUM),
            (Var(5), Tag::Product),
            (Var(6), MAX),
            (Var(7), Tag::Product),
            (Var(8), MAX),
        ],
        edges: vec![
            vs(&[1, 3]),
            vs(&[2, 4]),
            vs(&[3, 4]),
            vs(&[1, 5]),
            vs(&[1, 6]),
            vs(&[2, 6]),
            vs(&[2, 5, 7]),
            vs(&[1, 6, 7]),
            vs(&[2, 7, 8]),
        ],
        mul_idempotent: true, // the F(D_I) promise: {0,1}-valued inputs
        closed_ops: [AggId(1)].into_iter().collect(),
    };
    println!("{}", shape.expr_tree());
    println!("note the dangling product node {{5,7}} and the copies of X7.");
    println!();
}

/// Example 6.13: EVO(ϕ) = {(1,2,3), (1,3,2), (3,1,2)}.
fn example_6_13() {
    println!("== Example 6.13: EVO membership ==");
    let shape = QueryShape {
        seq: vec![(Var(1), SUM), (Var(2), MAX), (Var(3), SUM)],
        edges: vec![vs(&[1, 2]), vs(&[1, 3])],
        mul_idempotent: false,
        closed_ops: Default::default(),
    };
    println!("{}", shape.expr_tree());
    // Batch-screen all six permutations across the parallel engine's worker
    // pool; each verdict matches is_equivalent_ordering run one at a time.
    let perms = [[1u32, 2, 3], [1, 3, 2], [3, 1, 2], [2, 1, 3], [3, 2, 1], [2, 3, 1]];
    let candidates: Vec<Vec<Var>> =
        perms.iter().map(|p| p.iter().map(|&i| Var(i)).collect()).collect();
    let verdicts = are_equivalent_orderings(&shape, &candidates, &ExecPolicy::with_threads(2));
    for ((perm, pi), verdict) in perms.iter().zip(&candidates).zip(&verdicts) {
        assert_eq!(*verdict, is_equivalent_ordering(&shape, pi));
        println!("  {perm:?} ∈ EVO? {verdict}");
    }
}
