//! Quickstart: define a FAQ query, inspect its structure, run InsideOut.
//!
//! We count triangles in a small graph — Example A.8 of the paper — and then
//! show the full Figure-1 pipeline on a mixed-aggregate query: expression
//! tree → precedence poset → width-optimized ordering → InsideOut.
//!
//! Run with: `cargo run --example quickstart`

// The facade root re-exports every everyday type, so one import suffices;
// specialist machinery (here: the faqw optimizer) stays under `faq::core`.
use faq::core::width::faqw_optimize;
use faq::*;

fn main() {
    triangle_counting();
    mixed_aggregates_pipeline();
    parallel_engine();
}

/// Σ_{a,b,c} E(a,b)·E(b,c)·E(a,c) over the counting semiring.
fn triangle_counting() {
    println!("== Triangle counting (Example A.8) ==");
    // A toy graph: K4 plus a pendant vertex, as undirected edges stored
    // symmetrically.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for i in 0..4u32 {
        for j in 0..4u32 {
            if i != j {
                edges.push((i, j));
            }
        }
    }
    edges.push((3, 4));
    edges.push((4, 3));

    let edge_factor = |u: Var, w: Var| {
        Factor::new(u_w_schema(u, w), edges.iter().map(|&(a, b)| (vec![a, b], 1u64)).collect())
            .expect("distinct tuples")
    };
    let (a, b, c) = (Var(0), Var(1), Var(2));
    let q = FaqQuery::new(
        CountDomain,
        Domains::uniform(3, 5),
        vec![],
        vec![
            (a, VarAgg::Semiring(CountDomain::SUM)),
            (b, VarAgg::Semiring(CountDomain::SUM)),
            (c, VarAgg::Semiring(CountDomain::SUM)),
        ],
        vec![edge_factor(a, b), edge_factor(b, c), edge_factor(a, c)],
    )
    .expect("valid query");

    let out = Engine::new().evaluate(&q).expect("evaluation succeeds");
    let ordered_triangles = out.scalar().copied().unwrap_or(0);
    println!("ordered triangle count : {ordered_triangles}");
    println!("unordered (÷6)         : {}", ordered_triangles / 6);
    println!("max intermediate rows  : {}\n", out.stats.max_intermediate);
}

fn u_w_schema(u: Var, w: Var) -> Vec<Var> {
    vec![u, w]
}

/// The full pipeline on ϕ = max_{x0} Σ_{x1} max_{x2} ψ01 ψ12 over ℝ₊.
fn mixed_aggregates_pipeline() {
    println!("== Mixed aggregates: expression tree → ordering → InsideOut ==");
    let psi01 = Factor::new(
        vec![Var(0), Var(1)],
        vec![(vec![0, 0], 0.5), (vec![0, 1], 2.0), (vec![1, 0], 1.5)],
    )
    .unwrap();
    let psi12 = Factor::new(
        vec![Var(1), Var(2)],
        vec![(vec![0, 0], 1.0), (vec![0, 1], 3.0), (vec![1, 1], 4.0)],
    )
    .unwrap();
    let q = FaqQuery::new(
        RealDomain,
        Domains::uniform(3, 2),
        vec![],
        vec![
            (Var(0), VarAgg::Semiring(RealDomain::MAX)),
            (Var(1), VarAgg::Semiring(RealDomain::SUM)),
            (Var(2), VarAgg::Semiring(RealDomain::MAX)),
        ],
        vec![psi01, psi12],
    )
    .unwrap();

    let shape = q.shape();
    println!("expression tree:\n{}", shape.expr_tree());
    let best = faqw_optimize(&shape, 10_000, 14).expect("quickstart query is coverable");
    println!(
        "chosen ordering {:?} with faqw(σ) = {:.3} (exact = {})",
        best.order, best.width, best.exact
    );
    let out = Engine::sequential().evaluate_with_order(&q, &best.order).unwrap();
    println!("ϕ = {:?}\n", out.factor.get(&[]));
}

/// The parallel engine on a larger triangle count: chunked factor kernels on
/// a scoped worker pool, bit-identical to the sequential run.
///
/// Thread count comes from `FAQ_THREADS` (default 2), so CI's bench-smoke job
/// can exercise the parallel path explicitly.
fn parallel_engine() {
    println!("== Parallel InsideOut (Engine + ExecPolicy) ==");
    let threads = std::env::var("FAQ_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(2);
    let n = 40u32;
    // A denser random-ish graph: edge (i, j) iff (i*31 + j*17) % 5 < 2.
    let edges: Vec<(Vec<u32>, u64)> = (0..n)
        .flat_map(|i| (0..n).map(move |j| (i, j)))
        .filter(|&(i, j)| i != j && (i * 31 + j * 17) % 5 < 2)
        .map(|(i, j)| (vec![i, j], 1u64))
        .collect();
    let edge_factor = |u: Var, w: Var| Factor::new(vec![u, w], edges.clone()).unwrap();
    let (a, b, c) = (Var(0), Var(1), Var(2));
    let q = FaqQuery::new(
        CountDomain,
        Domains::uniform(3, n),
        vec![],
        vec![
            (a, VarAgg::Semiring(CountDomain::SUM)),
            (b, VarAgg::Semiring(CountDomain::SUM)),
            (c, VarAgg::Semiring(CountDomain::SUM)),
        ],
        vec![edge_factor(a, b), edge_factor(b, c), edge_factor(a, c)],
    )
    .unwrap();
    let seq = Engine::sequential().evaluate(&q).unwrap();
    let par = Engine::new().threads(threads).min_chunk_rows(16).evaluate(&q).unwrap();
    assert_eq!(par.factor, seq.factor, "parallel output must be bit-identical");
    println!("threads                : {threads}");
    println!("ordered triangle count : {}", par.scalar().copied().unwrap_or(0));
    println!("sequential ≡ parallel  : true");
}
