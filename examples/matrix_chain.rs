//! Matrix chain multiplication and the DFT as FAQ instances
//! (Table 1 rows 7–8, paper Example 1.1 and Appendix E).
//!
//! Run with: `cargo run --example matrix_chain --release`

use faq::apps::matrix::{dft_faq, naive_dft, Matrix, MatrixChain};
use faq::semiring::Complex64;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    mcm();
    dft();
}

fn mcm() {
    println!("== Matrix chain multiplication ==");
    let n = 48;
    let mut rng = StdRng::seed_from_u64(1);
    let chain = MatrixChain {
        matrices: vec![
            Matrix::random(1, n, &mut rng),
            Matrix::random(n, 1, &mut rng),
            Matrix::random(1, n, &mut rng),
            Matrix::random(n, 1, &mut rng),
        ],
    };
    let (cost, _) = chain.dp_optimal();
    let order = chain.dp_variable_ordering();
    println!("dims = 1×{n}×1×{n}×1");
    println!("textbook DP optimal scalar-multiplication cost: {cost}");
    println!("corresponding FAQ variable ordering: {order:?}");

    let via_faq = chain.evaluate_insideout(&order).expect("insideout succeeds");
    let direct = chain.evaluate_left_to_right();
    println!("max |FAQ − direct| = {:.3e}", via_faq.max_diff(&direct));
}

fn dft() {
    println!("\n== DFT over Z_2^8 via FAQ (the FFT in disguise) ==");
    let m = 8usize;
    let n = 1usize << m;
    let mut rng = StdRng::seed_from_u64(2);
    let input: Vec<Complex64> = (0..n)
        .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();

    let fast = dft_faq(2, m, &input).expect("dft succeeds");
    let slow = naive_dft(&input);
    let max_err = fast.iter().zip(&slow).map(|(a, b)| (*a - *b).abs()).fold(0.0f64, f64::max);
    println!("N = {n}; max |FAQ-FFT − naive| = {max_err:.3e}");
    println!("first three coefficients: {:?} {:?} {:?}", fast[0], fast[1], fast[2]);
}
