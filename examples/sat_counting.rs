//! β-acyclic SAT and #SAT by variable elimination (paper §8.3).
//!
//! Run with: `cargo run --example sat_counting --release`

use faq::cnf::{
    brute_force_count, count_beta_acyclic, gen::random_interval_cnf, sat_beta_acyclic, Clause, Cnf,
    Lit,
};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

fn main() {
    hand_built();
    scaling();
}

fn hand_built() {
    println!("== A hand-built β-acyclic formula ==");
    // (x0 ∨ x1) ∧ (¬x1 ∨ x2) ∧ (x1 ∨ x2 ∨ ¬x3)
    let cnf = Cnf::new(
        4,
        vec![
            Clause::new([Lit::pos(0), Lit::pos(1)]).unwrap(),
            Clause::new([Lit::neg(1), Lit::pos(2)]).unwrap(),
            Clause::new([Lit::pos(1), Lit::pos(2), Lit::neg(3)]).unwrap(),
        ],
    );
    println!("formula: {cnf}");
    let (sat, stats) = sat_beta_acyclic(&cnf).expect("β-acyclic");
    println!("satisfiable: {sat} (max live clauses {})", stats.max_clauses);
    let count = count_beta_acyclic(&cnf).unwrap();
    println!("#models: {count} (brute force: {})", brute_force_count(&cnf));
}

fn scaling() {
    println!("\n== Polynomial scaling on interval CNFs (Theorems 8.3 / 8.4) ==");
    println!("  n | clauses | DP-SAT (ms) | #WSAT (ms) | brute (ms)");
    for n in [12u32, 16, 20, 24] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let cnf = random_interval_cnf(n, (2 * n) as usize, 4, &mut rng);
        let t0 = Instant::now();
        let _ = sat_beta_acyclic(&cnf).unwrap();
        let t_sat = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let count = count_beta_acyclic(&cnf).unwrap();
        let t_count = t0.elapsed().as_secs_f64() * 1e3;
        let brute = if n <= 20 {
            let t0 = Instant::now();
            let b = brute_force_count(&cnf);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            assert!((b as f64 - count).abs() < 1e-3 * (1.0 + b as f64));
            format!("{ms:.2}")
        } else {
            "—".into()
        };
        println!("  {n} | {} | {t_sat:.2} | {t_count:.2} | {brute}", cnf.clauses.len());
    }
}
