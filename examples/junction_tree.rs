//! Junction-tree message passing (paper §8.4): calibrate once, answer every
//! in-bag marginal afterwards.
//!
//! Run with: `cargo run --example junction_tree`

use faq::apps::junction::JunctionTree;
use faq::apps::pgm;
use faq::hypergraph::Var;
use faq::semiring::F64SumProd;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(88);
    let model = pgm::random_grid(3, 3, 2, &mut rng);
    println!("3×3 grid MRF, {} potentials", model.potentials.len());

    let jt = JunctionTree::build(F64SumProd, &model.domains, &model.potentials, 14)
        .expect("junction tree builds");
    println!("junction tree with {} bags, calibrated", jt.num_bags());

    // Calibration invariant: adjacent beliefs agree on separators.
    let ok =
        jt.check_calibration(|a, b| (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))).is_none();
    println!("calibration invariant holds: {ok}");

    // All nine single-variable marginals from ONE calibration pass.
    let z = model.partition_function().unwrap();
    println!("\nper-variable marginals (P[x=0]):");
    for v in model.domains.vars() {
        let m = jt.marginal(&[v]).expect("single variables are always in a bag");
        let p0 = m.get(&[0]).copied().unwrap_or(0.0) / z;
        println!("  {v}: {p0:.4}");
    }

    // A pairwise in-bag marginal.
    if let Some(pair) = jt.marginal(&[Var(0), Var(1)]) {
        println!("\njoint marginal of (x0, x1):");
        for (row, val) in pair.iter() {
            println!("  {row:?}: {:.4}", val / z);
        }
    }

    // Cross-check one marginal against a fresh variable-elimination run.
    let via_ve = model.marginal(&[Var(4)]).unwrap();
    let via_jt = jt.marginal(&[Var(4)]).unwrap();
    let max_diff = via_ve
        .iter()
        .map(|(row, val)| (via_jt.get(row).copied().unwrap_or(0.0) - val).abs())
        .fold(0.0f64, f64::max);
    println!("\nmax |junction − elimination| on x4's marginal: {max_diff:.2e}");
}
