//! Multi-tenant serving throughput/latency on the triangle workload.
//!
//! Each iteration runs a full open-loop serving round: `tenants` client
//! threads submit against a [`faq_serve::FaqServer`] pool while the
//! schedule offers ~70% of the pool's measured capacity
//! (`faq_bench::serving::run_triangle_serving`). The first answer of every
//! round is asserted bit-identical to a direct evaluation before timing.
//!
//! The round's own qps/p50/p99 numbers are printed to stderr — criterion
//! measures the wall time of the round, the `paper_tables` M1 table records
//! the serving metrics themselves. Each round also prints the server's
//! failure counters (rejected / deadline-exceeded / panicked / I/O retries
//! / corrupt chunks); on a healthy in-memory run all of them are 0. The
//! fault-injection counterpart of this workload is
//! `tests/chaos_serving.rs`, parameterized by `FAQ_CHAOS_SEED`,
//! `FAQ_CHAOS_WORKERS`, `FAQ_CHAOS_SUBMISSIONS`, and `FAQ_CHAOS_SUMMARY`.
//!
//! Run in `--test` mode (one unmeasured pass per benchmark) via
//! `cargo bench -p faq_bench --bench serving -- --test` — CI does this on
//! every push.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faq_bench::serving::run_triangle_serving;
use faq_serve::CacheMode;

fn bench_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving/triangle_m2000");
    group.sample_size(10);
    for &(tenants, workers) in &[(4usize, 4usize), (8, 4)] {
        group.bench_with_input(
            BenchmarkId::new("bypass", format!("{tenants}t_{workers}w")),
            &(tenants, workers),
            |b, &(tenants, workers)| {
                b.iter(|| {
                    let r = run_triangle_serving(2000, tenants, workers, 8, CacheMode::Bypass);
                    eprintln!(
                        "  {}: {} tenants {} workers → {:.1} qps, p50 {:.2} ms, p99 {:.2} ms",
                        r.name, r.tenants, r.workers, r.qps, r.p50_ms, r.p99_ms
                    );
                    eprintln!(
                        "  failures: {} rejected, {} deadline-exceeded, {} panicked, \
                         {} I/O retries, {} corrupt chunks",
                        r.rejected, r.deadline_exceeded, r.panicked, r.io_retries, r.corrupt_chunks
                    );
                    r.requests
                })
            },
        );
    }
    group.bench_function(BenchmarkId::new("shared", "4t_4w"), |b| {
        b.iter(|| {
            let r = run_triangle_serving(2000, 4, 4, 8, CacheMode::Shared);
            eprintln!(
                "  {}: {:.1} qps, p50 {:.2} ms, p99 {:.2} ms (result sharing on)",
                r.name, r.qps, r.p50_ms, r.p99_ms
            );
            eprintln!(
                "  memory: {} live epochs, {} resident KiB, {} cached results, {} coalesced",
                r.live_epochs,
                r.resident_bytes / 1024,
                r.cache_entries,
                r.coalesced
            );
            eprintln!(
                "  failures: {} rejected, {} deadline-exceeded, {} panicked, \
                 {} I/O retries, {} corrupt chunks",
                r.rejected, r.deadline_exceeded, r.panicked, r.io_retries, r.corrupt_chunks
            );
            r.requests
        })
    });
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
