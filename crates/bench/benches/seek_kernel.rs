//! Seek-kernel throughput: plain binary search vs the branch-free galloping
//! kernel behind [`faq_factor::VecStorage`].
//!
//! Every leapfrog join seek is one windowed least-upper-bound search over a
//! sorted trie level; this microbench isolates that operation from the join
//! machinery on the shared [`faq_bench::seek`] workload. Two traffic shapes:
//! `asc` (sorted bounds, the hint carries — warm leapfrog traffic) and `rand`
//! (unsorted bounds, no hint — cold first probes, where the head-sample array
//! does the work). Checksums pin the two kernels to identical results before
//! any timing, and the `paper_tables` S1 table / `BENCH_9.json` `"seek"`
//! records measure the same passes.
//!
//! Run in `--test` mode (one unmeasured pass per benchmark) via
//! `cargo bench -p faq_bench --bench seek_kernel -- --test` — CI does this on
//! every push.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faq_bench::seek;

const PROBES: usize = 4096;

fn bench_seek(c: &mut Criterion) {
    let mut group = c.benchmark_group("seek_kernel");
    group.sample_size(10);
    for &n in &[1usize << 12, 1 << 16] {
        let w = seek::workload(n, PROBES, 77);
        // The kernels must agree probe for probe before being timed.
        assert_eq!(
            seek::run_binary(&w.values, &w.ascending),
            seek::run_gallop(&w.storage, &w.ascending, true),
            "warm gallop diverged from binary search at n={n}"
        );
        assert_eq!(
            seek::run_binary(&w.values, &w.random),
            seek::run_gallop(&w.storage, &w.random, false),
            "cold gallop diverged from binary search at n={n}"
        );
        group.bench_with_input(BenchmarkId::new("binary/asc", n), &n, |b, _| {
            b.iter(|| seek::run_binary(&w.values, &w.ascending))
        });
        group.bench_with_input(BenchmarkId::new("gallop/asc", n), &n, |b, _| {
            b.iter(|| seek::run_gallop(&w.storage, &w.ascending, true))
        });
        group.bench_with_input(BenchmarkId::new("binary/rand", n), &n, |b, _| {
            b.iter(|| seek::run_binary(&w.values, &w.random))
        });
        group.bench_with_input(BenchmarkId::new("gallop/rand", n), &n, |b, _| {
            b.iter(|| seek::run_gallop(&w.storage, &w.random, false))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_seek);
criterion_main!(benches);
