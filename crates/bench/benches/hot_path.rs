//! The InsideOut hot path end to end: elimination joins, intermediate factor
//! construction, and the output join on the triangle / path4 / PGM workloads.
//!
//! Where `trie_join.rs` compares the two cursor *representations*, this bench
//! tracks the absolute cost of the serving path across PRs. The workloads are
//! defined once in [`faq_bench::hot_path`] and shared with the `paper_tables`
//! H1 table, whose `--json` output (`BENCH_9.json`) is the machine-readable
//! perf trajectory CI archives; the triangle and path4 instances also reuse
//! the exact seeds of `trie_join.rs`, so numbers are comparable with the
//! PR 4 baseline.
//!
//! Run in `--test` mode (one unmeasured pass per benchmark) via
//! `cargo bench -p faq_bench --bench hot_path -- --test` — CI does this on
//! every push.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faq_bench::hot_path;
use faq_core::{insideout_with_order, ExecPolicy};

fn bench_triangle(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_path/triangle_random");
    group.sample_size(10);
    let policy = ExecPolicy::sequential();
    for (m, q) in hot_path::triangles(&[2000, 8000]) {
        group.bench_with_input(BenchmarkId::new("insideout", m), &m, |b, _| {
            b.iter(|| q.evaluate_par(&policy).unwrap())
        });
    }
    group.finish();
}

fn bench_path4(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_path/path4_random");
    group.sample_size(10);
    let policy = ExecPolicy::sequential();
    let q = hot_path::path4(800);
    group.bench_with_input(BenchmarkId::from_parameter("insideout"), &(), |b, _| {
        b.iter(|| q.evaluate_par(&policy).unwrap())
    });
    group.finish();
}

fn bench_pgm(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_path/pgm_chain");
    group.sample_size(10);
    // 48-variable chain, domain 48: every elimination is a two-factor join of
    // ~d² rows — the allocation-per-row regime the flat pipeline targets.
    let (q, sigma) = hot_path::pgm_chain_marginal(48, 48);
    group.bench_with_input(BenchmarkId::from_parameter("marginal_n48_d48"), &(), |b, _| {
        b.iter(|| insideout_with_order(&q, &sigma).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_triangle, bench_path4, bench_pgm);
criterion_main!(benches);
