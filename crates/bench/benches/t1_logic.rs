//! Table 1, rows #QCQ / QCQ / #CQ: quantified and counting queries.
//!
//! InsideOut with the faqw-optimized ordering vs naive quantifier evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faq_apps::{cq, qcq};
use faq_bench::rng;
use faq_factor::Domains;
use faq_hypergraph::Var;
use rand::Rng;

fn chain_atoms(len: usize, d: u32, tuples_per_atom: usize, seed: u64) -> Vec<cq::Atom> {
    let mut r = rng(seed);
    (0..len - 1)
        .map(|i| {
            let mut tuples: Vec<Vec<u32>> = Vec::new();
            for _ in 0..tuples_per_atom {
                tuples.push(vec![r.gen_range(0..d), r.gen_range(0..d)]);
            }
            tuples.sort();
            tuples.dedup();
            cq::Atom { vars: vec![Var(i as u32), Var(i as u32 + 1)], tuples }
        })
        .collect()
}

fn bench_sharp_qcq(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1_logic/sharp_qcq_chain");
    group.sample_size(10);
    for &len in &[6usize, 8, 10] {
        let d = 3u32;
        let atoms = chain_atoms(len, d, 8, len as u64);
        let prefix: Vec<(Var, qcq::Quantifier)> = (1..len as u32)
            .map(|i| {
                (Var(i), if i % 2 == 1 { qcq::Quantifier::Exists } else { qcq::Quantifier::ForAll })
            })
            .collect();
        let q = qcq::QuantifiedCq {
            domains: Domains::uniform(len, d),
            free: vec![Var(0)],
            prefix,
            atoms,
        };
        group.bench_with_input(BenchmarkId::new("insideout", len), &len, |b, _| {
            b.iter(|| q.count().unwrap())
        });
        if len <= 8 {
            group.bench_with_input(BenchmarkId::new("naive", len), &len, |b, _| {
                b.iter(|| q.count_naive().unwrap())
            });
        }
    }
    group.finish();
}

fn bench_sharp_cq(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1_logic/sharp_cq_chain");
    group.sample_size(10);
    for &len in &[6usize, 10] {
        let d = 4u32;
        let atoms = chain_atoms(len, d, 12, 100 + len as u64);
        let q = cq::ConjunctiveQuery {
            domains: Domains::uniform(len, d),
            free: vec![Var(0), Var(len as u32 - 1)],
            exists: (1..len as u32 - 1).map(Var).collect(),
            atoms,
        };
        group.bench_with_input(BenchmarkId::new("insideout", len), &len, |b, _| {
            b.iter(|| q.count_answers().unwrap())
        });
        if len <= 6 {
            group.bench_with_input(BenchmarkId::new("naive", len), &len, |b, _| {
                b.iter(|| q.count_answers_naive().unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sharp_qcq, bench_sharp_cq);
criterion_main!(benches);
