//! Table 1, row DFT: the FAQ factorization of the Fourier transform.
//!
//! InsideOut over the digit decomposition (= FFT, `O(N log N)`) vs the naive
//! `O(N²)` transform.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faq_apps::matrix::{dft_faq, naive_dft};
use faq_bench::rng;
use faq_semiring::Complex64;
use rand::Rng;

fn bench_dft(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1_dft/p2");
    group.sample_size(10);
    for &m in &[6usize, 8, 10] {
        let n = 1usize << m;
        let mut r = rng(m as u64);
        let input: Vec<Complex64> = (0..n)
            .map(|_| Complex64::new(r.gen_range(-1.0..1.0), r.gen_range(-1.0..1.0)))
            .collect();
        group.bench_with_input(BenchmarkId::new("faq_fft", n), &n, |b, _| {
            b.iter(|| dft_faq(2, m, &input).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| naive_dft(&input))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dft);
criterion_main!(benches);
