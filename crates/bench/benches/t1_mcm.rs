//! Table 1, row MCM: matrix chain multiplication.
//!
//! The DP-optimal FAQ variable ordering vs the input ordering on a skewed
//! `1 × n × 1 × n × 1` chain, plus the dense textbook evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faq_apps::matrix::{Matrix, MatrixChain};
use faq_bench::rng;

fn bench_mcm(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1_mcm/skewed_chain");
    group.sample_size(10);
    for &n in &[32usize, 64, 128] {
        let mut r = rng(n as u64);
        let chain = MatrixChain {
            matrices: vec![
                Matrix::random(1, n, &mut r),
                Matrix::random(n, 1, &mut r),
                Matrix::random(1, n, &mut r),
                Matrix::random(n, 1, &mut r),
            ],
        };
        let dp_order = chain.dp_variable_ordering();
        group.bench_with_input(BenchmarkId::new("insideout_dp_order", n), &n, |b, _| {
            b.iter(|| chain.evaluate_insideout(&dp_order).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("insideout_input_order", n), &n, |b, _| {
            b.iter(|| chain.evaluate().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dense_dp", n), &n, |b, _| {
            b.iter(|| chain.evaluate_dp())
        });
        group.bench_with_input(BenchmarkId::new("dense_left_to_right", n), &n, |b, _| {
            b.iter(|| chain.evaluate_left_to_right())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mcm);
criterion_main!(benches);
