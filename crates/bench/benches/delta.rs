//! Incremental delta evaluation vs full recompute on the triangle workload.
//!
//! A prepared triangle query takes a 1-row point update to `R(a,b)` two ways:
//! through [`PreparedQuery::apply_delta`] (range-restricted replay over the
//! cached per-step intermediates) and through the pre-existing
//! `update_factor` + `evaluate` path (full re-evaluation). Each iteration
//! applies an insert then a delete of the same absent edge, so both engines do
//! real work every round and the instance returns to its starting state.
//! The two paths are asserted bit-identical before any timing starts.
//!
//! The workloads are the `faq_bench::hot_path::triangles` instances (shared
//! with `benches/hot_path.rs` and the paper_tables H1/D1 tables), so the
//! headline — a point update is orders of magnitude cheaper than recompute on
//! the m=8000 triangle — is measured on the exact graphs the perf trajectory
//! archives.
//!
//! Run in `--test` mode (one unmeasured pass per benchmark) via
//! `cargo bench -p faq_bench --bench delta -- --test` — CI does this on
//! every push.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faq_bench::hot_path;
use faq_core::Planner;

fn bench_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta/triangle_point_update");
    group.sample_size(10);
    let planner = Planner::sequential();
    for (m, q) in hot_path::triangles(&[2000, 8000]) {
        let edge = hot_path::absent_edge(&q, 0);
        let ins = q.insert_delta(0, std::slice::from_ref(&edge));
        let del = q.delete_delta(0, std::slice::from_ref(&edge));

        // Incremental handle, plus an oracle that takes the same updates via
        // full factor replacement + re-evaluation.
        let mut prepared = q.prepare_with(&planner).unwrap();
        let mut oracle = q.prepare_with(&planner).unwrap();
        let base = q.relations[0].to_factor();
        let mut with_edge = q.relations[0].clone();
        with_edge.tuples.push(edge.clone());
        with_edge.tuples.sort();
        let with_edge = with_edge.to_factor();

        // Correctness guard before timing: insert then delete, each
        // bit-identical to the recompute path.
        let after_ins = prepared.apply_delta(0, &ins).unwrap();
        oracle.update_factor(0, with_edge.clone()).unwrap();
        assert_eq!(after_ins.factor, oracle.evaluate().unwrap().factor);
        let after_del = prepared.apply_delta(0, &del).unwrap();
        oracle.update_factor(0, base.clone()).unwrap();
        assert_eq!(after_del.factor, oracle.evaluate().unwrap().factor);

        group.bench_with_input(BenchmarkId::new("apply_delta", m), &m, |b, _| {
            b.iter(|| {
                let up = prepared.apply_delta(0, &ins).unwrap();
                let down = prepared.apply_delta(0, &del).unwrap();
                (up, down)
            })
        });
        group.bench_with_input(BenchmarkId::new("update_and_recompute", m), &m, |b, _| {
            b.iter(|| {
                oracle.update_factor(0, with_edge.clone()).unwrap();
                let up = oracle.evaluate().unwrap();
                oracle.update_factor(0, base.clone()).unwrap();
                let down = oracle.evaluate().unwrap();
                (up, down)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_delta);
criterion_main!(benches);
