//! Table 1, rows "Marginal" and "MAP": graphical-model inference.
//!
//! InsideOut with a width-optimized ordering vs brute-force enumeration: the
//! chain has treewidth 1 so elimination is linear in `n·d²` while brute force
//! is `d^n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faq_apps::pgm;
use faq_bench::rng;

fn bench_marginal(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1_pgm/marginal_chain");
    group.sample_size(10);
    let mut r = rng(2);
    for &n in &[8usize, 12, 16] {
        let model = pgm::random_chain(n, 4, &mut r);
        group.bench_with_input(BenchmarkId::new("insideout", n), &n, |b, _| {
            b.iter(|| model.partition_function().unwrap())
        });
        if n <= 10 {
            group.bench_with_input(BenchmarkId::new("bruteforce", n), &n, |b, _| {
                b.iter(|| model.marginal_naive(&[]).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1_pgm/map_grid");
    group.sample_size(10);
    let mut r = rng(3);
    for &cols in &[3usize, 4, 5] {
        let model = pgm::random_grid(3, cols, 3, &mut r);
        group.bench_with_input(BenchmarkId::new("insideout", cols), &cols, |b, _| {
            b.iter(|| model.map_value().unwrap())
        });
        if cols <= 4 {
            group.bench_with_input(BenchmarkId::new("bruteforce", cols), &cols, |b, _| {
                b.iter(|| model.map_value_naive().unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_marginal, bench_map);
criterion_main!(benches);
