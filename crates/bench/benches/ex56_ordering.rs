//! Example 5.6: the effect of the variable ordering on InsideOut's runtime.
//!
//! The input ordering `(1,…,6)` costs `O(N²)`; the equivalent ordering
//! `(5,1,2,3,4,6)` — valid because the product aggregate is idempotent on the
//! `{0,1}` inputs — costs `O(N)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faq_bench::{example_5_6_good_order, example_5_6_input_order, example_5_6_query};
use faq_core::insideout_with_order;

fn bench_orderings(c: &mut Criterion) {
    let mut group = c.benchmark_group("ex56_ordering");
    group.sample_size(10);
    for &n in &[250u32, 500, 1000] {
        let q = example_5_6_query(n, 99);
        let input = example_5_6_input_order();
        let good = example_5_6_good_order();
        group.bench_with_input(BenchmarkId::new("input_order", n), &n, |b, _| {
            b.iter(|| insideout_with_order(&q, &input).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("good_order", n), &n, |b, _| {
            b.iter(|| insideout_with_order(&q, &good).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_orderings);
criterion_main!(benches);
