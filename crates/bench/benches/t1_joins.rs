//! Table 1, row "Joins": triangle and 4-cycle joins.
//!
//! InsideOut (OutsideIn = worst-case-optimal join) stays within the AGM bound
//! `N^{3/2}` on the skewed triangle instance, while the pairwise hash-join
//! baseline materializes a `Θ(N²)` intermediate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faq_apps::joins;
use faq_bench::rng;
use faq_join::pairwise_hash_join;

fn bench_triangle(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1_joins/triangle_skewed");
    group.sample_size(10);
    for &n in &[256u32, 512, 1024] {
        let edges = joins::skewed_triangle_instance(n);
        let q = joins::triangle_query(&edges, n);
        let factors: Vec<_> = q.relations.iter().map(|r| r.to_factor()).collect();
        group.bench_with_input(BenchmarkId::new("insideout", n), &n, |b, _| {
            b.iter(|| q.evaluate().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("hash_join", n), &n, |b, _| {
            b.iter(|| {
                let refs: Vec<&_> = factors.iter().collect();
                pairwise_hash_join(&refs, |a, b| a * b, |&x| x == 0)
            })
        });
    }
    group.finish();
}

fn bench_four_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1_joins/four_cycle_random");
    group.sample_size(10);
    let mut r = rng(1);
    for &m in &[500usize, 2000] {
        let edges = joins::random_graph(64, m, &mut r);
        let q = joins::four_cycle_query(&edges, 64);
        group.bench_with_input(BenchmarkId::new("insideout", m), &m, |b, _| {
            b.iter(|| q.evaluate().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_triangle, bench_four_cycle);
criterion_main!(benches);
