//! §8.3 (Theorems 8.3, 8.4): β-acyclic SAT and #SAT.
//!
//! Davis–Putnam along a nested elimination order and the weighted-clause
//! counting elimination scale polynomially while brute force is `2^n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faq_bench::rng;
use faq_cnf::{brute_force_count, count_beta_acyclic, gen::random_interval_cnf, sat_beta_acyclic};

fn bench_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_beta");
    group.sample_size(10);
    for &n in &[12u32, 16, 20] {
        let mut r = rng(n as u64);
        let cnf = random_interval_cnf(n, (2 * n) as usize, 4, &mut r);
        group.bench_with_input(BenchmarkId::new("dp_sat", n), &n, |b, _| {
            b.iter(|| sat_beta_acyclic(&cnf).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("wsat_count", n), &n, |b, _| {
            b.iter(|| count_beta_acyclic(&cnf).unwrap())
        });
        if n <= 16 {
            group.bench_with_input(BenchmarkId::new("brute_count", n), &n, |b, _| {
                b.iter(|| brute_force_count(&cnf))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sat);
criterion_main!(benches);
