//! Cold vs prepared evaluation on the triangle workload, plus planning cost.
//!
//! The serving-path claim of the planner: a [`faq_core::PreparedQuery`] pays
//! for ordering search, factor alignment, and trie-index builds **once**, so
//! repeated `evaluate()` calls beat the cold path (build the FAQ instance
//! from raw relations, plan, align, index, evaluate) on every request. Both
//! paths are asserted bit-identical to the plain InsideOut engine before any
//! timing.
//!
//! Run in `--test` mode (one unmeasured pass per benchmark) via
//! `cargo bench -p faq_bench --bench planner -- --test` — CI does this on
//! every push.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faq_bench::rng;
use faq_core::{PlanCache, Planner};

fn planner() -> Planner {
    // Sequential plans: the dev container and CI runners have few cores, and
    // the cold-vs-prepared comparison is about planning/alignment/indexing
    // overhead, not parallel speedup.
    Planner::sequential()
}

fn bench_cold_vs_prepared(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner/triangle_cold_vs_prepared");
    group.sample_size(10);
    let mut r = rng(31);
    for &m in &[2000usize, 8000] {
        let edges = faq_apps::joins::random_graph(128, m, &mut r);
        let q = faq_apps::joins::triangle_query(&edges, 128);
        let prepared = q.prepare_with(&planner()).unwrap();
        let reference = q.evaluate().unwrap();
        assert_eq!(
            prepared.evaluate().unwrap().factor,
            reference.factor,
            "prepared plan diverged from InsideOut at m={m}"
        );
        group.bench_with_input(BenchmarkId::new("cold", m), &m, |b, _| {
            // Cold serving: raw relations → FAQ instance → plan → align →
            // index → evaluate, every time.
            b.iter(|| planner().prepare(&q.to_faq().unwrap()).unwrap().evaluate().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("prepared", m), &m, |b, _| {
            // Warm serving: the handle re-evaluates with no re-plan,
            // re-align, or re-index.
            b.iter(|| prepared.evaluate().unwrap())
        });
    }
    group.finish();
}

fn bench_plan_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner/plan_cache");
    group.sample_size(10);
    let mut r = rng(33);
    let edges = faq_apps::joins::random_graph(96, 3000, &mut r);
    let q = faq_apps::joins::triangle_query(&edges, 96).to_faq().unwrap();
    let p = planner();
    group.bench_with_input(BenchmarkId::from_parameter("plan_uncached"), &(), |b, _| {
        b.iter(|| p.plan(&q).unwrap())
    });
    let cache = PlanCache::new();
    cache.get_or_plan(&p, &q).unwrap();
    group.bench_with_input(BenchmarkId::from_parameter("plan_cached"), &(), |b, _| {
        b.iter(|| cache.get_or_plan(&p, &q).unwrap())
    });
    assert_eq!(cache.len(), 1);
    group.finish();
}

criterion_group!(benches, bench_cold_vs_prepared, bench_plan_cache);
criterion_main!(benches);
