//! Out-of-core triangle count: a spilled relation ≥ 4× the resident cap.
//!
//! Before any timing, one full pass (`faq_bench::out_of_core::run`) asserts
//! the out-of-core claims end to end, under **two** independent gauges:
//!
//! * the chunk-pin gauge — peak simultaneously-pinned chunk bytes stay
//!   under the configured cap ([`faq_factor::peak_pinned_bytes`]);
//! * the counting allocator installed below — the whole run's peak heap
//!   growth stays under the relation's on-disk size, i.e. the listing is
//!   never materialized.
//!
//! The count itself is self-checking (it must equal the planted wedges).
//! Criterion then measures the steady-state evaluation over the already
//! generated instance.
//!
//! Defaults are the CI smoke scale (~1.3·10⁶ rows vs a 4 MiB cap, seconds
//! per pass); set `FAQ_OOC_ROWS` / `FAQ_OOC_CAP_MB` for the full 10⁷–10⁸
//! row runs recorded in `EXPERIMENTS.md`. CI runs `--test` mode (one
//! unmeasured pass — the assertion pass still runs) on every push.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faq_bench::out_of_core::{self, OocParams, OocReport};

#[global_allocator]
static ALLOC: faq_testalloc::CountingAllocator = faq_testalloc::CountingAllocator;

fn params() -> OocParams {
    if std::env::var_os("FAQ_OOC_ROWS").is_some() || std::env::var_os("FAQ_OOC_CAP_MB").is_some() {
        OocParams::full()
    } else {
        OocParams::smoke()
    }
}

/// Run once with both memory gauges armed and every claim asserted.
fn assert_out_of_core_claims(p: &OocParams) -> OocReport {
    let before = faq_testalloc::current_bytes();
    faq_testalloc::reset_peak_bytes();
    let report = out_of_core::run(p);
    let heap_growth = faq_testalloc::peak_bytes().saturating_sub(before) as usize;
    assert!(
        heap_growth < report.file_bytes,
        "peak heap growth {heap_growth} B reached the on-disk listing size {} B — \
         the factor must stream, not materialize",
        report.file_bytes
    );
    eprintln!(
        "  out_of_core: {} rows ({} MiB on disk) vs {} MiB cap → \
         peak pinned {} KiB, peak heap growth {} KiB, {} chunk reads, \
         {} triangles, gen {:.2}s, eval {:.2}s ({} threads)",
        report.rows,
        report.file_bytes >> 20,
        report.cap_bytes >> 20,
        report.peak_pinned >> 10,
        heap_growth >> 10,
        report.reads,
        report.triangles,
        report.gen_secs,
        report.eval_secs,
        report.threads,
    );
    report
}

fn bench_out_of_core(c: &mut Criterion) {
    let p = params();
    assert_out_of_core_claims(&p);
    let data = out_of_core::generate(&p);
    let mut group = c.benchmark_group("out_of_core/triangle");
    group.sample_size(10);
    group.bench_function(
        BenchmarkId::new("spilled", format!("r{}_cap{}mb", p.rows, p.cap_bytes >> 20)),
        |b| {
            b.iter(|| {
                let triangles = out_of_core::count_triangles(&data, p.threads);
                assert_eq!(triangles, data.planted as u64);
                triangles
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_out_of_core);
criterion_main!(benches);
