//! Listing vs columnar-trie join kernels on the tier-1 join workloads.
//!
//! Both kernels run the same leapfrog search and issue the same number of
//! seeks on a full-range join (asserted below, along with bit-identical
//! outputs); what differs is the cost per seek. The listing kernel re-scans
//! shared row prefixes with whole-row binary searches; the trie kernel
//! binary-searches the distinct values of one cached index level and descends
//! in O(1). The seek counts per query are printed once so the bench output
//! documents the workload's conditional-query volume.
//!
//! Run in `--test` mode (one unmeasured pass per benchmark) via
//! `cargo bench -p faq_bench --bench trie_join -- --test` — CI does this on
//! every push.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faq_apps::joins::{self, NaturalJoin};
use faq_bench::rng;
use faq_core::{ExecPolicy, JoinRep};

fn policy(rep: JoinRep) -> ExecPolicy {
    ExecPolicy::sequential().with_rep(rep)
}

fn check_and_report(name: &str, q: &NaturalJoin) {
    let listing = q.evaluate_par(&policy(JoinRep::Listing)).unwrap();
    let trie = q.evaluate_par(&policy(JoinRep::Trie)).unwrap();
    assert_eq!(listing.factor, trie.factor, "{name}: representations diverged");
    assert_eq!(
        listing.stats.total_seeks(),
        trie.stats.total_seeks(),
        "{name}: full-range seek counts must match"
    );
    println!(
        "{name}: {} output rows, {} seeks per run (both kernels)",
        trie.factor.len(),
        trie.stats.total_seeks()
    );
}

fn bench_triangle(c: &mut Criterion) {
    let mut group = c.benchmark_group("trie_join/triangle_random");
    group.sample_size(10);
    let mut r = rng(21);
    for &m in &[2000usize, 8000] {
        let edges = joins::random_graph(128, m, &mut r);
        let q = joins::triangle_query(&edges, 128);
        check_and_report(&format!("triangle m={m}"), &q);
        for (label, rep) in [("listing", JoinRep::Listing), ("trie", JoinRep::Trie)] {
            let p = policy(rep);
            group.bench_with_input(BenchmarkId::new(label, m), &m, |b, _| {
                b.iter(|| q.evaluate_par(&p).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_path4(c: &mut Criterion) {
    let mut group = c.benchmark_group("trie_join/path4_random");
    group.sample_size(10);
    let mut r = rng(23);
    // Sparse graph: all five path variables are free, so the output lists
    // every 4-path — keep it around half a million rows.
    let edges = joins::random_graph(96, 800, &mut r);
    let q = joins::path_query(&edges, 96, 4);
    check_and_report("path4 m=800", &q);
    for (label, rep) in [("listing", JoinRep::Listing), ("trie", JoinRep::Trie)] {
        let p = policy(rep);
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            b.iter(|| q.evaluate_par(&p).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_triangle, bench_path4);
criterion_main!(benches);
