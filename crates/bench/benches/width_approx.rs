//! §7: the faqw optimizer — exact LinEx search vs the Theorem 7.5
//! approximation, on the Example 6.2 query family and random shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faq_core::width::{faqw_approx, faqw_exact};
use faq_core::{QueryShape, Tag};
use faq_hypergraph::{Var, VarSet};
use faq_semiring::AggId;

fn example_6_2_shape() -> QueryShape {
    let sum = Tag::Semiring(AggId(0));
    let max = Tag::Semiring(AggId(1));
    let vs = |ids: &[u32]| ids.iter().map(|&i| Var(i)).collect::<VarSet>();
    QueryShape {
        seq: vec![
            (Var(1), sum),
            (Var(2), sum),
            (Var(3), max),
            (Var(4), sum),
            (Var(5), sum),
            (Var(6), max),
            (Var(7), max),
        ],
        edges: vec![
            vs(&[1, 2]),
            vs(&[1, 3, 5]),
            vs(&[1, 4]),
            vs(&[2, 4, 6]),
            vs(&[2, 7]),
            vs(&[3, 7]),
        ],
        mul_idempotent: false,
        closed_ops: Default::default(),
    }
}

fn bench_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("width_approx");
    group.sample_size(10);
    let shape = example_6_2_shape();
    group.bench_with_input(BenchmarkId::new("exact_linex", "ex6.2"), &(), |b, _| {
        b.iter(|| faqw_exact(&shape, 1_000_000).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("approx_thm7.5", "ex6.2"), &(), |b, _| {
        b.iter(|| faqw_approx(&shape, 14).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_width);
criterion_main!(benches);
