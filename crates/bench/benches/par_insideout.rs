//! Sequential vs parallel InsideOut on tier-1 join workloads.
//!
//! The parallel engine chunks every elimination join by first-variable value
//! ranges of the largest incident factor and runs the chunks on a scoped
//! worker pool; the output factor is bit-identical (asserted here before
//! timing). Speedup is reported by the wall-clock comparison — on a
//! single-core host the two lines coincide, so the interesting signal is the
//! absence of chunking overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faq_apps::joins;
use faq_bench::rng;
use faq_core::ExecPolicy;

fn bench_triangle_par(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_insideout/triangle_random");
    group.sample_size(10);
    let mut r = rng(11);
    for &m in &[2000usize, 8000] {
        let edges = joins::random_graph(128, m, &mut r);
        let q = joins::triangle_query(&edges, 128);
        let seq = q.evaluate().unwrap();
        group.bench_with_input(BenchmarkId::new("sequential", m), &m, |b, _| {
            b.iter(|| q.evaluate().unwrap())
        });
        for threads in [2usize, 4] {
            let policy = ExecPolicy::sequential().threads(threads).min_chunk_rows(64);
            assert_eq!(q.evaluate_par(&policy).unwrap().factor, seq.factor);
            group.bench_with_input(
                BenchmarkId::new(format!("parallel_t{threads}"), m),
                &m,
                |b, _| b.iter(|| q.evaluate_par(&policy).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_path_par(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_insideout/path4_random");
    group.sample_size(10);
    let mut r = rng(13);
    // All five path variables are free, so the output carries every 4-path:
    // ≈ n⁵·density⁴ rows. Keep the graph sparse (density ≈ 0.09) so the
    // listing stays near half a million rows — dense graphs make this query
    // produce hundreds of millions of rows and the bench would never finish.
    let edges = joins::random_graph(96, 800, &mut r);
    let q = joins::path_query(&edges, 96, 4);
    let seq = q.evaluate().unwrap();
    group.bench_with_input(BenchmarkId::from_parameter("sequential"), &(), |b, _| {
        b.iter(|| q.evaluate().unwrap())
    });
    for threads in [2usize, 4] {
        let policy = ExecPolicy::sequential().threads(threads).min_chunk_rows(64);
        assert_eq!(q.evaluate_par(&policy).unwrap().factor, seq.factor);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("parallel_t{threads}")),
            &(),
            |b, _| b.iter(|| q.evaluate_par(&policy).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_triangle_par, bench_path_par);
criterion_main!(benches);
