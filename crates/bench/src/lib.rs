//! Shared workloads and measurement helpers for the paper-reproduction
//! benchmarks.
//!
//! Every table and figure of the FAQ paper maps to a generator here plus a
//! criterion bench (`benches/`) and a row printed by the `paper_tables`
//! binary (recorded in `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use faq_core::{FaqQuery, VarAgg};
use faq_factor::{Domains, Factor};
use faq_hypergraph::Var;
use faq_semiring::RealDomain;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Deterministic RNG for reproducible workloads.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Median wall-clock time of `iters` runs of `f`, in seconds.
pub fn time_median<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(iters >= 1);
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = f();
        samples.push(t0.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Fit the slope of `log(y)` against `log(x)` — the empirical scaling
/// exponent of a series of `(size, time)` measurements.
pub fn scaling_exponent(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2);
    let logs: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.ln(), y.ln())).collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// The Example 5.6 query at scale `n`:
/// `ϕ = max_{x1} max_{x2} Π_{x3} Σ_{x4} max_{x5} max_{x6} ψ15 ψ25 ψ134 ψ236`
/// with `{0,1}`-valued factors of `Θ(n)` tuples (so that the idempotent
/// machinery applies and the orderings `(1..6)` vs `(5,1,2,3,4,6)` cost
/// `O(N²)` vs `O(N)`).
pub fn example_5_6_query(n: u32, seed: u64) -> FaqQuery<RealDomain> {
    let mut r = rng(seed);
    let dom3 = 2u32; // keep the product variable's domain small
    let domains = Domains::new(vec![2, n, n, dom3, n, n, n]);
    // Variables are 1-indexed as in the paper; Var(0) is unused filler with
    // domain 2 (the engine never touches it since it's not in the query).
    let v = Var;

    // ψ15, ψ25: n random pairs each. ψ134, ψ236: n random triples, with the
    // x3 column *complete* per (x1, x4) group often enough to survive Π_{x3}.
    let mut pairs = |a: u32, b: u32| {
        let mut tuples = std::collections::BTreeSet::new();
        for _ in 0..n {
            tuples.insert(vec![r.gen_range(0..n), r.gen_range(0..n)]);
        }
        Factor::new(vec![v(a), v(b)], tuples.into_iter().map(|t| (t, 1.0f64)).collect()).unwrap()
    };
    let psi15 = pairs(1, 5);
    let psi25 = pairs(2, 5);
    let mut triples = |a: u32, b: u32, c: u32| {
        // For each of ~n (x_a, x_b) pairs, include BOTH x3 values so the
        // product aggregate keeps the group.
        let mut tuples = std::collections::BTreeSet::new();
        for _ in 0..n {
            let xa = r.gen_range(0..n);
            let xb = r.gen_range(0..n);
            for x3 in 0..dom3 {
                tuples.insert(vec![xa, x3, xb]);
            }
        }
        Factor::new(vec![v(a), v(b), v(c)], tuples.into_iter().map(|t| (t, 1.0f64)).collect())
            .unwrap()
    };
    let psi134 = triples(1, 3, 4);
    let psi236 = triples(2, 3, 6);

    FaqQuery::new(
        RealDomain,
        domains,
        vec![],
        vec![
            (v(1), VarAgg::Semiring(RealDomain::MAX)),
            (v(2), VarAgg::Semiring(RealDomain::MAX)),
            (v(3), VarAgg::Product),
            (v(4), VarAgg::Semiring(RealDomain::SUM)),
            (v(5), VarAgg::Semiring(RealDomain::MAX)),
            (v(6), VarAgg::Semiring(RealDomain::MAX)),
        ],
        vec![psi15, psi25, psi134, psi236],
    )
    .unwrap()
}

pub mod out_of_core;

/// The multi-tenant serving workload — the single definition shared by
/// `benches/serving.rs` and the `paper_tables` M1 table / `BENCH_9.json`
/// `"serving"` records.
pub mod serving;

/// The seek-kernel microbench workload — the single definition shared by
/// `benches/seek_kernel.rs` and the `paper_tables` S1 table / `BENCH_9.json`
/// `"seek"` records. Isolates the windowed least-upper-bound search (the one
/// operation behind every leapfrog seek) from the join machinery, so the
/// plain binary search and the galloping kernel can be compared per probe.
pub mod seek {
    use faq_factor::{LevelStorage, VecStorage};
    use rand::Rng;

    /// A sorted-distinct trie level of `n` values (random gaps of 1–7) plus
    /// two probe sequences of equal length: `ascending` models warm leapfrog
    /// traffic (bounds only grow within a window, the hint carries), `random`
    /// models cold first probes on fresh windows.
    pub struct SeekWorkload {
        /// The level's values, for the plain-binary-search reference.
        pub values: Vec<u32>,
        /// The same values behind the galloping kernel.
        pub storage: VecStorage,
        /// Sorted probe bounds (warm traffic).
        pub ascending: Vec<u32>,
        /// Unsorted probe bounds (cold traffic).
        pub random: Vec<u32>,
    }

    /// Build the deterministic workload for a level of `n` values.
    pub fn workload(n: usize, probes: usize, seed: u64) -> SeekWorkload {
        let mut r = super::rng(seed);
        let mut values: Vec<u32> = Vec::with_capacity(n);
        let mut next = 0u32;
        for _ in 0..n {
            next += r.gen_range(1..8u32);
            values.push(next);
        }
        let max = values.last().copied().unwrap_or(0) + 4;
        let mut ascending: Vec<u32> = (0..probes).map(|_| r.gen_range(0..max)).collect();
        ascending.sort_unstable();
        let random: Vec<u32> = (0..probes).map(|_| r.gen_range(0..max)).collect();
        let offsets: Vec<usize> = (0..=n).collect();
        let storage = VecStorage::from_parts(values.clone(), offsets.clone(), offsets);
        SeekWorkload { values, storage, ascending, random }
    }

    /// One probe pass through the old kernel — a plain `partition_point`
    /// binary search per seek. Returns the sum of result indices (a checksum
    /// the galloping pass must reproduce exactly).
    pub fn run_binary(values: &[u32], probes: &[u32]) -> u64 {
        let mut acc = 0u64;
        for &b in probes {
            acc += values.partition_point(|&v| v < b) as u64;
        }
        acc
    }

    /// The same pass through the galloping kernel. `warm` carries each seek's
    /// result into the next seek's hint the way a [`faq_factor::TrieCursor`]
    /// does; cold passes `usize::MAX` every time.
    pub fn run_gallop(storage: &VecStorage, probes: &[u32], warm: bool) -> u64 {
        let n = storage.len();
        let window = (0, n);
        let mut hint = usize::MAX;
        let mut acc = 0u64;
        for &b in probes {
            let j = storage.lub_from(window, hint, b);
            acc += j as u64;
            if warm {
                hint = j.min(n.saturating_sub(1));
            }
        }
        acc
    }
}

/// The hot-path workload family — the *single* definition shared by
/// `benches/hot_path.rs` and the `paper_tables` H1 table / `BENCH_9.json`
/// perf trajectory, so the archived trajectory always measures exactly what
/// the bench measures (same seeds, sizes, and query shapes).
pub mod hot_path {
    use super::rng;
    use faq_apps::{joins, pgm};
    use faq_core::{FaqQuery, VarAgg};
    use faq_hypergraph::Var;
    use faq_semiring::RealDomain;

    /// Triangle joins over 128-node random graphs (seed 21). Pass the whole
    /// size list at once: the instances share one RNG stream, so the graph
    /// for a given `m` depends on the sizes drawn before it.
    pub fn triangles(ms: &[usize]) -> Vec<(usize, joins::NaturalJoin)> {
        let mut r = rng(21);
        ms.iter()
            .map(|&m| {
                let edges = joins::random_graph(128, m, &mut r);
                (m, joins::triangle_query(&edges, 128))
            })
            .collect()
    }

    /// The lexicographically first edge absent from relation `slot` of `q` —
    /// the point update `benches/delta.rs` and the `paper_tables` D1 table
    /// insert and delete, so both measure the same incremental workload.
    pub fn absent_edge(q: &joins::NaturalJoin, slot: usize) -> Vec<u32> {
        let present: std::collections::BTreeSet<&Vec<u32>> =
            q.relations[slot].tuples.iter().collect();
        for a in 0..128u32 {
            for b in 0..128u32 {
                if a != b && !present.contains(&vec![a, b]) {
                    return vec![a, b];
                }
            }
        }
        unreachable!("random graph instances never saturate 128 nodes")
    }

    /// The path4 join over a sparse 96-node random graph (seed 23).
    pub fn path4(m: usize) -> joins::NaturalJoin {
        let mut r = rng(23);
        let edges = joins::random_graph(96, m, &mut r);
        joins::path_query(&edges, 96, 4)
    }

    /// An `n`-variable chain PGM with domain `d` (seed 31), posed as the
    /// plain FAQ marginal over `Var(0)` along the chain's own ordering —
    /// every elimination is a two-factor join of ~d² rows, isolating the
    /// elimination kernels from `GraphicalModel::marginal`'s per-call
    /// width-ordering search.
    pub fn pgm_chain_marginal(n: usize, d: u32) -> (FaqQuery<RealDomain>, Vec<Var>) {
        let mut r = rng(31);
        let model = pgm::random_chain(n, d, &mut r);
        let bound: Vec<(Var, VarAgg)> = model
            .domains
            .vars()
            .filter(|&v| v != Var(0))
            .map(|v| (v, VarAgg::Semiring(RealDomain::SUM)))
            .collect();
        let q = FaqQuery::new(
            RealDomain,
            model.domains.clone(),
            vec![Var(0)],
            bound,
            model.potentials.clone(),
        )
        .expect("chain PGM is a valid FAQ");
        let sigma = q.ordering();
        (q, sigma)
    }
}

/// The paper's good ordering for Example 5.6: `(5, 1, 2, 3, 4, 6)`.
pub fn example_5_6_good_order() -> Vec<Var> {
    [5u32, 1, 2, 3, 4, 6].iter().map(|&i| Var(i)).collect()
}

/// The input ordering for Example 5.6: `(1, 2, 3, 4, 5, 6)`.
pub fn example_5_6_input_order() -> Vec<Var> {
    (1..=6u32).map(Var).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use faq_core::{insideout_with_order, naive_eval};

    #[test]
    fn scaling_exponent_of_square_law() {
        let pts: Vec<(f64, f64)> = (1..6).map(|i| (i as f64, (i * i) as f64)).collect();
        let e = scaling_exponent(&pts);
        assert!((e - 2.0).abs() < 1e-9);
    }

    #[test]
    fn example_5_6_orders_agree() {
        let q = example_5_6_query(6, 1);
        let a = insideout_with_order(&q, &example_5_6_input_order()).unwrap();
        let b = insideout_with_order(&q, &example_5_6_good_order()).unwrap();
        assert_eq!(a.factor, b.factor);
        let n = naive_eval(&q);
        assert_eq!(a.factor, n);
    }

    #[test]
    fn example_5_6_good_order_is_equivalent() {
        let q = example_5_6_query(5, 2);
        let shape = q.shape_promising_idempotent_inputs();
        assert!(faq_core::evo::is_equivalent_ordering(&shape, &example_5_6_good_order()));
        assert!(faq_core::evo::is_equivalent_ordering(&shape, &example_5_6_input_order()));
    }
}
