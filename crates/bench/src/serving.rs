//! Open-loop serving workload over the triangle join (the M1 table and
//! `benches/serving.rs`).
//!
//! Each tenant thread submits requests on a fixed arrival schedule —
//! **independent of completions**, so queueing delay shows up in the
//! latencies instead of silently throttling the offered load (the
//! closed-loop pitfall). The schedule targets ~70% of the pool's measured
//! serial capacity; reported latency is submission-to-completion as
//! measured by the worker ([`faq_serve::ServeOutput::latency`]).

use crate::hot_path;
use faq_apps::joins::NaturalJoin;
use faq_core::VarAgg;
use faq_serve::{CacheMode, FaqServer, QuerySpec, ServeConfig};
use std::time::{Duration, Instant};

/// Results of one open-loop serving run.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Workload label (goes into the table and the JSON record).
    pub name: String,
    /// Tenant (client) threads.
    pub tenants: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Total completed requests.
    pub requests: usize,
    /// Completed requests per second of wall-clock time.
    pub qps: f64,
    /// Median submission-to-completion latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile submission-to-completion latency, milliseconds.
    pub p99_ms: f64,
    /// Submissions coalesced onto an identical in-flight leader.
    pub coalesced: u64,
    /// Epoch snapshots alive at the end of the round.
    pub live_epochs: usize,
    /// Resident catalog bytes at the end of the round.
    pub resident_bytes: usize,
    /// Shared results carried by the final snapshot's cache.
    pub cache_entries: usize,
    /// Submissions rejected by admission control.
    pub rejected: u64,
    /// Submissions answered with `ServeError::DeadlineExceeded`.
    pub deadline_exceeded: u64,
    /// Submissions answered with `ServeError::QueryPanicked`.
    pub panicked: u64,
    /// Chunk I/O retries absorbed by the storage layer (process-wide).
    pub io_retries: u64,
    /// Chunk reads failing checksum verification on every attempt
    /// (process-wide).
    pub corrupt_chunks: u64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

/// Run the triangle-`m` natural join as a multi-tenant serving workload:
/// `tenants` client threads each submit `per_tenant` requests open-loop
/// against a `workers`-thread [`FaqServer`], all for the same registered
/// query (`cache` picks whether they share results).
///
/// The first answer is asserted bit-identical to a direct
/// [`NaturalJoin::evaluate`] before any timing starts.
pub fn run_triangle_serving(
    m: usize,
    tenants: usize,
    workers: usize,
    per_tenant: usize,
    cache: CacheMode,
) -> ServingReport {
    let nj: NaturalJoin = hot_path::triangles(&[m]).pop().expect("one instance").1;
    let q = nj.to_faq().expect("triangle join is a valid FAQ");
    let catalog = nj.relations.iter().map(|r| r.to_factor()).collect();
    let server = FaqServer::with_config(
        ServeConfig::default().workers(workers).max_in_flight(tenants * per_tenant + workers),
        q.domain,
        nj.domains.clone(),
        catalog,
    );
    let spec = QuerySpec::new(
        nj.output_order.clone(),
        Vec::<(faq_hypergraph::Var, VarAgg)>::new(),
        (0..nj.relations.len()).collect(),
    );
    let qid = server.register(spec).expect("triangle spec registers");

    // Correctness gate + capacity probe (fresh evaluations, never cached).
    let probe = server.tenant("probe", 4);
    let reference = nj.evaluate().expect("direct evaluation succeeds").factor;
    let mut serial_secs = f64::INFINITY;
    for _ in 0..3 {
        let out = server
            .submit_with(&probe, qid, None, CacheMode::Bypass)
            .expect("probe admitted")
            .wait()
            .expect("probe answered");
        assert_eq!(
            *out.factor, reference,
            "served output must be bit-identical to direct evaluation"
        );
        serial_secs = serial_secs.min(out.latency.as_secs_f64());
    }

    // Open-loop schedule: offered load ≈ 70% of the pool's serial capacity,
    // split evenly across tenants.
    let capacity_qps = workers as f64 / serial_secs.max(1e-9);
    let interval = Duration::from_secs_f64(tenants as f64 / (0.7 * capacity_qps));

    let latencies: std::sync::Mutex<Vec<f64>> = std::sync::Mutex::new(Vec::new());
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..tenants {
            let server = &server;
            let latencies = &latencies;
            s.spawn(move || {
                let tenant = server.tenant(&format!("tenant-{t}"), per_tenant + 1);
                let start = Instant::now();
                let mut tickets = Vec::with_capacity(per_tenant);
                for k in 0..per_tenant {
                    let due = start + interval * k as u32;
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    tickets.push(server.submit_with(&tenant, qid, None, cache).expect("admitted"));
                }
                let mut mine: Vec<f64> = Vec::with_capacity(per_tenant);
                for ticket in tickets {
                    let out = ticket.wait().expect("request answered");
                    mine.push(out.latency.as_secs_f64() * 1e3);
                }
                latencies.lock().unwrap().extend(mine);
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64().max(1e-9);

    let mut ms = latencies.into_inner().unwrap();
    ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let requests = ms.len();
    assert_eq!(requests, tenants * per_tenant, "every request must complete");
    let stats = server.stats();
    ServingReport {
        name: format!(
            "triangle_m{m}_{}",
            match cache {
                CacheMode::Shared => "shared",
                CacheMode::Bypass => "bypass",
            }
        ),
        tenants,
        workers,
        requests,
        qps: requests as f64 / wall,
        p50_ms: percentile(&ms, 0.50),
        p99_ms: percentile(&ms, 0.99),
        coalesced: stats.coalesced,
        live_epochs: stats.live_epochs,
        resident_bytes: stats.resident_bytes,
        cache_entries: stats.cache_entries,
        rejected: stats.rejected,
        deadline_exceeded: stats.deadline_exceeded,
        panicked: stats.panicked,
        io_retries: stats.io_retries,
        corrupt_chunks: stats.corrupt_chunks,
    }
}
