//! Regenerate the tables and figures of the FAQ paper on laptop-scale
//! workloads. Output is recorded in `EXPERIMENTS.md`.
//!
//! Usage: `cargo run -p faq_bench --release --bin paper_tables [--fast] [--threads N] [--json [PATH]]`
//!
//! `--threads N` sets the worker-pool size of the parallel-engine table
//! (default: the host's available parallelism). `--json` additionally writes
//! the hot-path (H1), incremental-delta (D1), serving (M1), seek-kernel
//! (S1) and out-of-core (O1) tables as machine-readable JSON — the per-PR
//! perf trajectory CI uploads as an artifact — to `PATH` (default
//! `BENCH_9.json`).

use faq_apps::{cq, joins, matrix, pgm, qcq};
use faq_bench::{example_5_6_good_order, example_5_6_input_order, example_5_6_query};
use faq_bench::{rng, scaling_exponent, time_median};
use faq_cnf as cnf;
use faq_core::width::{faqw_exact, faqw_of_ordering};
use faq_core::{insideout_with_order, ExecPolicy, JoinRep, QueryShape, Tag};
use faq_hypergraph::{compose, ordering as hord, Var, VarSet};
use faq_join::pairwise_hash_join;
use faq_semiring::{AggId, Complex64};
use rand::Rng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = args.iter().any(|a| a == "--fast");
    let threads = match args.iter().position(|a| a == "--threads") {
        Some(i) => {
            let value = args.get(i + 1).expect("--threads requires a value");
            match value.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => panic!("--threads takes a positive integer, got {value:?}"),
            }
        }
        None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    };
    let json_path: Option<String> = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_9.json".to_string())
    });
    let iters = if fast { 1 } else { 3 };
    println!("# FAQ paper reproduction — measured tables\n");
    println!(
        "(median of {iters} runs per cell; shapes, not absolute numbers, are the claim; \
         parallel engine runs with {threads} thread(s))\n"
    );
    t1_joins(iters, fast);
    t1_logic(iters, fast);
    t1_pgm(iters, fast);
    t1_mcm(iters, fast);
    t1_dft(iters, fast);
    ex56(iters, fast);
    rep_table(iters, fast);
    par_table(iters, fast, threads);
    plan_table(iters, fast);
    let delta_rows = delta_table(iters, fast);
    let serving_rows = serving_table(fast);
    let seek_rows = seek_table(iters, fast);
    let ooc_rows = ooc_table(fast);
    hot_table(iters, fast, json_path.as_deref(), &delta_rows, &serving_rows, &seek_rows, &ooc_rows);
    width_table();
    sat_tables(iters, fast);
    composition_table();
}

/// Table 1, row "Joins": triangle query, InsideOut/LFTJ vs pairwise hash join.
fn t1_joins(iters: usize, fast: bool) {
    println!("## T1.4 Joins — triangle query (InsideOut ~ N^1.5 vs pairwise ~ N^2)\n");
    println!("| N (edges) | insideout (s) | hash-join (s) | out rows |");
    println!("|---|---|---|---|");
    let sizes: &[u32] = if fast { &[200, 400] } else { &[250, 500, 1000, 2000, 4000] };
    let mut io_pts = Vec::new();
    let mut hj_pts = Vec::new();
    for &m in sizes {
        // Skewed hub instance: pairwise plans materialize Θ(N²).
        let edges = joins::skewed_triangle_instance(m / 2);
        let q = joins::triangle_query(&edges, m / 2);
        let t_io = time_median(iters, || q.evaluate().unwrap());
        let factors: Vec<_> = q.relations.iter().map(|r| r.to_factor()).collect();
        let refs: Vec<&_> = factors.iter().collect();
        let t_hj = time_median(iters, || pairwise_hash_join(&refs, |a, b| a * b, |&x| x == 0));
        let rows = q.evaluate().unwrap().factor.len();
        println!("| {} | {:.5} | {:.5} | {} |", edges.len(), t_io, t_hj, rows);
        io_pts.push((edges.len() as f64, t_io.max(1e-7)));
        hj_pts.push((edges.len() as f64, t_hj.max(1e-7)));
    }
    println!(
        "\nfitted exponents: insideout ≈ N^{:.2}, hash-join ≈ N^{:.2}\n",
        scaling_exponent(&io_pts),
        scaling_exponent(&hj_pts)
    );
}

/// Table 1, rows #QCQ / QCQ / #CQ: InsideOut vs full enumeration.
fn t1_logic(iters: usize, fast: bool) {
    println!("## T1.1–T1.3 Logic — #QCQ, QCQ, #CQ (InsideOut vs naive enumeration)\n");
    println!("| problem | vars | N | insideout (s) | naive (s) | agree |");
    println!("|---|---|---|---|---|---|");
    let n_atom_tuples = if fast { 50 } else { 200 };
    let chain_len = if fast { 6 } else { 8 };
    let mut r = rng(42);
    // Chain #QCQ: free head + alternating ∃/∀ down a chain, domain 3.
    let d = 3u32;
    let mk_atom = |r: &mut rand::rngs::StdRng, a: u32, b: u32| {
        let mut tuples: Vec<Vec<u32>> = Vec::new();
        for _ in 0..n_atom_tuples {
            tuples.push(vec![r.gen_range(0..d), r.gen_range(0..d)]);
        }
        tuples.sort();
        tuples.dedup();
        cq::Atom { vars: vec![Var(a), Var(b)], tuples }
    };
    let atoms: Vec<cq::Atom> =
        (0..chain_len - 1).map(|i| mk_atom(&mut r, i as u32, i as u32 + 1)).collect();

    // #QCQ
    let quants: Vec<(Var, qcq::Quantifier)> = (1..chain_len as u32)
        .map(|i| {
            (Var(i), if i % 2 == 1 { qcq::Quantifier::Exists } else { qcq::Quantifier::ForAll })
        })
        .collect();
    let q = qcq::QuantifiedCq {
        domains: faq_factor::Domains::uniform(chain_len, d),
        free: vec![Var(0)],
        prefix: quants.clone(),
        atoms: atoms.clone(),
    };
    let t_fast = time_median(iters, || q.count().unwrap());
    let t_naive = time_median(1, || q.count_naive().unwrap());
    let agree = q.count().unwrap() == q.count_naive().unwrap();
    println!("| #QCQ | {chain_len} | {n_atom_tuples} | {t_fast:.5} | {t_naive:.5} | {agree} |");

    // QCQ sentence
    let qs = qcq::QuantifiedCq {
        domains: faq_factor::Domains::uniform(chain_len, d),
        free: vec![],
        prefix: std::iter::once((Var(0), qcq::Quantifier::ForAll)).chain(quants).collect(),
        atoms: atoms.clone(),
    };
    let t_fast = time_median(iters, || qs.holds().unwrap());
    println!("| QCQ | {chain_len} | {n_atom_tuples} | {t_fast:.5} | – | – |");

    // #CQ
    let c = cq::ConjunctiveQuery {
        domains: faq_factor::Domains::uniform(chain_len, d),
        free: vec![Var(0), Var(chain_len as u32 - 1)],
        exists: (1..chain_len as u32 - 1).map(Var).collect(),
        atoms,
    };
    let t_fast = time_median(iters, || c.count_answers().unwrap());
    let t_naive = time_median(1, || c.count_answers_naive().unwrap());
    let agree = c.count_answers().unwrap() == c.count_answers_naive().unwrap();
    println!("| #CQ | {chain_len} | {n_atom_tuples} | {t_fast:.5} | {t_naive:.5} | {agree} |");
    println!();
}

/// Table 1, rows Marginal / MAP: chain & grid PGMs, InsideOut vs brute force.
fn t1_pgm(iters: usize, fast: bool) {
    println!("## T1.5–T1.6 PGM — marginal & MAP (InsideOut vs brute force)\n");
    println!("| model | vars | d | marginal (s) | MAP (s) | brute (s) |");
    println!("|---|---|---|---|---|---|");
    let mut r = rng(7);
    let configs: &[(&str, usize, usize, u32)] =
        if fast { &[("chain", 8, 1, 3)] } else { &[("chain", 12, 1, 4), ("grid3xC", 4, 3, 3)] };
    for &(name, a, b, d) in configs {
        let model = if name == "chain" {
            pgm::random_chain(a, d, &mut r)
        } else {
            pgm::random_grid(b, a, d, &mut r)
        };
        let n = model.num_vars();
        let t_marg = time_median(iters, || model.partition_function().unwrap());
        let t_map = time_median(iters, || model.map_value().unwrap());
        let t_brute = time_median(1, || model.map_value_naive().unwrap());
        println!("| {name} | {n} | {d} | {t_marg:.5} | {t_map:.5} | {t_brute:.5} |");
    }
    println!();
}

/// Table 1, row MCM: matrix chain — DP-optimal ordering vs worst ordering.
fn t1_mcm(iters: usize, fast: bool) {
    println!("## T1.7 MCM — matrix chain (DP-optimal FAQ ordering vs left-to-right)\n");
    println!("| dims | dp cost | io(dp order) s | io(input order) s | dense dp (s) |");
    println!("|---|---|---|---|---|");
    let n: usize = if fast { 24 } else { 64 };
    let mut r = rng(5);
    // 1 × n × 1 × n × 1 chain: optimal cost Θ(n), worst Θ(n²).
    let chain = matrix::MatrixChain {
        matrices: vec![
            matrix::Matrix::random(1, n, &mut r),
            matrix::Matrix::random(n, 1, &mut r),
            matrix::Matrix::random(1, n, &mut r),
            matrix::Matrix::random(n, 1, &mut r),
        ],
    };
    let (cost, _) = chain.dp_optimal();
    let dp_order = chain.dp_variable_ordering();
    let t_good = time_median(iters, || chain.evaluate_insideout(&dp_order).unwrap());
    let t_input = time_median(iters, || chain.evaluate().unwrap());
    let t_dense = time_median(iters, || chain.evaluate_dp());
    println!("| 1×{n}×1×{n}×1 | {cost} | {t_good:.5} | {t_input:.5} | {t_dense:.5} |");
    println!();
}

/// Table 1, row DFT: FAQ/FFT O(N log N) vs naive O(N²).
fn t1_dft(iters: usize, fast: bool) {
    println!("## T1.8 DFT — FAQ factorization (FFT) vs naive O(N²)\n");
    println!("| N = 2^m | faq-fft (s) | naive (s) |");
    println!("|---|---|---|");
    let ms: &[usize] = if fast { &[6, 8] } else { &[6, 8, 10, 12] };
    let mut fft_pts = Vec::new();
    let mut naive_pts = Vec::new();
    for &m in ms {
        let n = 1usize << m;
        let mut r = rng(m as u64);
        let input: Vec<Complex64> = (0..n)
            .map(|_| Complex64::new(r.gen_range(-1.0..1.0), r.gen_range(-1.0..1.0)))
            .collect();
        let t_fft = time_median(iters, || matrix::dft_faq(2, m, &input).unwrap());
        let t_naive = time_median(1, || matrix::naive_dft(&input));
        println!("| {n} | {t_fft:.5} | {t_naive:.5} |");
        fft_pts.push((n as f64, t_fft.max(1e-7)));
        naive_pts.push((n as f64, t_naive.max(1e-7)));
    }
    println!(
        "\nfitted exponents: faq-fft ≈ N^{:.2}, naive ≈ N^{:.2}\n",
        scaling_exponent(&fft_pts),
        scaling_exponent(&naive_pts)
    );
}

/// Example 5.6: effect of the variable ordering (O(N²) vs O(N)).
fn ex56(iters: usize, fast: bool) {
    println!("## E5.6 Ordering effect — input order (1..6) vs (5,1,2,3,4,6)\n");
    println!("| N | t(input order) s | t(good order) s | seeks input | seeks good |");
    println!("|---|---|---|---|---|");
    let sizes: &[u32] = if fast { &[100, 200] } else { &[250, 500, 1000, 2000] };
    let mut in_pts = Vec::new();
    let mut good_pts = Vec::new();
    for &n in sizes {
        let q = example_5_6_query(n, 99);
        let t_in =
            time_median(iters, || insideout_with_order(&q, &example_5_6_input_order()).unwrap());
        let t_good =
            time_median(iters, || insideout_with_order(&q, &example_5_6_good_order()).unwrap());
        let s_in =
            insideout_with_order(&q, &example_5_6_input_order()).unwrap().stats.total_seeks();
        let s_good =
            insideout_with_order(&q, &example_5_6_good_order()).unwrap().stats.total_seeks();
        println!("| {n} | {t_in:.5} | {t_good:.5} | {s_in} | {s_good} |");
        in_pts.push((n as f64, t_in.max(1e-7)));
        good_pts.push((n as f64, t_good.max(1e-7)));
    }
    println!(
        "\nfitted exponents: input ≈ N^{:.2}, good ≈ N^{:.2}\n",
        scaling_exponent(&in_pts),
        scaling_exponent(&good_pts)
    );
}

/// Factor representations: listing vs columnar-trie join kernels on the
/// triangle join. Both issue the same seeks (asserted, with bit-identical
/// outputs); the trie's per-level distinct-value searches make each seek
/// cheaper.
fn rep_table(iters: usize, fast: bool) {
    println!("## R1 Factor representations — triangle join, listing vs trie kernel\n");
    println!("| N (edges) | listing (s) | trie (s) | speedup | seeks | identical |");
    println!("|---|---|---|---|---|---|");
    let sizes: &[usize] = if fast { &[1000, 2000] } else { &[2000, 8000, 20000] };
    let listing = ExecPolicy::sequential().with_rep(JoinRep::Listing);
    let trie = ExecPolicy::sequential().with_rep(JoinRep::Trie);
    let mut r = rng(19);
    for &m in sizes {
        let nodes = (4 * (m as f64).sqrt() as u32).max(8);
        let edges = joins::random_graph(nodes, m, &mut r);
        let q = joins::triangle_query(&edges, nodes);
        let out_l = q.evaluate_par(&listing).unwrap();
        let out_t = q.evaluate_par(&trie).unwrap();
        let identical =
            out_l.factor == out_t.factor && out_l.stats.total_seeks() == out_t.stats.total_seeks();
        assert!(identical, "representations diverged at N={}", edges.len());
        let t_l = time_median(iters, || q.evaluate_par(&listing).unwrap());
        let t_t = time_median(iters, || q.evaluate_par(&trie).unwrap());
        println!(
            "| {} | {t_l:.5} | {t_t:.5} | {:.2}x | {} | {identical} |",
            edges.len(),
            t_l / t_t.max(1e-9),
            out_t.stats.total_seeks()
        );
    }
    println!();
}

/// Parallel InsideOut: chunked factor kernels vs the sequential engine on the
/// random triangle join. Outputs are asserted bit-identical before timing.
fn par_table(iters: usize, fast: bool, threads: usize) {
    println!("## P1 Parallel InsideOut — triangle join, sequential vs {threads}-thread chunked\n");
    println!("| N (edges) | sequential (s) | parallel (s) | speedup | identical |");
    println!("|---|---|---|---|---|");
    let sizes: &[usize] = if fast { &[1000, 2000] } else { &[2000, 8000, 20000] };
    let policy = ExecPolicy::sequential().threads(threads).min_chunk_rows(64);
    let mut r = rng(17);
    for &m in sizes {
        let nodes = (4 * (m as f64).sqrt() as u32).max(8);
        let edges = joins::random_graph(nodes, m, &mut r);
        let q = joins::triangle_query(&edges, nodes);
        let seq = q.evaluate().unwrap();
        let par = q.evaluate_par(&policy).unwrap();
        let identical = par.factor == seq.factor;
        assert!(identical, "parallel output diverged from sequential at N={}", edges.len());
        let t_seq = time_median(iters, || q.evaluate().unwrap());
        let t_par = time_median(iters, || q.evaluate_par(&policy).unwrap());
        println!(
            "| {} | {t_seq:.5} | {t_par:.5} | {:.2}x | {identical} |",
            edges.len(),
            t_seq / t_par.max(1e-9)
        );
    }
    println!();
}

/// Cost-based planner: width-only ordering vs the cost-based plan, and cold
/// vs prepared evaluation, on the triangle join. Outputs are asserted
/// bit-identical before timing.
fn plan_table(iters: usize, fast: bool) {
    use faq_core::Planner;
    println!("## P2 Planner — width-only vs cost-based plan; cold vs prepared evaluation\n");
    println!(
        "| N (edges) | width-only order (s) | cost-based order (s) | cold: plan+prep+eval (s) | \
         prepared eval (s) | serve speedup | identical |"
    );
    println!("|---|---|---|---|---|---|---|");
    let sizes: &[usize] = if fast { &[1000, 2000] } else { &[2000, 8000, 20000] };
    let planner = Planner::sequential();
    let mut r = rng(29);
    for &m in sizes {
        let nodes = (4 * (m as f64).sqrt() as u32).max(8);
        let edges = joins::random_graph(nodes, m, &mut r);
        let q = joins::triangle_query(&edges, nodes);
        let faq = q.to_faq().unwrap();
        // Width-only baseline: the §7 optimizer's ordering, no data. Both
        // ordering columns run the same cold engine (per-call alignment and
        // index builds), so they isolate the ordering choice; the serving
        // columns then isolate the prepared handle's caching.
        let width_order = faqw_exact(&faq.shape(), 50_000).unwrap().order;
        let prepared = q.prepare_with(&planner).unwrap();
        let cost_order = prepared.plan().order.clone();
        let wo = insideout_with_order(&faq, &width_order).unwrap();
        let cp = prepared.evaluate().unwrap();
        let identical = wo.factor == cp.factor;
        assert!(identical, "cost-based plan diverged at N={}", edges.len());
        let t_width = time_median(iters, || insideout_with_order(&faq, &width_order).unwrap());
        let t_cost = time_median(iters, || insideout_with_order(&faq, &cost_order).unwrap());
        let t_cold = time_median(iters, || {
            planner.prepare(&q.to_faq().unwrap()).unwrap().evaluate().unwrap()
        });
        let t_served = time_median(iters, || prepared.evaluate().unwrap());
        println!(
            "| {} | {t_width:.5} | {t_cost:.5} | {t_cold:.5} | {t_served:.5} | {:.2}x | {identical} |",
            edges.len(),
            t_cold / t_served.max(1e-9)
        );
    }
    println!();
}

/// D1: incremental delta evaluation — a 1-row point update (insert + delete
/// of the same absent edge) applied through `PreparedQuery::apply_delta`
/// (range-restricted replay over cached per-step intermediates) vs the
/// `update_factor` + full `evaluate` path, on the hot-path triangle
/// instances. Outputs are asserted bit-identical before timing; the returned
/// rows join H1's in the `--json` perf-trajectory file.
fn delta_table(iters: usize, fast: bool) -> Vec<(String, f64, f64)> {
    use faq_core::Planner;
    println!("## D1 Incremental updates — 1-row delta: apply_delta vs update + recompute\n");
    println!("| workload | apply_delta (ms) | update+recompute (ms) | speedup |");
    println!("|---|---|---|---|");
    let sizes: &[usize] = if fast { &[1000, 2000] } else { &[2000, 8000] };
    let planner = Planner::sequential();
    let mut rows = Vec::new();
    for (m, q) in faq_bench::hot_path::triangles(sizes) {
        let edge = faq_bench::hot_path::absent_edge(&q, 0);
        let ins = q.insert_delta(0, std::slice::from_ref(&edge));
        let del = q.delete_delta(0, std::slice::from_ref(&edge));
        let mut prepared = q.prepare_with(&planner).unwrap();
        let mut oracle = q.prepare_with(&planner).unwrap();
        let base = q.relations[0].to_factor();
        let mut with_edge = q.relations[0].clone();
        with_edge.tuples.push(edge);
        with_edge.tuples.sort();
        let with_edge = with_edge.to_factor();

        // Correctness before timing: both directions bit-identical.
        let after_ins = prepared.apply_delta(0, &ins).unwrap();
        oracle.update_factor(0, with_edge.clone()).unwrap();
        assert_eq!(after_ins.factor, oracle.evaluate().unwrap().factor);
        let after_del = prepared.apply_delta(0, &del).unwrap();
        oracle.update_factor(0, base.clone()).unwrap();
        assert_eq!(after_del.factor, oracle.evaluate().unwrap().factor);

        // Each timed pass is one insert + one delete, so both engines do real
        // work every round and the instance returns to its starting state.
        let t_delta = time_median(iters, || {
            (prepared.apply_delta(0, &ins).unwrap(), prepared.apply_delta(0, &del).unwrap())
        });
        let t_full = time_median(iters, || {
            oracle.update_factor(0, with_edge.clone()).unwrap();
            let up = oracle.evaluate().unwrap();
            oracle.update_factor(0, base.clone()).unwrap();
            (up, oracle.evaluate().unwrap())
        });
        println!(
            "| triangle_m{m} | {:.3} | {:.3} | {:.2}x |",
            t_delta * 1e3,
            t_full * 1e3,
            t_full / t_delta.max(1e-9)
        );
        rows.push((format!("triangle_m{m}"), t_delta * 1e3, t_full * 1e3));
    }
    println!();
    rows
}

/// H1: the hot-path perf trajectory — absolute wall-clock of the flat-row
/// InsideOut pipeline (PR 5) on the triangle / path4 / PGM-chain workloads
/// the `hot_path` bench measures, plus the conditional-query volume and
/// output size per workload. With `--json`, the same rows — plus the D1
/// incremental-delta, M1 serving, S1 seek-kernel and O1 out-of-core rows —
/// are written to a machine-readable file (`BENCH_9.json` by default) so CI
/// can archive one perf point per push.
fn hot_table(
    iters: usize,
    fast: bool,
    json_path: Option<&str>,
    delta_rows: &[(String, f64, f64)],
    serving_rows: &[faq_bench::serving::ServingReport],
    seek_rows: &[(String, f64, f64)],
    ooc_rows: &[faq_bench::out_of_core::OocReport],
) {
    println!("## H1 Hot path — flat-row InsideOut pipeline (perf trajectory)\n");
    println!("| workload | median (ms) | seeks | out rows |");
    println!("|---|---|---|---|");
    let policy = ExecPolicy::sequential();
    let mut entries: Vec<(String, f64, u64, usize)> = Vec::new();

    // Workloads shared with benches/hot_path.rs via faq_bench::hot_path —
    // one definition, so the JSON trajectory measures what the bench does.
    let tri_sizes: &[usize] = if fast { &[1000, 2000] } else { &[2000, 8000] };
    for (m, q) in faq_bench::hot_path::triangles(tri_sizes) {
        // One untimed pass reads the counters and warms the timing loop.
        let out = q.evaluate_par(&policy).unwrap();
        let t = time_median(iters, || q.evaluate_par(&policy).unwrap());
        entries.push((
            format!("triangle_m{m}"),
            t * 1e3,
            out.stats.total_seeks(),
            out.factor.len(),
        ));
    }
    let path_m = if fast { 300 } else { 800 };
    let q = faq_bench::hot_path::path4(path_m);
    let out = q.evaluate_par(&policy).unwrap();
    let t = time_median(iters, || q.evaluate_par(&policy).unwrap());
    entries.push((format!("path4_m{path_m}"), t * 1e3, out.stats.total_seeks(), out.factor.len()));

    // PGM chain marginal, evaluated as a plain FAQ over (ℝ₊, +, ×) along the
    // chain's own ordering so the seek counter is observable.
    let (n, d) = if fast { (16usize, 12u32) } else { (48, 48) };
    let (q, sigma) = faq_bench::hot_path::pgm_chain_marginal(n, d);
    let out = insideout_with_order(&q, &sigma).unwrap();
    let t = time_median(iters, || insideout_with_order(&q, &sigma).unwrap());
    entries.push((
        format!("pgm_chain_n{n}_d{d}"),
        t * 1e3,
        out.stats.total_seeks(),
        out.factor.len(),
    ));

    for (name, ms, seeks, rows) in &entries {
        println!("| {name} | {ms:.3} | {seeks} | {rows} |");
    }
    println!();

    if let Some(path) = json_path {
        // Record the run configuration: fast mode shrinks the workloads, so
        // trajectories are only comparable within the same mode.
        let mut s = format!(
            "{{\n  \"bench\": \"hot_path\",\n  \"fast\": {fast},\n  \"iters\": {iters},\n  \
             \"workloads\": [\n"
        );
        for (i, (name, ms, seeks, rows)) in entries.iter().enumerate() {
            let sep = if i + 1 < entries.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"name\": \"{name}\", \"median_ms\": {ms:.3}, \"seeks\": {seeks}, \
                 \"rows\": {rows}}}{sep}\n"
            ));
        }
        s.push_str("  ],\n  \"delta\": [\n");
        for (i, (name, delta_ms, full_ms)) in delta_rows.iter().enumerate() {
            let sep = if i + 1 < delta_rows.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"name\": \"{name}\", \"apply_delta_ms\": {delta_ms:.3}, \
                 \"recompute_ms\": {full_ms:.3}}}{sep}\n"
            ));
        }
        s.push_str("  ],\n  \"serving\": [\n");
        for (i, r) in serving_rows.iter().enumerate() {
            let sep = if i + 1 < serving_rows.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"tenants\": {}, \"workers\": {}, \
                 \"qps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}{sep}\n",
                r.name, r.tenants, r.workers, r.qps, r.p50_ms, r.p99_ms
            ));
        }
        s.push_str("  ],\n  \"seek\": [\n");
        for (i, (name, binary_us, gallop_us)) in seek_rows.iter().enumerate() {
            let sep = if i + 1 < seek_rows.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"name\": \"{name}\", \"binary_us\": {binary_us:.1}, \
                 \"gallop_us\": {gallop_us:.1}}}{sep}\n"
            ));
        }
        s.push_str("  ],\n  \"out_of_core\": [\n");
        for (i, r) in ooc_rows.iter().enumerate() {
            let sep = if i + 1 < ooc_rows.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"rows\": {}, \"file_bytes\": {}, \"cap_bytes\": {}, \
                 \"peak_pinned_bytes\": {}, \"chunk_reads\": {}, \"eval_s\": {:.3}, \
                 \"threads\": {}}}{sep}\n",
                r.rows, r.file_bytes, r.cap_bytes, r.peak_pinned, r.reads, r.eval_secs, r.threads
            ));
        }
        s.push_str("  ]\n}\n");
        std::fs::write(path, s).expect("write the perf-trajectory JSON");
        println!("wrote perf trajectory to {path}\n");
    }
}

/// M1: the multi-tenant serving runtime (`faq_serve`) on the triangle
/// workload — open-loop qps and latency percentiles per tenant mix. The
/// 4-tenant bypass row is the headline (every request evaluates); the
/// shared row shows cross-tenant result reuse. Rows join the `--json` perf
/// trajectory as the `"serving"` array.
fn serving_table(fast: bool) -> Vec<faq_bench::serving::ServingReport> {
    use faq_serve::CacheMode;
    println!("## M1 Serving — multi-tenant runtime (epoch snapshots, worker pool)\n");
    println!("| workload | tenants | workers | requests | qps | p50 (ms) | p99 (ms) |");
    println!("|---|---|---|---|---|---|---|");
    let per_tenant = if fast { 16 } else { 60 };
    let mut reports = Vec::new();
    for (tenants, workers, cache) in
        [(4usize, 4usize, CacheMode::Bypass), (8, 4, CacheMode::Bypass), (4, 4, CacheMode::Shared)]
    {
        let r = faq_bench::serving::run_triangle_serving(2000, tenants, workers, per_tenant, cache);
        println!(
            "| {} | {} | {} | {} | {:.1} | {:.3} | {:.3} |",
            r.name, r.tenants, r.workers, r.requests, r.qps, r.p50_ms, r.p99_ms
        );
        reports.push(r);
    }
    println!();
    reports
}

/// S1: the seek-kernel microbench — plain binary search vs the branch-free
/// galloping kernel behind `VecStorage`, on the shared [`faq_bench::seek`]
/// workload (4096 probes per pass). `asc` models warm leapfrog traffic (the
/// hint carries between seeks); `rand` models cold first probes, where the
/// head-sample array does the narrowing. Checksums pin the two kernels to
/// identical answers before any timing; rows join the `--json` perf
/// trajectory as the `"seek"` array.
fn seek_table(iters: usize, fast: bool) -> Vec<(String, f64, f64)> {
    use faq_bench::seek;
    println!("## S1 Seek kernels — binary search vs branch-free galloping\n");
    println!("| level size | bounds | binary (µs) | gallop (µs) | speedup |");
    println!("|---|---|---|---|---|");
    let sizes: &[usize] = if fast { &[1 << 12] } else { &[1 << 12, 1 << 16] };
    let mut rows = Vec::new();
    for &n in sizes {
        let w = seek::workload(n, 4096, 77);
        for (pat, bounds, warm) in [("asc", &w.ascending, true), ("rand", &w.random, false)] {
            assert_eq!(
                seek::run_binary(&w.values, bounds),
                seek::run_gallop(&w.storage, bounds, warm),
                "gallop kernel diverged from binary search at n={n} pattern={pat}"
            );
            let t_bin = time_median(iters.max(3), || seek::run_binary(&w.values, bounds));
            let t_gal = time_median(iters.max(3), || seek::run_gallop(&w.storage, bounds, warm));
            println!(
                "| {n} | {pat} | {:.1} | {:.1} | {:.2}x |",
                t_bin * 1e6,
                t_gal * 1e6,
                t_bin / t_gal.max(1e-12)
            );
            rows.push((format!("n{n}_{pat}"), t_bin * 1e6, t_gal * 1e6));
        }
    }
    println!();
    rows
}

/// O1: out-of-core factors — triangle count over a file-chunked relation at
/// least 4× the configured resident cap ([`faq_bench::out_of_core`]). The
/// run itself asserts the claims (peak pinned chunk bytes under the cap,
/// count equal to the planted triangles); the row records how far under the
/// cap the resident window stayed. Rows join the `--json` perf trajectory
/// as the `"out_of_core"` array.
fn ooc_table(fast: bool) -> Vec<faq_bench::out_of_core::OocReport> {
    use faq_bench::out_of_core::{self, OocParams};
    println!("## O1 Out-of-core — spilled triangle count under a resident-memory cap\n");
    println!("| rows | file (MiB) | cap (MiB) | peak pinned (KiB) | chunk reads | eval (s) |");
    println!("|---|---|---|---|---|---|");
    let mut p = OocParams::smoke();
    if fast {
        p.rows = 200_000;
        p.nodes = 2048;
        p.planted = 64;
        p.cap_bytes = 700 << 10;
        p.chunk_rows = 1024;
    }
    let r = out_of_core::run(&p);
    println!(
        "| {} | {:.1} | {:.1} | {} | {} | {:.3} |",
        r.rows,
        r.file_bytes as f64 / (1 << 20) as f64,
        r.cap_bytes as f64 / (1 << 20) as f64,
        r.peak_pinned >> 10,
        r.reads,
        r.eval_secs
    );
    println!();
    vec![r]
}

/// §7.2.1: faqw vs Chen–Dalmau prefix width on the ∀…∀∃ family.
fn width_table() {
    println!("## W1 Width comparison — Chen–Dalmau family (faqw ≤ 2 vs PW = n+1)\n");
    println!("| n | prefix width (n+1) | faqw (exact) |");
    println!("|---|---|---|");
    for n in 2u32..=6 {
        let mut seq: Vec<(Var, Tag)> = (0..n).map(|i| (Var(i), Tag::Product)).collect();
        seq.push((Var(n), Tag::Semiring(AggId(1))));
        let mut edges = vec![(0..n).map(Var).collect::<VarSet>()];
        for i in 0..n {
            edges.push([Var(i), Var(n)].into_iter().collect());
        }
        let shape = QueryShape {
            seq,
            edges,
            mul_idempotent: true,
            closed_ops: [AggId(1)].into_iter().collect(),
        };
        let r = faqw_exact(&shape, 50_000).unwrap();
        println!("| {n} | {} | {:.3} |", n + 1, r.width);
    }
    println!();
}

/// §8.3: β-acyclic SAT / #SAT polynomial elimination vs 2^n brute force.
fn sat_tables(iters: usize, fast: bool) {
    println!("## S1–S2 β-acyclic SAT & #SAT — elimination vs 2^n brute force\n");
    println!("| n vars | clauses | DP-SAT (s) | #WSAT (s) | brute (s) | counts agree |");
    println!("|---|---|---|---|---|---|");
    let sizes: &[u32] = if fast { &[12, 16] } else { &[12, 16, 20, 24] };
    for &n in sizes {
        let mut r = rng(n as u64);
        let m = (n * 2) as usize;
        let f = cnf::gen::random_interval_cnf(n, m, 4, &mut r);
        let t_sat = time_median(iters, || cnf::sat_beta_acyclic(&f).unwrap());
        let t_count = time_median(iters, || cnf::count_beta_acyclic(&f).unwrap());
        let (t_brute, agree) = if n <= 20 {
            let t = time_median(1, || cnf::brute_force_count(&f));
            let brute = cnf::brute_force_count(&f) as f64;
            let fastc = cnf::count_beta_acyclic(&f).unwrap();
            (format!("{t:.5}"), (brute - fastc).abs() < 1e-3 * (1.0 + brute))
        } else {
            ("–".into(), true)
        };
        println!("| {n} | {m} | {t_sat:.5} | {t_count:.5} | {t_brute} | {agree} |");
    }
    println!();
}

/// §8.5: composition gap (Lemma 8.7) measured with exact fhtw.
fn composition_table() {
    println!("## C1 Composition — fhtw(H0∘H1) vs fhtw(H0)·max fhtw(H1e) (Lemma 8.7)\n");
    println!("| n | fhtw(H0) | max fhtw(H1e) | fhtw(H0∘H1) | clique bound n/2 |");
    println!("|---|---|---|---|---|");
    for n in 3u32..=5 {
        let (outer, inner) = compose::star_of_stars_gap(n);
        let w_outer = hord::fhtw(&outer, 12).width;
        let w_inner = inner.iter().map(|h| hord::fhtw(h, 12).width).fold(0.0, f64::max);
        let comp = compose::compose(&outer, &inner);
        let w_comp = hord::fhtw(&comp, 12).width;
        println!("| {n} | {w_outer:.2} | {w_inner:.2} | {w_comp:.2} | {:.1} |", n as f64 / 2.0);
    }
    println!();
    // Also report a faqw-of-ordering sanity row to tie the widths together.
    let shape = QueryShape {
        seq: vec![
            (Var(0), Tag::Semiring(AggId(0))),
            (Var(1), Tag::Semiring(AggId(0))),
            (Var(2), Tag::Semiring(AggId(0))),
        ],
        edges: vec![
            [Var(0), Var(1)].into_iter().collect(),
            [Var(0), Var(2)].into_iter().collect(),
            [Var(1), Var(2)].into_iter().collect(),
        ],
        mul_idempotent: false,
        closed_ops: Default::default(),
    };
    let w = faqw_of_ordering(&shape, &[Var(0), Var(1), Var(2)]).unwrap();
    println!("triangle FAQ-SS faqw(σ) check: {w:.2} (expected 1.50)\n");
}
