//! The out-of-core triangle workload — the single definition shared by
//! `benches/out_of_core.rs` and the `paper_tables` O1 table / `BENCH_9.json`
//! `"out_of_core"` records.
//!
//! The workload streams a large edge relation `R(a, b)` — too big for the
//! configured resident-memory cap — straight into a file-chunked
//! ([`faq_factor::SpillConfig`]) factor, plants `planted` closing wedges in
//! two small in-memory relations `S(b, c)` / `T(a, c)`, and counts triangles
//! `Σ_a Σ_b Σ_c R(a,b)·S(b,c)·T(a,c)` through the ordinary engine path:
//! spilled trie built by streaming, leapfrog seeks over pinned chunk
//! windows, partition cuts aligned to `R`'s chunk boundaries.
//!
//! Every planted wedge closes exactly one triangle and nothing else does
//! (each `c` value pairs with a single `S` and a single `T` edge), so the
//! expected count is known at *any* scale without an in-memory oracle —
//! [`run`] asserts it, along with the resident-memory cap itself.

use faq_core::{insideout_par_with_order, ExecPolicy, FaqQuery, VarAgg};
use faq_factor::{
    chunk_reads, peak_pinned_bytes, reset_peak_pinned_bytes, Domains, Factor, FactorBuilder,
    SpillConfig,
};
use faq_hypergraph::{v, Var};
use faq_semiring::CountDomain;
use rand::Rng;
use std::time::Instant;

/// Parameters of one out-of-core triangle run.
#[derive(Debug, Clone)]
pub struct OocParams {
    /// Rows of the big relation `R` (the spilled factor).
    pub rows: usize,
    /// Node-id space of `a` and `b`; the key space `nodes²` is kept ≥ 4×
    /// the expected span of the generated keys so generation never exhausts
    /// it.
    pub nodes: u32,
    /// Planted closing wedges = the exact expected triangle count.
    pub planted: usize,
    /// Resident-memory cap asserted against the peak pinned chunk bytes.
    pub cap_bytes: usize,
    /// Rows per spill chunk (kept a multiple of 64 so trie-level chunks
    /// align with the head-sample stride).
    pub chunk_rows: usize,
    /// LRU window, in chunks, per spilled structure.
    pub window_chunks: usize,
    /// Worker threads for the chunk-partitioned join.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl OocParams {
    /// The CI smoke configuration: ~1.3·10⁶ rows (≈20 MiB on disk) against
    /// a 4 MiB resident cap — the relation is ≥ 4× the cap, yet small
    /// enough to generate and join in seconds.
    pub fn smoke() -> OocParams {
        OocParams {
            rows: 1_300_000,
            nodes: 4096,
            planted: 512,
            cap_bytes: 4 << 20,
            chunk_rows: 4096,
            window_chunks: 8,
            threads: 2,
            seed: 41,
        }
    }

    /// The full-scale configuration: 10⁷ rows (≈160 MiB on disk) against a
    /// 32 MiB cap. `FAQ_OOC_ROWS` and `FAQ_OOC_CAP_MB` override the scale.
    pub fn full() -> OocParams {
        let rows = std::env::var("FAQ_OOC_ROWS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10_000_000usize);
        let cap_mb =
            std::env::var("FAQ_OOC_CAP_MB").ok().and_then(|s| s.parse().ok()).unwrap_or(32usize);
        // Scale the node space with √rows so sparsity (and thus the
        // per-chunk value spread the partitioner cuts on) stays comparable.
        let nodes = ((rows as f64 * 32.0).sqrt().ceil() as u32).next_power_of_two();
        OocParams {
            rows,
            nodes,
            planted: 2048,
            cap_bytes: cap_mb << 20,
            chunk_rows: 8192,
            window_chunks: 8,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            seed: 43,
        }
    }
}

/// The generated instance: `R` spilled (or in-memory for the oracle), `S`
/// and `T` small, plus the query's domains and the exact expected count.
pub struct OocData {
    /// The big edge relation (spilled unless built with [`generate_mem`]).
    pub r: Factor<u64>,
    /// Closing edges `S(b, c)`.
    pub s: Factor<u64>,
    /// Closing edges `T(a, c)`.
    pub t: Factor<u64>,
    /// Domains of `(a, b, c)`.
    pub domains: Domains,
    /// Exact expected triangle count.
    pub planted: usize,
}

/// Stream the instance, spilling `R` under `config`; `None` keeps `R` in
/// memory (the oracle used by equivalence tests).
fn generate_with(p: &OocParams, config: Option<SpillConfig>) -> OocData {
    let mut rng = super::rng(p.seed);
    let keyspace = u64::from(p.nodes) * u64::from(p.nodes);
    let avg = (keyspace / (2 * p.rows as u64)).max(1);
    assert!(avg >= 2, "R must stay sparse: raise `nodes` or lower `rows`");
    let schema = vec![v(0), v(1)];
    let mut builder = match config {
        Some(c) => FactorBuilder::<u64>::new_spilled(schema, c).expect("distinct schema"),
        None => {
            let mut b = FactorBuilder::new(schema).expect("distinct schema");
            b.reserve(p.rows);
            b
        }
    };
    // Ascending random keys by gaps: strictly sorted pairs stream straight
    // into the builder, with O(1) generator state however large R is. A
    // reservoir sample of the emitted edges picks the wedges to close.
    let mut sample: Vec<(u32, u32)> = Vec::with_capacity(p.planted);
    let mut key = 0u64;
    let mut emitted = 0usize;
    while emitted < p.rows {
        key += rng.gen_range(1..=2 * avg);
        assert!(key < keyspace, "key space exhausted: gap distribution is miscalibrated");
        let (a, b) = ((key / u64::from(p.nodes)) as u32, (key % u64::from(p.nodes)) as u32);
        builder.push(&[a, b], 1u64);
        if sample.len() < p.planted {
            sample.push((a, b));
        } else {
            let j = rng.gen_range(0..=emitted);
            if j < p.planted {
                sample[j] = (a, b);
            }
        }
        emitted += 1;
    }
    let r = builder.finish();
    // Close wedge i with the private value c = i: S gains (bᵢ, i), T gains
    // (aᵢ, i). Each c pairs exactly one S edge with one T edge, and the
    // sampled (aᵢ, bᵢ) is in R, so the triangle count is exactly `planted`.
    let planted = sample.len();
    let s_rows: std::collections::BTreeSet<Vec<u32>> =
        sample.iter().enumerate().map(|(i, &(_, b))| vec![b, i as u32]).collect();
    let t_rows: std::collections::BTreeSet<Vec<u32>> =
        sample.iter().enumerate().map(|(i, &(a, _))| vec![a, i as u32]).collect();
    let s = Factor::new(vec![v(1), v(2)], s_rows.into_iter().map(|r| (r, 1u64)).collect())
        .expect("sorted distinct closing edges");
    let t = Factor::new(vec![v(0), v(2)], t_rows.into_iter().map(|r| (r, 1u64)).collect())
        .expect("sorted distinct closing edges");
    let domains = Domains::new(vec![p.nodes, p.nodes, planted.max(1) as u32]);
    OocData { r, s, t, domains, planted }
}

/// Generate the instance with `R` spilled under the run's chunk geometry.
pub fn generate(p: &OocParams) -> OocData {
    let config = SpillConfig {
        chunk_rows: p.chunk_rows,
        level_chunk_entries: p.chunk_rows,
        window_chunks: p.window_chunks,
        ..SpillConfig::default()
    };
    generate_with(p, Some(config))
}

/// Generate the *same* instance (same seed, same rows) with `R` on the
/// heap — the bit-identical oracle for equivalence assertions.
pub fn generate_mem(p: &OocParams) -> OocData {
    generate_with(p, None)
}

/// Pose the triangle count as a FAQ over `data` and evaluate it with
/// `threads` workers along the fixed ordering `(a, b, c)` — every factor's
/// schema already follows it, so the spilled `R` is never realigned.
pub fn count_triangles(data: &OocData, threads: usize) -> u64 {
    let q = FaqQuery::new(
        CountDomain,
        data.domains.clone(),
        vec![],
        vec![
            (v(0), VarAgg::Semiring(CountDomain::SUM)),
            (v(1), VarAgg::Semiring(CountDomain::SUM)),
            (v(2), VarAgg::Semiring(CountDomain::SUM)),
        ],
        vec![data.r.clone(), data.s.clone(), data.t.clone()],
    )
    .expect("triangle query is a valid FAQ");
    let sigma: Vec<Var> = vec![v(0), v(1), v(2)];
    let policy = ExecPolicy::with_threads(threads).min_chunk_rows(1024);
    let out = insideout_par_with_order(&q, &sigma, &policy).expect("evaluation succeeds");
    out.factor.get(&[]).copied().unwrap_or(0)
}

/// Results of one out-of-core run.
#[derive(Debug, Clone)]
pub struct OocReport {
    /// Rows of `R`.
    pub rows: usize,
    /// Bytes of `R`'s chunk file on disk.
    pub file_bytes: usize,
    /// The configured resident cap.
    pub cap_bytes: usize,
    /// Peak bytes of simultaneously pinned chunks during evaluation.
    pub peak_pinned: usize,
    /// Chunks faulted in from disk during evaluation.
    pub reads: u64,
    /// The counted triangles (== planted).
    pub triangles: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Generation wall time, seconds.
    pub gen_secs: f64,
    /// Evaluation (trie build + join) wall time, seconds.
    pub eval_secs: f64,
}

/// Generate and evaluate one instance, asserting the out-of-core claims:
/// the relation is ≥ 4× the cap, the peak pinned chunk window stays under
/// the cap, and the count equals the planted number of triangles.
pub fn run(p: &OocParams) -> OocReport {
    let t0 = Instant::now();
    let data = generate(p);
    let gen_secs = t0.elapsed().as_secs_f64();
    let stats = data.r.spill_stats().expect("R is spilled");
    assert!(
        stats.file_bytes >= 4 * p.cap_bytes,
        "R must dwarf the cap: {} file bytes vs {} cap",
        stats.file_bytes,
        p.cap_bytes
    );
    reset_peak_pinned_bytes();
    let reads0 = chunk_reads();
    let t1 = Instant::now();
    let triangles = count_triangles(&data, p.threads);
    let eval_secs = t1.elapsed().as_secs_f64();
    let peak_pinned = peak_pinned_bytes();
    assert!(
        peak_pinned <= p.cap_bytes,
        "peak pinned chunk bytes {} exceeded the {}-byte resident cap",
        peak_pinned,
        p.cap_bytes
    );
    assert_eq!(triangles, data.planted as u64, "count must equal the planted triangles");
    OocReport {
        rows: p.rows,
        file_bytes: stats.file_bytes,
        cap_bytes: p.cap_bytes,
        peak_pinned,
        reads: chunk_reads() - reads0,
        triangles,
        threads: p.threads,
        gen_secs,
        eval_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_instance_counts_planted_triangles_within_cap() {
        let mut p = OocParams::smoke();
        p.rows = 200_000;
        p.nodes = 2048;
        p.cap_bytes = 700 << 10;
        p.chunk_rows = 1024;
        p.planted = 64;
        let report = run(&p);
        assert_eq!(report.triangles, 64);
        assert!(report.peak_pinned <= p.cap_bytes);
        assert!(report.file_bytes >= 4 * p.cap_bytes);
        // The spilled count agrees with the identical in-memory instance
        // at every thread count.
        let mem = generate_mem(&p);
        assert_eq!(mem.planted, 64);
        for threads in [1, 4] {
            assert_eq!(count_triangles(&mem, threads), 64);
        }
    }
}
