//! InsideOut — Algorithm 1 of the paper.
//!
//! Variable elimination, innermost aggregate first. For a semiring aggregate
//! `⊕⁽ᵏ⁾` the intermediate factor
//!
//! ```text
//! ψ'_{U_k−{k}} = ⊕⁽ᵏ⁾_{x_k} ( ⊗_{S∈∂(k)} ψ_S ) ⊗ ( ⊗_{S∉∂(k), S∩U_k≠∅} ψ_{S/U_k} )
//! ```
//!
//! (paper eq. (7)) is computed by one OutsideIn multiway join over `U_k` with
//! the eliminated variable placed last, so the `⊕⁽ᵏ⁾`-fold streams over
//! consecutive join outputs. The indicator projections `ψ_{S/U_k}` join as
//! filters, giving the simultaneous-semijoin effect that caps the intermediate
//! at the AGM bound of `U_k`.
//!
//! Product aggregates follow eq. (8): factors containing the variable are
//! product-marginalized individually; the rest are powered point-wise by
//! `|Dom(X_k)|` via repeated squaring, skipping `⊗`-idempotent values
//! (Definition 5.2).
//!
//! Free variables are then eliminated under the `01-OR` output semiring
//! (paper §5.2.3, eqs. (10)–(12)): each step records a *guard* `ψ_{U_k}` — the
//! join of the indicator projections of everything touching `U_k` — and the
//! final OutsideIn joins the surviving value factors with all guards, so every
//! backtracking branch extends to a real output tuple (Yannakakis' algorithm
//! re-emerges; the output phase costs `O~(‖ϕ‖)`).

use crate::exec::{grouped_join, ExecPolicy, PolicySource};
use crate::query::{FaqError, FaqQuery, VarAgg};
use faq_factor::fault;
use faq_factor::Factor;
use faq_hypergraph::{Var, VarSet};
use faq_join::{JoinInput, JoinStats};
use faq_semiring::{AggDomain, AggId};

/// Per-elimination-step statistics.
#[derive(Debug, Clone)]
pub struct StepStat {
    /// The eliminated variable.
    pub var: Var,
    /// Whether the step was a semiring (fold) or product (shrink) step; free
    /// variables report as semiring (they run under the 01-OR semiring).
    pub semiring: bool,
    /// `|U_k|` — the number of variables in the step's sub-join.
    pub u_size: usize,
    /// Rows of the intermediate factor produced.
    pub rows_out: usize,
    /// Operation statistics of the step's factor work.
    ///
    /// Semiring / free steps report the sub-join's search counters. Product
    /// steps (eq. (8)) run no join; they report their oracle-model work in
    /// the same currency so [`ElimStats::total_seeks`] covers every step:
    /// `seeks` = listing rows read (marginalization group scans plus
    /// point-wise powering reads), `nodes` = rows written across the
    /// rewritten factors, `matches` = rows of the largest rewritten factor.
    pub join: Option<JoinStats>,
}

/// Statistics of a full InsideOut run.
#[derive(Debug, Clone, Default)]
pub struct ElimStats {
    /// One entry per eliminated variable, in elimination order.
    pub steps: Vec<StepStat>,
    /// Statistics of the final output join.
    pub output_join: Option<JoinStats>,
    /// The largest intermediate factor produced (rows).
    pub max_intermediate: usize,
}

impl ElimStats {
    pub(crate) fn record(&mut self, s: StepStat) {
        self.max_intermediate = self.max_intermediate.max(s.rows_out);
        self.steps.push(s);
    }

    /// Total conditional-query / oracle-read operations across every step:
    /// sub-join seeks of semiring and free-variable steps, the listing reads
    /// of product steps (eq. (8) marginalization and powering — see
    /// [`StepStat::join`]), and the final output join's seeks.
    pub fn total_seeks(&self) -> u64 {
        self.steps.iter().filter_map(|s| s.join.map(|j| j.seeks)).sum::<u64>()
            + self.output_join.map(|j| j.seeks).unwrap_or(0)
    }
}

/// The result of an InsideOut run.
#[derive(Debug, Clone)]
pub struct FaqOutput<E: faq_semiring::SemiringElem> {
    /// The output function over the free variables, in listing representation
    /// (nullary when the query has no free variables).
    pub factor: Factor<E>,
    /// Run statistics.
    pub stats: ElimStats,
}

impl<E: faq_semiring::SemiringElem> FaqOutput<E> {
    /// The scalar value of a query with no free variables. `None` encodes the
    /// semiring zero (empty listing).
    pub fn scalar(&self) -> Option<&E> {
        assert_eq!(self.factor.arity(), 0, "scalar() requires a free-variable-free query");
        if self.factor.is_empty() {
            None
        } else {
            Some(self.factor.value(0))
        }
    }
}

/// Run InsideOut with the query's own variable ordering.
///
/// Sequential execution; [`crate::exec::insideout_par`] is the parallel
/// engine (bit-identical output). `D: Sync` is required because both paths
/// share one implementation — every domain in this workspace satisfies it.
///
/// **Legacy entry point**: a thin wrapper over
/// [`Engine::sequential().evaluate(q)`](crate::engine::Engine) — new code
/// should construct an [`crate::engine::Engine`].
pub fn insideout<D: AggDomain + Sync>(q: &FaqQuery<D>) -> Result<FaqOutput<D::E>, FaqError> {
    crate::engine::Engine::sequential().evaluate(q)
}

/// Everything InsideOut has computed after the bound- and free-variable
/// elimination phases, i.e. the factorized form of the output (paper §8.4):
/// the surviving value factors `E_f` plus the guard factors `ψ_{U_k}`.
#[derive(Debug, Clone)]
pub struct EliminationArtifacts<E: faq_semiring::SemiringElem> {
    /// The free variables in output order.
    pub free_order: Vec<Var>,
    /// The value factors remaining after bound-variable elimination.
    pub ef_edges: Vec<Factor<E>>,
    /// The guard factors recorded while eliminating the free variables.
    pub guards: Vec<Factor<E>>,
    /// Elimination statistics so far.
    pub stats: ElimStats,
}

/// Run InsideOut along a caller-chosen variable ordering `sigma`.
///
/// `sigma` must be a permutation of the query's variables with the free
/// variables first. **Semantic** equivalence of the ordering (membership in
/// `EVO(ϕ)`, paper §5.4) is the caller's contract — validate with
/// [`crate::evo::is_equivalent_ordering`] or obtain orderings from
/// [`crate::width`].
///
/// **Legacy entry point**: a thin wrapper over
/// [`Engine::sequential().evaluate_with_order(q, sigma)`](crate::engine::Engine).
pub fn insideout_with_order<D: AggDomain + Sync>(
    q: &FaqQuery<D>,
    sigma: &[Var],
) -> Result<FaqOutput<D::E>, FaqError> {
    crate::engine::Engine::sequential().evaluate_with_order(q, sigma)
}

/// Run InsideOut along `sigma` under an execution policy — the shared
/// implementation behind [`insideout_with_order`] (sequential policy) and
/// [`crate::exec::insideout_par_with_order`].
pub(crate) fn insideout_with_policy<D: AggDomain + Sync>(
    q: &FaqQuery<D>,
    sigma: &[Var],
    policy: &ExecPolicy,
) -> Result<FaqOutput<D::E>, FaqError> {
    insideout_with_source(q, sigma, policy)
}

/// Run `f` with the policy source's abort controls (deadline / cancel token)
/// installed on this thread, converting a raised [`fault::QueryAbort`] —
/// storage failure, deadline, cancellation — into the matching typed
/// [`FaqError`]. Every evaluation entry point funnels through this guard, so
/// no abort unwinds past the engine boundary. Nested installs are fine: the
/// inner guard restores the outer controls on drop.
pub(crate) fn with_abort_guard<P: PolicySource, R>(
    policies: &P,
    f: impl FnOnce() -> Result<R, FaqError>,
) -> Result<R, FaqError> {
    let _g = fault::install_ctl(policies.abort_ctl());
    match fault::catch_abort(f) {
        Ok(r) => r,
        Err(abort) => Err(abort.into()),
    }
}

/// [`insideout_with_policy`] over an arbitrary per-step [`PolicySource`] —
/// the entry point of plan-driven execution ([`crate::plan::QueryPlan`]).
pub(crate) fn insideout_with_source<D: AggDomain + Sync, P: PolicySource>(
    q: &FaqQuery<D>,
    sigma: &[Var],
    policies: &P,
) -> Result<FaqOutput<D::E>, FaqError> {
    with_abort_guard(policies, || insideout_with_source_inner(q, sigma, policies))
}

fn insideout_with_source_inner<D: AggDomain + Sync, P: PolicySource>(
    q: &FaqQuery<D>,
    sigma: &[Var],
    policies: &P,
) -> Result<FaqOutput<D::E>, FaqError> {
    let art = run_elimination_with_source(q, sigma, policies)?;
    let dom = &q.domain;
    let mut stats = art.stats;

    // ---- Phase 3: final OutsideIn over expression (12): value factors of E_f
    // joined with all guards (filters).
    let mut inputs: Vec<JoinInput<'_, D::E>> = Vec::new();
    for e in &art.ef_edges {
        inputs.push(JoinInput::value(e));
    }
    for g in &art.guards {
        inputs.push(JoinInput::filter(g));
    }
    // The output factor is not an intermediate — nothing joins it next — so
    // no streaming trie: the flat builder path alone replaces the former
    // sort-and-dedup (`Factor::new` + expect) construction.
    let (factor, join_stats) = grouped_join(
        policies.output_policy(),
        &q.domains,
        &art.free_order,
        &inputs,
        &dom.one(),
        art.free_order.len(),
        false,
        &|a, b| dom.mul(a, b),
        &|a: &D::E, _: &D::E| a.clone(),
        &|x| dom.is_zero(x),
    )?;
    stats.output_join = Some(join_stats);
    Ok(FaqOutput { factor, stats })
}

/// Run phases 1–2 of InsideOut: eliminate bound variables, then free
/// variables under the 01-OR semiring, returning the factorized artifacts.
pub fn run_elimination<D: AggDomain + Sync>(
    q: &FaqQuery<D>,
    sigma: &[Var],
) -> Result<EliminationArtifacts<D::E>, FaqError> {
    run_elimination_with_policy(q, sigma, &ExecPolicy::sequential())
}

/// [`run_elimination`] under an execution policy: every elimination join —
/// semiring steps and the free-variable guard joins — is chunked across the
/// policy's worker pool. Artifacts are bit-identical to the sequential run.
pub fn run_elimination_with_policy<D: AggDomain + Sync>(
    q: &FaqQuery<D>,
    sigma: &[Var],
    policy: &ExecPolicy,
) -> Result<EliminationArtifacts<D::E>, FaqError> {
    run_elimination_with_source(q, sigma, policy)
}

/// [`run_elimination_with_policy`] over an arbitrary per-step
/// [`PolicySource`], so a [`crate::plan::QueryPlan`] can fix every step's
/// policy individually.
pub(crate) fn run_elimination_with_source<D: AggDomain + Sync, P: PolicySource>(
    q: &FaqQuery<D>,
    sigma: &[Var],
    policies: &P,
) -> Result<EliminationArtifacts<D::E>, FaqError> {
    with_abort_guard(policies, || run_elimination_with_source_inner(q, sigma, policies))
}

fn run_elimination_with_source_inner<D: AggDomain + Sync, P: PolicySource>(
    q: &FaqQuery<D>,
    sigma: &[Var],
    policies: &P,
) -> Result<EliminationArtifacts<D::E>, FaqError> {
    q.validate()?;
    q.check_ordering(sigma)?;
    let f = q.free.len();
    let dom = &q.domain;
    let mut stats = ElimStats::default();

    let sigma_pos = |v: Var| -> usize { sigma.iter().position(|&s| s == v).expect("var in sigma") };

    // Current edge set: one factor per live hyperedge.
    let mut edges: Vec<Factor<D::E>> = q.factors.clone();

    // ---- Phase 1: eliminate bound variables, innermost (last in sigma) first.
    for k in (f..sigma.len()).rev() {
        let var = sigma[k];
        let agg = q.agg_of(var).expect("bound variable has an aggregate");
        match agg {
            VarAgg::Semiring(op) => {
                let step = eliminate_semiring(
                    q,
                    policies.policy_for(var),
                    &mut edges,
                    var,
                    op,
                    &sigma_pos,
                )?;
                stats.record(step);
            }
            VarAgg::Product => {
                let step = eliminate_product(q, &mut edges, var);
                stats.record(step);
            }
        }
    }

    // ---- Phase 2: eliminate free variables under the 01-OR semiring,
    // recording guards (paper eqs. (10)–(11)).
    let ef_edges: Vec<Factor<D::E>> = edges.clone();
    let mut guards: Vec<Factor<D::E>> = Vec::new();
    for k in (0..f).rev() {
        let var = sigma[k];
        let incident: Vec<usize> =
            (0..edges.len()).filter(|&i| edges[i].schema().contains(&var)).collect();
        if incident.is_empty() {
            continue; // free variable constrained by nothing
        }
        let mut u: VarSet = VarSet::new();
        for &i in &incident {
            u.extend(edges[i].schema().iter().copied());
        }
        let mut join_order: Vec<Var> = u.iter().copied().collect();
        join_order.sort_by_key(|&v| sigma_pos(v));

        // ψ_{U_k}: join of the indicator projections of every edge touching
        // U. Edges whose surviving columns are a sigma-compatible prefix of
        // their schema join lazily (a depth-capped cursor over their own
        // cached trie); only the rest materialize a projection.
        let (filters, projections) = plan_filters(&edges, &u, &join_order, dom);
        let inputs = filter_inputs(&filters, &edges, &projections);
        // All inputs are filters, so every match's value is `1`: the grouped
        // join (group = full binding, no zero filter) lists the join support.
        // The guard is joined again by the final output phase, so its trie is
        // grown while its rows stream out.
        let (guard, join_stats) = grouped_join(
            policies.policy_for(var),
            &q.domains,
            &join_order,
            &inputs,
            &dom.one(),
            join_order.len(),
            true,
            &|a, b| dom.mul(a, b),
            &|a: &D::E, _: &D::E| a.clone(),
            &|_| false,
        )?;
        let reduced: Vec<Var> = join_order.iter().copied().filter(|&x| x != var).collect();
        let new_edge = guard.indicator_projection(&reduced, dom.one());
        stats.record(StepStat {
            var,
            semiring: true,
            u_size: u.len(),
            rows_out: guard.len(),
            join: Some(join_stats),
        });
        guards.push(guard);

        // E_{k−1} = (E_k − ∂(k)) ∪ {U_k − {k}}.
        let mut kept: Vec<Factor<D::E>> = Vec::with_capacity(edges.len());
        for (i, e) in edges.drain(..).enumerate() {
            if !incident.contains(&i) {
                kept.push(e);
            }
        }
        kept.push(new_edge);
        edges = kept;
    }

    Ok(EliminationArtifacts { free_order: sigma[..f].to_vec(), ef_edges, guards, stats })
}

/// Eliminate a semiring-aggregated variable (paper eq. (7)).
fn eliminate_semiring<D: AggDomain + Sync>(
    q: &FaqQuery<D>,
    policy: &ExecPolicy,
    edges: &mut Vec<Factor<D::E>>,
    var: Var,
    op: AggId,
    sigma_pos: &dyn Fn(Var) -> usize,
) -> Result<StepStat, FaqError> {
    let dom = &q.domain;
    let (incident, rest): (Vec<_>, Vec<_>) =
        edges.drain(..).partition(|e: &Factor<D::E>| e.schema().contains(&var));

    if incident.is_empty() {
        // ⊕⁽ᵏ⁾ over x_k of an expression not involving x_k multiplies the
        // query by the |Dom|-fold ⊕-sum of 1.
        let size = q.domains.size(var);
        let mut acc = dom.one();
        for _ in 1..size {
            acc = dom.add(op, &acc, &dom.one());
        }
        let scalar = if dom.is_zero(&acc) || size == 0 {
            Factor::nullary(None)
        } else {
            Factor::nullary(Some(acc))
        };
        *edges = rest;
        edges.push(scalar);
        return Ok(StepStat { var, semiring: true, u_size: 0, rows_out: 1, join: None });
    }

    let mut u: VarSet = VarSet::new();
    for e in &incident {
        u.extend(e.schema().iter().copied());
    }
    // Join order: U − {var} by sigma position, the eliminated variable last.
    let mut join_order: Vec<Var> = u.iter().copied().filter(|&x| x != var).collect();
    join_order.sort_by_key(|&v| sigma_pos(v));
    let group_arity = join_order.len();
    join_order.push(var);

    // Indicator projections of surviving edges that overlap U (eq. (7)) —
    // lazy depth-capped cursors over the edges' own tries wherever the
    // surviving columns form a sigma-compatible prefix, materialized
    // projections otherwise.
    let (filters, projections) = plan_filters(&rest, &u, &join_order, dom);

    let mut inputs: Vec<JoinInput<'_, D::E>> = Vec::new();
    for e in &incident {
        inputs.push(JoinInput::value(e));
    }
    inputs.extend(filter_inputs(&filters, &rest, &projections));

    // Stream-aggregate over the innermost variable: the join emits bindings in
    // lexicographic order of `join_order`, so rows sharing the group prefix
    // are consecutive — per chunk under a parallel policy, with chunk outputs
    // appended back in sorted order. The intermediate is joined by the next
    // elimination step, so its trie index is grown while rows stream out.
    let (new_factor, join_stats) = grouped_join(
        policy,
        &q.domains,
        &join_order,
        &inputs,
        &dom.one(),
        group_arity,
        true,
        &|a, b| dom.mul(a, b),
        &|a, b| dom.add(op, a, b),
        &|x| dom.is_zero(x),
    )?;
    let rows_out = new_factor.len();

    *edges = rest;
    edges.push(new_factor);
    Ok(StepStat { var, semiring: true, u_size: u.len(), rows_out, join: Some(join_stats) })
}

/// How one surviving edge participates in an elimination join as a filter.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FilterPlan {
    /// `Lazy(i, k)`: edge `i` joins through [`JoinInput::prefix_filter`] at
    /// depth `k` — its first `k` columns are exactly the columns surviving
    /// the indicator projection, already in join order, so its own (cached)
    /// trie doubles as the projection's index.
    Lazy(usize, usize),
    /// `Materialized(j)`: the projection had to be materialized; `j` indexes
    /// the side table of materialized projections.
    Materialized(usize),
}

/// Split the edges overlapping `u` into lazy prefix filters and materialized
/// indicator projections, preserving edge order (cursor order is part of the
/// engine's deterministic seek accounting).
pub(crate) fn plan_filters<D: AggDomain>(
    edges: &[Factor<D::E>],
    u: &VarSet,
    join_order: &[Var],
    dom: &D,
) -> (Vec<FilterPlan>, Vec<Factor<D::E>>) {
    let mut filters: Vec<FilterPlan> = Vec::new();
    let mut projections: Vec<Factor<D::E>> = Vec::new();
    for (i, e) in edges.iter().enumerate() {
        if e.arity() == 0 || !e.schema().iter().any(|v| u.contains(v)) {
            continue;
        }
        match prefix_filter_depth(e.schema(), join_order) {
            Some(depth) => filters.push(FilterPlan::Lazy(i, depth)),
            None => {
                filters.push(FilterPlan::Materialized(projections.len()));
                projections.push(e.indicator_projection(join_order, dom.one()));
            }
        }
    }
    (filters, projections)
}

/// Realize planned filters as join inputs, in plan order — the one place the
/// [`FilterPlan`] variants map onto [`JoinInput`] constructors.
pub(crate) fn filter_inputs<'a, E: faq_semiring::SemiringElem>(
    filters: &[FilterPlan],
    edges: &'a [Factor<E>],
    projections: &'a [Factor<E>],
) -> Vec<JoinInput<'a, E>> {
    filters
        .iter()
        .map(|f| match *f {
            FilterPlan::Lazy(i, depth) => JoinInput::prefix_filter(&edges[i], depth),
            FilterPlan::Materialized(j) => JoinInput::filter(&projections[j]),
        })
        .collect()
}

/// The depth `k` at which joining `schema[..k]` as a lazy prefix filter is
/// equivalent to materializing the indicator projection onto `join_order`:
/// the schema columns surviving the projection must be exactly `schema[..k]`
/// (a prefix), already in `join_order`-relative order. `None` otherwise — the
/// caller falls back to materialization.
pub(crate) fn prefix_filter_depth(schema: &[Var], join_order: &[Var]) -> Option<usize> {
    let pos = |v: &Var| join_order.iter().position(|o| o == v);
    let k = schema.iter().take_while(|v| pos(v).is_some()).count();
    if k == 0 || schema[k..].iter().any(|v| pos(v).is_some()) {
        return None; // surviving columns are not a schema prefix
    }
    let mut prev: Option<usize> = None;
    for v in &schema[..k] {
        let p = pos(v).expect("validated by the prefix scan");
        if prev.is_some_and(|q| q >= p) {
            return None; // prefix not in join-order-relative order
        }
        prev = Some(p);
    }
    Some(k)
}

/// Eliminate a product-aggregated variable (paper eq. (8)).
fn eliminate_product<D: AggDomain>(
    q: &FaqQuery<D>,
    edges: &mut Vec<Factor<D::E>>,
    var: Var,
) -> StepStat {
    let mut u_size = 0usize;
    let mut rows_out = 0usize;
    // Oracle-model work of the step (see [`StepStat::join`]): every listing
    // row the step reads counts as one conditional query, so product steps
    // contribute to `ElimStats::total_seeks` like every other step.
    let mut work = JoinStats::default();
    let old = std::mem::take(edges);
    for e in old {
        work.seeks += e.len() as u64;
        if e.schema().contains(&var) {
            u_size = u_size.max(e.arity());
            let m = product_rewrite(q, var, &e);
            rows_out = rows_out.max(m.len());
            work.nodes += m.len() as u64;
            edges.push(m);
        } else {
            let powered = product_rewrite(q, var, &e);
            work.nodes += powered.len() as u64;
            edges.push(powered);
        }
    }
    work.matches = rows_out as u64;
    StepStat { var, semiring: false, u_size, rows_out, join: Some(work) }
}

/// The per-edge rewrite of a product-aggregate step (eq. (8)): marginalize
/// edges containing `var`, power the rest point-wise by `|Dom(X_k)|` (skipping
/// `⊗`-idempotent values — Definition 5.2 / Algorithm 1 line 17).
///
/// Shared by [`eliminate_product`] and the incremental replay engine
/// ([`crate::delta`]), so both paths rewrite an edge bit-identically.
pub(crate) fn product_rewrite<D: AggDomain>(
    q: &FaqQuery<D>,
    var: Var,
    e: &Factor<D::E>,
) -> Factor<D::E> {
    let dom = &q.domain;
    if e.schema().contains(&var) {
        e.marginalize_product(var, q.domains.size(var), |a, b| dom.mul(a, b), |x| dom.is_zero(x))
    } else {
        let size = q.domains.size(var) as u64;
        e.map_values(
            |v| if dom.is_mul_idempotent(v) { v.clone() } else { dom.pow(v, size) },
            |x| dom.is_zero(x),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faq_factor::Domains;
    use faq_hypergraph::v;
    use faq_semiring::{BoolDomain, CountDomain, RealDomain};

    fn fac_u(schema: &[u32], rows: &[(&[u32], u64)]) -> Factor<u64> {
        Factor::new(
            schema.iter().map(|&i| v(i)).collect(),
            rows.iter().map(|(r, val)| (r.to_vec(), *val)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn chain_sum_product() {
        // ϕ = Σ_{x0,x1,x2} ψ01 ψ12 over counting.
        let q = FaqQuery::new(
            CountDomain,
            Domains::uniform(3, 2),
            vec![],
            vec![
                (v(0), VarAgg::Semiring(CountDomain::SUM)),
                (v(1), VarAgg::Semiring(CountDomain::SUM)),
                (v(2), VarAgg::Semiring(CountDomain::SUM)),
            ],
            vec![
                fac_u(&[0, 1], &[(&[0, 0], 1), (&[0, 1], 2), (&[1, 1], 3)]),
                fac_u(&[1, 2], &[(&[0, 0], 1), (&[1, 0], 5), (&[1, 1], 1)]),
            ],
        )
        .unwrap();
        let expect = crate::naive::naive_eval(&q);
        let got = insideout(&q).unwrap();
        assert_eq!(got.factor, expect);
    }

    #[test]
    fn free_variables_match_naive() {
        // ϕ(x0) = Σ_{x1} max_{x2} ψ01 ψ12.
        let q = FaqQuery::new(
            CountDomain,
            Domains::uniform(3, 3),
            vec![v(0)],
            vec![
                (v(1), VarAgg::Semiring(CountDomain::SUM)),
                (v(2), VarAgg::Semiring(CountDomain::MAX)),
            ],
            vec![
                fac_u(&[0, 1], &[(&[0, 0], 1), (&[1, 2], 2), (&[2, 1], 3), (&[2, 2], 4)]),
                fac_u(&[1, 2], &[(&[0, 0], 7), (&[2, 1], 5), (&[1, 2], 2), (&[2, 2], 1)]),
            ],
        )
        .unwrap();
        let expect = crate::naive::naive_eval(&q);
        let got = insideout(&q).unwrap();
        assert_eq!(got.factor, expect);
    }

    #[test]
    fn product_aggregate_matches_naive() {
        // ϕ = Σ_{x0} Π_{x1} ψ01 with a full x1-column (no implicit zeros).
        let q = FaqQuery::new(
            CountDomain,
            Domains::uniform(2, 2),
            vec![],
            vec![(v(0), VarAgg::Semiring(CountDomain::SUM)), (v(1), VarAgg::Product)],
            vec![fac_u(&[0, 1], &[(&[0, 0], 2), (&[0, 1], 3), (&[1, 0], 4), (&[1, 1], 1)])],
        )
        .unwrap();
        // x0=0: 2*3=6 ; x0=1: 4*1=4 ⇒ Σ = 10.
        let got = insideout(&q).unwrap();
        assert_eq!(got.scalar(), Some(&10));
        assert_eq!(got.factor, crate::naive::naive_eval(&q));
    }

    #[test]
    fn product_powers_unrelated_factors() {
        // ϕ = Σ_{x0} Π_{x1} ψ0(x0): powering ψ0 by |Dom(x1)| = 3.
        let q = FaqQuery::new(
            CountDomain,
            Domains::new(vec![2, 3]),
            vec![],
            vec![(v(0), VarAgg::Semiring(CountDomain::SUM)), (v(1), VarAgg::Product)],
            vec![fac_u(&[0], &[(&[0], 2), (&[1], 1)])],
        )
        .unwrap();
        // Σ_x0 ψ0(x0)^3 = 8 + 1 = 9.
        let got = insideout(&q).unwrap();
        assert_eq!(got.scalar(), Some(&9));
        assert_eq!(got.factor, crate::naive::naive_eval(&q));
    }

    #[test]
    fn boolean_conjunctive_query() {
        // BCQ: ∃x0 ∃x1 (R(x0) ∧ S(x0, x1)).
        let r = Factor::new(vec![v(0)], vec![(vec![1], true)]).unwrap();
        let s = Factor::new(vec![v(0), v(1)], vec![(vec![1, 0], true)]).unwrap();
        let q = FaqQuery::new(
            BoolDomain,
            Domains::uniform(2, 2),
            vec![],
            vec![
                (v(0), VarAgg::Semiring(BoolDomain::OR)),
                (v(1), VarAgg::Semiring(BoolDomain::OR)),
            ],
            vec![r, s],
        )
        .unwrap();
        assert_eq!(insideout(&q).unwrap().scalar(), Some(&true));
    }

    #[test]
    fn empty_join_yields_zero_scalar() {
        let r = Factor::new(vec![v(0)], vec![(vec![0], true)]).unwrap();
        let s = Factor::new(vec![v(0)], vec![(vec![1], true)]).unwrap();
        let q = FaqQuery::new(
            BoolDomain,
            Domains::uniform(1, 2),
            vec![],
            vec![(v(0), VarAgg::Semiring(BoolDomain::OR))],
            vec![r, s],
        )
        .unwrap();
        let out = insideout(&q).unwrap();
        assert_eq!(out.scalar(), None);
    }

    #[test]
    fn variable_in_no_factor_scales() {
        let q = FaqQuery::new(
            CountDomain,
            Domains::new(vec![2, 3]),
            vec![],
            vec![
                (v(0), VarAgg::Semiring(CountDomain::SUM)),
                (v(1), VarAgg::Semiring(CountDomain::SUM)),
            ],
            vec![fac_u(&[0], &[(&[0], 1), (&[1], 1)])],
        )
        .unwrap();
        assert_eq!(insideout(&q).unwrap().scalar(), Some(&6));
    }

    #[test]
    fn different_orders_same_result_for_faq_ss() {
        let q = FaqQuery::new(
            CountDomain,
            Domains::uniform(3, 2),
            vec![],
            vec![
                (v(0), VarAgg::Semiring(CountDomain::SUM)),
                (v(1), VarAgg::Semiring(CountDomain::SUM)),
                (v(2), VarAgg::Semiring(CountDomain::SUM)),
            ],
            vec![
                fac_u(&[0, 1], &[(&[0, 0], 1), (&[1, 1], 2)]),
                fac_u(&[1, 2], &[(&[0, 1], 3), (&[1, 0], 4)]),
                fac_u(&[0, 2], &[(&[0, 1], 5), (&[1, 0], 6)]),
            ],
        )
        .unwrap();
        let expect = crate::naive::naive_eval(&q);
        for order in [[v(0), v(1), v(2)], [v(2), v(0), v(1)], [v(1), v(2), v(0)]] {
            let got = insideout_with_order(&q, &order).unwrap();
            assert_eq!(got.factor, expect, "order {order:?}");
        }
    }

    #[test]
    fn marginal_map_real_domain() {
        // Mixed Σ then max with free variable, vs naive.
        let f01 = Factor::new(
            vec![v(0), v(1)],
            vec![(vec![0, 0], 0.5), (vec![0, 1], 1.5), (vec![1, 0], 2.0)],
        )
        .unwrap();
        let f12 = Factor::new(
            vec![v(1), v(2)],
            vec![(vec![0, 0], 1.0), (vec![0, 1], 3.0), (vec![1, 1], 2.0)],
        )
        .unwrap();
        let q = FaqQuery::new(
            RealDomain,
            Domains::uniform(3, 2),
            vec![v(0)],
            vec![
                (v(1), VarAgg::Semiring(RealDomain::SUM)),
                (v(2), VarAgg::Semiring(RealDomain::MAX)),
            ],
            vec![f01, f12],
        )
        .unwrap();
        let expect = crate::naive::naive_eval(&q);
        let got = insideout(&q).unwrap();
        assert_eq!(got.factor, expect);
    }

    #[test]
    fn stats_track_intermediates() {
        let q = FaqQuery::new(
            CountDomain,
            Domains::uniform(3, 2),
            vec![],
            vec![
                (v(0), VarAgg::Semiring(CountDomain::SUM)),
                (v(1), VarAgg::Semiring(CountDomain::SUM)),
                (v(2), VarAgg::Semiring(CountDomain::SUM)),
            ],
            vec![
                fac_u(&[0, 1], &[(&[0, 0], 1), (&[1, 1], 2)]),
                fac_u(&[1, 2], &[(&[0, 1], 3), (&[1, 0], 4)]),
            ],
        )
        .unwrap();
        let out = insideout(&q).unwrap();
        assert_eq!(out.stats.steps.len(), 3);
        assert!(out.stats.total_seeks() > 0);
        assert!(out.stats.max_intermediate >= 1);
    }
}
