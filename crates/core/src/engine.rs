//! The unified evaluation facade: one [`Engine`] in front of every way to run
//! a query.
//!
//! Historically the crate grew four public entry points — [`crate::insideout::insideout`],
//! [`crate::insideout::insideout_with_order`], [`crate::exec::insideout_par`] /
//! [`crate::exec::insideout_par_with_order`] — plus the planned serving path
//! ([`crate::plan::Planner`] → [`PreparedQuery`]). They are all the same
//! engine under different amounts of configuration, so this module collapses
//! them behind one builder-style handle:
//!
//! ```
//! use faq_core::{Engine, FaqQuery, VarAgg};
//! use faq_factor::{Domains, Factor};
//! use faq_hypergraph::Var;
//! use faq_semiring::CountDomain;
//!
//! let q = FaqQuery::new(
//!     CountDomain,
//!     Domains::uniform(2, 2),
//!     vec![],
//!     vec![
//!         (Var(0), VarAgg::Semiring(CountDomain::SUM)),
//!         (Var(1), VarAgg::Semiring(CountDomain::SUM)),
//!     ],
//!     vec![Factor::new(vec![Var(0), Var(1)], vec![(vec![0, 1], 2u64)]).unwrap()],
//! )
//! .unwrap();
//!
//! // One-shot evaluation under a thread budget:
//! let out = Engine::new().threads(2).evaluate(&q).unwrap();
//! assert_eq!(out.scalar(), Some(&2));
//!
//! // The serving path: cost-based planning once, evaluation many times.
//! let prepared = Engine::new().threads(2).prepare(&q).unwrap();
//! assert_eq!(prepared.evaluate().unwrap().factor, out.factor);
//! ```
//!
//! The legacy free functions remain as thin delegating wrappers (their docs
//! say so), so existing callers keep working; new code should construct an
//! `Engine`.

use crate::exec::ExecPolicy;
use crate::insideout::{insideout_with_policy, FaqOutput};
use crate::plan::{PlanCache, Planner, PreparedQuery, QueryPlan};
use crate::query::{FaqError, FaqQuery};
use faq_hypergraph::Var;
use faq_join::JoinRep;
use faq_semiring::AggDomain;
use std::sync::Arc;

/// The unified evaluation facade: builder-style configuration in front of the
/// sequential engine, the parallel engine, and the cost-based serving path.
///
/// An `Engine` is cheap to construct and clone — it holds configuration, not
/// data. The two families of entry points:
///
/// * [`Engine::evaluate`] / [`Engine::evaluate_with_order`] — one-shot
///   evaluation under the engine's [`ExecPolicy`] (no planning pass);
/// * [`Engine::prepare`] — the serving path: cost-based ordering choice,
///   aligned + indexed inputs, reusable [`PreparedQuery`] handle; shares
///   plans across same-shaped queries when a [`PlanCache`] is attached.
///
/// Every path produces bit-identical output for the same query — policies,
/// plans, and thread counts affect performance only.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    policy: ExecPolicy,
    planner: Planner,
    plan_cache: Option<Arc<PlanCache>>,
}

impl Engine {
    /// An engine with the default policy: one worker per hardware thread,
    /// default chunk floor, trie join kernels.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// An engine pinned to sequential execution (one thread everywhere) —
    /// exactly the paper's Algorithm 1. Constructed without probing the
    /// host's parallelism, so the legacy sequential wrappers stay free of
    /// per-call syscalls.
    pub fn sequential() -> Engine {
        Engine {
            policy: ExecPolicy::sequential(),
            planner: Planner::sequential(),
            plan_cache: None,
        }
    }

    /// An engine running one-shot evaluations under `policy` (plans from
    /// [`Engine::prepare`] keep their own per-step choices, capped at the
    /// policy's thread count through the planner).
    pub fn with_policy(policy: ExecPolicy) -> Engine {
        let planner = Planner::with_threads(policy.effective_threads());
        Engine { policy, planner, plan_cache: None }
    }

    /// This engine with up to `n` worker threads, for both one-shot
    /// evaluation and the plans it prepares.
    pub fn threads(mut self, n: usize) -> Engine {
        self.policy = self.policy.threads(n);
        self.planner.threads = n.max(1);
        self
    }

    /// This engine with chunk floor `rows` (see
    /// [`ExecPolicy::min_chunk_rows`]).
    pub fn min_chunk_rows(mut self, rows: usize) -> Engine {
        self.policy = self.policy.min_chunk_rows(rows);
        self.planner.min_chunk_rows = rows;
        self
    }

    /// This engine with the join kernels walking `rep` on one-shot
    /// evaluations.
    pub fn rep(mut self, rep: JoinRep) -> Engine {
        self.policy = self.policy.rep(rep);
        self
    }

    /// This engine planning through `planner` (overrides the planner knobs
    /// derived from [`Engine::threads`] / [`Engine::min_chunk_rows`]).
    pub fn planner(mut self, planner: Planner) -> Engine {
        self.planner = planner;
        self
    }

    /// This engine sharing plans through `cache`: [`Engine::prepare`] reuses
    /// the cached plan for a same-shaped (schema + size class) query instead
    /// of re-planning — the "plan once, serve many" setup.
    pub fn plan_cache(mut self, cache: Arc<PlanCache>) -> Engine {
        self.plan_cache = Some(cache);
        self
    }

    /// The one-shot execution policy this engine evaluates under.
    pub fn policy(&self) -> &ExecPolicy {
        &self.policy
    }

    /// Evaluate `q` with its own variable ordering under the engine's policy.
    ///
    /// Bit-identical to the sequential engine for every thread count.
    pub fn evaluate<D: AggDomain + Sync>(
        &self,
        q: &FaqQuery<D>,
    ) -> Result<FaqOutput<D::E>, FaqError> {
        let sigma = q.ordering();
        self.evaluate_with_order(q, &sigma)
    }

    /// Evaluate `q` along a caller-chosen ordering `sigma` (same contract as
    /// [`crate::insideout::insideout_with_order`]: a permutation of the
    /// query's variables, free variables first, ϕ-equivalent).
    pub fn evaluate_with_order<D: AggDomain + Sync>(
        &self,
        q: &FaqQuery<D>,
        sigma: &[Var],
    ) -> Result<FaqOutput<D::E>, FaqError> {
        insideout_with_policy(q, sigma, &self.policy)
    }

    /// Plan `q` with the engine's planner (no prepared inputs — use
    /// [`Engine::prepare`] for the full serving handle).
    pub fn plan<D: AggDomain>(&self, q: &FaqQuery<D>) -> Result<QueryPlan, FaqError> {
        self.planner.plan(q)
    }

    /// Prepare `q` for repeated evaluation: cost-based ordering choice plus
    /// cached aligned/indexed inputs. Goes through the attached [`PlanCache`]
    /// when one was configured, so a fleet of same-shaped queries shares one
    /// planning pass.
    pub fn prepare<D: AggDomain + Clone + Sync>(
        &self,
        q: &FaqQuery<D>,
    ) -> Result<PreparedQuery<D>, FaqError> {
        match &self.plan_cache {
            Some(cache) => cache.prepare(&self.planner, q),
            None => self.planner.prepare(q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insideout::insideout;
    use crate::query::VarAgg;
    use faq_factor::{Domains, Factor};
    use faq_hypergraph::v;
    use faq_semiring::CountDomain;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn triangle(seed: u64, rows: usize) -> FaqQuery<CountDomain> {
        let mut r = StdRng::seed_from_u64(seed);
        let d = 10u32;
        let mut mk = |a: u32, b: u32| {
            let mut tuples = std::collections::BTreeMap::new();
            for _ in 0..rows {
                tuples.insert(vec![r.gen_range(0..d), r.gen_range(0..d)], r.gen_range(1..4u64));
            }
            Factor::new(vec![v(a), v(b)], tuples.into_iter().collect()).unwrap()
        };
        FaqQuery::new(
            CountDomain,
            Domains::uniform(3, d),
            vec![v(0)],
            vec![
                (v(1), VarAgg::Semiring(CountDomain::SUM)),
                (v(2), VarAgg::Semiring(CountDomain::SUM)),
            ],
            vec![mk(0, 1), mk(1, 2), mk(0, 2)],
        )
        .unwrap()
    }

    #[test]
    fn engine_matches_legacy_entry_points() {
        let q = triangle(1, 70);
        let reference = insideout(&q).unwrap();
        for engine in [
            Engine::sequential(),
            Engine::new().threads(4).min_chunk_rows(1),
            Engine::with_policy(ExecPolicy::with_threads(2)),
            Engine::new().rep(JoinRep::Listing),
        ] {
            assert_eq!(engine.evaluate(&q).unwrap().factor, reference.factor);
        }
        let sigma = q.ordering();
        assert_eq!(
            Engine::sequential().evaluate_with_order(&q, &sigma).unwrap().factor,
            reference.factor
        );
    }

    #[test]
    fn engine_prepare_shares_plans_through_cache() {
        let cache = Arc::new(PlanCache::new());
        let engine = Engine::sequential().plan_cache(Arc::clone(&cache));
        let a = triangle(2, 60);
        let b = triangle(3, 60);
        let pa = engine.prepare(&a).unwrap();
        let pb = engine.prepare(&b).unwrap();
        assert_eq!(cache.len(), 1, "same shape + size class → one cached plan");
        assert!(Arc::ptr_eq(&pa.plan_arc(), &pb.plan_arc()));
        assert_eq!(pa.evaluate().unwrap().factor, insideout(&a).unwrap().factor);
        assert_eq!(pb.evaluate().unwrap().factor, insideout(&b).unwrap().factor);
    }
}
