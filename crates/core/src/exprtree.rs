//! Expression trees and the precedence poset (paper §6).
//!
//! The expression tree of a FAQ query captures which variable orderings are
//! semantically equivalent to the input expression. It is built in two steps
//! (Definitions 6.1 and 6.18):
//!
//! * **Compartmentalization** — the first tag block becomes a node; the rest
//!   of the query splits into the *extended* connected components of the
//!   hypergraph minus that block and minus the product variables `W`, each
//!   recursively compartmentalized. Product variables adjacent to a component
//!   are pulled into its extension (and may appear in several components —
//!   "copies"); edges that fall entirely inside `W` contribute their product
//!   variables to a *dangling* leaf node.
//! * **Compression** — a child node with the same tag as its parent merges
//!   into the parent, repeatedly.
//!
//! When the product `⊗` is not idempotent on the whole domain, the
//! construction first extends every hyperedge with *all* product variables
//! (Definition 6.30), which restores soundness of the component analysis.
//!
//! The variable-level ancestor relation of the tree is the **precedence
//! poset** (Definition 6.3 / 6.22, well-defined by Corollary 6.21); its linear
//! extensions `LinEx(P)` are sound and width-complete for `EVO(ϕ)`
//! (Theorems 6.8/6.23 and 6.12/6.27).

use faq_hypergraph::{Hypergraph, Var, VarSet};
use faq_semiring::AggId;
use std::collections::BTreeMap;
use std::fmt;

/// The tag of a variable in the quantifier prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tag {
    /// Free (output) variable.
    Free,
    /// Semiring aggregate; the id must be pre-canonicalized so that
    /// functionally identical operators compare equal (Definition 6.4).
    Semiring(AggId),
    /// The product aggregate `⊗`.
    Product,
}

impl Tag {
    /// Whether this tag folds during elimination (free or semiring).
    pub fn is_fold(self) -> bool {
        !matches!(self, Tag::Product)
    }
}

/// The combinatorial shape of a FAQ query: the tagged quantifier prefix and
/// the hyperedges. This is all the §6–§7 machinery needs — factor values never
/// enter.
#[derive(Debug, Clone, Default)]
pub struct QueryShape {
    /// Variables with tags, in query order (free first).
    pub seq: Vec<(Var, Tag)>,
    /// The query hyperedges (one per factor).
    pub edges: Vec<VarSet>,
    /// Whether `⊗` acts idempotently on the inputs — either domain-wide, or
    /// under the `F(D_I)` promise of Definition 5.8. When `false` and product
    /// aggregates are present, the tree builder applies the Definition 6.30
    /// edge extension.
    pub mul_idempotent: bool,
    /// Semiring operators known to be *closed* on the idempotent elements
    /// (paper §6.2). Non-closed aggregates (e.g. `Σ` over `ℕ`) never commute
    /// with product aggregates — even across disconnected components — so the
    /// precedence machinery preserves their original order relative to every
    /// product variable. Leave empty for the conservative default.
    pub closed_ops: std::collections::BTreeSet<AggId>,
}

/// A node of the expression tree.
#[derive(Debug, Clone)]
pub struct ExprNode {
    /// The node's variables, in original query order. Product variables may
    /// appear in several nodes (copies).
    pub vars: Vec<Var>,
    /// The node's tag. All variables of a node share it.
    pub tag: Tag,
    /// Child node ids.
    pub children: Vec<usize>,
}

/// The compressed expression tree.
#[derive(Debug, Clone)]
pub struct ExprTree {
    /// Nodes; `nodes[root]` is the root (the free block, possibly empty).
    pub nodes: Vec<ExprNode>,
    /// Root node id.
    pub root: usize,
}

impl QueryShape {
    /// All variables in query order.
    pub fn vars(&self) -> Vec<Var> {
        self.seq.iter().map(|&(v, _)| v).collect()
    }

    /// The free variables.
    pub fn free_vars(&self) -> Vec<Var> {
        self.seq.iter().filter(|(_, t)| *t == Tag::Free).map(|&(v, _)| v).collect()
    }

    /// The tag of `v`.
    pub fn tag_of(&self, v: Var) -> Option<Tag> {
        self.seq.iter().find(|&&(s, _)| s == v).map(|&(_, t)| t)
    }

    /// Position of `v` in the query prefix.
    pub fn seq_pos(&self, v: Var) -> Option<usize> {
        self.seq.iter().position(|&(s, _)| s == v)
    }

    /// The query hypergraph over the original edges (vertices include
    /// variables in no edge).
    pub fn hypergraph(&self) -> Hypergraph {
        let mut h = Hypergraph::new();
        for &(v, _) in &self.seq {
            h.add_vertex(v);
        }
        for e in &self.edges {
            h.add_edge(e.iter().copied());
        }
        h
    }

    /// The product-tagged variables.
    pub fn product_vars(&self) -> VarSet {
        self.seq.iter().filter(|(_, t)| *t == Tag::Product).map(|&(v, _)| v).collect()
    }

    /// The semiring-tagged variables whose operator is *not* closed on the
    /// idempotent elements.
    pub fn non_closed_vars(&self) -> VarSet {
        self.seq
            .iter()
            .filter(|(_, t)| matches!(t, Tag::Semiring(op) if !self.closed_ops.contains(op)))
            .map(|&(v, _)| v)
            .collect()
    }

    /// Whether the query fits the §6.2 inner-closed form (paper eq. (21)):
    /// every non-closed semiring aggregate precedes every product aggregate,
    /// so the sub-expressions below the products stay inside `D_I`.
    pub fn fits_inner_closed_form(&self) -> bool {
        let non_closed = self.non_closed_vars();
        let mut seen_product = false;
        for (v, t) in &self.seq {
            match t {
                Tag::Product => seen_product = true,
                _ if non_closed.contains(v) && seen_product => return false,
                _ => {}
            }
        }
        true
    }

    /// The edges used for the expression-tree construction: the original ones
    /// in the idempotent regime (or with no product aggregates), otherwise
    /// each edge extended with every product variable (Definition 6.30).
    pub fn effective_edges(&self) -> Vec<VarSet> {
        let products = self.product_vars();
        if self.mul_idempotent || products.is_empty() {
            return self.edges.clone();
        }
        self.edges.iter().map(|e| e.union(&products).copied().collect()).collect()
    }

    /// The precedence relation of the query: the expression-tree poset
    /// (Definition 6.22) strengthened with order preservation between product
    /// variables and non-closed semiring variables (which never commute, even
    /// when structurally independent — `(Σ a)^k ≠ Σ aᵏ`).
    pub fn precedence(&self) -> BTreeMap<Var, VarSet> {
        let tree = self.expr_tree();
        let mut preds = tree.precedence();
        let products = self.product_vars();
        let non_closed = self.non_closed_vars();
        let pos: BTreeMap<Var, usize> =
            self.seq.iter().enumerate().map(|(i, &(v, _))| (v, i)).collect();
        for &w in &products {
            for &u in &non_closed {
                if pos[&u] < pos[&w] {
                    preds.get_mut(&w).expect("registered").insert(u);
                } else {
                    preds.get_mut(&u).expect("registered").insert(w);
                }
            }
        }
        // Transitive closure over the added constraints.
        loop {
            let mut changed = false;
            let vars: Vec<Var> = preds.keys().copied().collect();
            for &v in &vars {
                let ps: Vec<Var> = preds[&v].iter().copied().collect();
                for p in ps {
                    let grand: Vec<Var> = preds[&p].iter().copied().collect();
                    for g in grand {
                        if g != v && preds.get_mut(&v).unwrap().insert(g) {
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        for (v, ps) in &preds {
            for p in ps {
                assert!(
                    !preds[p].contains(v),
                    "precedence relation is not a poset: {v} and {p} mutually precede"
                );
            }
        }
        preds
    }

    /// Build the compressed expression tree.
    pub fn expr_tree(&self) -> ExprTree {
        let mut nodes: Vec<ExprNode> = Vec::new();
        let free: Vec<Var> = self.free_vars();
        let rest: Vec<(Var, Tag)> =
            self.seq.iter().copied().filter(|(_, t)| *t != Tag::Free).collect();
        let rest_vars: VarSet = rest.iter().map(|&(v, _)| v).collect();
        let edges: Vec<VarSet> = self
            .effective_edges()
            .iter()
            .map(|e| e.intersection(&rest_vars).copied().collect::<VarSet>())
            .filter(|e: &VarSet| !e.is_empty())
            .collect();

        let root = nodes.len();
        nodes.push(ExprNode { vars: free, tag: Tag::Free, children: Vec::new() });
        attach_children(&mut nodes, root, &rest, &edges);
        let mut tree = ExprTree { nodes, root };
        tree.compress(self);
        tree.sort_node_vars(self);
        tree
    }
}

/// Build the subtree for a non-empty tagged sequence with edges already
/// restricted to its variables; returns the subtree root id.
fn build_inner(nodes: &mut Vec<ExprNode>, seq: &[(Var, Tag)], edges: &[VarSet]) -> usize {
    debug_assert!(!seq.is_empty());
    let first_tag = seq[0].1;
    let block_len = seq.iter().take_while(|(_, t)| *t == first_tag).count();
    let block: Vec<Var> = seq[..block_len].iter().map(|&(v, _)| v).collect();
    let block_set: VarSet = block.iter().copied().collect();
    let id = nodes.len();
    nodes.push(ExprNode { vars: block, tag: first_tag, children: Vec::new() });

    let rest: Vec<(Var, Tag)> =
        seq[block_len..].iter().copied().filter(|(v, _)| !block_set.contains(v)).collect();
    let rest_vars: VarSet = rest.iter().map(|&(v, _)| v).collect();
    let redges: Vec<VarSet> = edges
        .iter()
        .map(|e| e.intersection(&rest_vars).copied().collect::<VarSet>())
        .filter(|e: &VarSet| !e.is_empty())
        .collect();
    attach_children(nodes, id, &rest, &redges);
    id
}

/// Shared compartmentalization step: split `rest` into extended components of
/// the hypergraph minus the parent block minus the product variables, plus a
/// dangling product node; attach each as a child of `parent`.
fn attach_children(
    nodes: &mut Vec<ExprNode>,
    parent: usize,
    rest: &[(Var, Tag)],
    redges: &[VarSet],
) {
    if rest.is_empty() {
        return;
    }
    let w: VarSet = rest.iter().filter(|(_, t)| *t == Tag::Product).map(|&(v, _)| v).collect();
    let core: VarSet = rest.iter().filter(|(_, t)| *t != Tag::Product).map(|&(v, _)| v).collect();

    // Connected components of the core (isolated core vertices included).
    let mut core_h = Hypergraph::new();
    for &v in &core {
        core_h.add_vertex(v);
    }
    for e in redges {
        let ce: VarSet = e.intersection(&core).copied().collect();
        if !ce.is_empty() {
            core_h.add_edge(ce.iter().copied());
        }
    }
    let comps = core_h.connected_components();

    for comp in &comps {
        // Extended component: pull in adjacent product variables.
        let mut vext: VarSet = comp.clone();
        for e in redges {
            if !e.is_disjoint(comp) {
                vext.extend(e.intersection(&w).copied());
            }
        }
        let eext: Vec<VarSet> = redges
            .iter()
            .filter(|e| !e.is_disjoint(comp))
            .map(|e| e.intersection(&vext).copied().collect::<VarSet>())
            .collect();
        let cseq: Vec<(Var, Tag)> =
            rest.iter().copied().filter(|(v, _)| vext.contains(v)).collect();
        let child = build_inner(nodes, &cseq, &eext);
        nodes[parent].children.push(child);
    }

    // Dangling product node: product variables of edges entirely inside W,
    // plus product variables in no edge at all.
    let mut dangling: VarSet = VarSet::new();
    for e in redges {
        if e.is_subset(&w) {
            dangling.extend(e.iter().copied());
        }
    }
    for &pv in &w {
        if !redges.iter().any(|e| e.contains(&pv)) {
            dangling.insert(pv);
        }
    }
    if !dangling.is_empty() {
        let vars: Vec<Var> =
            rest.iter().map(|&(v, _)| v).filter(|v| dangling.contains(v)).collect();
        let id = nodes.len();
        nodes.push(ExprNode { vars, tag: Tag::Product, children: Vec::new() });
        nodes[parent].children.push(id);
    }
}

impl ExprTree {
    /// Merge same-tag children into parents until no merge applies
    /// (the compression step of Definitions 6.1/6.18), then drop dead nodes.
    ///
    /// A merge is skipped when it would lift a variable above a sibling
    /// subtree containing its non-commuting counterpart (a product variable
    /// vs a non-closed semiring variable that precedes it in the original
    /// query) — such a lift would contradict the order-preservation
    /// constraints of [`QueryShape::precedence`].
    fn compress(&mut self, shape: &QueryShape) {
        let products = shape.product_vars();
        let non_closed = shape.non_closed_vars();
        let constrained = |x: Var, y: Var| {
            (products.contains(&x) && non_closed.contains(&y))
                || (non_closed.contains(&x) && products.contains(&y))
        };
        loop {
            let mut merged = false;
            // Find a (parent, child) pair with equal tags.
            'scan: for p in 0..self.nodes.len() {
                for (ci, &c) in self.nodes[p].children.iter().enumerate() {
                    if self.nodes[p].tag == self.nodes[c].tag && p != self.root {
                        // Merge guard: lifting c's vars above the sibling
                        // subtrees must not invert a pairwise constraint.
                        let mut sibling_vars: Vec<Var> = Vec::new();
                        for &sib in &self.nodes[p].children {
                            if sib != c {
                                let mut stack = vec![sib];
                                while let Some(i) = stack.pop() {
                                    sibling_vars.extend(self.nodes[i].vars.iter().copied());
                                    stack.extend(self.nodes[i].children.iter().copied());
                                }
                            }
                        }
                        let inverts = self.nodes[c].vars.iter().any(|&x| {
                            sibling_vars.iter().any(|&y| {
                                constrained(x, y)
                                    && shape.seq_pos(y).unwrap_or(usize::MAX)
                                        < shape.seq_pos(x).unwrap_or(usize::MAX)
                            })
                        });
                        if inverts {
                            continue;
                        }
                        let child = self.nodes[c].clone();
                        let parent = &mut self.nodes[p];
                        parent.children.remove(ci);
                        for v in child.vars {
                            if !parent.vars.contains(&v) {
                                parent.vars.push(v);
                            }
                        }
                        let grandkids = child.children;
                        self.nodes[p].children.extend(grandkids);
                        self.nodes[c].vars.clear();
                        self.nodes[c].children.clear();
                        merged = true;
                        break 'scan;
                    }
                }
            }
            if !merged {
                break;
            }
        }
        self.compact();
    }

    /// Drop unreachable / emptied nodes and renumber.
    fn compact(&mut self) {
        let mut alive = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        while let Some(i) = stack.pop() {
            if alive[i] {
                continue;
            }
            alive[i] = true;
            stack.extend(self.nodes[i].children.iter().copied());
        }
        let mut remap = vec![usize::MAX; self.nodes.len()];
        let mut out: Vec<ExprNode> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if alive[i] {
                remap[i] = out.len();
                out.push(node.clone());
            }
        }
        for node in &mut out {
            for c in &mut node.children {
                *c = remap[*c];
            }
        }
        self.root = remap[self.root];
        self.nodes = out;
    }

    fn sort_node_vars(&mut self, shape: &QueryShape) {
        for node in &mut self.nodes {
            node.vars.sort_by_key(|&v| shape.seq_pos(v).unwrap_or(usize::MAX));
            node.children.sort();
        }
    }

    /// Node ids containing (a copy of) `v`.
    pub fn nodes_of(&self, v: Var) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].vars.contains(&v)).collect()
    }

    /// All (ancestor, descendant) node-id pairs (strict).
    pub fn ancestor_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        let mut stack: Vec<(usize, Vec<usize>)> = vec![(self.root, Vec::new())];
        while let Some((node, ancestors)) = stack.pop() {
            for &a in &ancestors {
                pairs.push((a, node));
            }
            for &c in &self.nodes[node].children {
                let mut anc = ancestors.clone();
                anc.push(node);
                stack.push((c, anc));
            }
        }
        pairs
    }

    /// The precedence poset as strict-predecessor sets: `preds[v]` contains
    /// `u` iff `u ≺ v` (some copy of `u` lives in a strict ancestor of a node
    /// containing `v`).
    pub fn precedence(&self) -> BTreeMap<Var, VarSet> {
        let mut preds: BTreeMap<Var, VarSet> = BTreeMap::new();
        for node in &self.nodes {
            for &v in &node.vars {
                preds.entry(v).or_default();
            }
        }
        for (a, d) in self.ancestor_pairs() {
            for &u in &self.nodes[a].vars {
                for &v in &self.nodes[d].vars {
                    if u != v {
                        preds.get_mut(&v).expect("v registered").insert(u);
                    }
                }
            }
        }
        // Transitive closure (node ancestors already give most of it, but
        // copies can relay constraints).
        loop {
            let mut changed = false;
            let vars: Vec<Var> = preds.keys().copied().collect();
            for &v in &vars {
                let ps: Vec<Var> = preds[&v].iter().copied().collect();
                for p in ps {
                    let grand: Vec<Var> = preds[&p].iter().copied().collect();
                    for g in grand {
                        if g != v && preds.get_mut(&v).unwrap().insert(g) {
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Antisymmetry must hold (Corollary 6.21).
        for (v, ps) in &preds {
            for p in ps {
                assert!(
                    !preds[p].contains(v),
                    "precedence relation is not a poset: {v} and {p} mutually precede"
                );
            }
        }
        preds
    }

    /// Render the tree as an indented listing (used by the examples that
    /// reproduce Figures 2–6).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(self.root, 0, &mut out);
        out
    }

    fn render_node(&self, id: usize, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let node = &self.nodes[id];
        let tag = match node.tag {
            Tag::Free => "free".to_string(),
            Tag::Semiring(op) => format!("⊕{}", op.0),
            Tag::Product => "⊗".to_string(),
        };
        let vars: Vec<String> = node.vars.iter().map(|v| v.to_string()).collect();
        writeln!(out, "{}[{}] {{{}}}", "  ".repeat(depth), tag, vars.join(",")).unwrap();
        for &c in &node.children {
            self.render_node(c, depth + 1, out);
        }
    }
}

impl fmt::Display for ExprTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faq_hypergraph::{v, varset};

    const SUM: Tag = Tag::Semiring(AggId(0));
    const MAX: Tag = Tag::Semiring(AggId(1));

    fn node_by_vars<'a>(t: &'a ExprTree, vars: &[u32]) -> Option<&'a ExprNode> {
        let set: VarSet = varset(vars);
        t.nodes.iter().find(|n| n.vars.iter().copied().collect::<VarSet>() == set)
    }

    /// Paper Example 6.2 / Figures 2–3:
    /// ϕ = Σ1 Σ2 max3 Σ4 Σ5 max6 max7 ψ12 ψ135 ψ14 ψ246 ψ27 ψ37.
    /// Final tree: root {} → {1,2,4}Σ with children {3,7}max (child {5}Σ)
    /// and {6}max.
    #[test]
    fn example_6_2_tree() {
        let shape = QueryShape {
            seq: vec![
                (v(1), SUM),
                (v(2), SUM),
                (v(3), MAX),
                (v(4), SUM),
                (v(5), SUM),
                (v(6), MAX),
                (v(7), MAX),
            ],
            edges: vec![
                varset(&[1, 2]),
                varset(&[1, 3, 5]),
                varset(&[1, 4]),
                varset(&[2, 4, 6]),
                varset(&[2, 7]),
                varset(&[3, 7]),
            ],
            mul_idempotent: false,
            closed_ops: Default::default(),
        };
        let t = shape.expr_tree();
        // Root is the (empty) free node with a single child {1,2,4}.
        assert!(t.nodes[t.root].vars.is_empty());
        assert_eq!(t.nodes[t.root].children.len(), 1);
        let top = node_by_vars(&t, &[1, 2, 4]).expect("node {1,2,4}");
        assert_eq!(top.tag, SUM);
        assert_eq!(top.children.len(), 2);
        let n37 = node_by_vars(&t, &[3, 7]).expect("node {3,7}");
        assert_eq!(n37.tag, MAX);
        assert_eq!(n37.children.len(), 1);
        let n5 = node_by_vars(&t, &[5]).expect("node {5}");
        assert_eq!(n5.tag, SUM);
        let n6 = node_by_vars(&t, &[6]).expect("node {6}");
        assert_eq!(n6.tag, MAX);
        assert!(n5.children.is_empty() && n6.children.is_empty());
    }

    /// Paper Example 6.19 / Figures 4–6 (product aggregates, DI-idempotent):
    /// ϕ = max1 max2 Σ3 Σ4 Π5 max6 Π7 max8 ψ13 ψ24 ψ34 ψ15 ψ16 ψ26 ψ257 ψ167 ψ278.
    /// Final tree: root {} → {1,2,6}max with children {5,7}⊗, {3,4}Σ, {7}⊗,
    /// {7}⊗→{8}max; the {6} child {7}⊗ stays separate from the C3 chain
    /// {7}⊗→{8}max.
    #[test]
    fn example_6_19_tree() {
        let shape = QueryShape {
            seq: vec![
                (v(1), MAX),
                (v(2), MAX),
                (v(3), SUM),
                (v(4), SUM),
                (v(5), Tag::Product),
                (v(6), MAX),
                (v(7), Tag::Product),
                (v(8), MAX),
            ],
            edges: vec![
                varset(&[1, 3]),
                varset(&[2, 4]),
                varset(&[3, 4]),
                varset(&[1, 5]),
                varset(&[1, 6]),
                varset(&[2, 6]),
                varset(&[2, 5, 7]),
                varset(&[1, 6, 7]),
                varset(&[2, 7, 8]),
            ],
            mul_idempotent: true,
            closed_ops: [AggId(1)].into_iter().collect(),
        };
        let t = shape.expr_tree();
        assert!(t.nodes[t.root].vars.is_empty());
        let top = node_by_vars(&t, &[1, 2, 6]).expect("node {1,2,6}");
        assert_eq!(top.tag, MAX);
        assert_eq!(top.children.len(), 4);
        assert!(node_by_vars(&t, &[3, 4]).is_some());
        let dangling = node_by_vars(&t, &[5, 7]).expect("dangling {5,7}");
        assert_eq!(dangling.tag, Tag::Product);
        assert!(dangling.children.is_empty());
        // {8}max hangs under a {7}⊗ node.
        let n8 = node_by_vars(&t, &[8]).expect("node {8}");
        assert_eq!(n8.tag, MAX);
        let sevens = t.nodes_of(v(7));
        // 7 occurs three times: in the dangling node and two singleton nodes.
        assert_eq!(sevens.len(), 3);
        // Structural checks via the precedence poset:
        let preds = t.precedence();
        assert!(preds[&v(8)].contains(&v(7)));
        assert!(preds[&v(8)].contains(&v(1)));
        assert!(preds[&v(7)].contains(&v(1)));
        assert!(preds[&v(5)].contains(&v(2)));
        assert!(!preds[&v(3)].contains(&v(5)));
    }

    /// The §6.1 counterexample: ϕ = Σ1 Σ2 max3 max4 Σ5 ψ15 ψ25 ψ13 ψ24 —
    /// tree root {} → {1,2,5}Σ → children {3}max and {4}max.
    #[test]
    fn section_6_1_counterexample_tree() {
        let shape = QueryShape {
            seq: vec![(v(1), SUM), (v(2), SUM), (v(3), MAX), (v(4), MAX), (v(5), SUM)],
            edges: vec![varset(&[1, 5]), varset(&[2, 5]), varset(&[1, 3]), varset(&[2, 4])],
            mul_idempotent: false,
            closed_ops: Default::default(),
        };
        let t = shape.expr_tree();
        let top = node_by_vars(&t, &[1, 2, 5]).expect("node {1,2,5}");
        assert_eq!(top.tag, SUM);
        assert_eq!(top.children.len(), 2);
        assert!(node_by_vars(&t, &[3]).is_some());
        assert!(node_by_vars(&t, &[4]).is_some());
    }

    /// Example 6.13: ϕ = Σ1 max2 Σ3 ψ12 ψ13 → root {} → {1,3}Σ → {2}max.
    #[test]
    fn example_6_13_tree() {
        let shape = QueryShape {
            seq: vec![(v(1), SUM), (v(2), MAX), (v(3), SUM)],
            edges: vec![varset(&[1, 2]), varset(&[1, 3])],
            mul_idempotent: false,
            closed_ops: Default::default(),
        };
        let t = shape.expr_tree();
        let top = node_by_vars(&t, &[1, 3]).expect("node {1,3}");
        assert_eq!(top.tag, SUM);
        assert_eq!(top.children.len(), 1);
        assert_eq!(t.nodes[top.children[0]].vars, vec![v(2)]);
    }

    /// FAQ-SS: tree of depth ≤ 1 — root holds the frees, children are the
    /// connected components of the bound part.
    #[test]
    fn faq_ss_tree_is_flat() {
        let shape = QueryShape {
            seq: vec![(v(0), Tag::Free), (v(1), SUM), (v(2), SUM), (v(3), SUM)],
            edges: vec![varset(&[0, 1]), varset(&[1, 2]), varset(&[0, 3])],
            mul_idempotent: false,
            closed_ops: Default::default(),
        };
        let t = shape.expr_tree();
        assert_eq!(t.nodes[t.root].vars, vec![v(0)]);
        assert_eq!(t.nodes[t.root].children.len(), 2); // {1,2} and {3}
        let preds = t.precedence();
        assert!(preds[&v(1)].contains(&v(0)));
        assert!(preds[&v(3)].contains(&v(0)));
        assert!(!preds[&v(2)].contains(&v(3)));
    }

    /// Def 6.30 extension: Σ1 Π2 Σ3 ψ13 ψ2 over a non-idempotent domain must
    /// order 1 before 3 (the extended edge {1,2,3} glues x2 into the chain).
    #[test]
    fn non_idempotent_extension_orders_products() {
        let shape = QueryShape {
            seq: vec![(v(1), SUM), (v(2), Tag::Product), (v(3), SUM)],
            edges: vec![varset(&[1, 3]), varset(&[2])],
            mul_idempotent: false,
            closed_ops: Default::default(),
        };
        let eff = shape.effective_edges();
        assert_eq!(eff[0], varset(&[1, 2, 3]));
        assert_eq!(eff[1], varset(&[2]));
        let t = shape.expr_tree();
        let preds = t.precedence();
        assert!(preds[&v(3)].contains(&v(1)), "x1 must precede x3:\n{t}");
        assert!(preds[&v(2)].contains(&v(1)), "x1 must precede x2:\n{t}");
    }

    #[test]
    fn isolated_bound_variable_becomes_component() {
        let shape = QueryShape {
            seq: vec![(v(0), SUM), (v(1), SUM)],
            edges: vec![varset(&[0])],
            mul_idempotent: false,
            closed_ops: Default::default(),
        };
        let t = shape.expr_tree();
        // Both are Σ: compression merges them under the root's children; the
        // two components {0} and {1} stay siblings.
        assert_eq!(t.nodes[t.root].children.len(), 2);
    }

    #[test]
    fn precedence_is_transitive() {
        let shape = QueryShape {
            seq: vec![(v(1), SUM), (v(2), MAX), (v(3), SUM), (v(4), MAX)],
            edges: vec![varset(&[1, 2]), varset(&[2, 3]), varset(&[3, 4])],
            mul_idempotent: false,
            closed_ops: Default::default(),
        };
        let t = shape.expr_tree();
        let preds = t.precedence();
        // chain: 1 ≺ 2 ≺ 3 ≺ 4 (alternating tags force the full chain).
        assert!(preds[&v(4)].contains(&v(1)));
    }
}
