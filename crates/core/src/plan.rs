//! Cost-based adaptive planning and prepared (serving-path) queries.
//!
//! The §7 machinery of the paper ([`crate::width`]) picks orderings purely by
//! *width*: `faqw(σ) = max_k ρ*(U_k)` bounds InsideOut's runtime by
//! `O~(N^{faqw(σ)} + ‖ϕ‖)` (Proposition 5.9), and Theorems 7.2/7.5 search
//! `LinEx(P)` for a small-width σ. Width is the right asymptotic yardstick,
//! but on a *concrete database* two orderings of equal width can differ by
//! orders of magnitude: the data enters through the per-edge sizes `‖ψ_S‖`,
//! exactly as in the AGM bound `AGM(U) = Π_S ‖ψ_S‖^{λ*_S}` (paper eq. (3),
//! [`faq_hypergraph::widths::agm_bound`]) — the LP that *weights* the
//! fractional cover by the actual factor sizes instead of counting edges.
//!
//! This module closes that gap with a [`Planner`] that
//!
//! 1. enumerates candidate ϕ-equivalent orderings (the `LinEx(P)` machinery
//!    of [`crate::evo`], the [`crate::width`] optimizers, and a data-driven
//!    [`faq_hypergraph::ordering::best_ordering`] search re-scored against
//!    the EVO membership test);
//! 2. scores every elimination step of every candidate with a cost model fed
//!    by per-factor statistics ([`faq_factor::Factor::stats`]: row counts and
//!    trie-level distinct counts) and the AGM bounds of the step's `U`-sets;
//! 3. emits a [`QueryPlan`] fixing the ordering **and** per-step execution
//!    choices — join representation ([`JoinRep`]), worker-thread count, and
//!    chunk floor — which the engine consumes through
//!    [`crate::exec::PolicySource`].
//!
//! For repeated evaluation — the serving path — a [`PreparedQuery`] caches
//! the plan *plus* the aligned, trie-indexed input factors, so `evaluate()`
//! skips ordering search, factor alignment, and index builds entirely; and a
//! [`PlanCache`] keyed by query schema (shape + size class) lets a fleet of
//! same-shaped queries share one planning pass.
//!
//! Plan choices affect performance only, never results: every candidate
//! ordering is ϕ-equivalent and both join representations (and every thread
//! count) are bit-identical by construction, so a plan-driven run equals
//! [`crate::insideout::insideout`] bit for bit.

use crate::delta::DeltaCache;
use crate::exec::{ExecPolicy, PolicySource};
use crate::insideout::{insideout_with_source, ElimStats, FaqOutput};
use crate::query::{FaqError, FaqQuery, VarAgg};
use faq_factor::fault;
use faq_factor::{DeltaFactor, Factor, FactorStats};
use faq_hypergraph::ordering::best_ordering;
use faq_hypergraph::widths::agm_bound;
use faq_hypergraph::{Hypergraph, Var, VarSet};
use faq_join::JoinRep;
use faq_semiring::AggDomain;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// The execution choices the planner fixed for one elimination step.
#[derive(Debug, Clone)]
pub struct StepPlan {
    /// The eliminated variable (bound semiring steps and free guard steps).
    pub var: Var,
    /// The step's `U`-set in join order.
    pub u_vars: Vec<Var>,
    /// Estimated rows the step's sub-join enumerates (its AGM bound, capped
    /// by the cross-product of the domain sizes).
    pub est_rows: f64,
    /// The execution policy fixed for this step.
    pub policy: ExecPolicy,
}

/// A cost-annotated, reusable evaluation plan for one query schema.
///
/// Produced by [`Planner::plan`]; consumed by the engine through
/// [`PolicySource`], so every elimination step runs under the policy the
/// cost model chose for it. Plans depend only on the query *schema* and the
/// input *sizes* — never on factor values — so one plan serves arbitrarily
/// many evaluations over fresh data of similar scale.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// The chosen ϕ-equivalent variable ordering (free variables first).
    pub order: Vec<Var>,
    /// `faqw(order)` when defined; `None` on degenerate queries whose
    /// `U`-sets are uncoverable (see [`FaqError::Uncoverable`]).
    pub width: Option<f64>,
    /// The cost model's total estimate for this ordering (sum of per-step
    /// estimated rows) — comparable across plans for the same query only.
    pub est_cost: f64,
    /// Per-step choices, innermost elimination first.
    pub steps: Vec<StepPlan>,
    /// Policy of the final output join over the free variables.
    pub output: ExecPolicy,
    /// Fallback policy for steps the planner did not model (e.g. variables
    /// eliminated without a join).
    pub default_policy: ExecPolicy,
    by_var: BTreeMap<Var, usize>,
}

impl QueryPlan {
    /// The planned step for `var`, if the cost model produced one.
    pub fn step_for(&self, var: Var) -> Option<&StepPlan> {
        self.by_var.get(&var).map(|&i| &self.steps[i])
    }

    /// This plan with every per-step policy clamped by the admission budget
    /// `cap` (see [`ExecPolicy::capped`]): thread counts take the minimum,
    /// chunk floors the maximum, join representations are kept. Capping
    /// affects resource use only — a capped plan's output is bit-identical to
    /// the original's. This is how a multi-tenant runtime runs plans tuned
    /// for a dedicated machine under a per-query budget.
    pub fn capped(&self, cap: &ExecPolicy) -> QueryPlan {
        let mut plan = self.clone();
        for step in &mut plan.steps {
            step.policy = step.policy.capped(cap);
        }
        plan.output = plan.output.capped(cap);
        plan.default_policy = plan.default_policy.capped(cap);
        plan
    }
}

impl PolicySource for QueryPlan {
    fn policy_for(&self, var: Var) -> &ExecPolicy {
        self.step_for(var).map_or(&self.default_policy, |s| &s.policy)
    }

    fn output_policy(&self) -> &ExecPolicy {
        &self.output
    }
}

/// The cost-based adaptive planner.
///
/// All knobs are public with serving-oriented defaults; construct with
/// [`Planner::default`] (one worker per hardware thread) or
/// [`Planner::with_threads`] and adjust fields as needed.
#[derive(Debug, Clone)]
pub struct Planner {
    /// Maximum `LinEx(P)` candidates enumerated per planning pass.
    pub linex_cap: usize,
    /// Vertex cap for exact blackbox searches (see [`crate::width::faqw_approx`]).
    pub exact_limit: usize,
    /// Worker threads a plan may schedule per step.
    pub threads: usize,
    /// Chunk floor handed to parallel steps (see [`ExecPolicy::min_chunk_rows`]).
    pub min_chunk_rows: usize,
    /// Basis-row count below which a step keeps the listing kernel: for tiny
    /// joins the `O(arity × n)` trie build costs more than it saves.
    pub listing_rep_threshold: usize,
}

impl Default for Planner {
    fn default() -> Planner {
        Planner::with_threads(crate::exec::hardware_threads())
    }
}

impl Planner {
    /// A planner whose plans run single-threaded.
    pub fn sequential() -> Planner {
        Planner::with_threads(1)
    }

    /// A planner whose plans may use up to `threads` workers per step.
    pub fn with_threads(threads: usize) -> Planner {
        Planner {
            linex_cap: 768,
            exact_limit: 14,
            threads: threads.max(1),
            min_chunk_rows: ExecPolicy::DEFAULT_MIN_CHUNK_ROWS,
            listing_rep_threshold: 48,
        }
    }

    /// Plan `q`: pick a ϕ-equivalent ordering by data-driven cost and fix
    /// per-step execution choices.
    ///
    /// Builds (and caches, on the factors) the trie indexes the statistics
    /// come from — deliberate on the serving path, where the same indexes
    /// feed every subsequent join.
    pub fn plan<D: AggDomain>(&self, q: &FaqQuery<D>) -> Result<QueryPlan, FaqError> {
        q.validate()?;
        let shape = q.shape();
        let h = q.hypergraph();
        let sizes: Vec<u64> = q.factors.iter().map(|f| f.len() as u64).collect();
        let stats: Vec<FactorStats> = q.factors.iter().map(|f| f.stats()).collect();

        // ---- Candidate orderings. Every candidate must be ϕ-equivalent with
        // the free variables first; LinEx extensions are equivalent by
        // soundness (Theorems 6.8/6.23), the rest are membership-tested.
        let mut model = CostModel::new(&h, &sizes, q);
        let mut candidates: Vec<Vec<Var>> = vec![q.ordering()];
        let (extensions, exhausted) = crate::evo::linear_extensions(&shape, self.linex_cap);
        candidates.extend(extensions);
        // Costs computed ahead of the scoring loop (the data-driven
        // candidate annotates its own `OrderingResult::cost`); the loop
        // reuses them instead of re-walking the model.
        let mut precomputed: HashMap<Vec<Var>, f64> = HashMap::new();
        if !exhausted {
            // The enumeration was truncated: add the width optimizers' picks
            // and a data-driven hypergraph-ordering candidate (greedy/exact
            // search under the AGM-weighted width), annotated with its
            // modelled cost and screened against EVO below.
            if let Ok(r) = crate::width::faqw_optimize(&shape, 1, self.exact_limit) {
                candidates.push(r.order);
            }
            let mut data_res = best_ordering(
                &h,
                |b| agm_bound(&h, b, &sizes).map(|a| a.log2()).unwrap_or(b.len() as f64),
                self.exact_limit,
            );
            if q.check_ordering(&data_res.order).is_ok() {
                let cost = model.ordering_cost(q, &data_res.order);
                data_res = data_res.with_cost(cost);
            }
            if let Some(cost) = data_res.cost {
                precomputed.insert(data_res.order.clone(), cost);
            }
            candidates.push(data_res.order);
        }
        candidates.retain(|sigma| {
            q.check_ordering(sigma).is_ok() && crate::evo::is_equivalent_ordering(&shape, sigma)
        });
        let mut seen: std::collections::HashSet<Vec<Var>> = std::collections::HashSet::new();
        candidates.retain(|sigma| seen.insert(sigma.clone()));
        if candidates.is_empty() {
            candidates.push(q.ordering()); // always valid: the query's own order
        }

        // ---- Score every candidate with the shared, memoized cost model;
        // width (expensive: one ρ* LP per U-set) breaks ties only, so it is
        // computed lazily for the cost finalists alone.
        let scored: Vec<(Vec<Var>, f64)> = candidates
            .into_iter()
            .map(|sigma| {
                let cost = precomputed
                    .get(&sigma)
                    .copied()
                    .unwrap_or_else(|| model.ordering_cost(q, &sigma));
                (sigma, cost)
            })
            .collect();
        let min_cost = scored.iter().map(|&(_, c)| c).fold(f64::INFINITY, f64::min);
        let mut best: Option<(Vec<Var>, f64, Option<f64>)> = None;
        for (sigma, cost) in scored {
            if cost > min_cost + 1e-9 {
                continue; // not a finalist — skip the width LPs entirely
            }
            let width = crate::width::faqw_of_ordering(&shape, &sigma).ok();
            let better = match &best {
                None => true,
                Some((_, _, bw)) => {
                    width.unwrap_or(f64::INFINITY) < bw.unwrap_or(f64::INFINITY) - 1e-12
                }
            };
            if better {
                best = Some((sigma, cost, width));
            }
        }
        let (order, est_cost, width) = best.expect("at least one candidate ordering");

        // ---- Fix per-step execution choices along the winner.
        let steps = model.step_plans(q, &order, &stats, self);
        let by_var: BTreeMap<Var, usize> =
            steps.iter().enumerate().map(|(i, s)| (s.var, i)).collect();
        let output = self.policy_from_estimate(model.output_rows(q, &order));
        Ok(QueryPlan {
            order,
            width,
            est_cost,
            steps,
            output,
            default_policy: ExecPolicy::sequential(),
            by_var,
        })
    }

    /// Plan `q` and bundle the plan with aligned, indexed inputs into a
    /// [`PreparedQuery`] ready for repeated evaluation.
    pub fn prepare<D: AggDomain + Clone + Sync>(
        &self,
        q: &FaqQuery<D>,
    ) -> Result<PreparedQuery<D>, FaqError> {
        let plan = Arc::new(self.plan(q)?);
        PreparedQuery::with_plan(q, plan)
    }

    /// Translate a basis-row estimate into a step policy: parallel chunked
    /// execution when the estimated rows clear the chunk floor, trie vs
    /// listing representation by basis size.
    fn policy_from_estimate(&self, est_rows: f64) -> ExecPolicy {
        let rep = if est_rows < self.listing_rep_threshold as f64 {
            JoinRep::Listing
        } else {
            JoinRep::Trie
        };
        let parallel = self.threads > 1 && est_rows >= 2.0 * self.min_chunk_rows.max(1) as f64;
        ExecPolicy {
            threads: if parallel { self.threads } else { 1 },
            min_chunk_rows: if parallel { self.min_chunk_rows } else { usize::MAX },
            rep,
            deadline: None,
            cancel: None,
        }
    }
}

/// The data-driven step cost model: AGM bounds over the original edges,
/// capped by domain cross-products, memoized per `U`-set.
struct CostModel<'a> {
    h: &'a Hypergraph,
    sizes: &'a [u64],
    space: BTreeMap<Var, f64>,
    memo: HashMap<Vec<Var>, f64>,
}

impl<'a> CostModel<'a> {
    fn new<D: AggDomain>(h: &'a Hypergraph, sizes: &'a [u64], q: &FaqQuery<D>) -> CostModel<'a> {
        let space =
            q.ordering().into_iter().map(|v| (v, (q.domains.size(v) as f64).max(1.0))).collect();
        CostModel { h, sizes, space, memo: HashMap::new() }
    }

    /// Estimated rows a join over `u` enumerates: `AGM(u)` under the input
    /// sizes, capped by `Π |Dom|`; the domain cross-product alone when `u`
    /// is uncoverable (degenerate queries never error the planner).
    fn est_rows(&mut self, u: &VarSet) -> f64 {
        if u.is_empty() {
            return 1.0;
        }
        let key: Vec<Var> = u.iter().copied().collect();
        if let Some(&c) = self.memo.get(&key) {
            return c;
        }
        let cross: f64 = u.iter().map(|v| self.space.get(v).copied().unwrap_or(1.0)).product();
        let est = match agm_bound(self.h, u, self.sizes) {
            Some(a) => a.min(cross),
            None => cross,
        };
        self.memo.insert(key, est);
        est
    }

    /// Total estimated cost of eliminating along `sigma`: the sum of every
    /// fold step's estimated sub-join rows plus the output join's.
    fn ordering_cost<D: AggDomain>(&mut self, q: &FaqQuery<D>, sigma: &[Var]) -> f64 {
        let mut total = 0.0;
        self.replay(q, sigma, |model, _var, u, _join_order| {
            total += model.est_rows(u);
        });
        total + self.output_rows(q, sigma)
    }

    /// Estimated rows of the final output join (the free variables).
    fn output_rows<D: AggDomain>(&mut self, q: &FaqQuery<D>, sigma: &[Var]) -> f64 {
        let free: VarSet = sigma[..q.free.len()].iter().copied().collect();
        self.est_rows(&free)
    }

    /// Replay InsideOut's edge-set evolution along `sigma` symbolically
    /// (schemas only), invoking `on_step` for every fold step with a
    /// non-empty incident set — mirroring `run_elimination`'s phases 1–2.
    fn replay<D: AggDomain>(
        &mut self,
        q: &FaqQuery<D>,
        sigma: &[Var],
        mut on_step: impl FnMut(&mut Self, Var, &VarSet, &[Var]),
    ) {
        let f = q.free.len();
        let sigma_pos =
            |v: Var| -> usize { sigma.iter().position(|&s| s == v).expect("var in sigma") };
        let mut edges: Vec<VarSet> =
            q.factors.iter().map(|fac| fac.schema().iter().copied().collect()).collect();
        // Phase 1: bound variables, innermost first.
        for k in (f..sigma.len()).rev() {
            let var = sigma[k];
            match q.agg_of(var).expect("bound variable has an aggregate") {
                VarAgg::Semiring(_) => {
                    let (incident, mut rest): (Vec<VarSet>, Vec<VarSet>) =
                        edges.drain(..).partition(|e| e.contains(&var));
                    if incident.is_empty() {
                        edges = rest;
                        edges.push(VarSet::new());
                        continue;
                    }
                    let mut u = VarSet::new();
                    for e in &incident {
                        u.extend(e.iter().copied());
                    }
                    let mut join_order: Vec<Var> =
                        u.iter().copied().filter(|&x| x != var).collect();
                    join_order.sort_by_key(|&v| sigma_pos(v));
                    join_order.push(var);
                    on_step(self, var, &u, &join_order);
                    let reduced: VarSet = u.iter().copied().filter(|&x| x != var).collect();
                    rest.push(reduced);
                    edges = rest;
                }
                VarAgg::Product => {
                    for e in &mut edges {
                        e.remove(&var);
                    }
                }
            }
        }
        // Phase 2: free variables under 01-OR, innermost first.
        for k in (0..f).rev() {
            let var = sigma[k];
            let incident: Vec<usize> =
                (0..edges.len()).filter(|&i| edges[i].contains(&var)).collect();
            if incident.is_empty() {
                continue;
            }
            let mut u = VarSet::new();
            for &i in &incident {
                u.extend(edges[i].iter().copied());
            }
            let mut join_order: Vec<Var> = u.iter().copied().collect();
            join_order.sort_by_key(|&v| sigma_pos(v));
            on_step(self, var, &u, &join_order);
            let mut kept: Vec<VarSet> = Vec::with_capacity(edges.len());
            for (i, e) in edges.drain(..).enumerate() {
                if !incident.contains(&i) {
                    kept.push(e);
                }
            }
            kept.push(u.iter().copied().filter(|&x| x != var).collect());
            edges = kept;
        }
    }

    /// Per-step execution choices along the chosen ordering, combining the
    /// step's AGM estimate with the input factors' trie statistics (root
    /// distinct counts bound the chunkable parallelism of input-rooted
    /// joins).
    fn step_plans<D: AggDomain>(
        &mut self,
        q: &FaqQuery<D>,
        sigma: &[Var],
        stats: &[FactorStats],
        planner: &Planner,
    ) -> Vec<StepPlan> {
        // Distinct-value counts of input factors' leading columns, per var:
        // if every input holding `var` in front has one distinct value there,
        // chunking cannot help no matter the row estimate.
        let mut root_distinct: BTreeMap<Var, usize> = BTreeMap::new();
        for (fac, st) in q.factors.iter().zip(stats) {
            if let Some(&lead) = fac.schema().first() {
                let e = root_distinct.entry(lead).or_insert(0);
                *e = (*e).max(st.root_distinct());
            }
        }
        let mut steps: Vec<StepPlan> = Vec::new();
        self.replay(q, sigma, |model, var, u, join_order| {
            let est = model.est_rows(u);
            let mut policy = planner.policy_from_estimate(est);
            if let Some(&first) = join_order.first() {
                if let Some(&d) = root_distinct.get(&first) {
                    if d < 2 {
                        // Provably unchunkable at the first join variable.
                        policy.threads = 1;
                        policy.min_chunk_rows = usize::MAX;
                    }
                }
            }
            steps.push(StepPlan { var, u_vars: join_order.to_vec(), est_rows: est, policy });
        });
        steps
    }
}

/// A query prepared for repeated evaluation: the plan plus pre-aligned,
/// pre-indexed input factors.
///
/// Construction pays for ordering search, factor alignment to the plan
/// order, and trie-index builds exactly once; every [`PreparedQuery::evaluate`]
/// after that runs straight into the join kernels (factor clones keep their
/// built tries). *Intermediate* factors need no index build either: each
/// elimination step's output streams into its trie as rows are emitted
/// (see [`faq_factor::FactorBuilder::with_streaming_trie`]), so the serving
/// path never re-indexes a listing — inputs are indexed here, intermediates
/// at birth. Factor values can be swapped out between evaluations with
/// [`PreparedQuery::update_factor`] — the plan is schema-keyed, so results
/// stay exact for arbitrary new data; only the cost estimates age.
///
/// For *point updates* the handle goes one step further:
/// [`PreparedQuery::apply_delta`] merges a sorted batch of inserts, merges,
/// and deletes ([`DeltaFactor`]) into one factor and re-runs only the
/// elimination steps — restricted to the touched key ranges — that the change
/// can reach, against intermediates cached from the previous evaluation (see
/// [`crate::delta`]).
pub struct PreparedQuery<D: AggDomain> {
    query: FaqQuery<D>,
    plan: Arc<QueryPlan>,
    /// Traced intermediates for incremental replay; primed lazily by the
    /// first [`PreparedQuery::apply_delta`], invalidated by
    /// [`PreparedQuery::update_factor`].
    cache: Option<DeltaCache<D::E>>,
}

impl<D: AggDomain + Clone + Sync> PreparedQuery<D> {
    /// Plan `q` with the default planner and prepare it for serving.
    pub fn new(q: &FaqQuery<D>) -> Result<PreparedQuery<D>, FaqError> {
        Planner::default().prepare(q)
    }

    /// Bundle an existing (possibly [`PlanCache`]-shared) plan with `q`.
    pub fn with_plan(q: &FaqQuery<D>, plan: Arc<QueryPlan>) -> Result<PreparedQuery<D>, FaqError> {
        q.validate()?;
        q.check_ordering(&plan.order)?;
        let mut query = q.clone();
        for fac in &mut query.factors {
            // Re-sort only the factors the plan order actually misaligns; an
            // aligned input (the common serving case) is kept as-is instead
            // of being cloned row by row.
            if let std::borrow::Cow::Owned(aligned) = fac.align_to_cow(&plan.order) {
                *fac = aligned;
            }
            fac.trie(); // build (and cache) the serving index now
        }
        Ok(PreparedQuery { query, plan, cache: None })
    }

    /// Evaluate the prepared query under its plan.
    ///
    /// Bit-identical to [`crate::insideout::insideout`] on the same inputs;
    /// no re-planning, re-alignment, or re-indexing happens here.
    pub fn evaluate(&self) -> Result<FaqOutput<D::E>, FaqError> {
        insideout_with_source(&self.query, &self.plan.order, &*self.plan)
    }

    /// Evaluate under an admission budget: the plan's per-step policies
    /// clamped by `cap` (see [`QueryPlan::capped`]). Bit-identical to
    /// [`PreparedQuery::evaluate`]; only resource use changes. The capped
    /// plan is derived per call — a cheap clone of the per-step policy table,
    /// no re-planning.
    pub fn evaluate_budgeted(&self, cap: &ExecPolicy) -> Result<FaqOutput<D::E>, FaqError> {
        let capped = self.plan.capped(cap);
        insideout_with_source(&self.query, &capped.order, &capped)
    }

    /// Replace the values of input factor `slot` (position in the original
    /// factor list) with fresh data over the same schema.
    ///
    /// The new factor is aligned to the plan order and indexed immediately,
    /// keeping the handle serving-ready. Errors if the schema (as a variable
    /// set) differs — naming the offending slot in the
    /// [`FaqError::FactorSchemaMismatch`] — or the new values violate the
    /// query's domains. Every error path leaves the handle — including any
    /// cached incremental intermediates — exactly as it was; a successful
    /// swap drops the delta cache (it described the old values) and the next
    /// [`PreparedQuery::apply_delta`] re-primes it.
    pub fn update_factor(&mut self, slot: usize, factor: Factor<D::E>) -> Result<(), FaqError> {
        let current = self
            .query
            .factors
            .get(slot)
            .ok_or_else(|| FaqError::BadOrdering(format!("factor slot {slot} out of range")))?;
        Self::check_slot_schema(slot, current, factor.schema())?;
        let aligned = factor.align_to(&self.plan.order);
        let old = std::mem::replace(&mut self.query.factors[slot], aligned);
        if let Err(e) = self.query.validate() {
            self.query.factors[slot] = old; // roll back: keep the handle usable
            return Err(e);
        }
        self.query.factors[slot].trie();
        self.cache = None;
        Ok(())
    }

    /// Errors with [`FaqError::FactorSchemaMismatch`] — naming `slot` and a
    /// variable from the symmetric difference — unless `schema` covers the
    /// same variable set as the prepared factor `current`.
    fn check_slot_schema(
        slot: usize,
        current: &Factor<D::E>,
        schema: &[Var],
    ) -> Result<(), FaqError> {
        let old_schema: VarSet = current.schema().iter().copied().collect();
        let new_schema: VarSet = schema.iter().copied().collect();
        if old_schema != new_schema {
            // Name a variable from the symmetric difference: one the update
            // adds, or — when its schema is a strict subset — one it is
            // missing. The sets differ, so one side is non-empty.
            let var = new_schema
                .difference(&old_schema)
                .next()
                .or_else(|| old_schema.difference(&new_schema).next())
                .copied()
                .expect("schemas differ");
            return Err(FaqError::FactorSchemaMismatch { slot, var });
        }
        Ok(())
    }

    /// Apply a point-update batch to factor `slot` and return the query's new
    /// output, re-running only the elimination work the change can reach.
    ///
    /// Inserts and updates merge through the domain's first ⊕-operator
    /// (`AggId(0)` — ordinary addition under counting, `max` under
    /// max-tropical, `or` under boolean); use
    /// [`PreparedQuery::apply_delta_with`] to pick another operator. The
    /// first call primes a cache of per-step intermediates with a traced
    /// evaluation; subsequent calls replay only the steps whose inputs
    /// changed, restricted to the touched key ranges where the step's join
    /// order allows it (see [`crate::delta`] for the machinery and its
    /// soundness argument). The returned output is **bit-identical** to
    /// [`PreparedQuery::update_factor`] with the merged factor followed by
    /// [`PreparedQuery::evaluate`]; the returned [`ElimStats`] describe the
    /// replayed work only.
    ///
    /// Errors — without touching the handle — if the slot is out of range,
    /// the delta's schema is not a permutation of the slot's
    /// ([`FaqError::FactorSchemaMismatch`]), a key falls outside the query's
    /// domains, or the operator is unknown to the domain.
    pub fn apply_delta(
        &mut self,
        slot: usize,
        delta: &DeltaFactor<D::E>,
    ) -> Result<FaqOutput<D::E>, FaqError> {
        self.apply_delta_with(slot, delta, faq_semiring::AggId(0))
    }

    /// [`PreparedQuery::apply_delta`] with an explicit ⊕-operator for merging
    /// delta values into existing rows.
    pub fn apply_delta_with(
        &mut self,
        slot: usize,
        delta: &DeltaFactor<D::E>,
        op: faq_semiring::AggId,
    ) -> Result<FaqOutput<D::E>, FaqError> {
        // Validate everything BEFORE mutating: slot, operator, schema, keys.
        let current = self
            .query
            .factors
            .get(slot)
            .ok_or_else(|| FaqError::BadOrdering(format!("factor slot {slot} out of range")))?;
        if op.index() >= self.query.domain.num_ops() {
            return Err(FaqError::UnknownAggregate(op));
        }
        Self::check_slot_schema(slot, current, delta.schema())?;
        let aligned = delta.align_to(&self.plan.order);
        for (key, _) in aligned.iter() {
            for (v, &value) in aligned.schema().iter().zip(key) {
                if value >= self.query.domains.size(*v) {
                    return Err(FaqError::ValueOutOfDomain { var: *v, value });
                }
            }
        }

        if self.cache.is_none() {
            let traced = fault::catch_abort(|| {
                crate::delta::traced_eval(&self.query, &self.plan.order, &*self.plan)
            })
            .unwrap_or_else(|abort| Err(abort.into()))?;
            self.cache = Some(traced);
        }

        // The merge (including the spilled splice path, which does chunk I/O
        // on this thread) and the trie rebuild run BEFORE anything is
        // installed: a storage abort here surfaces as a typed error with the
        // handle — factor and cached trace — completely untouched.
        let dom = &self.query.domain;
        let (merged, ranges) = fault::catch_abort(|| {
            aligned.apply_to(
                &self.query.factors[slot],
                |a, b| dom.add(op, a, b),
                |x| dom.is_zero(x),
            )
        })
        .map_err(FaqError::from)?;
        if ranges.is_empty() {
            // The batch was a no-op (e.g. deletes of absent keys): serve the
            // cached output, no replay.
            let cache = self.cache.as_ref().expect("cache primed above");
            return Ok(FaqOutput {
                factor: cache.output_factor().clone(),
                stats: ElimStats::default(),
            });
        }
        // keep the handle serving-ready, like update_factor
        fault::catch_abort(|| {
            merged.trie();
        })
        .map_err(FaqError::from)?;

        // Replay mutates the trace's cached node factors in place, so a
        // mid-replay failure cannot leave the trace consistent: roll the
        // factor back and drop the cache (the next delta re-primes it via a
        // fresh traced evaluation). Earlier failure points never reach this.
        let prev = std::mem::replace(&mut self.query.factors[slot], merged);
        let replayed = {
            let cache = self.cache.as_mut().expect("cache primed above");
            fault::catch_abort(|| {
                crate::delta::replay(cache, &self.query, &*self.plan, slot, ranges)
            })
        };
        match replayed {
            Ok(Ok(out)) => Ok(out),
            Ok(Err(e)) => {
                self.query.factors[slot] = prev;
                self.cache = None;
                Err(e)
            }
            Err(abort) => {
                self.query.factors[slot] = prev;
                self.cache = None;
                Err(abort.into())
            }
        }
    }

    /// The plan this handle executes.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// The shared plan handle (e.g. to test [`PlanCache`] identity or to
    /// prepare another same-shaped query without re-planning).
    pub fn plan_arc(&self) -> Arc<QueryPlan> {
        Arc::clone(&self.plan)
    }

    /// The prepared query (factors aligned to the plan order).
    pub fn query(&self) -> &FaqQuery<D> {
        &self.query
    }
}

/// Cloning a prepared handle yields an independent serving replica: the
/// aligned factors (with their built trie indexes — [`Factor`]'s `Clone`
/// preserves them) and the `Arc`-shared plan are cloned, while the
/// incremental-replay trace is **not** — it is per-handle state that the
/// replica's first [`PreparedQuery::apply_delta`] re-primes lazily. This is
/// the publish primitive of epoch-snapshot serving: a writer mutates its
/// master handle via deltas, then clones read-only replicas for the next
/// epoch.
impl<D: AggDomain + Clone> Clone for PreparedQuery<D> {
    fn clone(&self) -> PreparedQuery<D> {
        PreparedQuery { query: self.query.clone(), plan: Arc::clone(&self.plan), cache: None }
    }
}

/// Schema signature a plan is cached under: the tagged quantifier prefix,
/// the hyperedges, and a log₂ size class per factor (so a plan is reused
/// across value updates of similar scale but re-derived when the data grows
/// past the next power of two).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    seq: Vec<(u32, u8, u32)>,
    edges: Vec<Vec<u32>>,
    size_classes: Vec<u32>,
}

impl PlanKey {
    fn of<D: AggDomain>(q: &FaqQuery<D>) -> PlanKey {
        let shape = q.shape();
        let seq = shape
            .seq
            .iter()
            .map(|&(v, tag)| match tag {
                crate::exprtree::Tag::Free => (v.0, 0u8, 0u32),
                crate::exprtree::Tag::Semiring(op) => (v.0, 1u8, op.0),
                crate::exprtree::Tag::Product => (v.0, 2u8, 0u32),
            })
            .collect();
        let edges = q
            .factors
            .iter()
            .map(|f| f.schema().iter().map(|v| v.0).collect::<Vec<u32>>())
            .collect();
        let size_classes = q.factors.iter().map(|f| (f.len() as u64).max(1).ilog2()).collect();
        PlanKey { seq, edges, size_classes }
    }
}

/// A concurrency-safe cache of [`QueryPlan`]s keyed by query schema and size
/// class — the "plan once, serve many" entry point for repeated traffic of
/// same-shaped queries.
#[derive(Debug, Default)]
pub struct PlanCache {
    inner: Mutex<HashMap<PlanKey, Arc<QueryPlan>>>,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached plan for `q`'s schema, planning (and caching) on a miss.
    pub fn get_or_plan<D: AggDomain>(
        &self,
        planner: &Planner,
        q: &FaqQuery<D>,
    ) -> Result<Arc<QueryPlan>, FaqError> {
        let key = PlanKey::of(q);
        if let Some(plan) = self.inner.lock().expect("plan cache lock").get(&key) {
            return Ok(Arc::clone(plan));
        }
        let plan = Arc::new(planner.plan(q)?);
        self.inner.lock().expect("plan cache lock").entry(key).or_insert_with(|| Arc::clone(&plan));
        Ok(plan)
    }

    /// Prepare `q` against the cache: reuse the schema's plan when present.
    pub fn prepare<D: AggDomain + Clone + Sync>(
        &self,
        planner: &Planner,
        q: &FaqQuery<D>,
    ) -> Result<PreparedQuery<D>, FaqError> {
        let plan = self.get_or_plan(planner, q)?;
        PreparedQuery::with_plan(q, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insideout::insideout;
    use faq_factor::Domains;
    use faq_hypergraph::v;
    use faq_semiring::{CountDomain, RealDomain};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn triangle_query(seed: u64, rows: usize) -> FaqQuery<CountDomain> {
        let mut r = StdRng::seed_from_u64(seed);
        let d = 12u32;
        let mut mk = |a: u32, b: u32| {
            let mut tuples = std::collections::BTreeMap::new();
            for _ in 0..rows {
                tuples.insert(vec![r.gen_range(0..d), r.gen_range(0..d)], r.gen_range(1..4u64));
            }
            Factor::new(vec![v(a), v(b)], tuples.into_iter().collect()).unwrap()
        };
        FaqQuery::new(
            CountDomain,
            Domains::uniform(3, d),
            vec![v(0)],
            vec![
                (v(1), VarAgg::Semiring(CountDomain::SUM)),
                (v(2), VarAgg::Semiring(CountDomain::MAX)),
            ],
            vec![mk(0, 1), mk(1, 2), mk(0, 2)],
        )
        .unwrap()
    }

    #[test]
    fn plan_is_equivalent_and_executable() {
        let q = triangle_query(1, 80);
        let plan = Planner::sequential().plan(&q).unwrap();
        assert!(q.check_ordering(&plan.order).is_ok());
        assert!(crate::evo::is_equivalent_ordering(&q.shape(), &plan.order));
        assert!(plan.est_cost.is_finite() && plan.est_cost > 0.0);
        assert!(!plan.steps.is_empty());
        let prepared = Planner::sequential().prepare(&q).unwrap();
        assert_eq!(prepared.evaluate().unwrap().factor, insideout(&q).unwrap().factor);
    }

    #[test]
    fn prepared_inputs_are_aligned_and_indexed() {
        let q = triangle_query(2, 50);
        let prepared = Planner::sequential().prepare(&q).unwrap();
        for fac in &prepared.query().factors {
            assert!(fac.trie_if_built().is_some(), "prepare must index every input");
            let aligned: Vec<Var> = prepared
                .plan()
                .order
                .iter()
                .copied()
                .filter(|v| fac.schema().contains(v))
                .collect();
            assert_eq!(fac.schema(), aligned.as_slice(), "inputs follow the plan order");
        }
    }

    #[test]
    fn update_factor_serves_fresh_values() {
        let q = triangle_query(3, 40);
        let mut prepared = Planner::sequential().prepare(&q).unwrap();
        let q2 = triangle_query(4, 40);
        for (i, fac) in q2.factors.iter().enumerate() {
            prepared.update_factor(i, fac.clone()).unwrap();
        }
        assert_eq!(prepared.evaluate().unwrap().factor, insideout(&q2).unwrap().factor);
        // Schema mismatch is rejected and leaves the handle intact.
        let bad = Factor::new(vec![v(0)], vec![(vec![1], 1u64)]).unwrap();
        assert!(prepared.update_factor(0, bad).is_err());
        assert_eq!(prepared.evaluate().unwrap().factor, insideout(&q2).unwrap().factor);
        // Out-of-domain values are rejected with a rollback.
        let out = Factor::new(vec![v(0), v(1)], vec![(vec![99, 0], 1u64)]).unwrap();
        assert!(matches!(prepared.update_factor(0, out), Err(FaqError::ValueOutOfDomain { .. })));
        assert_eq!(prepared.evaluate().unwrap().factor, insideout(&q2).unwrap().factor);
    }

    #[test]
    fn plan_cache_reuses_schema_plans() {
        let cache = PlanCache::new();
        let planner = Planner::sequential();
        let a = triangle_query(5, 60);
        let b = triangle_query(6, 60); // same schema and size class, new values
        let pa = cache.get_or_plan(&planner, &a).unwrap();
        let pb = cache.get_or_plan(&planner, &b).unwrap();
        assert_eq!(cache.len(), 1, "same schema → one cached plan");
        assert!(Arc::ptr_eq(&pa, &pb));
        let prepared = cache.prepare(&planner, &b).unwrap();
        assert_eq!(prepared.evaluate().unwrap().factor, insideout(&b).unwrap().factor);
        // A much larger instance lands in a different size class.
        let big = triangle_query(7, 2000);
        let _ = cache.get_or_plan(&planner, &big).unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cost_model_prefers_small_intermediates() {
        // ψ0(x1) tiny, ψ1(x1,x2) huge: eliminating x2 first joins only the
        // huge factor; the AGM-weighted model must not cost the tiny one in.
        let mut r = StdRng::seed_from_u64(8);
        let small = Factor::new(vec![v(1)], vec![(vec![0], 1.0f64), (vec![1], 2.0)]).unwrap();
        let mut tuples = std::collections::BTreeMap::new();
        for _ in 0..400 {
            tuples.insert(vec![r.gen_range(0..30u32), r.gen_range(0..30u32)], 1.0f64);
        }
        let big = Factor::new(vec![v(1), v(2)], tuples.into_iter().collect()).unwrap();
        let q = FaqQuery::new(
            RealDomain,
            Domains::uniform(3, 30),
            vec![],
            vec![
                (v(1), VarAgg::Semiring(RealDomain::SUM)),
                (v(2), VarAgg::Semiring(RealDomain::SUM)),
            ],
            vec![small, big],
        )
        .unwrap();
        let plan = Planner::sequential().plan(&q).unwrap();
        assert!(plan.est_cost <= 2.0 * 400.0 + 8.0, "cost {} ignores data", plan.est_cost);
        let prepared = Planner::sequential().prepare(&q).unwrap();
        assert_eq!(prepared.evaluate().unwrap().factor, insideout(&q).unwrap().factor);
    }

    #[test]
    fn planned_threads_match_sequential_bitwise() {
        let q = triangle_query(9, 400);
        let seq = insideout(&q).unwrap();
        for threads in [1usize, 2, 4] {
            let mut planner = Planner::with_threads(threads);
            planner.min_chunk_rows = 1; // force chunking decisions on
            let prepared = planner.prepare(&q).unwrap();
            assert_eq!(prepared.evaluate().unwrap().factor, seq.factor, "threads {threads}");
        }
    }
}
