//! The parallel execution engine for InsideOut.
//!
//! Each elimination step of Algorithm 1 is one multiway join followed by a
//! streaming `⊕⁽ᵏ⁾`-fold over the innermost variable (paper eq. (7)). The
//! join enumerates bindings in lexicographic order of the step's variable
//! ordering, so the search tree decomposes over *value ranges of the first
//! join variable*: ranges partitioning `Dom(order[0])` give disjoint slices
//! whose outputs, concatenated in range order, are exactly the sequential
//! output stream. This module exploits that:
//!
//! 1. pick the largest input factor containing the first join variable and
//!    cut that variable's values into up to [`ExecPolicy::threads`] ranges of
//!    roughly equal row counts, never splitting a value — under the trie
//!    representation the cuts come straight off the root level of the
//!    factor's cached index ([`faq_factor::FactorTrie::partition_root`]);
//!    the listing kernel scans the column
//!    ([`faq_factor::Factor::column_partition`]);
//! 2. run the leapfrog join kernel per chunk on a `std::thread::scope`
//!    worker pool ([`faq_join::multiway_join_range_rep`]), each worker
//!    stream-folding its groups column-flat into its own
//!    [`faq_factor::FactorBuilder`] — no per-row allocations — while walking
//!    a range-restricted view of the same cached tries;
//! 3. concatenate the per-chunk builders in range order (chunk key ranges
//!    are disjoint and ascending, so the k-way merge is an append) into the
//!    output factor's builder, growing the output's trie index *during* the
//!    merge ([`faq_factor::FactorBuilder::with_streaming_trie`]) so the next
//!    elimination step never re-indexes the intermediate.
//!
//! **Determinism.** The output factor is bit-identical to the sequential
//! engine's for every semiring and every thread count: a fold group's first
//! column is the first join variable, so no group ever spans two chunks, and
//! within a chunk the fold consumes matches in the same lexicographic order
//! as the sequential engine. Steps whose fold group is empty (the sub-join
//! binds only the eliminated variable) run sequentially — splitting them
//! would re-associate the `⊕`-fold, which is observable for non-associative
//! carriers like `f64`. Run *statistics* are not bit-identical: per-chunk
//! searches each visit their own root, so node/seek totals can exceed the
//! sequential counts.

use crate::insideout::FaqOutput;
use crate::query::{FaqError, FaqQuery};
use faq_factor::fault::{self, AbortCtl, QueryAbort};
use faq_factor::{Domains, Factor, FactorBuilder};
use faq_hypergraph::Var;
use faq_join::{multiway_join_range_rep, JoinInput, JoinStats};
use faq_semiring::{AggDomain, SemiringElem};

pub use faq_factor::{CancelToken, Deadline};
pub use faq_join::JoinRep;

/// Execution policy for the InsideOut engine.
///
/// `threads == 1` is exactly the sequential engine. With more threads, each
/// elimination join is chunked by first-variable value ranges and the chunks
/// run on a scoped worker pool; the output is bit-identical regardless of
/// thread count (see the module docs for why). `rep` selects the factor
/// representation the join cursors walk — the columnar trie index (default)
/// or the raw sorted listing — with bit-identical output either way.
///
/// The struct is `#[non_exhaustive]`: start from a constructor
/// ([`ExecPolicy::sequential`], [`ExecPolicy::with_threads`], or
/// [`ExecPolicy::default`]) and adjust knobs with the builder-style setters
/// ([`ExecPolicy::threads`], [`ExecPolicy::min_chunk_rows`],
/// [`ExecPolicy::rep`]), so future knobs never break downstream construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ExecPolicy {
    /// Maximum worker threads per elimination join (clamped to ≥ 1).
    pub threads: usize,
    /// Minimum rows of the chunking factor per chunk: a join whose chunking
    /// basis has fewer than `2 × min_chunk_rows` rows runs sequentially, and
    /// the chunk count never exceeds `basis rows / min_chunk_rows`. Guards
    /// against paying thread spawn cost on tiny intermediates.
    pub min_chunk_rows: usize,
    /// Factor representation for the join kernels ([`JoinRep::Trie`] by
    /// default; [`JoinRep::Listing`] is the reference / comparison kernel).
    pub rep: JoinRep,
    /// Abort the evaluation once this instant passes. Checked cooperatively
    /// — every few thousand seeks in the join loop and at every chunk
    /// fault-in — and surfaced as [`FaqError::DeadlineExceeded`]. `None`
    /// (the default) runs to completion.
    pub deadline: Option<Deadline>,
    /// Abort the evaluation when this token is triggered (same checkpoints
    /// as the deadline); surfaced as [`FaqError::Cancelled`].
    pub cancel: Option<CancelToken>,
}

impl ExecPolicy {
    /// Default [`ExecPolicy::min_chunk_rows`]: below ~512-row kernels, spawn
    /// overhead dominates the join work.
    pub const DEFAULT_MIN_CHUNK_ROWS: usize = 512;

    /// The sequential policy: one thread, chunking disabled.
    pub fn sequential() -> ExecPolicy {
        ExecPolicy {
            threads: 1,
            min_chunk_rows: usize::MAX,
            rep: JoinRep::default(),
            deadline: None,
            cancel: None,
        }
    }

    /// A parallel policy with `threads` workers and the default chunk floor.
    pub fn with_threads(threads: usize) -> ExecPolicy {
        ExecPolicy {
            threads: threads.max(1),
            min_chunk_rows: Self::DEFAULT_MIN_CHUNK_ROWS,
            rep: JoinRep::default(),
            deadline: None,
            cancel: None,
        }
    }

    /// This policy with the join kernels walking `rep`.
    pub fn with_rep(mut self, rep: JoinRep) -> ExecPolicy {
        self.rep = rep;
        self
    }

    /// This policy with up to `n` worker threads (clamped to ≥ 1).
    pub fn threads(mut self, n: usize) -> ExecPolicy {
        self.threads = n.max(1);
        self
    }

    /// This policy with chunk floor `rows` (see the field docs).
    pub fn min_chunk_rows(mut self, rows: usize) -> ExecPolicy {
        self.min_chunk_rows = rows;
        self
    }

    /// This policy aborting (with [`FaqError::DeadlineExceeded`]) once
    /// `deadline` passes.
    pub fn deadline(mut self, deadline: Deadline) -> ExecPolicy {
        self.deadline = Some(deadline);
        self
    }

    /// This policy aborting (with [`FaqError::Cancelled`]) when `token`
    /// fires.
    pub fn cancel_token(mut self, token: CancelToken) -> ExecPolicy {
        self.cancel = Some(token);
        self
    }

    /// This policy with the join kernels walking `rep` (alias of
    /// [`ExecPolicy::with_rep`], matching the other builder setters).
    pub fn rep(mut self, rep: JoinRep) -> ExecPolicy {
        self.rep = rep;
        self
    }

    /// This policy clamped by an admission budget `cap`: worker threads take
    /// the minimum of the two, the chunk floor the maximum, and the join
    /// representation is kept — capping affects resource use only, never
    /// results. This is how a serving runtime imposes per-query budgets on
    /// plans whose steps were tuned for a dedicated machine.
    pub fn capped(&self, cap: &ExecPolicy) -> ExecPolicy {
        let mut p = self.clone();
        p.threads = p.threads.min(cap.effective_threads()).max(1);
        p.min_chunk_rows = p.min_chunk_rows.max(cap.min_chunk_rows);
        // The earlier deadline binds; the budget's cancel token (if any)
        // supersedes the plan's — a submission's token must always be able
        // to stop the evaluation it paid for.
        p.deadline = Deadline::earliest(p.deadline, cap.deadline);
        p.cancel = cap.cancel.clone().or(p.cancel);
        p
    }

    /// Effective worker count (at least 1).
    pub fn effective_threads(&self) -> usize {
        self.threads.max(1)
    }
}

/// Cached `available_parallelism` — one syscall per process, so default
/// policies/planners/engines can be constructed in per-call wrappers without
/// re-probing the host.
pub(crate) fn hardware_threads() -> usize {
    static N: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *N.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

impl Default for ExecPolicy {
    /// One worker per available hardware thread, default chunk floor.
    fn default() -> ExecPolicy {
        ExecPolicy::with_threads(hardware_threads())
    }
}

/// Supplies the execution policy for each elimination step.
///
/// The engine consults the source once per step, so policies can differ per
/// eliminated variable. A bare [`ExecPolicy`] is the uniform source (every
/// step runs the same policy); a [`crate::plan::QueryPlan`] fixes a
/// cost-model-chosen policy — representation, thread count, chunk floor —
/// for every step individually.
pub trait PolicySource: Sync {
    /// Policy for the elimination join of `var` (bound-variable semiring
    /// steps and free-variable guard steps alike).
    fn policy_for(&self, var: Var) -> &ExecPolicy;
    /// Policy for the final OutsideIn join over the free variables.
    fn output_policy(&self) -> &ExecPolicy;
    /// The abort controls (deadline / cancel token) of a whole evaluation
    /// under this source, installed at the evaluation entry point. The
    /// output policy carries them: [`ExecPolicy::capped`] merges a budget's
    /// controls into every step *and* the output policy, so reading the
    /// latter sees everything a submission imposed.
    fn abort_ctl(&self) -> AbortCtl {
        let p = self.output_policy();
        AbortCtl { deadline: p.deadline, cancel: p.cancel.clone() }
    }
}

impl PolicySource for ExecPolicy {
    fn policy_for(&self, _var: Var) -> &ExecPolicy {
        self
    }

    fn output_policy(&self) -> &ExecPolicy {
        self
    }
}

/// Run InsideOut under an execution policy with the query's own ordering.
///
/// Bit-identical to [`crate::insideout::insideout`] for every semiring and
/// thread count; only run statistics may differ.
///
/// **Legacy entry point**: a thin wrapper over
/// [`Engine::with_policy(..).evaluate(q)`](crate::engine::Engine).
pub fn insideout_par<D: AggDomain + Sync>(
    q: &FaqQuery<D>,
    policy: &ExecPolicy,
) -> Result<FaqOutput<D::E>, FaqError> {
    let sigma = q.ordering();
    insideout_par_with_order(q, &sigma, policy)
}

/// Run InsideOut under an execution policy along a caller-chosen ordering.
///
/// `sigma` carries the same contract as
/// [`crate::insideout::insideout_with_order`].
///
/// **Legacy entry point**: a thin wrapper over
/// [`Engine::with_policy(..).evaluate_with_order(q, sigma)`](crate::engine::Engine).
pub fn insideout_par_with_order<D: AggDomain + Sync>(
    q: &FaqQuery<D>,
    sigma: &[Var],
    policy: &ExecPolicy,
) -> Result<FaqOutput<D::E>, FaqError> {
    crate::insideout::insideout_with_policy(q, sigma, policy)
}

/// One elimination-step join: enumerate matches of `inputs` under `order`,
/// group them by the first `group_arity` binding columns, fold each group's
/// values with `fold`, drop groups whose folded value `is_zero`, and return
/// the surviving groups as a built factor over `order[..group_arity]`.
///
/// With `group_arity == order.len()` this is plain enumeration with a zero
/// filter (every binding is its own group) — the shape of the guard joins and
/// the final output join. With `group_arity == order.len() - 1` it is the
/// semiring elimination of eq. (7).
///
/// The output factor is assembled column-flat through a
/// [`FactorBuilder`] — the join emits bindings in lexicographic order with
/// distinct group keys, so no sort, duplicate scan, or per-row allocation
/// ever happens. With `build_trie` the factor's trie index is grown while
/// rows are emitted (and, under a parallel policy, while per-chunk outputs
/// are merged), so callers that join the result — every elimination step —
/// receive a pre-indexed intermediate.
///
/// The policy decides sequential vs chunked execution; both produce the same
/// factor, bit for bit.
///
/// Errors (instead of panicking) when the chunking invariant is violated —
/// no aligned input holds the first join variable in its leading column even
/// though an input contains it — so degenerate queries surface as
/// [`FaqError`], never as a crash.
#[allow(clippy::too_many_arguments)]
pub(crate) fn grouped_join<E: SemiringElem>(
    policy: &ExecPolicy,
    domains: &Domains,
    order: &[Var],
    inputs: &[JoinInput<'_, E>],
    one: &E,
    group_arity: usize,
    build_trie: bool,
    mul: &(impl Fn(&E, &E) -> E + Sync),
    fold: &(impl Fn(&E, &E) -> E + Sync),
    is_zero: &(impl Fn(&E) -> bool + Sync),
) -> Result<(Factor<E>, JoinStats), FaqError> {
    debug_assert!(group_arity <= order.len());
    let rep = policy.rep;
    let schema: Vec<Var> = order[..group_arity].to_vec();
    let out_builder = || {
        let b = FactorBuilder::new(schema.clone()).expect("join-order variables are distinct");
        if build_trie {
            b.with_streaming_trie()
        } else {
            b
        }
    };
    let full = (0u32, u32::MAX);

    let threads = policy.effective_threads();
    // A zero group arity means the whole output is ONE fold group; chunking
    // it would re-associate the ⊕-fold, which is observable on f64.
    let sequential = threads <= 1 || group_arity == 0 || order.is_empty();

    // Chunking basis: the largest input containing the first join variable.
    let basis_len = if sequential {
        None
    } else {
        inputs
            .iter()
            .map(|i| i.factor)
            .filter(|f| f.schema().contains(&order[0]))
            .map(|f| f.len())
            .max()
    };
    let per_chunk = policy.min_chunk_rows.clamp(1, usize::MAX / 2);
    let max_chunks = threads.min(basis_len.unwrap_or(0) / per_chunk);
    if sequential || max_chunks <= 1 {
        let mut out = out_builder();
        let stats = grouped_join_range(
            rep,
            domains,
            order,
            inputs,
            full,
            one,
            group_arity,
            mul,
            fold,
            is_zero,
            &mut out,
        );
        return Ok((out.finish(), stats));
    }
    let first = order[0];

    // Align every input to the join order once, up front: the join kernel
    // aligns per invocation, and without this each chunk worker would re-copy
    // (and re-sort, when misaligned) every factor. Prefix filters skip
    // alignment by contract (their leading columns already follow the order).
    let aligned: Vec<_> = inputs
        .iter()
        .map(|i| match i.prefix {
            Some(_) => std::borrow::Cow::Borrowed(i.factor),
            None => i.factor.align_to_cow(order),
        })
        .collect();
    let chunk_inputs: Vec<JoinInput<'_, E>> =
        aligned.iter().zip(inputs).map(|(f, i)| i.rebind(f.as_ref())).collect();

    // Cut the basis column for the first variable into value ranges. Aligned
    // factors containing `first` hold it in column 0, so under the trie
    // representation the cuts fall out of the trie's root level (distinct
    // values + row counts, no scan) — and the index built here is the same
    // cached one every chunk worker walks.
    let basis = chunk_inputs
        .iter()
        .map(|i| i.factor)
        .filter(|f| f.schema().first() == Some(&first))
        .max_by_key(|f| f.len())
        .ok_or_else(|| FaqError::Uncoverable(vec![first]))?;
    // When the largest spilled basis factor is file-chunked, prefer cuts on
    // its chunk boundaries: each worker's range then pins a disjoint run of
    // chunks, so the resident window stays bounded per worker instead of
    // thrashing one shared window across threads.
    let spilled_basis = chunk_inputs
        .iter()
        .map(|i| i.factor)
        .filter(|f| f.is_spilled() && f.schema().first() == Some(&first))
        .max_by_key(|f| f.len());
    let ranges = match spilled_basis.and_then(|f| f.chunk_aligned_partition(max_chunks)) {
        Some(r) => r,
        None => match rep {
            JoinRep::Trie => basis.trie().partition_root(max_chunks),
            JoinRep::Listing => basis.column_partition(0, max_chunks),
        },
    };
    if ranges.len() <= 1 {
        // Too few distinct values to chunk. Run sequentially over the inputs
        // aligned above — not the originals — so the alignment copies (and
        // the basis trie just built) are used, not discarded and redone.
        let mut out = out_builder();
        let stats = grouped_join_range(
            rep,
            domains,
            order,
            &chunk_inputs,
            full,
            one,
            group_arity,
            mul,
            fold,
            is_zero,
            &mut out,
        );
        return Ok((out.finish(), stats));
    }

    // Scoped worker pool: one worker per chunk (ranges.len() ≤ threads), each
    // stream-folding into its own flat builder. `std::thread::scope` would
    // swallow a worker's raised QueryAbort into an opaque scope panic, so
    // each worker installs the parent's abort controls, catches its own
    // abort and parks it in its slot for the parent to re-raise.
    let ctl = fault::current_ctl();
    type WorkerSlot<E> = Option<Result<(FactorBuilder<E>, JoinStats), QueryAbort>>;
    let mut slots: Vec<WorkerSlot<E>> = Vec::new();
    slots.resize_with(ranges.len(), || None);
    std::thread::scope(|s| {
        for (&range, slot) in ranges.iter().zip(slots.iter_mut()) {
            let chunk_inputs = &chunk_inputs;
            let schema = &schema;
            let ctl = ctl.clone();
            s.spawn(move || {
                let _g = fault::install_ctl(ctl);
                *slot = Some(fault::catch_abort(|| {
                    let mut out = FactorBuilder::new(schema.clone())
                        .expect("join-order variables are distinct");
                    let stats = grouped_join_range(
                        rep,
                        domains,
                        order,
                        chunk_inputs,
                        range,
                        one,
                        group_arity,
                        mul,
                        fold,
                        is_zero,
                        &mut out,
                    );
                    (out, stats)
                }));
            });
        }
    });

    // Group keys begin with the chunked variable, so chunk outputs are
    // disjoint and ascending: the k-way merge is a concatenating append,
    // growing the output trie in stream order when one was requested.
    let mut stats = JoinStats::default();
    let mut out = out_builder();
    for slot in slots {
        let (chunk, chunk_stats) = match slot.expect("worker completed") {
            Ok(r) => r,
            // Deterministic choice: the first (lowest-range) worker's abort
            // wins, whatever order the workers actually failed in.
            Err(abort) => fault::raise(abort),
        };
        stats.matches += chunk_stats.matches;
        stats.seeks += chunk_stats.seeks;
        stats.nodes += chunk_stats.nodes;
        out.append(chunk);
    }
    Ok((out.finish(), stats))
}

/// The sequential kernel: one range-restricted leapfrog join with streaming
/// group-fold, exactly the paper's stream-aggregation over consecutive
/// outputs — emitted straight into the caller's flat builder. The only
/// per-group state is one reusable key buffer; nothing is allocated per row.
///
/// `pub(crate)` because the incremental engine ([`crate::delta`]) replays
/// elimination steps over just the delta's anchor ranges: it invokes this
/// kernel once per changed range, in ascending range order, into one builder
/// — which is bit-identical to the matching slice of a full run, since no
/// fold group ever spans two ranges.
#[allow(clippy::too_many_arguments)]
pub(crate) fn grouped_join_range<E: SemiringElem>(
    rep: JoinRep,
    domains: &Domains,
    order: &[Var],
    inputs: &[JoinInput<'_, E>],
    range: (u32, u32),
    one: &E,
    group_arity: usize,
    mul: impl Fn(&E, &E) -> E,
    fold: impl Fn(&E, &E) -> E,
    is_zero: impl Fn(&E) -> bool,
    out: &mut FactorBuilder<E>,
) -> JoinStats {
    let mut key: Vec<u32> = Vec::with_capacity(group_arity);
    let mut acc: Option<E> = None;
    let stats = multiway_join_range_rep(
        rep,
        domains,
        order,
        inputs,
        range,
        one.clone(),
        |a, b| mul(a, b),
        |binding, val| {
            let group = &binding[..group_arity];
            match &mut acc {
                Some(a) if key == group => *a = fold(a, &val),
                _ => {
                    if let Some(done) = acc.take() {
                        if !is_zero(&done) {
                            out.push(&key, done);
                        }
                    }
                    key.clear();
                    key.extend_from_slice(group);
                    acc = Some(val);
                }
            }
        },
    );
    if let Some(done) = acc.take() {
        if !is_zero(&done) {
            out.push(&key, done);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insideout::insideout;
    use crate::query::VarAgg;
    use faq_factor::{Domains, Factor};
    use faq_hypergraph::v;
    use faq_semiring::{CountDomain, RealDomain};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_query(seed: u64, n_rows: usize) -> FaqQuery<CountDomain> {
        let mut r = StdRng::seed_from_u64(seed);
        let d = 8u32;
        let mut mk = |vars: &[u32]| {
            let mut tuples = std::collections::BTreeMap::new();
            for _ in 0..n_rows {
                let row: Vec<u32> = vars.iter().map(|_| r.gen_range(0..d)).collect();
                tuples.insert(row, r.gen_range(1..4u64));
            }
            Factor::new(vars.iter().map(|&i| v(i)).collect(), tuples.into_iter().collect()).unwrap()
        };
        let f01 = mk(&[0, 1]);
        let f12 = mk(&[1, 2]);
        let f02 = mk(&[0, 2]);
        FaqQuery::new(
            CountDomain,
            Domains::uniform(3, d),
            vec![v(0)],
            vec![
                (v(1), VarAgg::Semiring(CountDomain::SUM)),
                (v(2), VarAgg::Semiring(CountDomain::MAX)),
            ],
            vec![f01, f12, f02],
        )
        .unwrap()
    }

    #[test]
    fn policy_constructors() {
        assert_eq!(ExecPolicy::sequential().effective_threads(), 1);
        assert_eq!(ExecPolicy::with_threads(0).effective_threads(), 1);
        assert_eq!(ExecPolicy::with_threads(4).threads, 4);
        assert!(ExecPolicy::default().threads >= 1);
    }

    #[test]
    fn parallel_matches_sequential_counting() {
        for seed in 0..8 {
            let q = random_query(seed, 60);
            let seq = insideout(&q).unwrap();
            for threads in [1usize, 2, 4] {
                for min_chunk in [0usize, 1, 7, usize::MAX] {
                    let policy = ExecPolicy {
                        threads,
                        min_chunk_rows: min_chunk,
                        rep: JoinRep::default(),
                        deadline: None,
                        cancel: None,
                    };
                    let par = insideout_par(&q, &policy).unwrap();
                    assert_eq!(
                        par.factor, seq.factor,
                        "seed {seed} threads {threads} min_chunk {min_chunk}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_real_free_vars() {
        // f64 is the carrier where fold re-association would show: assert
        // bit-identical outputs, not approximate ones.
        let mut r = StdRng::seed_from_u64(3);
        let mut mk = |a: u32, b: u32| {
            let mut tuples = std::collections::BTreeMap::new();
            for _ in 0..80 {
                tuples.insert(
                    vec![r.gen_range(0..10u32), r.gen_range(0..10u32)],
                    r.gen_range(0.1..2.0f64),
                );
            }
            Factor::new(vec![v(a), v(b)], tuples.into_iter().collect()).unwrap()
        };
        let q = FaqQuery::new(
            RealDomain,
            Domains::uniform(3, 10),
            vec![v(0)],
            vec![
                (v(1), VarAgg::Semiring(RealDomain::SUM)),
                (v(2), VarAgg::Semiring(RealDomain::SUM)),
            ],
            vec![mk(0, 1), mk(1, 2), mk(0, 2)],
        )
        .unwrap();
        let seq = insideout(&q).unwrap();
        for threads in [2usize, 3, 4] {
            let par = insideout_par(
                &q,
                &ExecPolicy {
                    threads,
                    min_chunk_rows: 1,
                    rep: JoinRep::default(),
                    deadline: None,
                    cancel: None,
                },
            )
            .unwrap();
            assert_eq!(par.factor, seq.factor, "threads {threads}");
        }
    }

    #[test]
    fn scalar_queries_match() {
        // No free variables: the last elimination folds into a single group
        // (group_arity 0 at the top), exercising the sequential fallback.
        let q = FaqQuery::new(
            CountDomain,
            Domains::uniform(2, 4),
            vec![],
            vec![
                (v(0), VarAgg::Semiring(CountDomain::SUM)),
                (v(1), VarAgg::Semiring(CountDomain::SUM)),
            ],
            vec![Factor::dense(
                vec![v(0), v(1)],
                &[4, 4],
                |row| (row[0] + row[1]) as u64,
                |&x| x == 0,
            )
            .unwrap()],
        )
        .unwrap();
        let seq = insideout(&q).unwrap();
        let par = insideout_par(
            &q,
            &ExecPolicy {
                threads: 4,
                min_chunk_rows: 1,
                rep: JoinRep::default(),
                deadline: None,
                cancel: None,
            },
        )
        .unwrap();
        assert_eq!(par.factor, seq.factor);
        assert_eq!(par.scalar(), seq.scalar());
    }
}
