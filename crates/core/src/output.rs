//! Output representations beyond the listing (paper §8.4).
//!
//! After InsideOut has eliminated all bound variables and recorded the free
//! variable guards, the output is already determined *without* materializing
//! it: the value factors of `E_f` give `ϕ(x) = ⊗_S ψ_S(x_S)`, and the guard
//! factors `ψ_{U_k}` certify which bindings extend to output tuples. This is
//! the paper's "O~(1)-delay enumeration representation":
//!
//! * [`FactorizedOutput::value_query`] answers `ϕ(y)` in `O~(1)` lookups;
//! * [`FactorizedOutput::for_each`] enumerates the output without ever
//!   visiting a dead branch (each backtracking step is supported by the
//!   guards, so the delay between consecutive tuples is `O~(1)` in the query
//!   size);
//! * [`FactorizedOutput::materialize`] recovers the listing representation.

use crate::insideout::{run_elimination, EliminationArtifacts};
use crate::query::{FaqError, FaqQuery};
use faq_factor::{Domains, Factor};
use faq_hypergraph::Var;
use faq_join::{multiway_join, JoinInput};
use faq_semiring::{AggDomain, SemiringElem};

/// The factorized output of a FAQ query (guards + value factors).
#[derive(Debug, Clone)]
pub struct FactorizedOutput<E: SemiringElem> {
    /// Free variables in output order.
    pub free_order: Vec<Var>,
    /// Value factors over subsets of the free variables.
    pub value_factors: Vec<Factor<E>>,
    /// Guard (indicator) factors over subsets of the free variables.
    pub guards: Vec<Factor<E>>,
    domains: Domains,
}

impl<E: SemiringElem> FactorizedOutput<E> {
    /// Build the factorized output by running InsideOut phases 1–2.
    pub fn compute<D: AggDomain<E = E> + Sync>(q: &FaqQuery<D>) -> Result<Self, FaqError> {
        let sigma = q.ordering();
        Self::compute_with_order(q, &sigma)
    }

    /// Build the factorized output along a chosen equivalent ordering.
    pub fn compute_with_order<D: AggDomain<E = E> + Sync>(
        q: &FaqQuery<D>,
        sigma: &[Var],
    ) -> Result<Self, FaqError> {
        let EliminationArtifacts { free_order, ef_edges, guards, .. } = run_elimination(q, sigma)?;
        Ok(FactorizedOutput {
            free_order,
            value_factors: ef_edges,
            guards,
            domains: q.domains.clone(),
        })
    }

    /// `ϕ(y)` for a full free-variable binding `y` (aligned with
    /// `free_order`). Returns `None` when the value is the semiring zero.
    pub fn value_query(&self, y: &[u32], one: E, mut mul: impl FnMut(&E, &E) -> E) -> Option<E> {
        assert_eq!(y.len(), self.free_order.len());
        let mut acc = one;
        for f in &self.value_factors {
            let key: Vec<u32> = f
                .schema()
                .iter()
                .map(|v| {
                    let pos = self.free_order.iter().position(|o| o == v).expect("free var");
                    y[pos]
                })
                .collect();
            match f.get(&key) {
                Some(val) => acc = mul(&acc, val),
                None => return None,
            }
        }
        Some(acc)
    }

    /// Whether `y` is in the output support (guards only — no value
    /// computation).
    pub fn support_contains(&self, y: &[u32]) -> bool {
        assert_eq!(y.len(), self.free_order.len());
        for g in &self.guards {
            let key: Vec<u32> = g
                .schema()
                .iter()
                .map(|v| {
                    let pos = self.free_order.iter().position(|o| o == v).expect("free var");
                    y[pos]
                })
                .collect();
            if g.get(&key).is_none() {
                return false;
            }
        }
        // Value factors can still shrink the support (a guard-free query has
        // none); check them too.
        self.value_query(y, /* dummy */ self.one_witness(), |a, _| a.clone()).is_some()
    }

    fn one_witness(&self) -> E {
        // Any existing value serves as a fold seed for support checks; when no
        // factor has rows the support is decided by the guards alone, and the
        // seed is never used. Fall back to a guard value.
        for f in self.value_factors.iter().chain(self.guards.iter()) {
            if !f.is_empty() {
                return f.value(0).clone();
            }
        }
        panic!("support query on a query with no factors at all")
    }

    /// Enumerate all output tuples (with values) in lexicographic order of
    /// the free ordering, without materializing the result.
    pub fn for_each(
        &self,
        one: E,
        mut mul: impl FnMut(&E, &E) -> E,
        mut is_zero: impl FnMut(&E) -> bool,
        mut cb: impl FnMut(&[u32], E),
    ) {
        let mut inputs: Vec<JoinInput<'_, E>> = Vec::new();
        for f in &self.value_factors {
            inputs.push(JoinInput::value(f));
        }
        for g in &self.guards {
            inputs.push(JoinInput::filter(g));
        }
        multiway_join(&self.domains, &self.free_order, &inputs, one, &mut mul, |b, val| {
            if !is_zero(&val) {
                cb(b, val);
            }
        });
    }

    /// Materialize the listing representation.
    pub fn materialize(
        &self,
        one: E,
        mul: impl FnMut(&E, &E) -> E,
        is_zero: impl FnMut(&E) -> bool,
    ) -> Factor<E> {
        let mut rows: Vec<(Vec<u32>, E)> = Vec::new();
        self.for_each(one, mul, is_zero, |b, val| rows.push((b.to_vec(), val)));
        Factor::new(self.free_order.clone(), rows).expect("join emits distinct bindings")
    }

    /// A streaming `O~(1)`-delay iterator over the output tuples (supports
    /// only — pair with [`FactorizedOutput::value_query`] for values).
    ///
    /// Because every guard certifies that partial bindings extend to full
    /// output tuples, each `next()` performs at most `O(f · #guards · log N)`
    /// work before yielding — the §8.4 enumeration guarantee.
    pub fn iter_support(&self) -> SupportIter<'_, E> {
        SupportIter::new(self)
    }
}

/// Explicit-stack depth-first enumerator over the factorized support.
///
/// Walks the guard/value factors' columnar trie indices level by level (one
/// trie level per factor column, one search depth per free variable) and
/// yields complete bindings in lexicographic order. Each factor's trie index
/// is built (or reused, if already cached) when the iterator is created.
pub struct SupportIter<'a, E: SemiringElem> {
    out: &'a FactorizedOutput<E>,
    /// For each factor: which column binds at each depth (usize::MAX = none).
    col_at_depth: Vec<Vec<usize>>,
    /// Aligned factors (schemas consistent with the free order). Columns bind
    /// in schema order, so each factor's trie descends one level per bound
    /// column. Already-aligned factors are borrowed, so their cached trie
    /// index is reused across iterators; only misaligned ones are copied.
    factors: Vec<std::borrow::Cow<'a, Factor<E>>>,
    /// Current partial binding.
    binding: Vec<u32>,
    /// Per-factor trie-entry window stacks (one frame per open level, plus
    /// the root candidates).
    windows: Vec<Vec<(usize, usize)>>,
    /// Per-factor chosen trie entries (one per open level).
    paths: Vec<Vec<usize>>,
    /// Next candidate value to try at each depth.
    next_at_depth: Vec<u32>,
    done: bool,
}

impl<'a, E: SemiringElem> SupportIter<'a, E> {
    fn new(out: &'a FactorizedOutput<E>) -> Self {
        let order = &out.free_order;
        let mut factors: Vec<std::borrow::Cow<'a, Factor<E>>> = Vec::new();
        let mut empty = false;
        for f in out.value_factors.iter().chain(out.guards.iter()) {
            if f.arity() == 0 {
                if f.is_empty() {
                    empty = true;
                }
                continue;
            }
            if f.is_empty() {
                empty = true;
            }
            factors.push(f.align_to_cow(&out.free_order));
        }
        let col_at_depth: Vec<Vec<usize>> = factors
            .iter()
            .map(|f| {
                order
                    .iter()
                    .map(|v| f.schema().iter().position(|s| s == v).unwrap_or(usize::MAX))
                    .collect()
            })
            .collect();
        let windows: Vec<Vec<(usize, usize)>> =
            factors.iter().map(|f| vec![f.trie().root()]).collect();
        let paths: Vec<Vec<usize>> = factors.iter().map(|_| Vec::new()).collect();
        SupportIter {
            out,
            col_at_depth,
            factors,
            binding: Vec::new(),
            windows,
            paths,
            next_at_depth: vec![0; order.len() + 1],
            done: empty,
        }
    }

    /// Try to bind depth `d` to the smallest consistent value ≥
    /// `next_at_depth[d]`. Returns success.
    fn descend(&mut self, d: usize) -> bool {
        let mut candidate = self.next_at_depth[d];
        let participants: Vec<usize> =
            (0..self.factors.len()).filter(|&i| self.col_at_depth[i][d] != usize::MAX).collect();
        let dom = self.out.domains.size(self.out.free_order[d]);
        if candidate >= dom {
            return false;
        }
        // Leapfrog the participants' current trie levels to the least value
        // every one of them lists.
        let mut stable = false;
        while !stable {
            stable = true;
            for &i in &participants {
                let level = self.factors[i].trie().level(self.paths[i].len());
                let window = *self.windows[i].last().expect("root window");
                match level.lub(window, candidate) {
                    None => return false,
                    Some(j) if level.value(j) > candidate => {
                        if level.value(j) >= dom {
                            return false;
                        }
                        candidate = level.value(j);
                        stable = false;
                    }
                    Some(_) => {}
                }
            }
        }
        // Open every participant at the agreed value.
        for &i in &participants {
            let trie = self.factors[i].trie();
            let depth = self.paths[i].len();
            let level = trie.level(depth);
            let window = *self.windows[i].last().expect("root window");
            let j = level.find(window, candidate).expect("stabilized value is present");
            self.paths[i].push(j);
            if depth + 1 < trie.arity() {
                self.windows[i].push(level.child_range(j));
            }
        }
        self.binding.push(candidate);
        self.next_at_depth[d] = candidate; // remembered for backtracking
        true
    }

    /// Pop depth `d` and advance its candidate counter.
    fn backtrack(&mut self, d: usize) {
        for i in 0..self.factors.len() {
            if self.col_at_depth[i][d] != usize::MAX {
                self.paths[i].pop();
                if self.paths[i].len() + 1 < self.factors[i].trie().arity() {
                    self.windows[i].pop();
                }
            }
        }
        self.binding.pop();
        self.next_at_depth[d] += 1;
    }
}

impl<'a, E: SemiringElem> Iterator for SupportIter<'a, E> {
    type Item = Vec<u32>;

    fn next(&mut self) -> Option<Vec<u32>> {
        if self.done {
            return None;
        }
        let f = self.out.free_order.len();
        if f == 0 {
            // Nullary output: one empty binding iff nothing annihilated it.
            self.done = true;
            return Some(Vec::new());
        }
        // Resume: if we yielded a full binding last time, backtrack one level.
        if self.binding.len() == f {
            self.backtrack(f - 1);
        }
        loop {
            let d = self.binding.len();
            if d == f {
                return Some(self.binding.clone());
            }
            if self.descend(d) {
                // Reset deeper counters.
                for nd in &mut self.next_at_depth[d + 1..] {
                    *nd = 0;
                }
            } else {
                self.next_at_depth[d] = 0;
                if d == 0 {
                    self.done = true;
                    return None;
                }
                self.backtrack(d - 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insideout::insideout;
    use crate::query::VarAgg;
    use faq_hypergraph::v;
    use faq_semiring::CountDomain;

    fn sample() -> FaqQuery<CountDomain> {
        let f01 = Factor::new(
            vec![v(0), v(1)],
            vec![(vec![0, 0], 1u64), (vec![0, 1], 2), (vec![1, 0], 3), (vec![2, 1], 4)],
        )
        .unwrap();
        let f12 = Factor::new(
            vec![v(1), v(2)],
            vec![(vec![0, 0], 5u64), (vec![1, 1], 6), (vec![1, 2], 7)],
        )
        .unwrap();
        FaqQuery::new(
            CountDomain,
            Domains::new(vec![3, 2, 3]),
            vec![v(0), v(1)],
            vec![(v(2), VarAgg::Semiring(CountDomain::SUM))],
            vec![f01, f12],
        )
        .unwrap()
    }

    #[test]
    fn factorized_matches_materialized() {
        let q = sample();
        let direct = insideout(&q).unwrap().factor;
        let fo = FactorizedOutput::compute(&q).unwrap();
        let mat = fo.materialize(1u64, |a, b| a * b, |&x| x == 0);
        assert_eq!(mat, direct);
    }

    #[test]
    fn value_queries() {
        let q = sample();
        let fo = FactorizedOutput::compute(&q).unwrap();
        let direct = insideout(&q).unwrap().factor;
        for x0 in 0..3u32 {
            for x1 in 0..2u32 {
                let expect = direct.get(&[x0, x1]).copied();
                let got = fo.value_query(&[x0, x1], 1u64, |a, b| a * b);
                assert_eq!(got, expect, "({x0},{x1})");
            }
        }
    }

    #[test]
    fn support_queries_match() {
        let q = sample();
        let fo = FactorizedOutput::compute(&q).unwrap();
        let direct = insideout(&q).unwrap().factor;
        for x0 in 0..3u32 {
            for x1 in 0..2u32 {
                assert_eq!(
                    fo.support_contains(&[x0, x1]),
                    direct.get(&[x0, x1]).is_some(),
                    "({x0},{x1})"
                );
            }
        }
    }

    #[test]
    fn enumeration_is_sorted_and_complete() {
        let q = sample();
        let fo = FactorizedOutput::compute(&q).unwrap();
        let mut keys: Vec<Vec<u32>> = Vec::new();
        fo.for_each(1u64, |a, b| a * b, |&x| x == 0, |b, _| keys.push(b.to_vec()));
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(keys.len(), insideout(&q).unwrap().factor.len());
    }

    #[test]
    fn streaming_iterator_matches_for_each() {
        let q = sample();
        let fo = FactorizedOutput::compute(&q).unwrap();
        let mut expect: Vec<Vec<u32>> = Vec::new();
        fo.for_each(1u64, |a, b| a * b, |&x| x == 0, |b, _| expect.push(b.to_vec()));
        let got: Vec<Vec<u32>> = fo.iter_support().collect();
        assert_eq!(got, expect);
        // And the iterator is resumable / fused.
        let mut it = fo.iter_support();
        let first = it.next();
        assert_eq!(first.as_ref(), expect.first());
        let rest: Vec<Vec<u32>> = it.collect();
        assert_eq!(rest.len(), expect.len().saturating_sub(1));
    }

    #[test]
    fn streaming_iterator_empty_output() {
        // An unsatisfiable query yields an empty iterator immediately.
        let f = Factor::new(vec![v(0)], vec![(vec![0], 1u64)]).unwrap();
        let g = Factor::new(vec![v(0)], vec![(vec![1], 1u64)]).unwrap();
        let q = FaqQuery::new(CountDomain, Domains::uniform(1, 2), vec![v(0)], vec![], vec![f, g])
            .unwrap();
        let fo = FactorizedOutput::compute(&q).unwrap();
        assert_eq!(fo.iter_support().count(), 0);
    }

    #[test]
    fn streaming_iterator_nullary_query() {
        // f = 0 free variables: the iterator yields exactly one empty binding
        // when the scalar is non-zero.
        let f = Factor::new(vec![v(0)], vec![(vec![0], 2u64)]).unwrap();
        let q = FaqQuery::new(
            CountDomain,
            Domains::uniform(1, 2),
            vec![],
            vec![(v(0), VarAgg::Semiring(CountDomain::SUM))],
            vec![f],
        )
        .unwrap();
        let fo = FactorizedOutput::compute(&q).unwrap();
        let all: Vec<Vec<u32>> = fo.iter_support().collect();
        assert_eq!(all, vec![Vec::<u32>::new()]);
    }
}
