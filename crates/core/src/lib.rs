//! The FAQ query model and the InsideOut engine (the paper's contribution).
//!
//! A Functional Aggregate Query (paper eq. (1)) is
//!
//! ```text
//! ϕ(x_[f]) = ⊕^(f+1)_{x_{f+1}} … ⊕^(n)_{x_n}  ⊗_{S∈E} ψ_S(x_S)
//! ```
//!
//! where each bound variable carries either a semiring aggregate `⊕⁽ⁱ⁾` (with
//! `(D, ⊕⁽ⁱ⁾, ⊗)` a commutative semiring) or the product `⊗` itself.
//!
//! Modules:
//! * [`mod@engine`] — [`Engine`]: the unified builder-style evaluation
//!   facade in front of the sequential engine, the parallel engine, and the
//!   planning/serving path (the legacy free functions delegate to it);
//! * [`query`] — [`FaqQuery`]: aggregates, free variables, factors, validation;
//! * [`naive`] — brute-force evaluation of eq. (1), the test oracle;
//! * [`mod@insideout`] — Algorithm 1: variable elimination with indicator
//!   projections, product aggregates, and the free-variable guard phase;
//! * [`exprtree`] — expression trees and the precedence poset (§6);
//! * [`evo`] — equivalent variable orderings: LinEx enumeration and the
//!   component-wise-equivalence membership test (§6);
//! * [`exec`] — the parallel execution engine: [`ExecPolicy`], chunked factor
//!   kernels over a scoped worker pool, deterministic merge;
//! * [`width`] — `faqw(σ)`, exact `faqw(ϕ)` search, and the approximation
//!   algorithm of §7;
//! * [`plan`] — the cost-based adaptive planner: data-driven ordering choice
//!   (AGM bounds × factor statistics), per-step execution policies,
//!   [`PreparedQuery`] serving handles, and a schema-keyed [`PlanCache`];
//! * [`delta`] — incremental delta evaluation: traced intermediates plus
//!   range-restricted step replay behind
//!   [`PreparedQuery::apply_delta`](plan::PreparedQuery::apply_delta);
//! * [`output`] — factorized output representations (§8.4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delta;
pub mod engine;
pub mod evo;
pub mod exec;
pub mod exprtree;
pub mod insideout;
pub mod naive;
pub mod output;
pub mod plan;
pub mod query;
pub mod width;

pub use delta::{DeltaFactor, DeltaOp};
pub use engine::Engine;
pub use exec::{
    insideout_par, insideout_par_with_order, CancelToken, Deadline, ExecPolicy, JoinRep,
    PolicySource,
};
pub use exprtree::{ExprTree, QueryShape, Tag};
pub use insideout::{
    insideout, insideout_with_order, run_elimination, run_elimination_with_policy, ElimStats,
    FaqOutput, StepStat,
};
pub use naive::naive_eval;
pub use plan::{PlanCache, Planner, PreparedQuery, QueryPlan, StepPlan};
pub use query::{FaqError, FaqQuery, VarAgg};
pub use width::{faqw_approx, faqw_exact, faqw_of_ordering, FaqwResult};
