//! Equivalent variable orderings (paper §5.4, §6).
//!
//! * [`linear_extensions`] enumerates `LinEx(P)` — the linear extensions of
//!   the precedence poset, each of which is a ϕ-equivalent ordering
//!   (soundness, Theorems 6.8/6.23), and which suffice for width optimization
//!   (completeness, Corollaries 6.14/6.28).
//! * [`is_equivalent_ordering`] decides membership in `EVO(ϕ)` in polynomial
//!   time via the component-wise-equivalence recursion (Definitions 6.10/6.25,
//!   Lemmas 6.9/6.24): after the free prefix, the next variable must lie in
//!   the child node of the (recomputed) expression-tree root; consuming a
//!   semiring variable conditions the query, while a product node must be
//!   consumed as one block; extended components are checked independently and
//!   dangling product variables are unconstrained.

use crate::exprtree::{QueryShape, Tag};
use faq_hypergraph::{Hypergraph, Var, VarSet};

/// Enumerate linear extensions of the precedence poset, up to `cap` many.
///
/// Returns `(extensions, exhausted)`; `exhausted` is `false` when the cap
/// truncated the enumeration.
pub fn linear_extensions(shape: &QueryShape, cap: usize) -> (Vec<Vec<Var>>, bool) {
    let preds = shape.precedence();
    let vars: Vec<Var> = shape.vars();
    let mut out: Vec<Vec<Var>> = Vec::new();
    let mut current: Vec<Var> = Vec::new();
    let mut used: VarSet = VarSet::new();
    let exhausted = enumerate(&vars, &preds, &mut current, &mut used, &mut out, cap);
    (out, exhausted)
}

fn enumerate(
    vars: &[Var],
    preds: &std::collections::BTreeMap<Var, VarSet>,
    current: &mut Vec<Var>,
    used: &mut VarSet,
    out: &mut Vec<Vec<Var>>,
    cap: usize,
) -> bool {
    if out.len() >= cap {
        return false;
    }
    if current.len() == vars.len() {
        out.push(current.clone());
        return true;
    }
    let mut complete = true;
    let mut any = false;
    for &v in vars {
        if used.contains(&v) {
            continue;
        }
        if preds[&v].iter().all(|p| used.contains(p)) {
            any = true;
            used.insert(v);
            current.push(v);
            complete &= enumerate(vars, preds, current, used, out, cap);
            current.pop();
            used.remove(&v);
            if out.len() >= cap {
                return false;
            }
        }
    }
    assert!(any, "precedence poset has a cycle — should be impossible (Cor 6.21)");
    complete
}

/// Decide whether `pi` is a ϕ-equivalent variable ordering.
///
/// For queries with product aggregates over a domain where `⊗` is idempotent,
/// this decides membership in `EVO(ϕ, F(D_I))` for the promise class of
/// Definition 5.8 (all input factors range over the idempotent elements), per
/// the paper's §6.2 analysis. Otherwise it decides the Definition 6.30
/// (extended-edge) relation, which is sound for arbitrary inputs.
pub fn is_equivalent_ordering(shape: &QueryShape, pi: &[Var]) -> bool {
    let all: VarSet = shape.vars().into_iter().collect();
    let got: VarSet = pi.iter().copied().collect();
    if pi.len() != all.len() || all != got {
        return false;
    }
    // Free prefix check.
    let free: VarSet = shape.free_vars().into_iter().collect();
    let f = free.len();
    let prefix: VarSet = pi[..f].iter().copied().collect();
    if prefix != free {
        return false;
    }
    // Product aggregates never commute with non-closed semiring aggregates,
    // even across structurally independent components ((Σa)^k ≠ Σ(a^k)):
    // their original relative order must be preserved globally.
    let products = shape.product_vars();
    let non_closed = shape.non_closed_vars();
    if !products.is_empty() && !non_closed.is_empty() {
        let seq_pos = |v: Var| shape.seq_pos(v).expect("var in seq");
        let pi_pos = |v: Var| pi.iter().position(|&x| x == v).expect("var in pi");
        for &w in &products {
            for &u in &non_closed {
                if (seq_pos(u) < seq_pos(w)) != (pi_pos(u) < pi_pos(w)) {
                    return false;
                }
            }
        }
    }
    // Condition on the free variables and check the bound part.
    let bound_seq: Vec<(Var, Tag)> =
        shape.seq.iter().copied().filter(|(_, t)| *t != Tag::Free).collect();
    let bound_vars: VarSet = bound_seq.iter().map(|&(v, _)| v).collect();
    let edges: Vec<VarSet> = shape
        .effective_edges()
        .iter()
        .map(|e| e.intersection(&bound_vars).copied().collect::<VarSet>())
        .filter(|e: &VarSet| !e.is_empty())
        .collect();
    check(&bound_seq, &edges, &pi[f..])
}

fn check(seq: &[(Var, Tag)], edges: &[VarSet], pi: &[Var]) -> bool {
    if seq.is_empty() {
        return pi.is_empty();
    }
    debug_assert_eq!(seq.len(), pi.len());

    let w: VarSet = seq.iter().filter(|(_, t)| *t == Tag::Product).map(|&(v, _)| v).collect();
    let core: VarSet = seq.iter().filter(|(_, t)| *t != Tag::Product).map(|&(v, _)| v).collect();

    if core.is_empty() {
        // Only product variables remain: all aggregates are ⊗ and commute.
        return true;
    }

    // Extended components of the current hypergraph.
    let mut core_h = Hypergraph::new();
    for &v in &core {
        core_h.add_vertex(v);
    }
    for e in edges {
        let ce: VarSet = e.intersection(&core).copied().collect();
        if !ce.is_empty() {
            core_h.add_edge(ce.iter().copied());
        }
    }
    let comps = core_h.connected_components();
    let mut covered: VarSet = VarSet::new();
    let mut extended: Vec<(VarSet, Vec<VarSet>)> = Vec::new();
    for comp in &comps {
        let mut vext: VarSet = comp.clone();
        for e in edges {
            if !e.is_disjoint(comp) {
                vext.extend(e.intersection(&w).copied());
            }
        }
        let eext: Vec<VarSet> = edges
            .iter()
            .filter(|e| !e.is_disjoint(comp))
            .map(|e| e.intersection(&vext).copied().collect::<VarSet>())
            .collect();
        covered.extend(vext.iter().copied());
        extended.push((vext, eext));
    }
    let dangling_only: VarSet =
        seq.iter().map(|&(v, _)| v).filter(|v| !covered.contains(v)).collect();

    if extended.len() >= 2 || !dangling_only.is_empty() {
        // Components are independent; dangling product variables are
        // unconstrained (Definition 6.25).
        for (vext, eext) in &extended {
            let sub_seq: Vec<(Var, Tag)> =
                seq.iter().copied().filter(|(v, _)| vext.contains(v)).collect();
            let sub_pi: Vec<Var> = pi.iter().copied().filter(|v| vext.contains(v)).collect();
            if !check(&sub_seq, eext, &sub_pi) {
                return false;
            }
        }
        return true;
    }

    // Single extended component covering everything: the next variable of pi
    // must lie in the root's unique child node of the (compressed) expression
    // tree (Lemma 6.9 / 6.24).
    let sub_shape = QueryShape {
        seq: seq.to_vec(),
        edges: edges.to_vec(),
        // Edges are already extended if they needed to be; claim every op
        // closed so `effective_edges` does not re-extend. The global
        // product/non-closed order constraint was checked upfront.
        mul_idempotent: true,
        closed_ops: seq
            .iter()
            .filter_map(|(_, t)| match t {
                Tag::Semiring(op) => Some(*op),
                _ => None,
            })
            .collect(),
    };
    let tree = sub_shape.expr_tree();
    // The root may have a dangling product leaf next to the component child;
    // eligibility for the first position is governed by the child whose
    // subtree contains the core (non-product) variables — dangling variables
    // with copies inside the component are constrained by those copies.
    let subtree_has_core = |start: usize| -> bool {
        let mut stack = vec![start];
        while let Some(i) = stack.pop() {
            if tree.nodes[i].vars.iter().any(|v| core.contains(v)) {
                return true;
            }
            stack.extend(tree.nodes[i].children.iter().copied());
        }
        false
    };
    let top_id = tree.nodes[tree.root]
        .children
        .iter()
        .copied()
        .find(|&c| subtree_has_core(c))
        .expect("a connected query has a core-bearing top node");
    let top = &tree.nodes[top_id];

    let u = pi[0];
    if !top.vars.contains(&u) {
        return false;
    }
    match top.tag {
        Tag::Product => {
            // Consume the whole product node as a block (Definition 6.25).
            let p = top.vars.len();
            if pi.len() < p {
                return false;
            }
            let block: VarSet = top.vars.iter().copied().collect();
            let taken: VarSet = pi[..p].iter().copied().collect();
            if block != taken {
                return false;
            }
            let rem_seq: Vec<(Var, Tag)> =
                seq.iter().copied().filter(|(v, _)| !block.contains(v)).collect();
            let rem_vars: VarSet = rem_seq.iter().map(|&(v, _)| v).collect();
            let rem_edges: Vec<VarSet> = edges
                .iter()
                .map(|e| e.intersection(&rem_vars).copied().collect::<VarSet>())
                .filter(|e: &VarSet| !e.is_empty())
                .collect();
            check(&rem_seq, &rem_edges, &pi[p..])
        }
        _ => {
            // Consume the single semiring variable (conditioning on it).
            let rem_seq: Vec<(Var, Tag)> = seq.iter().copied().filter(|&(v, _)| v != u).collect();
            let rem_edges: Vec<VarSet> = edges
                .iter()
                .map(|e| e.iter().copied().filter(|&x| x != u).collect::<VarSet>())
                .filter(|e: &VarSet| !e.is_empty())
                .collect();
            check(&rem_seq, &rem_edges, &pi[1..])
        }
    }
}

/// Decide [`is_equivalent_ordering`] for a batch of candidate orderings
/// across the [`ExecPolicy`](crate::exec::ExecPolicy)'s worker pool.
///
/// Membership tests against one shape are independent, so candidates stripe
/// across scoped threads. Results come back in candidate order, identical to
/// mapping [`is_equivalent_ordering`] sequentially. (Exhaustive width search
/// itself — [`crate::width::faqw_exact`] — stays sequential: its per-ordering
/// cost is dominated by the shared `ρ*` memo, which a stripe would lose.)
pub fn are_equivalent_orderings(
    shape: &QueryShape,
    candidates: &[Vec<Var>],
    policy: &crate::exec::ExecPolicy,
) -> Vec<bool> {
    let threads = policy.effective_threads();
    if threads <= 1 || candidates.len() < 2 {
        return candidates.iter().map(|pi| is_equivalent_ordering(shape, pi)).collect();
    }
    let stripe = candidates.len().div_ceil(threads);
    let mut out = vec![false; candidates.len()];
    std::thread::scope(|s| {
        for (cands, results) in candidates.chunks(stripe).zip(out.chunks_mut(stripe)) {
            s.spawn(move || {
                for (pi, slot) in cands.iter().zip(results.iter_mut()) {
                    *slot = is_equivalent_ordering(shape, pi);
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use faq_hypergraph::{v, varset};
    use faq_semiring::AggId;

    const SUM: Tag = Tag::Semiring(AggId(0));
    const MAX: Tag = Tag::Semiring(AggId(1));

    /// Example 6.13: EVO(ϕ) = {(1,2,3), (1,3,2), (3,1,2)} for
    /// ϕ = Σ1 max2 Σ3 ψ12 ψ13.
    #[test]
    fn example_6_13_membership() {
        let shape = QueryShape {
            seq: vec![(v(1), SUM), (v(2), MAX), (v(3), SUM)],
            edges: vec![varset(&[1, 2]), varset(&[1, 3])],
            mul_idempotent: false,
            closed_ops: Default::default(),
        };
        let evo: Vec<Vec<Var>> = permutations(&[1, 2, 3])
            .into_iter()
            .filter(|p| is_equivalent_ordering(&shape, p))
            .collect();
        let expect: Vec<Vec<Var>> =
            vec![vec![v(1), v(2), v(3)], vec![v(1), v(3), v(2)], vec![v(3), v(1), v(2)]];
        assert_eq!(sorted(evo), sorted(expect));
        // LinEx(P) = {(1,3,2), (3,1,2)} ⊆ EVO.
        let (linex, done) = linear_extensions(&shape, 100);
        assert!(done);
        assert_eq!(sorted(linex), sorted(vec![vec![v(1), v(3), v(2)], vec![v(3), v(1), v(2)]]));
    }

    /// The §6.1 counterexample: interleavings such as (5,1,3,2,4) are in EVO
    /// but not in LinEx(P).
    #[test]
    fn section_6_1_interleavings() {
        let shape = QueryShape {
            seq: vec![(v(1), SUM), (v(2), SUM), (v(3), MAX), (v(4), MAX), (v(5), SUM)],
            edges: vec![varset(&[1, 5]), varset(&[2, 5]), varset(&[1, 3]), varset(&[2, 4])],
            mul_idempotent: false,
            closed_ops: Default::default(),
        };
        for pi in [
            vec![v(5), v(1), v(3), v(2), v(4)],
            vec![v(5), v(2), v(4), v(1), v(3)],
            vec![v(1), v(2), v(5), v(3), v(4)],
            // After conditioning on 1, the components {3} and {2,4,5} may
            // interleave freely — so 3 can even precede 2.
            vec![v(1), v(3), v(2), v(4), v(5)],
        ] {
            assert!(is_equivalent_ordering(&shape, &pi), "{pi:?} should be in EVO");
        }
        // Orderings violating the structure are rejected: max variables may
        // not precede the Σ variables of their own component.
        for pi in [vec![v(3), v(1), v(5), v(2), v(4)], vec![v(1), v(4), v(3), v(2), v(5)]] {
            assert!(!is_equivalent_ordering(&shape, &pi), "{pi:?} should not be in EVO");
        }
    }

    /// Every enumerated linear extension passes the membership test
    /// (soundness of LinEx ⊆ EVO).
    #[test]
    fn linex_subset_of_evo() {
        let shape = QueryShape {
            seq: vec![
                (v(1), SUM),
                (v(2), SUM),
                (v(3), MAX),
                (v(4), SUM),
                (v(5), SUM),
                (v(6), MAX),
                (v(7), MAX),
            ],
            edges: vec![
                varset(&[1, 2]),
                varset(&[1, 3, 5]),
                varset(&[1, 4]),
                varset(&[2, 4, 6]),
                varset(&[2, 7]),
                varset(&[3, 7]),
            ],
            mul_idempotent: false,
            closed_ops: Default::default(),
        };
        let (linex, done) = linear_extensions(&shape, 10_000);
        assert!(done);
        assert!(!linex.is_empty());
        for pi in &linex {
            assert!(is_equivalent_ordering(&shape, pi), "{pi:?} in LinEx but rejected");
        }
        // The original query order is always equivalent.
        assert!(is_equivalent_ordering(&shape, &[v(1), v(2), v(3), v(4), v(5), v(6), v(7)]));
    }

    #[test]
    fn free_variables_must_come_first() {
        let shape = QueryShape {
            seq: vec![(v(0), Tag::Free), (v(1), SUM)],
            edges: vec![varset(&[0, 1])],
            mul_idempotent: false,
            closed_ops: Default::default(),
        };
        assert!(is_equivalent_ordering(&shape, &[v(0), v(1)]));
        assert!(!is_equivalent_ordering(&shape, &[v(1), v(0)]));
    }

    #[test]
    fn faq_ss_accepts_all_bound_permutations() {
        let shape = QueryShape {
            seq: vec![(v(0), Tag::Free), (v(1), SUM), (v(2), SUM), (v(3), SUM)],
            edges: vec![varset(&[0, 1]), varset(&[1, 2]), varset(&[2, 3])],
            mul_idempotent: false,
            closed_ops: Default::default(),
        };
        for p in permutations(&[1, 2, 3]) {
            let mut pi = vec![v(0)];
            pi.extend(p);
            assert!(is_equivalent_ordering(&shape, &pi), "{pi:?}");
        }
    }

    #[test]
    fn product_block_must_stay_consecutive() {
        // ϕ = Π1 Π2 Σ3 ψ123 (idempotent promise): (1,3,2) invalid.
        let shape = QueryShape {
            seq: vec![(v(1), Tag::Product), (v(2), Tag::Product), (v(3), SUM)],
            edges: vec![varset(&[1, 2, 3])],
            mul_idempotent: true,
            closed_ops: Default::default(),
        };
        assert!(is_equivalent_ordering(&shape, &[v(1), v(2), v(3)]));
        assert!(is_equivalent_ordering(&shape, &[v(2), v(1), v(3)]));
        assert!(!is_equivalent_ordering(&shape, &[v(1), v(3), v(2)]));
        assert!(!is_equivalent_ordering(&shape, &[v(3), v(1), v(2)]));
    }

    /// Semantic cross-validation: orderings accepted by the checker evaluate
    /// identically to the original on random inputs; for rejected orderings
    /// there exist adversarial inputs where values differ (we verify the
    /// accepted side, which is the soundness-critical one).
    #[test]
    fn accepted_orderings_evaluate_identically() {
        use crate::insideout::insideout_with_order;
        use crate::query::{FaqQuery, VarAgg};
        use faq_factor::{Domains, Factor};
        use faq_semiring::CountDomain;
        use rand::{rngs::StdRng, Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(2024);
        // ϕ = Σ1 max2 Σ3 ψ12 ψ23 over the counting domain.
        for _ in 0..20 {
            let mk = |rng: &mut StdRng, a: u32, b: u32| {
                let mut tuples = Vec::new();
                for x in 0..2u32 {
                    for y in 0..2u32 {
                        if rng.gen_bool(0.7) {
                            tuples.push((vec![x, y], rng.gen_range(1..5u64)));
                        }
                    }
                }
                Factor::with_combine(vec![v(a), v(b)], tuples, |x, y| x + y, |&x| x == 0).unwrap()
            };
            let f12 = mk(&mut rng, 1, 2);
            let f23 = mk(&mut rng, 2, 3);
            let mk_query = |bound: Vec<(Var, VarAgg)>| {
                FaqQuery::new(
                    CountDomain,
                    Domains::new(vec![2, 2, 2, 2]),
                    vec![],
                    bound,
                    vec![f12.clone(), f23.clone()],
                )
                .unwrap()
            };
            let q = mk_query(vec![
                (v(1), VarAgg::Semiring(CountDomain::SUM)),
                (v(2), VarAgg::Semiring(CountDomain::MAX)),
                (v(3), VarAgg::Semiring(CountDomain::SUM)),
            ]);
            let shape = q.shape();
            let reference = crate::naive::naive_eval(&q);
            for p in permutations(&[1, 2, 3]) {
                if is_equivalent_ordering(&shape, &p) {
                    let got = insideout_with_order(&q, &p).unwrap();
                    assert_eq!(got.factor, reference, "accepted order {p:?} differs");
                }
            }
        }
    }

    #[test]
    fn batch_membership_matches_sequential() {
        let shape = QueryShape {
            seq: vec![(v(1), SUM), (v(2), MAX), (v(3), SUM)],
            edges: vec![varset(&[1, 2]), varset(&[1, 3])],
            mul_idempotent: false,
            closed_ops: Default::default(),
        };
        let candidates = permutations(&[1, 2, 3]);
        let expect: Vec<bool> =
            candidates.iter().map(|p| is_equivalent_ordering(&shape, p)).collect();
        for threads in [1usize, 2, 4] {
            let policy = crate::exec::ExecPolicy::with_threads(threads);
            assert_eq!(are_equivalent_orderings(&shape, &candidates, &policy), expect);
        }
    }

    fn permutations(items: &[u32]) -> Vec<Vec<Var>> {
        let mut out = Vec::new();
        let mut arr: Vec<Var> = items.iter().map(|&i| v(i)).collect();
        permute(&mut arr, 0, &mut out);
        out
    }

    fn permute(arr: &mut Vec<Var>, k: usize, out: &mut Vec<Vec<Var>>) {
        if k == arr.len() {
            out.push(arr.clone());
            return;
        }
        for i in k..arr.len() {
            arr.swap(k, i);
            permute(arr, k + 1, out);
            arr.swap(k, i);
        }
    }

    fn sorted(mut v: Vec<Vec<Var>>) -> Vec<Vec<Var>> {
        v.sort();
        v
    }
}
