//! The fractional FAQ-width and its optimization (paper §5.5, §7).
//!
//! For a ϕ-equivalent ordering `σ`, `faqw(σ) = max_{k∈K} ρ*_H(U^σ_k)`
//! (Definition 5.10), where `K` collects the free and semiring positions and
//! the sets `U^σ_k` come from the aggregate-aware elimination sequence of
//! Definition 5.4 (product variables *shrink* edges instead of folding them).
//! InsideOut runs in `O~(N^{faqw(σ)} + ‖ϕ‖)` (Proposition 5.9).
//!
//! `faqw(ϕ) = min_{σ∈EVO(ϕ)} faqw(σ)`, and by the completeness results it
//! suffices to search `LinEx(P)` (Corollaries 6.14/6.28):
//!
//! * [`faqw_exact`] — exhaustive search over linear extensions (with a cap);
//! * [`faqw_approx`] — the Theorem 7.2/7.5 approximation: build the
//!   per-node hypergraphs `H_L`, order each with an fhtw blackbox, and
//!   concatenate along the node poset. With an exact blackbox the guarantee is
//!   `faqw(σ) ≤ 2·faqw(ϕ)`.

use crate::exprtree::{QueryShape, Tag};
use crate::query::FaqError;
use faq_hypergraph::elim::{ElimRule, EliminationSequence};
use faq_hypergraph::ordering::best_ordering;
use faq_hypergraph::widths::fractional_cover;
use faq_hypergraph::{Hypergraph, Var, VarSet};
use std::collections::{BTreeMap, HashMap};

/// Result of a width computation / ordering search.
#[derive(Debug, Clone)]
pub struct FaqwResult {
    /// The chosen ϕ-equivalent ordering.
    pub order: Vec<Var>,
    /// `faqw(order)`.
    pub width: f64,
    /// Whether the search provably found the optimum (`faqw(ϕ)`).
    pub exact: bool,
}

/// Memoizing `ρ*_H` evaluator over the original query hypergraph.
struct RhoStar {
    h: Hypergraph,
    cache: HashMap<Vec<Var>, f64>,
}

impl RhoStar {
    fn new(shape: &QueryShape) -> Self {
        RhoStar { h: shape.hypergraph(), cache: HashMap::new() }
    }

    fn eval(&mut self, b: &VarSet) -> Result<f64, FaqError> {
        if b.is_empty() {
            return Ok(0.0);
        }
        let key: Vec<Var> = b.iter().copied().collect();
        if let Some(&w) = self.cache.get(&key) {
            return Ok(w);
        }
        // A U-set containing a variable that appears in no edge (degenerate
        // queries: a free variable constrained by nothing, all-nullary
        // inputs) has no fractional cover — surface that as an error instead
        // of crashing; evaluation itself stays well-defined for such queries.
        let w =
            fractional_cover(&self.h, b).ok_or_else(|| FaqError::Uncoverable(key.clone()))?.value;
        self.cache.insert(key, w);
        Ok(w)
    }
}

fn elimination_rules(shape: &QueryShape, sigma: &[Var]) -> Vec<ElimRule> {
    sigma
        .iter()
        .map(|&v| match shape.tag_of(v).expect("sigma var has a tag") {
            Tag::Product => ElimRule::Shrink,
            _ => ElimRule::Fold,
        })
        .collect()
}

/// Check that every free/semiring variable is covered by at least one edge —
/// the premise of every `ρ*`-based width. A fold variable in no edge makes
/// `faqw` undefined (its elimination iterates the raw domain, so the
/// `N^{faqw}` bound says nothing); such degenerate queries — a free variable
/// constrained by nothing, all-nullary inputs — must surface as
/// [`FaqError::Uncoverable`] here rather than crash deeper in the LP layer.
fn check_fold_coverage(shape: &QueryShape) -> Result<(), FaqError> {
    let covered: VarSet = shape.edges.iter().flat_map(|e| e.iter().copied()).collect();
    let missing: Vec<Var> = shape
        .seq
        .iter()
        .filter(|&&(v, tag)| tag.is_fold() && !covered.contains(&v))
        .map(|&(v, _)| v)
        .collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(FaqError::Uncoverable(missing))
    }
}

/// `faqw(σ)` for a given ordering (Definition 5.10).
///
/// Errors with [`FaqError::Uncoverable`] on degenerate queries where a
/// free/semiring variable is covered by no edge.
pub fn faqw_of_ordering(shape: &QueryShape, sigma: &[Var]) -> Result<f64, FaqError> {
    check_fold_coverage(shape)?;
    let mut rho = RhoStar::new(shape);
    faqw_of_ordering_memo(shape, sigma, &mut rho)
}

fn faqw_of_ordering_memo(
    shape: &QueryShape,
    sigma: &[Var],
    rho: &mut RhoStar,
) -> Result<f64, FaqError> {
    let h = shape.hypergraph();
    let rules = elimination_rules(shape, sigma);
    let seq = EliminationSequence::with_rules(&h, sigma, &rules);
    let mut width = 0.0f64;
    for (k, &v) in sigma.iter().enumerate() {
        let fold = matches!(rules[k], ElimRule::Fold);
        if fold && !seq.u_set(k).is_empty() {
            width = width.max(rho.eval(seq.u_set(k))?);
        }
        let _ = v;
    }
    Ok(width)
}

/// Exhaustive `faqw(ϕ)` over `LinEx(P)`, visiting at most `cap` extensions.
///
/// Returns the best ordering found; `exact` is `true` when the enumeration
/// completed within the cap. Errors with [`FaqError::Uncoverable`] when the
/// query has a variable covered by no edge.
pub fn faqw_exact(shape: &QueryShape, cap: usize) -> Result<FaqwResult, FaqError> {
    check_fold_coverage(shape)?;
    let (extensions, exhausted) = crate::evo::linear_extensions(shape, cap);
    assert!(!extensions.is_empty(), "a query always has at least one linear extension");
    let mut rho = RhoStar::new(shape);
    let mut best: Option<(Vec<Var>, f64)> = None;
    for sigma in extensions {
        let w = faqw_of_ordering_memo(shape, &sigma, &mut rho)?;
        if best.as_ref().is_none_or(|(_, bw)| w < *bw - 1e-12) {
            best = Some((sigma, w));
        }
    }
    let (order, width) = best.expect("non-empty extension list");
    Ok(FaqwResult { order, width, exact: exhausted })
}

/// The Theorem 7.2 / 7.5 approximation algorithm.
///
/// For every semiring/free node `L` of the expression tree, builds the local
/// hypergraph `H_L` (edges projected to `L`, excluding those that touch a
/// semiring descendant, plus one edge `S_{L,C}` per child summarizing the
/// residue of the `C`-branch), orders `L` with the fhtw blackbox
/// ([`best_ordering`], exact up to `exact_limit` vertices), and concatenates
/// the per-node orderings along a topological order of the node/product
/// poset.
pub fn faqw_approx(shape: &QueryShape, exact_limit: usize) -> Result<FaqwResult, FaqError> {
    check_fold_coverage(shape)?;
    let tree = shape.expr_tree();
    let eff_edges = shape.effective_edges();

    // Vars of semiring/free nodes in each node's subtree.
    let n_nodes = tree.nodes.len();
    let mut subtree_semiring_vars: Vec<VarSet> = vec![VarSet::new(); n_nodes];
    // Process nodes bottom-up (children have larger ids is not guaranteed:
    // compute via explicit recursion).
    fn collect(tree: &crate::exprtree::ExprTree, id: usize, out: &mut Vec<VarSet>) -> VarSet {
        let mut acc = VarSet::new();
        if tree.nodes[id].tag.is_fold() {
            acc.extend(tree.nodes[id].vars.iter().copied());
        }
        let children = tree.nodes[id].children.clone();
        for c in children {
            let sub = collect(tree, c, out);
            acc.extend(sub.iter().copied());
        }
        out[id] = acc.clone();
        acc
    }
    collect(&tree, tree.root, &mut subtree_semiring_vars);

    // Per-node local ordering for semiring/free nodes.
    let mut node_orders: BTreeMap<usize, Vec<Var>> = BTreeMap::new();
    for (id, node) in tree.nodes.iter().enumerate() {
        if !node.tag.is_fold() || node.vars.is_empty() {
            continue;
        }
        let l_set: VarSet = node.vars.iter().copied().collect();
        // Semiring vars strictly below L.
        let mut below = VarSet::new();
        for &c in &node.children {
            below.extend(subtree_semiring_vars[c].iter().copied());
        }
        let mut hl = Hypergraph::new();
        for &v in &l_set {
            hl.add_vertex(v);
        }
        for s in &eff_edges {
            let sl: VarSet = s.intersection(&l_set).copied().collect();
            if !sl.is_empty() && s.is_disjoint(&below) {
                hl.add_edge(sl.iter().copied());
            }
        }
        for &c in &node.children {
            // E̅(C): edges touching a semiring/free node of the C-subtree.
            let cvars = &subtree_semiring_vars[c];
            if cvars.is_empty() {
                continue;
            }
            let mut slc = VarSet::new();
            for s in &eff_edges {
                if !s.is_disjoint(cvars) {
                    slc.extend(s.intersection(&l_set).copied());
                }
            }
            if !slc.is_empty() {
                hl.add_edge(slc.iter().copied());
            }
        }
        let pruned = hl.maximal_edges();
        let res = best_ordering(
            &pruned,
            |b| fractional_cover(&pruned, b).map(|c| c.value).unwrap_or(b.len() as f64),
            exact_limit,
        );
        node_orders.insert(id, res.order);
    }

    // Items: semiring/free nodes + individual product variables.
    // Topologically sort by the ancestor relation (product copies merge).
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
    enum Item {
        Node(usize),
        ProductVar(Var),
    }
    let mut items: Vec<Item> = Vec::new();
    let mut item_of_node: BTreeMap<usize, usize> = BTreeMap::new();
    let mut item_of_var: BTreeMap<Var, usize> = BTreeMap::new();
    for (id, node) in tree.nodes.iter().enumerate() {
        if node.tag.is_fold() {
            item_of_node.insert(id, items.len());
            items.push(Item::Node(id));
        } else {
            for &v in &node.vars {
                item_of_var.entry(v).or_insert_with(|| {
                    items.push(Item::ProductVar(v));
                    items.len() - 1
                });
            }
        }
    }
    let item_ids = |node_id: usize| -> Vec<usize> {
        let node = &tree.nodes[node_id];
        if node.tag.is_fold() {
            vec![item_of_node[&node_id]]
        } else {
            node.vars.iter().map(|v| item_of_var[v]).collect()
        }
    };
    let mut preds: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); items.len()];
    for (a, d) in tree.ancestor_pairs() {
        for &ai in &item_ids(a) {
            for &di in &item_ids(d) {
                if ai != di {
                    preds[di].insert(ai);
                }
            }
        }
    }
    // Product variables preserve their original order relative to non-closed
    // semiring variables (they never commute; see `QueryShape::precedence`).
    let non_closed = shape.non_closed_vars();
    for (wi, item) in items.iter().enumerate() {
        let Item::ProductVar(w) = item else { continue };
        let wpos = shape.seq_pos(*w).expect("product var in seq");
        for (ni, other) in items.iter().enumerate() {
            let Item::Node(id) = other else { continue };
            for &u in &tree.nodes[*id].vars {
                if !non_closed.contains(&u) {
                    continue;
                }
                let upos = shape.seq_pos(u).expect("node var in seq");
                if upos < wpos {
                    preds[wi].insert(ni);
                } else {
                    preds[ni].insert(wi);
                }
            }
        }
    }
    // Kahn with deterministic tie-break (earliest query position).
    let item_priority = |it: &Item| -> usize {
        match it {
            Item::Node(id) => {
                tree.nodes[*id].vars.iter().filter_map(|v| shape.seq_pos(*v)).min().unwrap_or(0)
            }
            Item::ProductVar(v) => shape.seq_pos(*v).unwrap_or(usize::MAX),
        }
    };
    let mut emitted = vec![false; items.len()];
    let mut sigma: Vec<Var> = Vec::new();
    for _ in 0..items.len() {
        let mut ready: Vec<usize> = (0..items.len())
            .filter(|&i| !emitted[i] && preds[i].iter().all(|&p| emitted[p]))
            .collect();
        ready.sort_by_key(|&i| item_priority(&items[i]));
        let pick = *ready.first().expect("poset has no cycle (Cor 6.21)");
        emitted[pick] = true;
        match items[pick] {
            Item::Node(id) => {
                if let Some(order) = node_orders.get(&id) {
                    sigma.extend(order.iter().copied());
                } else {
                    sigma.extend(tree.nodes[id].vars.iter().copied());
                }
            }
            Item::ProductVar(v) => sigma.push(v),
        }
    }

    let width = faqw_of_ordering(shape, &sigma)?;
    Ok(FaqwResult { order: sigma, width, exact: false })
}

/// Best-effort optimizer: exact LinEx search when the enumeration fits in
/// `linex_cap`, otherwise the approximation algorithm (and whichever of the
/// two is better when both run).
pub fn faqw_optimize(
    shape: &QueryShape,
    linex_cap: usize,
    exact_limit: usize,
) -> Result<FaqwResult, FaqError> {
    let exact = faqw_exact(shape, linex_cap)?;
    if exact.exact {
        return Ok(exact);
    }
    let approx = faqw_approx(shape, exact_limit)?;
    Ok(if approx.width < exact.width { approx } else { exact })
}

#[cfg(test)]
mod tests {
    use super::*;
    use faq_hypergraph::{v, varset};
    use faq_semiring::AggId;

    const SUM: Tag = Tag::Semiring(AggId(0));
    const MAX: Tag = Tag::Semiring(AggId(1));

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn faq_ss_width_equals_fhtw() {
        // Triangle, all Σ: faqw = fhtw = 1.5 (Proposition 5.12).
        let shape = QueryShape {
            seq: vec![(v(0), SUM), (v(1), SUM), (v(2), SUM)],
            edges: vec![varset(&[0, 1]), varset(&[0, 2]), varset(&[1, 2])],
            mul_idempotent: false,
            closed_ops: Default::default(),
        };
        let r = faqw_exact(&shape, 1000).unwrap();
        assert!(r.exact);
        assert!(close(r.width, 1.5), "{}", r.width);
    }

    #[test]
    fn acyclic_faq_ss_width_is_one() {
        let shape = QueryShape {
            seq: vec![(v(0), SUM), (v(1), SUM), (v(2), SUM), (v(3), SUM)],
            edges: vec![varset(&[0, 1]), varset(&[1, 2]), varset(&[2, 3])],
            mul_idempotent: false,
            closed_ops: Default::default(),
        };
        let r = faqw_exact(&shape, 1000).unwrap();
        assert!(close(r.width, 1.0), "{}", r.width);
    }

    #[test]
    fn example_5_6_idempotent_width_drops() {
        // ϕ = max1 max2 Π3 Σ4 max5 max6 ψ15 ψ25 ψ134 ψ236 with {0,1} factors:
        // the ordering (5,1,2,3,4,6) achieves faqw 1, the input order pays 2.
        let shape = QueryShape {
            seq: vec![
                (v(1), MAX),
                (v(2), MAX),
                (v(3), Tag::Product),
                (v(4), SUM),
                (v(5), MAX),
                (v(6), MAX),
            ],
            edges: vec![varset(&[1, 5]), varset(&[2, 5]), varset(&[1, 3, 4]), varset(&[2, 3, 6])],
            mul_idempotent: true,
            closed_ops: [AggId(1)].into_iter().collect(),
        };
        let input_order = [v(1), v(2), v(3), v(4), v(5), v(6)];
        let w_in = faqw_of_ordering(&shape, &input_order).unwrap();
        assert!(close(w_in, 2.0), "input order width {w_in}");
        let good = [v(5), v(1), v(2), v(3), v(4), v(6)];
        assert!(crate::evo::is_equivalent_ordering(&shape, &good));
        let w_good = faqw_of_ordering(&shape, &good).unwrap();
        assert!(close(w_good, 1.0), "good order width {w_good}");
        let r = faqw_exact(&shape, 100_000).unwrap();
        assert!(r.exact);
        assert!(close(r.width, 1.0), "optimal width {}", r.width);
    }

    #[test]
    fn chen_dalmau_family_has_bounded_faqw() {
        // Φ = ∀x1..xn ∃x_{n+1} (S(x1..xn) ∧ ∧_i R(xi, x_{n+1})): the
        // Chen–Dalmau prefix width is n+1, but faqw stays bounded by 2
        // (§7.2.1). The exact value is 2 − 1/n: cover U = {1..n+1} with
        // λ_S = 1 − 1/n and λ_{R_i} = 1/n.
        for n in [2u32, 3, 4] {
            let mut seq: Vec<(Var, Tag)> = (1..=n).map(|i| (v(i), Tag::Product)).collect();
            seq.push((v(n + 1), MAX));
            let mut edges = vec![(1..=n).map(v).collect::<VarSet>()];
            for i in 1..=n {
                edges.push(varset(&[i, n + 1]));
            }
            let shape = QueryShape {
                seq,
                edges,
                mul_idempotent: true,
                closed_ops: [AggId(1)].into_iter().collect(),
            };
            let r = faqw_exact(&shape, 100_000).unwrap();
            assert!(r.exact, "n={n}");
            assert!(close(r.width, 2.0 - 1.0 / n as f64), "n={n}: faqw {}", r.width);
            assert!(r.width <= 2.0 + 1e-9, "bounded by 2");
        }
    }

    #[test]
    fn approx_is_equivalent_and_bounded() {
        let shape = QueryShape {
            seq: vec![
                (v(1), SUM),
                (v(2), SUM),
                (v(3), MAX),
                (v(4), SUM),
                (v(5), SUM),
                (v(6), MAX),
                (v(7), MAX),
            ],
            edges: vec![
                varset(&[1, 2]),
                varset(&[1, 3, 5]),
                varset(&[1, 4]),
                varset(&[2, 4, 6]),
                varset(&[2, 7]),
                varset(&[3, 7]),
            ],
            mul_idempotent: false,
            closed_ops: Default::default(),
        };
        let exact = faqw_exact(&shape, 1_000_000).unwrap();
        assert!(exact.exact);
        let approx = faqw_approx(&shape, 16).unwrap();
        assert!(
            crate::evo::is_equivalent_ordering(&shape, &approx.order),
            "approx order {:?} not in EVO",
            approx.order
        );
        // opt ≤ approx ≤ opt + g(opt) = 2·opt with the exact blackbox.
        assert!(approx.width >= exact.width - 1e-9);
        assert!(
            approx.width <= 2.0 * exact.width + 1e-9,
            "approx {} vs exact {}",
            approx.width,
            exact.width
        );
    }

    #[test]
    fn exact_orderings_are_equivalent() {
        let shape = QueryShape {
            seq: vec![(v(1), SUM), (v(2), MAX), (v(3), SUM)],
            edges: vec![varset(&[1, 2]), varset(&[1, 3])],
            mul_idempotent: false,
            closed_ops: Default::default(),
        };
        let r = faqw_exact(&shape, 1000).unwrap();
        assert!(crate::evo::is_equivalent_ordering(&shape, &r.order));
        assert!(r.width >= 1.0 - 1e-9);
    }

    #[test]
    fn optimize_prefers_exact_when_feasible() {
        let shape = QueryShape {
            seq: vec![(v(0), SUM), (v(1), SUM)],
            edges: vec![varset(&[0, 1])],
            mul_idempotent: false,
            closed_ops: Default::default(),
        };
        let r = faqw_optimize(&shape, 100, 16).unwrap();
        assert!(r.exact);
        assert!(close(r.width, 1.0));
    }

    #[test]
    fn free_variables_enter_k() {
        // ϕ(x0, x1) = Σ_{x2} ψ012: U for the free pair covers the whole edge.
        let shape = QueryShape {
            seq: vec![(v(0), Tag::Free), (v(1), Tag::Free), (v(2), SUM)],
            edges: vec![varset(&[0, 1, 2])],
            mul_idempotent: false,
            closed_ops: Default::default(),
        };
        let w = faqw_of_ordering(&shape, &[v(0), v(1), v(2)]).unwrap();
        assert!(close(w, 1.0), "{w}");
    }
}
