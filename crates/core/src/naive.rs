//! Brute-force evaluation of the FAQ expression — the semantic ground truth.
//!
//! Evaluates eq. (1) by direct recursion over the quantifier prefix:
//! exponential in the number of variables, but unambiguous. Every engine
//! optimization is property-tested against this evaluator.

use crate::query::{FaqQuery, VarAgg};
use faq_factor::Factor;
use faq_hypergraph::Var;
use faq_semiring::AggDomain;

/// Evaluate `q` naively, producing the output factor over the free variables
/// (a nullary factor when there are none). Zero-valued outputs are omitted,
/// matching the listing representation.
pub fn naive_eval<D: AggDomain>(q: &FaqQuery<D>) -> Factor<D::E> {
    let mut assignment: Vec<Option<u32>> = vec![None; q.domains.len()];
    let free = q.free.clone();
    let mut out: Vec<(Vec<u32>, D::E)> = Vec::new();

    // Enumerate free assignments.
    let mut free_vals = vec![0u32; free.len()];
    loop {
        for (i, &v) in free.iter().enumerate() {
            assignment[v.index()] = Some(free_vals[i]);
        }
        let val = eval_bound(q, 0, &mut assignment);
        if !q.domain.is_zero(&val) {
            out.push((free_vals.clone(), val));
        }
        // Odometer over free variables.
        let mut i = free.len();
        let done = loop {
            if i == 0 {
                break true;
            }
            i -= 1;
            free_vals[i] += 1;
            if free_vals[i] < q.domains.size(free[i]) {
                break false;
            }
            free_vals[i] = 0;
        };
        if done {
            break;
        }
    }

    Factor::new(free, out).expect("distinct free assignments")
}

fn eval_bound<D: AggDomain>(
    q: &FaqQuery<D>,
    idx: usize,
    assignment: &mut Vec<Option<u32>>,
) -> D::E {
    if idx == q.bound.len() {
        return eval_product(q, assignment);
    }
    let (var, agg) = q.bound[idx];
    let size = q.domains.size(var);
    let mut acc: Option<D::E> = None;
    for x in 0..size {
        assignment[var.index()] = Some(x);
        let v = eval_bound(q, idx + 1, assignment);
        acc = Some(match acc {
            None => v,
            Some(a) => match agg {
                VarAgg::Semiring(op) => q.domain.add(op, &a, &v),
                VarAgg::Product => q.domain.mul(&a, &v),
            },
        });
    }
    assignment[var.index()] = None;
    // An empty domain folds to the aggregate's identity.
    acc.unwrap_or_else(|| match agg {
        VarAgg::Semiring(_) => q.domain.zero(),
        VarAgg::Product => q.domain.one(),
    })
}

fn eval_product<D: AggDomain>(q: &FaqQuery<D>, assignment: &[Option<u32>]) -> D::E {
    let mut acc = q.domain.one();
    let mut key: Vec<u32> = Vec::new();
    for f in &q.factors {
        key.clear();
        key.extend(f.schema().iter().map(|v: &Var| {
            assignment[v.index()].expect("all factor variables bound during naive eval")
        }));
        match f.get(&key) {
            Some(val) => acc = q.domain.mul(&acc, val),
            None => return q.domain.zero(),
        }
        if q.domain.is_zero(&acc) {
            return q.domain.zero();
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use faq_factor::Domains;
    use faq_hypergraph::v;
    use faq_semiring::{AggDomain, CountDomain, RealDomain};

    fn fac_u(schema: &[u32], rows: &[(&[u32], u64)]) -> Factor<u64> {
        Factor::new(
            schema.iter().map(|&i| v(i)).collect(),
            rows.iter().map(|(r, val)| (r.to_vec(), *val)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn sum_over_single_factor() {
        // ϕ = Σ_{x0} ψ(x0), ψ = {0→2, 1→3}.
        let q = FaqQuery::new(
            CountDomain,
            Domains::uniform(1, 2),
            vec![],
            vec![(v(0), VarAgg::Semiring(CountDomain::SUM))],
            vec![fac_u(&[0], &[(&[0], 2), (&[1], 3)])],
        )
        .unwrap();
        let out = naive_eval(&q);
        assert_eq!(out.get(&[]), Some(&5));
    }

    #[test]
    fn max_then_sum_orders_matter() {
        // ϕ1 = Σ_{x0} max_{x1} ψ(x0,x1) vs ϕ2 = max_{x0} Σ_{x1} ψ(x0,x1).
        let rows: &[(&[u32], u64)] = &[(&[0, 0], 1), (&[0, 1], 5), (&[1, 0], 3), (&[1, 1], 3)];
        let f = fac_u(&[0, 1], rows);
        let q1 = FaqQuery::new(
            CountDomain,
            Domains::uniform(2, 2),
            vec![],
            vec![
                (v(0), VarAgg::Semiring(CountDomain::SUM)),
                (v(1), VarAgg::Semiring(CountDomain::MAX)),
            ],
            vec![f.clone()],
        )
        .unwrap();
        // Σ_x0 max_x1: max(1,5) + max(3,3) = 5 + 3 = 8.
        assert_eq!(naive_eval(&q1).get(&[]), Some(&8));
        let q2 = FaqQuery::new(
            CountDomain,
            Domains::uniform(2, 2),
            vec![],
            vec![
                (v(1), VarAgg::Semiring(CountDomain::MAX)),
                (v(0), VarAgg::Semiring(CountDomain::SUM)),
            ],
            vec![f],
        )
        .unwrap();
        // max_x1 Σ_x0: max(1+3, 5+3) = 8. (Coincidentally equal is possible;
        // pick values where they differ.)
        assert_eq!(naive_eval(&q2).get(&[]), Some(&8));
    }

    #[test]
    fn product_aggregate_multiplies_over_domain() {
        // ϕ = Π_{x0} ψ(x0) with ψ = {0→2, 1→3} ⇒ 6.
        let q = FaqQuery::new(
            CountDomain,
            Domains::uniform(1, 2),
            vec![],
            vec![(v(0), VarAgg::Product)],
            vec![fac_u(&[0], &[(&[0], 2), (&[1], 3)])],
        )
        .unwrap();
        assert_eq!(naive_eval(&q).get(&[]), Some(&6));
        // Missing entry means implicit 0 ⇒ product 0 ⇒ empty output factor.
        let q0 = FaqQuery::new(
            CountDomain,
            Domains::uniform(1, 2),
            vec![],
            vec![(v(0), VarAgg::Product)],
            vec![fac_u(&[0], &[(&[0], 2)])],
        )
        .unwrap();
        assert!(naive_eval(&q0).is_empty());
    }

    #[test]
    fn free_variables_produce_a_table() {
        // ϕ(x0) = Σ_{x1} ψ(x0, x1).
        let q = FaqQuery::new(
            CountDomain,
            Domains::uniform(2, 2),
            vec![v(0)],
            vec![(v(1), VarAgg::Semiring(CountDomain::SUM))],
            vec![fac_u(&[0, 1], &[(&[0, 0], 1), (&[0, 1], 2), (&[1, 0], 4)])],
        )
        .unwrap();
        let out = naive_eval(&q);
        assert_eq!(out.get(&[0]), Some(&3));
        assert_eq!(out.get(&[1]), Some(&4));
    }

    #[test]
    fn variable_in_no_factor_scales_result() {
        // ϕ = Σ_{x0} Σ_{x1} ψ(x0): x1 not in any factor ⇒ result × |Dom(x1)|.
        let q = FaqQuery::new(
            CountDomain,
            Domains::new(vec![2, 3]),
            vec![],
            vec![
                (v(0), VarAgg::Semiring(CountDomain::SUM)),
                (v(1), VarAgg::Semiring(CountDomain::SUM)),
            ],
            vec![fac_u(&[0], &[(&[0], 1), (&[1], 1)])],
        )
        .unwrap();
        assert_eq!(naive_eval(&q).get(&[]), Some(&6));
    }

    #[test]
    fn real_domain_mixed_query() {
        // ϕ = max_{x0} Σ_{x1} ψ01 ψ1 over f64.
        let f01 = Factor::new(
            vec![v(0), v(1)],
            vec![(vec![0, 0], 0.5), (vec![0, 1], 2.0), (vec![1, 1], 4.0)],
        )
        .unwrap();
        let f1 = Factor::new(vec![v(1)], vec![(vec![0], 1.0), (vec![1], 0.25)]).unwrap();
        let q = FaqQuery::new(
            RealDomain,
            Domains::uniform(2, 2),
            vec![],
            vec![
                (v(0), VarAgg::Semiring(RealDomain::MAX)),
                (v(1), VarAgg::Semiring(RealDomain::SUM)),
            ],
            vec![f01, f1],
        )
        .unwrap();
        // x0=0: 0.5*1 + 2*0.25 = 1.0 ; x0=1: 0 + 4*0.25 = 1.0 ⇒ max = 1.0.
        let out = naive_eval(&q);
        assert_eq!(out.get(&[]), Some(&1.0));
        let _ = RealDomain.zero();
    }
}
