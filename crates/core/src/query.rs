//! The FAQ query type.

use crate::exprtree::{QueryShape, Tag};
use faq_factor::{Domains, Factor};
use faq_hypergraph::{Hypergraph, Var, VarSet};
use faq_semiring::{AggDomain, AggId};
use std::fmt;

/// The aggregate attached to a bound variable (paper §1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarAgg {
    /// A semiring aggregate `⊕⁽ⁱ⁾` such that `(D, ⊕⁽ⁱ⁾, ⊗)` is a commutative
    /// semiring.
    Semiring(AggId),
    /// The product aggregate `⊗` itself.
    Product,
}

/// Errors raised when constructing or evaluating a FAQ query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaqError {
    /// A variable appears both free and bound, or twice in the bound list.
    DuplicateVariable(Var),
    /// A factor mentions a variable that is neither free nor bound.
    UnlistedVariable(Var),
    /// A variable index is outside the domain catalog.
    UnknownVariable(Var),
    /// A factor tuple contains a value outside its variable's domain.
    ValueOutOfDomain {
        /// The variable whose domain is violated.
        var: Var,
        /// The offending value.
        value: u32,
    },
    /// An aggregate id is out of range for the domain.
    UnknownAggregate(AggId),
    /// A factor update or delta targets a prepared slot whose schema (as a
    /// variable set) differs from the supplied one. Names the slot — the
    /// actionable datum when a serving handle juggles many factors — plus a
    /// variable from the symmetric difference of the two schemas.
    FactorSchemaMismatch {
        /// The factor slot (position in the query's factor list) that failed.
        slot: usize,
        /// A variable present in exactly one of the two schemas.
        var: Var,
    },
    /// A supplied variable ordering is invalid for this query.
    BadOrdering(String),
    /// A variable set is not coverable by the query's edges (some variable
    /// appears in no factor), so `ρ*`/AGM-based widths are undefined for it.
    /// Raised by the width and planning machinery on degenerate queries —
    /// evaluation itself handles such variables by domain iteration.
    Uncoverable(Vec<Var>),
    /// An out-of-core chunk operation failed after bounded retries — either a
    /// hard I/O error or a checksum mismatch on fault-in. Carries the typed
    /// [`StorageError`](faq_factor::StorageError) from the storage layer.
    Storage(faq_factor::StorageError),
    /// Evaluation overran the [`Deadline`](faq_factor::Deadline) attached to
    /// its [`ExecPolicy`](crate::exec::ExecPolicy) and was abandoned at a
    /// cooperative checkpoint.
    DeadlineExceeded,
    /// Evaluation was cancelled via its
    /// [`CancelToken`](faq_factor::CancelToken).
    Cancelled,
}

impl fmt::Display for FaqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaqError::DuplicateVariable(v) => write!(f, "variable {v} listed twice"),
            FaqError::UnlistedVariable(v) => {
                write!(f, "factor variable {v} is neither free nor bound")
            }
            FaqError::UnknownVariable(v) => write!(f, "variable {v} not in the domain catalog"),
            FaqError::ValueOutOfDomain { var, value } => {
                write!(f, "factor value {value} outside the domain of {var}")
            }
            FaqError::UnknownAggregate(a) => write!(f, "aggregate {a:?} unknown to the domain"),
            FaqError::FactorSchemaMismatch { slot, var } => {
                write!(f, "factor slot {slot}: schema mismatch on variable {var}")
            }
            FaqError::BadOrdering(m) => write!(f, "bad variable ordering: {m}"),
            FaqError::Uncoverable(vars) => {
                write!(f, "variable set {vars:?} is not coverable by any query edge")
            }
            FaqError::Storage(e) => write!(f, "storage failure: {e}"),
            FaqError::DeadlineExceeded => write!(f, "evaluation deadline exceeded"),
            FaqError::Cancelled => write!(f, "evaluation cancelled"),
        }
    }
}

impl std::error::Error for FaqError {}

impl From<faq_factor::QueryAbort> for FaqError {
    fn from(abort: faq_factor::QueryAbort) -> FaqError {
        match abort {
            faq_factor::QueryAbort::Storage(e) => FaqError::Storage(e),
            faq_factor::QueryAbort::DeadlineExceeded => FaqError::DeadlineExceeded,
            faq_factor::QueryAbort::Cancelled => FaqError::Cancelled,
        }
    }
}

/// A Functional Aggregate Query over a multi-aggregate domain `D`.
///
/// The quantifier prefix reads left to right: free variables first (in output
/// order), then `bound` outermost-to-innermost.
#[derive(Clone)]
pub struct FaqQuery<D: AggDomain> {
    /// The value domain (operators).
    pub domain: D,
    /// Per-variable domain sizes.
    pub domains: Domains,
    /// Free (output) variables.
    pub free: Vec<Var>,
    /// Bound variables with their aggregates, outermost first.
    pub bound: Vec<(Var, VarAgg)>,
    /// Input factors; edge `i` of the query hypergraph is `factors[i].schema()`.
    pub factors: Vec<Factor<D::E>>,
}

impl<D: AggDomain> fmt::Debug for FaqQuery<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FaqQuery(free={:?}, bound={:?}, {} factors)",
            self.free,
            self.bound,
            self.factors.len()
        )
    }
}

impl<D: AggDomain> FaqQuery<D> {
    /// Build and validate a query.
    pub fn new(
        domain: D,
        domains: Domains,
        free: Vec<Var>,
        bound: Vec<(Var, VarAgg)>,
        factors: Vec<Factor<D::E>>,
    ) -> Result<Self, FaqError> {
        let q = FaqQuery { domain, domains, free, bound, factors };
        q.validate()?;
        Ok(q)
    }

    /// Validate the query invariants.
    pub fn validate(&self) -> Result<(), FaqError> {
        let mut seen = VarSet::new();
        for &v in &self.free {
            if !seen.insert(v) {
                return Err(FaqError::DuplicateVariable(v));
            }
        }
        for &(v, agg) in &self.bound {
            if !seen.insert(v) {
                return Err(FaqError::DuplicateVariable(v));
            }
            if let VarAgg::Semiring(op) = agg {
                if op.index() >= self.domain.num_ops() {
                    return Err(FaqError::UnknownAggregate(op));
                }
            }
        }
        for v in seen.iter() {
            if v.index() >= self.domains.len() {
                return Err(FaqError::UnknownVariable(*v));
            }
        }
        for f in &self.factors {
            for v in f.schema() {
                if !seen.contains(v) {
                    return Err(FaqError::UnlistedVariable(*v));
                }
            }
            // Listing tuples must stay inside the declared domains — the
            // naive semantics of eq. (1) never see out-of-domain points, so
            // admitting them would silently diverge from the specification.
            // Checking per-column maxima instead of scanning rows keeps this
            // O(arity) and — for spilled factors — avoids faulting every
            // chunk in just to admit the query.
            for (pos, v) in f.schema().iter().enumerate() {
                if let Some(value) = f.max_in_column(pos) {
                    if value >= self.domains.size(*v) {
                        return Err(FaqError::ValueOutOfDomain { var: *v, value });
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of free variables.
    pub fn num_free(&self) -> usize {
        self.free.len()
    }

    /// All variables in query order: free first, then bound.
    pub fn ordering(&self) -> Vec<Var> {
        let mut o = self.free.clone();
        o.extend(self.bound.iter().map(|&(v, _)| v));
        o
    }

    /// The aggregate of a bound variable, `None` for free variables.
    pub fn agg_of(&self, v: Var) -> Option<VarAgg> {
        self.bound.iter().find(|&&(bv, _)| bv == v).map(|&(_, a)| a)
    }

    /// The query hypergraph: one edge per factor, vertices = free ∪ bound
    /// (including variables in no factor).
    pub fn hypergraph(&self) -> Hypergraph {
        let mut h = Hypergraph::new();
        for &v in &self.free {
            h.add_vertex(v);
        }
        for &(v, _) in &self.bound {
            h.add_vertex(v);
        }
        for f in &self.factors {
            h.add_edge(f.schema().iter().copied());
        }
        h
    }

    /// Whether this is an FAQ-SS instance: all bound aggregates are the same
    /// semiring aggregate.
    pub fn is_faq_ss(&self) -> bool {
        let mut op: Option<AggId> = None;
        for &(_, agg) in &self.bound {
            match agg {
                VarAgg::Product => return false,
                VarAgg::Semiring(o) => match op {
                    None => op = Some(o),
                    Some(p) => {
                        if !self.domain.ops_identical(p, o) {
                            return false;
                        }
                    }
                },
            }
        }
        true
    }

    /// The combinatorial shape of the query (tags + hyperedges), the input to
    /// the expression-tree / EVO / width machinery.
    ///
    /// Semiring aggregate ids are canonicalized so that functionally identical
    /// operators (paper Definition 6.4) compare equal.
    pub fn shape(&self) -> QueryShape {
        let mut seq: Vec<(Var, Tag)> = self.free.iter().map(|&v| (v, Tag::Free)).collect();
        for &(v, agg) in &self.bound {
            let tag = match agg {
                VarAgg::Product => Tag::Product,
                VarAgg::Semiring(op) => {
                    // Canonical representative: the smallest identical op id.
                    let mut canon = op;
                    for i in 0..op.index() {
                        let cand = AggId(i as u32);
                        if self.domain.ops_identical(cand, op) {
                            canon = cand;
                            break;
                        }
                    }
                    Tag::Semiring(canon)
                }
            };
            seq.push((v, tag));
        }
        let edges: Vec<VarSet> =
            self.factors.iter().map(|f| f.schema().iter().copied().collect()).collect();
        let closed_ops = (0..self.domain.num_ops() as u32)
            .map(AggId)
            .filter(|&op| self.domain.op_closed_under_idempotents(op))
            .collect();
        QueryShape { seq, edges, mul_idempotent: self.domain.mul_idempotent_domain(), closed_ops }
    }

    /// The query shape under the `F(D_I)` promise of paper Definition 5.8:
    /// all input factors (and hence the sub-expressions below the outermost
    /// non-closed aggregates) range over `⊗`-idempotent elements, as in QCQ,
    /// `#QCQ` and Example 5.6. The §6.2 expression tree applies without the
    /// Definition 6.30 edge extension, enlarging the set of recognized
    /// equivalent orderings.
    ///
    /// The promise is validated against the current factor values; it remains
    /// the caller's responsibility that the *class* of inputs keeps it.
    pub fn shape_promising_idempotent_inputs(&self) -> QueryShape {
        for f in &self.factors {
            for i in 0..f.len() {
                let v = f.value_at(i);
                assert!(
                    self.domain.is_mul_idempotent(v.as_ref()),
                    "factor value {:?} is not ⊗-idempotent; the F(D_I) promise does not hold",
                    v.as_ref()
                );
            }
        }
        let mut shape = self.shape();
        shape.mul_idempotent = true;
        shape
    }

    /// Check that `sigma` is a syntactically valid ordering for this query:
    /// a permutation of all variables whose first `f` entries are the free set.
    pub fn check_ordering(&self, sigma: &[Var]) -> Result<(), FaqError> {
        let all: VarSet = self.ordering().into_iter().collect();
        let got: VarSet = sigma.iter().copied().collect();
        if sigma.len() != all.len() || all != got {
            return Err(FaqError::BadOrdering(format!(
                "ordering {sigma:?} is not a permutation of the query variables"
            )));
        }
        let f = self.free.len();
        let free_set: VarSet = self.free.iter().copied().collect();
        let prefix: VarSet = sigma[..f].iter().copied().collect();
        if prefix != free_set {
            return Err(FaqError::BadOrdering(format!(
                "free variables {free_set:?} must form the prefix, got {prefix:?}"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faq_hypergraph::v;
    use faq_semiring::RealDomain;

    fn fac(schema: &[u32], rows: &[(&[u32], f64)]) -> Factor<f64> {
        Factor::new(
            schema.iter().map(|&i| v(i)).collect(),
            rows.iter().map(|(r, val)| (r.to_vec(), *val)).collect(),
        )
        .unwrap()
    }

    fn sample_query() -> FaqQuery<RealDomain> {
        FaqQuery::new(
            RealDomain,
            Domains::uniform(3, 2),
            vec![v(0)],
            vec![
                (v(1), VarAgg::Semiring(RealDomain::SUM)),
                (v(2), VarAgg::Semiring(RealDomain::MAX)),
            ],
            vec![fac(&[0, 1], &[(&[0, 0], 1.0)]), fac(&[1, 2], &[(&[0, 1], 2.0)])],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let q = sample_query();
        assert_eq!(q.num_free(), 1);
        assert_eq!(q.ordering(), vec![v(0), v(1), v(2)]);
        assert_eq!(q.agg_of(v(1)), Some(VarAgg::Semiring(RealDomain::SUM)));
        assert_eq!(q.agg_of(v(0)), None);
        assert!(!q.is_faq_ss()); // SUM and MAX differ
    }

    #[test]
    fn faq_ss_detection() {
        let mut q = sample_query();
        q.bound[1].1 = VarAgg::Semiring(RealDomain::SUM);
        assert!(q.is_faq_ss());
        q.bound[1].1 = VarAgg::Product;
        assert!(!q.is_faq_ss());
    }

    #[test]
    fn duplicate_variable_rejected() {
        let q = FaqQuery::new(
            RealDomain,
            Domains::uniform(2, 2),
            vec![v(0)],
            vec![(v(0), VarAgg::Product)],
            vec![],
        );
        assert_eq!(q.unwrap_err(), FaqError::DuplicateVariable(v(0)));
    }

    #[test]
    fn unlisted_factor_variable_rejected() {
        let q = FaqQuery::new(
            RealDomain,
            Domains::uniform(3, 2),
            vec![v(0)],
            vec![],
            vec![fac(&[0, 2], &[])],
        );
        assert_eq!(q.unwrap_err(), FaqError::UnlistedVariable(v(2)));
    }

    #[test]
    fn unknown_aggregate_rejected() {
        let q = FaqQuery::new(
            RealDomain,
            Domains::uniform(2, 2),
            vec![],
            vec![(v(0), VarAgg::Semiring(AggId(7)))],
            vec![],
        );
        assert_eq!(q.unwrap_err(), FaqError::UnknownAggregate(AggId(7)));
    }

    #[test]
    fn hypergraph_includes_isolated_vars() {
        let q = FaqQuery::new(
            RealDomain,
            Domains::uniform(2, 2),
            vec![v(0)],
            vec![(v(1), VarAgg::Semiring(RealDomain::SUM))],
            vec![fac(&[0], &[(&[0], 1.0)])],
        )
        .unwrap();
        let h = q.hypergraph();
        assert_eq!(h.num_vertices(), 2);
        assert_eq!(h.num_edges(), 1);
    }

    #[test]
    fn ordering_check() {
        let q = sample_query();
        assert!(q.check_ordering(&[v(0), v(1), v(2)]).is_ok());
        assert!(q.check_ordering(&[v(0), v(2), v(1)]).is_ok());
        assert!(q.check_ordering(&[v(1), v(0), v(2)]).is_err()); // free not first
        assert!(q.check_ordering(&[v(0), v(1)]).is_err()); // missing var
    }

    #[test]
    fn shape_canonicalizes_tags() {
        let q = sample_query();
        let s = q.shape();
        assert_eq!(s.seq.len(), 3);
        assert_eq!(s.seq[0].1, Tag::Free);
        assert_eq!(s.seq[1].1, Tag::Semiring(RealDomain::SUM));
        assert_eq!(s.seq[2].1, Tag::Semiring(RealDomain::MAX));
        assert_eq!(s.edges.len(), 2);
    }
}
