//! Incremental delta evaluation for prepared queries.
//!
//! A [`crate::plan::PreparedQuery`] serves repeated evaluations of one FAQ
//! expression over mutable factors. Re-running InsideOut from scratch after a
//! point update repeats work proportional to the *whole* database; this module
//! confines the repeated work to the *touched key ranges* instead.
//!
//! # How it works
//!
//! The first incremental call runs a **traced** evaluation: the same phases as
//! [`mod@crate::insideout`] — bound-variable elimination (paper eq. (7)/(8)), the
//! free-variable guard phase (eqs. (10)–(11)), and the final OutsideIn output
//! join (eq. (12)) — but every input, intermediate, guard, and materialized
//! filter projection is parked in a node arena, and every step records which
//! nodes it reads and writes. The trace reuses the engine's own compute
//! kernels ([`crate::exec`] grouped joins, the shared product rewrite), so the
//! cached intermediates are bit-identical to what a fresh evaluation builds.
//!
//! A delta ([`DeltaFactor`]) then merges into its slot's factor, reporting the
//! changed values of the factor's **first column** as sorted half-open ranges.
//! Replay walks the trace once, propagating a per-node dirty state:
//!
//! * `Clean` — node unchanged, step output reused from cache;
//! * `Ranges(rs)` — node rows changed only where its first column lies in
//!   `rs`;
//! * `Full` — node must be treated as wholly changed.
//!
//! A join step whose dirty inputs are all `Ranges` *on the step's first join
//! variable* is re-run **restricted**: the leapfrog kernel executes once per
//! range over a range-restricted view of the (already updated) inputs, and the
//! small recomputed slice is spliced into the cached output with
//! [`Factor::splice_by_first`]. This is sound because elimination joins
//! enumerate bindings in lexicographic order of the join order — a fold group
//! never spans two first-column values — and because every intermediate's
//! schema starts with the step's first join variable, so changes confined to
//! first-column ranges of the inputs stay confined to the same ranges of the
//! output. Steps that don't satisfy the alignment condition (or whose output
//! is a scalar) fall back to a full re-run of that one step; everything
//! untouched still comes from the cache.
//!
//! The public surface is [`crate::plan::PreparedQuery::apply_delta`] /
//! [`apply_delta_with`](crate::plan::PreparedQuery::apply_delta_with); the
//! differential test suite (`tests/delta_equivalence.rs`) proves the replayed
//! output bit-identical to a from-scratch re-evaluation across semirings and
//! thread counts.

pub use faq_factor::{DeltaFactor, DeltaOp};

use crate::exec::{grouped_join, grouped_join_range, ExecPolicy, PolicySource};
use crate::insideout::{prefix_filter_depth, product_rewrite, ElimStats, FaqOutput, StepStat};
use crate::query::{FaqError, FaqQuery, VarAgg};
use faq_factor::{Domains, Factor, FactorBuilder};
use faq_hypergraph::{Var, VarSet};
use faq_join::{JoinInput, JoinStats};
use faq_semiring::{AggDomain, AggId, SemiringElem};

/// How a traced join step folds consecutive bindings of one group.
#[derive(Debug, Clone, Copy)]
enum FoldKind {
    /// `⊕⁽ᵒᵖ⁾`-fold of eq. (7); groups folding to zero are dropped.
    Semiring(AggId),
    /// Guard join (eqs. (10)–(11)): every binding is its own group, nothing
    /// is dropped.
    Guard,
    /// Final output join (eq. (12)): every binding its own group, zero
    /// products dropped.
    Output,
}

/// One filter input of a traced join step.
#[derive(Debug, Clone)]
enum TraceFilter {
    /// Lazy depth-capped prefix filter over `node`'s own trie.
    Prefix { node: usize, depth: usize },
    /// Materialized indicator projection: arena node `proj` is derived from
    /// `source` and refreshed whenever `source` is dirty.
    Proj { source: usize, proj: usize },
    /// Plain filter over `node` (the output join's guards).
    Plain { node: usize },
}

impl TraceFilter {
    /// The arena node the join kernel actually reads.
    fn input_node(&self) -> usize {
        match *self {
            TraceFilter::Prefix { node, .. } => node,
            TraceFilter::Proj { proj, .. } => proj,
            TraceFilter::Plain { node } => node,
        }
    }
}

/// A traced grouped join: a phase-1 semiring step, a phase-2 guard step, or
/// the phase-3 output join.
#[derive(Debug, Clone)]
struct JoinStepTrace {
    /// Eliminated variable; `None` for the final output join.
    var: Option<Var>,
    join_order: Vec<Var>,
    group_arity: usize,
    build_trie: bool,
    fold: FoldKind,
    /// Value inputs (arena nodes), in engine order.
    values: Vec<usize>,
    /// Filter inputs, in engine order (after the values).
    filters: Vec<TraceFilter>,
    /// Arena node the join writes.
    output: usize,
    /// Phase-2 only: the reduced edge `ψ_{U_k − {k}}` — the indicator
    /// projection of the guard output onto these variables — and its node.
    reduced: Option<(usize, Vec<Var>)>,
}

/// One step of the traced evaluation.
#[derive(Debug, Clone)]
enum TraceStep {
    Join(JoinStepTrace),
    /// A bound semiring variable with no incident edge: its scalar depends
    /// only on the domain size, never on factor data, so replay skips it.
    Scalar,
    /// A product-aggregate step (eq. (8)): each live edge is rewritten
    /// independently, `(input, output)` arena node pairs.
    Product {
        var: Var,
        rewrites: Vec<(usize, usize)>,
    },
}

/// Per-node dirty state during replay.
#[derive(Debug, Clone)]
enum Dirty {
    Clean,
    /// Rows changed only where the node's first column lies in these sorted,
    /// disjoint, half-open ranges.
    Ranges(Vec<(u32, u32)>),
    Full,
}

/// The cached trace of one prepared query: the node arena (inputs,
/// intermediates, guards, materialized projections, output) plus the step
/// list that rebuilds any node from its inputs.
#[derive(Debug, Clone)]
pub(crate) struct DeltaCache<E: SemiringElem> {
    nodes: Vec<Factor<E>>,
    /// Arena node of each input factor slot.
    input_nodes: Vec<usize>,
    steps: Vec<TraceStep>,
    /// Arena node of the output factor.
    output: usize,
}

impl<E: SemiringElem> DeltaCache<E> {
    /// The cached output factor (the result of the latest replayed — or
    /// initial — evaluation).
    pub(crate) fn output_factor(&self) -> &Factor<E> {
        &self.nodes[self.output]
    }
}

/// Union of two sorted, disjoint, coalesced half-open range lists — sorted,
/// disjoint, and coalesced again (adjacent ranges merge).
fn union_ranges(a: &[(u32, u32)], b: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    let push = |out: &mut Vec<(u32, u32)>, r: (u32, u32)| match out.last_mut() {
        Some(last) if r.0 <= last.1 => last.1 = last.1.max(r.1),
        _ => out.push(r),
    };
    while i < a.len() && j < b.len() {
        if a[i].0 <= b[j].0 {
            push(&mut out, a[i]);
            i += 1;
        } else {
            push(&mut out, b[j]);
            j += 1;
        }
    }
    for &r in &a[i..] {
        push(&mut out, r);
    }
    for &r in &b[j..] {
        push(&mut out, r);
    }
    out
}

/// The coalesced first-column ranges on which two same-schema factors differ:
/// a two-pointer merge over the sorted listings, marking the first-column
/// value of every deleted, inserted, or value-changed row. Marks arrive in
/// nondecreasing order (the merge always advances the lexicographically
/// smaller row), so coalescing is a constant-time tail check.
fn diff_first_ranges<E: SemiringElem>(old: &Factor<E>, new: &Factor<E>) -> Vec<(u32, u32)> {
    debug_assert_eq!(old.schema(), new.schema());
    debug_assert!(new.arity() > 0);
    let mut out: Vec<(u32, u32)> = Vec::new();
    let mark = |out: &mut Vec<(u32, u32)>, v: u32| match out.last_mut() {
        Some(last) if v < last.1 => {}
        Some(last) if v == last.1 => last.1 = v + 1,
        _ => out.push((v, v + 1)),
    };
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() && j < new.len() {
        match old.row(i).cmp(new.row(j)) {
            std::cmp::Ordering::Less => {
                mark(&mut out, old.row(i)[0]); // deleted
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                mark(&mut out, new.row(j)[0]); // inserted
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if old.value(i) != new.value(j) {
                    mark(&mut out, old.row(i)[0]);
                }
                i += 1;
                j += 1;
            }
        }
    }
    for k in i..old.len() {
        mark(&mut out, old.row(k)[0]);
    }
    for k in j..new.len() {
        mark(&mut out, new.row(k)[0]);
    }
    out
}

/// The dirtiness of replacing `old` by `new`: `Clean` when identical,
/// first-column [`Dirty::Ranges`] where they differ, `Full` for scalars
/// (nothing to anchor a range on).
fn narrowed_dirty<E: SemiringElem>(old: &Factor<E>, new: &Factor<E>) -> Dirty {
    if new.arity() == 0 || old.schema() != new.schema() {
        return Dirty::Full;
    }
    let rs = diff_first_ranges(old, new);
    if rs.is_empty() {
        Dirty::Clean
    } else {
        Dirty::Ranges(rs)
    }
}

/// Run the traced evaluation: the same elimination as
/// [`crate::insideout::insideout_with_order`] along `sigma`, but with every
/// factor the engine touches parked in the arena and every step recorded.
///
/// Bit-identity with the untraced engine holds because both run the *same*
/// kernels ([`grouped_join`], [`product_rewrite`]) over the same inputs in
/// the same order; the differential suite in `tests/delta_equivalence.rs`
/// checks it across semirings and thread counts.
pub(crate) fn traced_eval<D: AggDomain + Sync, P: PolicySource>(
    q: &FaqQuery<D>,
    sigma: &[Var],
    policies: &P,
) -> Result<DeltaCache<D::E>, FaqError> {
    q.validate()?;
    q.check_ordering(sigma)?;
    let f = q.free.len();
    let dom = &q.domain;
    let sigma_pos = |v: Var| -> usize { sigma.iter().position(|&s| s == v).expect("var in sigma") };

    let mut nodes: Vec<Factor<D::E>> = q.factors.clone();
    let input_nodes: Vec<usize> = (0..nodes.len()).collect();
    let mut live: Vec<usize> = (0..nodes.len()).collect();
    let mut steps: Vec<TraceStep> = Vec::new();

    // ---- Phase 1: bound variables, innermost first (mirrors
    // `run_elimination_with_source`).
    for k in (f..sigma.len()).rev() {
        let var = sigma[k];
        match q.agg_of(var).expect("bound variable has an aggregate") {
            VarAgg::Semiring(op) => {
                let (incident, rest): (Vec<usize>, Vec<usize>) =
                    live.iter().partition(|&&i| nodes[i].schema().contains(&var));
                if incident.is_empty() {
                    // ⊕-sum of |Dom| ones: data-independent, replay skips it.
                    let size = q.domains.size(var);
                    let mut acc = dom.one();
                    for _ in 1..size {
                        acc = dom.add(op, &acc, &dom.one());
                    }
                    let scalar = if dom.is_zero(&acc) || size == 0 {
                        Factor::nullary(None)
                    } else {
                        Factor::nullary(Some(acc))
                    };
                    let out = nodes.len();
                    nodes.push(scalar);
                    live = rest;
                    live.push(out);
                    steps.push(TraceStep::Scalar);
                    continue;
                }
                let mut u: VarSet = VarSet::new();
                for &i in &incident {
                    u.extend(nodes[i].schema().iter().copied());
                }
                let mut join_order: Vec<Var> = u.iter().copied().filter(|&x| x != var).collect();
                join_order.sort_by_key(|&v| sigma_pos(v));
                let group_arity = join_order.len();
                join_order.push(var);

                let filters = trace_filters(&mut nodes, &rest, &u, &join_order, dom);
                let inputs = trace_inputs(&nodes, &incident, &filters);
                let (new_factor, _) = grouped_join(
                    policies.policy_for(var),
                    &q.domains,
                    &join_order,
                    &inputs,
                    &dom.one(),
                    group_arity,
                    true,
                    &|a, b| dom.mul(a, b),
                    &|a, b| dom.add(op, a, b),
                    &|x| dom.is_zero(x),
                )?;
                drop(inputs);
                let out = nodes.len();
                nodes.push(new_factor);
                live = rest;
                live.push(out);
                steps.push(TraceStep::Join(JoinStepTrace {
                    var: Some(var),
                    join_order,
                    group_arity,
                    build_trie: true,
                    fold: FoldKind::Semiring(op),
                    values: incident,
                    filters,
                    output: out,
                    reduced: None,
                }));
            }
            VarAgg::Product => {
                let mut rewrites: Vec<(usize, usize)> = Vec::with_capacity(live.len());
                let mut new_live: Vec<usize> = Vec::with_capacity(live.len());
                for &i in &live {
                    let rewritten = product_rewrite(q, var, &nodes[i]);
                    let out = nodes.len();
                    nodes.push(rewritten);
                    rewrites.push((i, out));
                    new_live.push(out);
                }
                live = new_live;
                steps.push(TraceStep::Product { var, rewrites });
            }
        }
    }

    // ---- Phase 2: free variables under 01-OR, recording guards.
    let ef_nodes: Vec<usize> = live.clone();
    let mut guard_nodes: Vec<usize> = Vec::new();
    for k in (0..f).rev() {
        let var = sigma[k];
        let incident: Vec<usize> =
            live.iter().copied().filter(|&i| nodes[i].schema().contains(&var)).collect();
        if incident.is_empty() {
            continue;
        }
        let mut u: VarSet = VarSet::new();
        for &i in &incident {
            u.extend(nodes[i].schema().iter().copied());
        }
        let mut join_order: Vec<Var> = u.iter().copied().collect();
        join_order.sort_by_key(|&v| sigma_pos(v));

        // Every live edge touching U joins the guard as a filter.
        let filters = trace_filters(&mut nodes, &live, &u, &join_order, dom);
        let inputs = trace_inputs(&nodes, &[], &filters);
        let (guard, _) = grouped_join(
            policies.policy_for(var),
            &q.domains,
            &join_order,
            &inputs,
            &dom.one(),
            join_order.len(),
            true,
            &|a, b| dom.mul(a, b),
            &|a: &D::E, _: &D::E| a.clone(),
            &|_| false,
        )?;
        drop(inputs);
        let reduced_vars: Vec<Var> = join_order.iter().copied().filter(|&x| x != var).collect();
        let new_edge = guard.indicator_projection(&reduced_vars, dom.one());
        let guard_node = nodes.len();
        nodes.push(guard);
        let reduced_node = nodes.len();
        nodes.push(new_edge);
        guard_nodes.push(guard_node);
        let group_arity = join_order.len();
        steps.push(TraceStep::Join(JoinStepTrace {
            var: Some(var),
            join_order,
            group_arity,
            build_trie: true,
            fold: FoldKind::Guard,
            values: Vec::new(),
            filters,
            output: guard_node,
            reduced: Some((reduced_node, reduced_vars)),
        }));
        live = live
            .iter()
            .copied()
            .filter(|i| !incident.contains(i))
            .chain(std::iter::once(reduced_node))
            .collect();
    }

    // ---- Phase 3: the final OutsideIn join over eq. (12).
    let free_order: Vec<Var> = sigma[..f].to_vec();
    let filters: Vec<TraceFilter> =
        guard_nodes.iter().map(|&node| TraceFilter::Plain { node }).collect();
    let inputs = trace_inputs(&nodes, &ef_nodes, &filters);
    let (factor, _) = grouped_join(
        policies.output_policy(),
        &q.domains,
        &free_order,
        &inputs,
        &dom.one(),
        free_order.len(),
        false,
        &|a, b| dom.mul(a, b),
        &|a: &D::E, _: &D::E| a.clone(),
        &|x| dom.is_zero(x),
    )?;
    drop(inputs);
    let output = nodes.len();
    let group_arity = free_order.len();
    nodes.push(factor);
    steps.push(TraceStep::Join(JoinStepTrace {
        var: None,
        join_order: free_order,
        group_arity,
        build_trie: false,
        fold: FoldKind::Output,
        values: ef_nodes,
        filters,
        output,
        reduced: None,
    }));

    Ok(DeltaCache { nodes, input_nodes, steps, output })
}

/// Plan the filter inputs of a traced step over `edges` (arena node ids),
/// mirroring [`crate::insideout::plan_filters`]: edges overlapping `u` join
/// lazily where their surviving columns are a join-order-compatible prefix,
/// and materialize an indicator projection — parked as a fresh arena node so
/// replay can refresh it — otherwise.
fn trace_filters<D: AggDomain>(
    nodes: &mut Vec<Factor<D::E>>,
    edges: &[usize],
    u: &VarSet,
    join_order: &[Var],
    dom: &D,
) -> Vec<TraceFilter> {
    let mut filters: Vec<TraceFilter> = Vec::new();
    for &i in edges {
        let e = &nodes[i];
        if e.arity() == 0 || !e.schema().iter().any(|v| u.contains(v)) {
            continue;
        }
        match prefix_filter_depth(e.schema(), join_order) {
            Some(depth) => filters.push(TraceFilter::Prefix { node: i, depth }),
            None => {
                let proj = e.indicator_projection(join_order, dom.one());
                let pid = nodes.len();
                nodes.push(proj);
                filters.push(TraceFilter::Proj { source: i, proj: pid });
            }
        }
    }
    filters
}

/// Realize a traced step's inputs against the arena: value inputs first, then
/// filters, matching the engine's input order exactly.
fn trace_inputs<'a, E: SemiringElem>(
    nodes: &'a [Factor<E>],
    values: &[usize],
    filters: &[TraceFilter],
) -> Vec<JoinInput<'a, E>> {
    let mut inputs: Vec<JoinInput<'a, E>> = Vec::with_capacity(values.len() + filters.len());
    for &i in values {
        inputs.push(JoinInput::value(&nodes[i]));
    }
    for f in filters {
        inputs.push(match *f {
            TraceFilter::Prefix { node, depth } => JoinInput::prefix_filter(&nodes[node], depth),
            TraceFilter::Proj { proj, .. } => JoinInput::filter(&nodes[proj]),
            TraceFilter::Plain { node } => JoinInput::filter(&nodes[node]),
        });
    }
    inputs
}

/// Execute one traced join step, either in full (over the whole domain of the
/// first join variable, via the plan's own policy — chunked across threads
/// exactly like the initial run) or restricted to the given anchor ranges
/// (sequential, one kernel invocation per range, streamed into one builder —
/// bit-identical to the matching slice of a full run because no fold group
/// spans a first-column boundary).
#[allow(clippy::too_many_arguments)]
fn exec_join<E: SemiringElem>(
    policy: &ExecPolicy,
    domains: &Domains,
    join_order: &[Var],
    group_arity: usize,
    build_trie: bool,
    inputs: &[JoinInput<'_, E>],
    one: &E,
    mul: &(impl Fn(&E, &E) -> E + Sync),
    fold: &(impl Fn(&E, &E) -> E + Sync),
    is_zero: &(impl Fn(&E) -> bool + Sync),
    restriction: Option<&[(u32, u32)]>,
) -> Result<(Factor<E>, JoinStats), FaqError> {
    match restriction {
        None => grouped_join(
            policy,
            domains,
            join_order,
            inputs,
            one,
            group_arity,
            build_trie,
            mul,
            fold,
            is_zero,
        ),
        Some(ranges) => {
            let schema: Vec<Var> = join_order[..group_arity].to_vec();
            let mut out = FactorBuilder::new(schema).expect("join-order variables are distinct");
            let mut stats = JoinStats::default();
            for &range in ranges {
                let s = grouped_join_range(
                    policy.rep,
                    domains,
                    join_order,
                    inputs,
                    range,
                    one,
                    group_arity,
                    |a, b| mul(a, b),
                    |a, b| fold(a, b),
                    |x| is_zero(x),
                    &mut out,
                );
                stats.matches += s.matches;
                stats.seeks += s.seeks;
                stats.nodes += s.nodes;
            }
            Ok((out.finish(), stats))
        }
    }
}

/// Replay the trace after the factor in `slot` changed within `ranges` (the
/// updated factor is already installed in `q`). Returns the new output plus
/// statistics of the work the replay actually performed — skipped (clean)
/// steps contribute nothing, which is the whole point.
pub(crate) fn replay<D: AggDomain + Sync, P: PolicySource>(
    cache: &mut DeltaCache<D::E>,
    q: &FaqQuery<D>,
    policies: &P,
    slot: usize,
    ranges: Vec<(u32, u32)>,
) -> Result<FaqOutput<D::E>, FaqError> {
    debug_assert!(!ranges.is_empty(), "empty deltas are handled before replay");
    let dom = &q.domain;
    let mut stats = ElimStats::default();
    let mut dirty: Vec<Dirty> = vec![Dirty::Clean; cache.nodes.len()];

    let in_node = cache.input_nodes[slot];
    cache.nodes[in_node] = q.factors[slot].clone();
    dirty[in_node] =
        if cache.nodes[in_node].arity() == 0 { Dirty::Full } else { Dirty::Ranges(ranges) };

    let steps = std::mem::take(&mut cache.steps);
    for step in &steps {
        match step {
            TraceStep::Scalar => {} // data-independent, never dirty
            TraceStep::Product { var, rewrites } => {
                let mut rows_out = 0usize;
                let mut touched = false;
                for &(input, output) in rewrites {
                    if matches!(dirty[input], Dirty::Clean) {
                        continue;
                    }
                    touched = true;
                    let rewritten = product_rewrite(q, *var, &cache.nodes[input]);
                    rows_out = rows_out.max(rewritten.len());
                    // Marginalization drops the (last) eliminated column and
                    // powering is point-wise, so first-column ranges carry —
                    // unless the output collapsed to a scalar.
                    let d = match (&dirty[input], rewritten.arity()) {
                        (Dirty::Ranges(rs), a) if a > 0 => Dirty::Ranges(rs.clone()),
                        // Fully-dirty input: fall back to diffing the
                        // rewritten node against its cached predecessor.
                        _ => narrowed_dirty(&cache.nodes[output], &rewritten),
                    };
                    dirty[output] = d;
                    cache.nodes[output] = rewritten;
                }
                if touched {
                    stats.record(StepStat {
                        var: *var,
                        semiring: false,
                        u_size: 0,
                        rows_out,
                        join: None,
                    });
                }
            }
            TraceStep::Join(js) => {
                // Refresh materialized projections whose source changed; the
                // projection keeps its source's leading column whenever that
                // column survives, so range dirtiness carries over.
                for f in &js.filters {
                    if let TraceFilter::Proj { source, proj } = *f {
                        if matches!(dirty[source], Dirty::Clean) {
                            continue;
                        }
                        let new_proj =
                            cache.nodes[source].indicator_projection(&js.join_order, dom.one());
                        let d = match &dirty[source] {
                            Dirty::Ranges(rs)
                                if cache.nodes[source].schema().first()
                                    == js.join_order.first()
                                    && new_proj.arity() > 0 =>
                            {
                                Dirty::Ranges(rs.clone())
                            }
                            // Source ranges don't carry: diff the refreshed
                            // projection against the cached one instead of
                            // pessimizing to `Full`.
                            _ => narrowed_dirty(&cache.nodes[proj], &new_proj),
                        };
                        cache.nodes[proj] = new_proj;
                        dirty[proj] = d;
                    }
                }

                let in_nodes: Vec<usize> = js
                    .values
                    .iter()
                    .copied()
                    .chain(js.filters.iter().map(TraceFilter::input_node))
                    .collect();
                if in_nodes.iter().all(|&n| matches!(dirty[n], Dirty::Clean)) {
                    continue; // cached output is still exact
                }

                // Restriction: legal only when every dirty input's changes
                // anchor on the step's first join variable.
                let j0 = js.join_order.first();
                let mut restriction: Option<Vec<(u32, u32)>> =
                    if js.group_arity == 0 { None } else { Some(Vec::new()) };
                for &n in &in_nodes {
                    match &dirty[n] {
                        Dirty::Clean => {}
                        Dirty::Full => restriction = None,
                        Dirty::Ranges(rs) => {
                            if cache.nodes[n].schema().first() == j0 {
                                if let Some(acc) = restriction.as_mut() {
                                    *acc = union_ranges(acc, rs);
                                }
                            } else {
                                restriction = None;
                            }
                        }
                    }
                    if restriction.is_none() {
                        break;
                    }
                }

                let inputs = trace_inputs(&cache.nodes, &js.values, &js.filters);
                let policy = match js.var {
                    Some(v) => policies.policy_for(v),
                    None => policies.output_policy(),
                };
                let (new_out, join_stats) = match js.fold {
                    FoldKind::Semiring(op) => exec_join(
                        policy,
                        &q.domains,
                        &js.join_order,
                        js.group_arity,
                        js.build_trie,
                        &inputs,
                        &dom.one(),
                        &|a, b| dom.mul(a, b),
                        &|a, b| dom.add(op, a, b),
                        &|x| dom.is_zero(x),
                        restriction.as_deref(),
                    )?,
                    FoldKind::Guard => exec_join(
                        policy,
                        &q.domains,
                        &js.join_order,
                        js.group_arity,
                        js.build_trie,
                        &inputs,
                        &dom.one(),
                        &|a, b| dom.mul(a, b),
                        &|a: &D::E, _: &D::E| a.clone(),
                        &|_| false,
                        restriction.as_deref(),
                    )?,
                    FoldKind::Output => exec_join(
                        policy,
                        &q.domains,
                        &js.join_order,
                        js.group_arity,
                        js.build_trie,
                        &inputs,
                        &dom.one(),
                        &|a, b| dom.mul(a, b),
                        &|a: &D::E, _: &D::E| a.clone(),
                        &|x| dom.is_zero(x),
                        restriction.as_deref(),
                    )?,
                };
                drop(inputs);

                match restriction {
                    None => {
                        // Whole-step recompute — but a delta anchored on a
                        // non-leading column usually leaves most of this
                        // step's output unchanged. Diff new against cached on
                        // the first column so downstream steps can splice the
                        // changed ranges instead of recomputing in full too
                        // (the final output step has no downstream reader, so
                        // skip the diff there).
                        if let Some((rnode, rvars)) = &js.reduced {
                            let r_new = new_out.indicator_projection(rvars, dom.one());
                            dirty[*rnode] = narrowed_dirty(&cache.nodes[*rnode], &r_new);
                            cache.nodes[*rnode] = r_new;
                        }
                        dirty[js.output] = if matches!(js.fold, FoldKind::Output) {
                            Dirty::Full
                        } else {
                            narrowed_dirty(&cache.nodes[js.output], &new_out)
                        };
                        cache.nodes[js.output] = new_out;
                    }
                    Some(rs) => {
                        // The recomputed slice covers exactly the dirty
                        // ranges; splice it over the cached rows. The reduced
                        // edge is a prefix projection, so the same ranges
                        // anchor its splice too.
                        if let Some((rnode, rvars)) = &js.reduced {
                            let r_repl = new_out.indicator_projection(rvars, dom.one());
                            let spliced = cache.nodes[*rnode].splice_by_first(&rs, &r_repl);
                            cache.nodes[*rnode] = spliced;
                            dirty[*rnode] = Dirty::Ranges(rs.clone());
                        }
                        let spliced = cache.nodes[js.output].splice_by_first(&rs, &new_out);
                        cache.nodes[js.output] = spliced;
                        dirty[js.output] = Dirty::Ranges(rs);
                    }
                }

                let rows_out = cache.nodes[js.output].len();
                match js.var {
                    Some(var) => stats.record(StepStat {
                        var,
                        semiring: true,
                        u_size: js.join_order.len(),
                        rows_out,
                        join: Some(join_stats),
                    }),
                    None => {
                        stats.max_intermediate = stats.max_intermediate.max(rows_out);
                        stats.output_join = Some(join_stats);
                    }
                }
            }
        }
    }
    cache.steps = steps;

    Ok(FaqOutput { factor: cache.nodes[cache.output].clone(), stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_ranges_merges_and_coalesces() {
        assert_eq!(union_ranges(&[], &[(1, 2)]), vec![(1, 2)]);
        assert_eq!(union_ranges(&[(0, 2), (5, 6)], &[(2, 3)]), vec![(0, 3), (5, 6)]);
        assert_eq!(union_ranges(&[(0, 4)], &[(1, 2), (6, 7)]), vec![(0, 4), (6, 7)]);
        assert_eq!(union_ranges(&[(3, 5)], &[(0, 1)]), vec![(0, 1), (3, 5)]);
    }

    #[test]
    fn diff_first_ranges_marks_inserts_deletes_and_value_changes() {
        use faq_hypergraph::v;
        let f =
            |rows: Vec<(Vec<u32>, u64)>| Factor::new(vec![v(0), v(1)], rows).expect("valid factor");
        let old = f(vec![(vec![0, 0], 1), (vec![2, 1], 5), (vec![4, 0], 7), (vec![4, 2], 8)]);
        // Row (2,1) changes value, (4,0) is deleted, (5,0) is inserted;
        // (0,0) and (4,2) are untouched — 4 stays dirty via the deletion.
        let new = f(vec![(vec![0, 0], 1), (vec![2, 1], 6), (vec![4, 2], 8), (vec![5, 0], 9)]);
        assert_eq!(diff_first_ranges(&old, &new), vec![(2, 3), (4, 6)]);
        assert!(diff_first_ranges(&old, &old).is_empty());
        assert!(matches!(narrowed_dirty(&old, &old), Dirty::Clean));
        assert!(matches!(narrowed_dirty(&old, &new), Dirty::Ranges(_)));
        let s = Factor::nullary(Some(3u64));
        assert!(matches!(narrowed_dirty(&s, &s), Dirty::Full));
    }
}
