//! Searching for vertex orderings with small induced widths.
//!
//! By Lemma 4.12 / Corollary 4.13, the `g`-width of a hypergraph equals the
//! minimum over vertex orderings of the induced `g`-width `max_k g(U_k)`; for
//! `g = ρ*` this is the fractional hypertree width. Computing it is NP-hard
//! (paper §7), so this module offers:
//!
//! * [`best_ordering_exact`] — exact subset dynamic programming over
//!   eliminated vertex sets (feasible to ~16 vertices), using the
//!   order-independent path characterization of `U_v` ([`crate::elim::fold_u_set`]);
//! * [`min_fill_ordering`], [`min_degree_ordering`], [`greedy_g_ordering`] —
//!   standard heuristics;
//! * [`best_ordering`] — exact when small, otherwise best-of-heuristics. This
//!   is the "fhtw blackbox" plugged into the faqw approximation algorithm of
//!   paper §7 (Theorems 7.2 / 7.5).

use crate::elim::{fold_u_set, EliminationSequence};
use crate::{Hypergraph, Var, VarSet};
use std::collections::HashMap;

/// Result of an ordering search.
#[derive(Debug, Clone)]
pub struct OrderingResult {
    /// The vertex ordering `σ = (v₁, …, vₙ)` (eliminate from the back).
    pub order: Vec<Var>,
    /// Its induced `g`-width.
    pub width: f64,
    /// Whether the search was exact (subset DP) or heuristic.
    pub exact: bool,
    /// Optional data-driven cost annotation: the estimated total work of
    /// running an elimination along `order` on a concrete database (e.g. a
    /// sum of per-step AGM bounds). `None` when the search was purely
    /// width-driven; set by cost-based planners via
    /// [`OrderingResult::with_cost`].
    pub cost: Option<f64>,
}

impl OrderingResult {
    /// This result annotated with a data-driven cost estimate.
    pub fn with_cost(mut self, cost: f64) -> OrderingResult {
        self.cost = Some(cost);
        self
    }
}

/// Memoized width function over vertex sets.
struct MemoG<'a> {
    g: Box<dyn FnMut(&VarSet) -> f64 + 'a>,
    cache: HashMap<Vec<Var>, f64>,
}

impl<'a> MemoG<'a> {
    fn new<F: FnMut(&VarSet) -> f64 + 'a>(g: F) -> Self {
        MemoG { g: Box::new(g), cache: HashMap::new() }
    }

    fn eval(&mut self, s: &VarSet) -> f64 {
        if s.is_empty() {
            return 0.0;
        }
        let key: Vec<Var> = s.iter().copied().collect();
        if let Some(&v) = self.cache.get(&key) {
            return v;
        }
        let v = (self.g)(s);
        self.cache.insert(key, v);
        v
    }
}

/// Exact minimum induced `g`-width via DP over subsets of eliminated vertices.
///
/// `g` must be monotone (paper Lemma 4.12 requires it); all standard width
/// functions (`|B|−1`, `ρ`, `ρ*`) are. Panics if `h` has more than 20
/// vertices — use [`best_ordering`] for graceful fallback.
pub fn best_ordering_exact<F: FnMut(&VarSet) -> f64>(h: &Hypergraph, g: F) -> OrderingResult {
    let verts: Vec<Var> = h.vertices().iter().copied().collect();
    let n = verts.len();
    assert!(n <= 20, "exact ordering search limited to 20 vertices, got {n}");
    if n == 0 {
        return OrderingResult { order: Vec::new(), width: 0.0, exact: true, cost: None };
    }
    let mut memo = MemoG::new(g);

    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    // best[mask] = minimal achievable max-width having eliminated exactly `mask`.
    let mut best: Vec<f64> = vec![f64::INFINITY; (full as usize) + 1];
    let mut choice: Vec<u8> = vec![u8::MAX; (full as usize) + 1];
    best[0] = 0.0;

    // Iterate masks in increasing popcount order: plain increasing numeric
    // order works because mask' = mask | bit > mask.
    for mask in 0..=full {
        let cur = best[mask as usize];
        if !cur.is_finite() {
            continue;
        }
        let eliminated: VarSet = (0..n).filter(|&i| mask >> i & 1 == 1).map(|i| verts[i]).collect();
        for (i, &vert) in verts.iter().enumerate() {
            if mask >> i & 1 == 1 {
                continue;
            }
            let u = fold_u_set(h, &eliminated, vert);
            let w = cur.max(memo.eval(&u));
            let nxt = (mask | (1 << i)) as usize;
            if w < best[nxt] - 1e-12 {
                best[nxt] = w;
                choice[nxt] = i as u8;
            }
        }
    }

    // Reconstruct σ. The DP eliminates from the back of σ (mask = suffix of σ
    // already eliminated), so walking choices from the full mask downward
    // yields v₁, v₂, …, vₙ — σ in front-to-back order already.
    let mut mask = full;
    let mut sigma: Vec<Var> = Vec::with_capacity(n);
    while mask != 0 {
        let i = choice[mask as usize] as usize;
        sigma.push(verts[i]);
        mask &= !(1u32 << i);
    }
    OrderingResult { order: sigma, width: best[full as usize], exact: true, cost: None }
}

/// Greedy ordering: repeatedly eliminate the vertex minimizing `g(U_v)` given
/// what has been eliminated so far.
pub fn greedy_g_ordering<F: FnMut(&VarSet) -> f64>(h: &Hypergraph, g: F) -> OrderingResult {
    let mut memo = MemoG::new(g);
    let mut remaining: Vec<Var> = h.vertices().iter().copied().collect();
    let mut eliminated = VarSet::new();
    let mut rev: Vec<Var> = Vec::new();
    let mut width = 0.0f64;
    while !remaining.is_empty() {
        let (pos, _, w) = remaining
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let u = fold_u_set(h, &eliminated, v);
                (i, v, memo.eval(&u))
            })
            .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
            .unwrap();
        width = width.max(w);
        let v = remaining.remove(pos);
        eliminated.insert(v);
        rev.push(v);
    }
    rev.reverse();
    OrderingResult { order: rev, width, exact: false, cost: None }
}

/// The min-degree heuristic on the Gaifman graph (`g(U) = |U|`).
pub fn min_degree_ordering(h: &Hypergraph) -> OrderingResult {
    greedy_g_ordering(h, |u| u.len() as f64)
}

/// The min-fill heuristic: eliminate the vertex whose elimination adds the
/// fewest fill edges to the (evolving) Gaifman graph.
pub fn min_fill_ordering(h: &Hypergraph) -> OrderingResult {
    let verts: Vec<Var> = h.vertices().iter().copied().collect();
    let n = verts.len();
    let idx: HashMap<Var, usize> = verts.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    // Adjacency matrix of the Gaifman graph.
    let mut adj = vec![vec![false; n]; n];
    for e in h.edges() {
        let ids: Vec<usize> = e.iter().map(|v| idx[v]).collect();
        for &a in &ids {
            for &b in &ids {
                if a != b {
                    adj[a][b] = true;
                }
            }
        }
    }
    let mut alive: Vec<bool> = vec![true; n];
    let mut rev: Vec<Var> = Vec::new();
    for _ in 0..n {
        // Pick alive vertex with fewest missing edges among alive neighbors.
        let mut best_v = usize::MAX;
        let mut best_fill = usize::MAX;
        for v in 0..n {
            if !alive[v] {
                continue;
            }
            let nbrs: Vec<usize> = (0..n).filter(|&u| alive[u] && adj[v][u]).collect();
            let mut fill = 0;
            for i in 0..nbrs.len() {
                for j in i + 1..nbrs.len() {
                    if !adj[nbrs[i]][nbrs[j]] {
                        fill += 1;
                    }
                }
            }
            if fill < best_fill {
                best_fill = fill;
                best_v = v;
            }
        }
        let v = best_v;
        alive[v] = false;
        // Connect the neighborhood into a clique.
        let nbrs: Vec<usize> = (0..n).filter(|&u| alive[u] && adj[v][u]).collect();
        for i in 0..nbrs.len() {
            for j in i + 1..nbrs.len() {
                adj[nbrs[i]][nbrs[j]] = true;
                adj[nbrs[j]][nbrs[i]] = true;
            }
        }
        rev.push(verts[v]);
    }
    rev.reverse();
    let order = rev;
    OrderingResult { order, width: f64::NAN, exact: false, cost: None }
}

/// Find a good ordering for width function `g`: exact subset DP when the
/// hypergraph has at most `exact_limit` vertices, otherwise the best of the
/// min-fill / min-degree / greedy-`g` heuristics, scored by `g`.
pub fn best_ordering<F: FnMut(&VarSet) -> f64>(
    h: &Hypergraph,
    mut g: F,
    exact_limit: usize,
) -> OrderingResult {
    let n = h.num_vertices();
    if n == 0 {
        return OrderingResult { order: Vec::new(), width: 0.0, exact: true, cost: None };
    }
    if n <= exact_limit.min(20) {
        return best_ordering_exact(h, g);
    }
    let mut candidates = vec![min_fill_ordering(h), min_degree_ordering(h)];
    candidates.push(greedy_g_ordering(h, &mut g));
    let mut best: Option<OrderingResult> = None;
    for mut c in candidates {
        let seq = EliminationSequence::new(h, &c.order);
        c.width = seq.induced_width(&mut g);
        if best.as_ref().is_none_or(|b| c.width < b.width) {
            best = Some(c);
        }
    }
    best.unwrap()
}

/// Convenience: the fractional hypertree width of `h` (exact for ≤ `exact_limit`
/// vertices), together with a witnessing ordering.
pub fn fhtw(h: &Hypergraph, exact_limit: usize) -> OrderingResult {
    let pruned = h.maximal_edges();
    let mut res = best_ordering(&pruned, |b| crate::widths::rho_star(&pruned, b), exact_limit);
    // Re-score on the original hypergraph (same value: covers use the same
    // maximal edges) to keep the contract simple.
    let seq = EliminationSequence::new(h, &res.order);
    res.width = seq.induced_width(|b| crate::widths::rho_star(h, b));
    res
}

/// Convenience: the tree width of `h` (exact for ≤ `exact_limit` vertices).
pub fn treewidth(h: &Hypergraph, exact_limit: usize) -> OrderingResult {
    let mut r = best_ordering(h, |b| (b.len() as f64) - 1.0, exact_limit);
    if !r.width.is_finite() {
        r.width = 0.0;
    }
    OrderingResult { width: r.width.max(0.0), ..r }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_has_treewidth_one() {
        let h = Hypergraph::from_edges(&[&[0, 1], &[1, 2], &[2, 3], &[3, 4]]);
        let r = treewidth(&h, 16);
        assert!(r.exact);
        assert_eq!(r.width, 1.0);
    }

    #[test]
    fn cycle_has_treewidth_two() {
        let h = Hypergraph::from_edges(&[&[0, 1], &[1, 2], &[2, 3], &[3, 4], &[4, 0]]);
        assert_eq!(treewidth(&h, 16).width, 2.0);
    }

    #[test]
    fn clique_treewidth_n_minus_one() {
        let mut h = Hypergraph::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                h.add_edge([Var(i), Var(j)]);
            }
        }
        assert_eq!(treewidth(&h, 16).width, 4.0);
    }

    #[test]
    fn triangle_fhtw_is_three_halves() {
        let h = Hypergraph::from_edges(&[&[0, 1], &[0, 2], &[1, 2]]);
        let r = fhtw(&h, 16);
        assert!((r.width - 1.5).abs() < 1e-6, "{}", r.width);
    }

    #[test]
    fn acyclic_fhtw_is_one() {
        let h = Hypergraph::from_edges(&[&[0, 1, 2], &[2, 3], &[3, 4, 5]]);
        let r = fhtw(&h, 16);
        assert!((r.width - 1.0).abs() < 1e-6, "{}", r.width);
    }

    #[test]
    fn heuristics_match_exact_on_small_graphs() {
        use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..25 {
            let n: u32 = rng.gen_range(3..7);
            let m = rng.gen_range(2..7);
            let mut h = Hypergraph::new();
            for i in 0..n {
                h.add_vertex(Var(i));
            }
            for _ in 0..m {
                let k = rng.gen_range(1..=n.min(3));
                let mut vs: Vec<u32> = (0..n).collect();
                vs.shuffle(&mut rng);
                h.add_edge(vs[..k as usize].iter().map(|&i| Var(i)));
            }
            let exact = best_ordering_exact(&h, |b| b.len() as f64);
            // Heuristic width is an upper bound on exact width.
            let heur = best_ordering(&h, |b| b.len() as f64, 0);
            assert!(heur.width + 1e-9 >= exact.width);
            // And the exact ordering really witnesses its width.
            let seq = EliminationSequence::new(&h, &exact.order);
            let w = seq.induced_width(|b| b.len() as f64);
            assert!((w - exact.width).abs() < 1e-9);
        }
    }

    #[test]
    fn fhtw_leq_treewidth_plus_one() {
        use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..15 {
            let n: u32 = rng.gen_range(3..7);
            let m = rng.gen_range(2..6);
            let mut h = Hypergraph::new();
            for i in 0..n {
                h.add_vertex(Var(i));
            }
            for _ in 0..m {
                let k = rng.gen_range(1..=n.min(3));
                let mut vs: Vec<u32> = (0..n).collect();
                vs.shuffle(&mut rng);
                h.add_edge(vs[..k as usize].iter().map(|&i| Var(i)));
            }
            let tw = treewidth(&h, 16).width;
            let fw = fhtw(&h, 16).width;
            // ρ*(B) ≤ |B| for any B, so fhtw ≤ tw + 1.
            assert!(fw <= tw + 1.0 + 1e-6, "fhtw {fw} > tw+1 {}", tw + 1.0);
        }
    }

    #[test]
    fn min_fill_produces_permutation() {
        let h = Hypergraph::from_edges(&[&[0, 1], &[1, 2], &[2, 0], &[2, 3]]);
        let r = min_fill_ordering(&h);
        let mut sorted = r.order.clone();
        sorted.sort();
        assert_eq!(sorted, vec![Var(0), Var(1), Var(2), Var(3)]);
    }

    #[test]
    fn empty_graph() {
        let h = Hypergraph::new();
        let r = fhtw(&h, 16);
        assert!(r.order.is_empty());
        assert_eq!(r.width, 0.0);
    }
}
