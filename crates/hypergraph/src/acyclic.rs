//! α-acyclicity, GYO reduction and join trees (paper Definition 4.4, Prop 4.9).
//!
//! A hypergraph is α-acyclic iff it has a tree decomposition whose bags are
//! hyperedges — equivalently, iff the GYO (Graham / Yu–Özsoyoğlu) reduction
//! empties it: repeatedly delete *ear vertices* (vertices appearing in exactly
//! one edge) and edges contained in other edges.

use crate::{Hypergraph, Var, VarSet};
use std::collections::BTreeMap;

/// The result of a GYO reduction.
#[derive(Debug, Clone)]
pub struct GyoReduction {
    /// Whether the reduction emptied the hypergraph (α-acyclicity witness).
    pub acyclic: bool,
    /// For each original edge index that was absorbed into another edge,
    /// the absorbing edge's original index (parent in the join tree).
    pub absorbed_into: BTreeMap<usize, usize>,
    /// Elimination order of the ear vertices, in removal order.
    pub ear_vertices: Vec<Var>,
}

/// Run the GYO reduction on `h`.
pub fn gyo_reduce(h: &Hypergraph) -> GyoReduction {
    // Work on (original index, current vertex set) pairs.
    let mut live: Vec<(usize, VarSet)> =
        h.edges().iter().cloned().enumerate().filter(|(_, e)| !e.is_empty()).collect();
    let mut absorbed_into = BTreeMap::new();
    let mut ear_vertices = Vec::new();

    loop {
        let mut changed = false;

        // Rule 1: remove vertices that occur in exactly one live edge.
        let mut occurrence: BTreeMap<Var, usize> = BTreeMap::new();
        for (_, e) in &live {
            for &v in e {
                *occurrence.entry(v).or_insert(0) += 1;
            }
        }
        for (_, e) in live.iter_mut() {
            let before = e.len();
            e.retain(|v| occurrence[v] > 1);
            if e.len() != before {
                changed = true;
                // Ears removed from this edge.
            }
        }
        for (v, c) in &occurrence {
            if *c == 1 {
                ear_vertices.push(*v);
            }
        }

        // Rule 2: remove edges contained in another live edge (empty edges too).
        let mut i = 0;
        while i < live.len() {
            let mut absorbed = None;
            for j in 0..live.len() {
                if i != j && live[i].1.is_subset(&live[j].1) {
                    absorbed = Some(j);
                    break;
                }
            }
            if live[i].1.is_empty() {
                live.remove(i);
                changed = true;
            } else if let Some(j) = absorbed {
                absorbed_into.insert(live[i].0, live[j].0);
                live.remove(i);
                changed = true;
            } else {
                i += 1;
            }
        }

        if !changed {
            break;
        }
    }

    GyoReduction { acyclic: live.len() <= 1, absorbed_into, ear_vertices }
}

/// Whether `h` is α-acyclic.
pub fn is_alpha_acyclic(h: &Hypergraph) -> bool {
    gyo_reduce(h).acyclic
}

/// A join tree: a tree over the edge indices of an α-acyclic hypergraph, such
/// that for every vertex the edges containing it form a connected subtree.
#[derive(Debug, Clone)]
pub struct JoinTree {
    /// `parent[i]` is the parent edge index of edge `i`; the root maps to itself.
    pub parent: Vec<usize>,
    /// The root edge index.
    pub root: usize,
}

/// Build a join tree for an α-acyclic hypergraph; `None` if `h` is cyclic or empty.
pub fn join_tree(h: &Hypergraph) -> Option<JoinTree> {
    if h.num_edges() == 0 {
        return None;
    }
    let red = gyo_reduce(h);
    if !red.acyclic {
        return None;
    }
    let m = h.num_edges();
    let mut parent: Vec<usize> = (0..m).collect();
    // Edges absorbed during GYO hang off their absorber; the last surviving
    // edge becomes the root. Chase chains to the final representative.
    for (&child, &par) in &red.absorbed_into {
        parent[child] = par;
    }
    // The root: any edge that never got absorbed.
    let root = (0..m).find(|&i| parent[i] == i).unwrap_or(0);
    // Edges that were never absorbed but aren't root (possible with duplicate
    // edges all absorbed into one) — point them at the root.
    for (i, p) in parent.iter_mut().enumerate() {
        if *p == i && i != root {
            *p = root;
        }
    }
    Some(JoinTree { parent, root })
}

/// Verify the join-tree running-intersection property (used by tests).
pub fn validate_join_tree(h: &Hypergraph, t: &JoinTree) -> bool {
    let m = h.num_edges();
    if t.parent.len() != m {
        return false;
    }
    // For each vertex, the set of edges containing it must form a connected
    // subtree: check that from every edge containing v, walking to the root,
    // once we leave the set we never re-enter.
    for &vtx in h.vertices().iter() {
        let holders: Vec<usize> = (0..m).filter(|&i| h.edges()[i].contains(&vtx)).collect();
        if holders.is_empty() {
            continue;
        }
        // The connected-subtree condition is equivalent to: the nearest common
        // "holder ancestor" structure is itself connected. Simple check: for
        // each holder, walk up until reaching another holder or the root; if we
        // reach another holder the segment between must be all holders.
        for &start in &holders {
            let mut cur = start;
            let mut left_set = false;
            let mut steps = 0;
            while t.parent[cur] != cur {
                cur = t.parent[cur];
                steps += 1;
                if steps > m {
                    return false; // cycle
                }
                let inside = h.edges()[cur].contains(&vtx);
                if !inside {
                    left_set = true;
                } else if left_set {
                    return false; // re-entered: disconnected subtree
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::v;

    #[test]
    fn path_is_acyclic() {
        let h = Hypergraph::from_edges(&[&[0, 1], &[1, 2], &[2, 3]]);
        assert!(is_alpha_acyclic(&h));
        let t = join_tree(&h).unwrap();
        assert!(validate_join_tree(&h, &t));
    }

    #[test]
    fn triangle_is_cyclic() {
        let h = Hypergraph::from_edges(&[&[0, 1], &[0, 2], &[1, 2]]);
        assert!(!is_alpha_acyclic(&h));
        assert!(join_tree(&h).is_none());
    }

    #[test]
    fn triangle_plus_big_edge_is_acyclic() {
        // Adding an edge covering everything makes any hypergraph α-acyclic
        // (the paper's motivation for β-acyclicity).
        let h = Hypergraph::from_edges(&[&[0, 1], &[0, 2], &[1, 2], &[0, 1, 2]]);
        assert!(is_alpha_acyclic(&h));
        let t = join_tree(&h).unwrap();
        assert!(validate_join_tree(&h, &t));
    }

    #[test]
    fn star_is_acyclic() {
        let h = Hypergraph::from_edges(&[&[0, 1], &[0, 2], &[0, 3], &[0, 4]]);
        assert!(is_alpha_acyclic(&h));
        assert!(validate_join_tree(&h, &join_tree(&h).unwrap()));
    }

    #[test]
    fn ears_are_recorded() {
        let h = Hypergraph::from_edges(&[&[0, 1], &[1, 2]]);
        let red = gyo_reduce(&h);
        assert!(red.acyclic);
        assert!(red.ear_vertices.contains(&v(0)));
        assert!(red.ear_vertices.contains(&v(2)));
    }

    #[test]
    fn cycle_c4_is_cyclic_but_chord_makes_acyclic_with_cover() {
        let c4 = Hypergraph::from_edges(&[&[0, 1], &[1, 2], &[2, 3], &[3, 0]]);
        assert!(!is_alpha_acyclic(&c4));
        let covered = Hypergraph::from_edges(&[&[0, 1], &[1, 2], &[2, 3], &[3, 0], &[0, 1, 2, 3]]);
        assert!(is_alpha_acyclic(&covered));
    }

    #[test]
    fn duplicate_edges_handled() {
        let h = Hypergraph::from_edges(&[&[0, 1], &[0, 1], &[1, 2]]);
        assert!(is_alpha_acyclic(&h));
        let t = join_tree(&h).unwrap();
        assert!(validate_join_tree(&h, &t));
    }
}
