//! A zoo of named hypergraphs with known width parameters — fixtures for
//! tests and benchmarks, and executable documentation of the width theory.

use crate::{Hypergraph, Var};

/// The path `P_n`: edges `{i, i+1}` for `i < n−1`. Treewidth 1, fhtw 1.
pub fn path(n: u32) -> Hypergraph {
    assert!(n >= 1);
    let mut h = Hypergraph::new();
    for i in 0..n {
        h.add_vertex(Var(i));
    }
    for i in 0..n.saturating_sub(1) {
        h.add_edge([Var(i), Var(i + 1)]);
    }
    h
}

/// The cycle `C_n`. Treewidth 2 (n ≥ 3), fhtw 2 for even splits, ρ* = n/2.
pub fn cycle(n: u32) -> Hypergraph {
    assert!(n >= 3);
    let mut h = Hypergraph::new();
    for i in 0..n {
        h.add_edge([Var(i), Var((i + 1) % n)]);
    }
    h
}

/// The clique `K_n` as binary edges. Treewidth n−1, fhtw n/2.
pub fn clique(n: u32) -> Hypergraph {
    assert!(n >= 2);
    let mut h = Hypergraph::new();
    for i in 0..n {
        for j in i + 1..n {
            h.add_edge([Var(i), Var(j)]);
        }
    }
    h
}

/// The `rows × cols` grid. Treewidth `min(rows, cols)`.
pub fn grid(rows: u32, cols: u32) -> Hypergraph {
    assert!(rows >= 1 && cols >= 1);
    let at = |r: u32, c: u32| Var(r * cols + c);
    let mut h = Hypergraph::new();
    for r in 0..rows {
        for c in 0..cols {
            h.add_vertex(at(r, c));
            if c + 1 < cols {
                h.add_edge([at(r, c), at(r, c + 1)]);
            }
            if r + 1 < rows {
                h.add_edge([at(r, c), at(r + 1, c)]);
            }
        }
    }
    h
}

/// The star `S_n`: a hub connected to `n` leaves. α- and β-acyclic.
pub fn star(n: u32) -> Hypergraph {
    let mut h = Hypergraph::new();
    for i in 1..=n {
        h.add_edge([Var(0), Var(i)]);
    }
    h
}

/// The `k`-uniform "loomis-whitney" hypergraph `LW_k`: vertices `0..k`, one
/// edge omitting each vertex. ρ*(V) = k/(k−1); the triangle is `LW_3`.
pub fn loomis_whitney(k: u32) -> Hypergraph {
    assert!(k >= 3);
    let mut h = Hypergraph::new();
    for omit in 0..k {
        h.add_edge((0..k).filter(|&i| i != omit).map(Var));
    }
    h
}

/// The hierarchy of nested edges `{0}, {0,1}, {0,1,2}, …` — β-acyclic with a
/// forced nest-point order.
pub fn nested_chain(n: u32) -> Hypergraph {
    assert!(n >= 1);
    let mut h = Hypergraph::new();
    for i in 1..=n {
        h.add_edge((0..i).map(Var));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acyclic::is_alpha_acyclic;
    use crate::beta::is_beta_acyclic;
    use crate::ordering::{fhtw, treewidth};
    use crate::widths::rho_star;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn path_widths() {
        let h = path(7);
        assert!(is_alpha_acyclic(&h));
        assert!(is_beta_acyclic(&h));
        assert_eq!(treewidth(&h, 16).width, 1.0);
        assert!(close(fhtw(&h, 16).width, 1.0));
    }

    #[test]
    fn cycle_widths() {
        for n in [4u32, 5, 6] {
            let h = cycle(n);
            assert!(!is_alpha_acyclic(&h));
            assert_eq!(treewidth(&h, 16).width, 2.0, "C{n}");
            assert!(close(rho_star(&h, &h.vertices().clone()), n as f64 / 2.0));
        }
    }

    #[test]
    fn clique_widths() {
        for n in [3u32, 4, 5] {
            let h = clique(n);
            assert_eq!(treewidth(&h, 16).width, (n - 1) as f64, "K{n}");
            assert!(close(rho_star(&h, &h.vertices().clone()), n as f64 / 2.0), "K{n}");
        }
    }

    #[test]
    fn grid_treewidth_is_min_side() {
        assert_eq!(treewidth(&grid(2, 4), 16).width, 2.0);
        assert_eq!(treewidth(&grid(3, 3), 16).width, 3.0);
        assert_eq!(treewidth(&grid(1, 6), 16).width, 1.0);
    }

    #[test]
    fn star_is_doubly_acyclic() {
        let h = star(6);
        assert!(is_alpha_acyclic(&h));
        assert!(is_beta_acyclic(&h));
        assert!(close(fhtw(&h, 16).width, 1.0));
    }

    #[test]
    fn loomis_whitney_fractional_cover() {
        for k in [3u32, 4, 5] {
            let h = loomis_whitney(k);
            let expect = k as f64 / (k as f64 - 1.0);
            assert!(
                close(rho_star(&h, &h.vertices().clone()), expect),
                "LW{k}: {} vs {expect}",
                rho_star(&h, &h.vertices().clone())
            );
        }
        // LW_3 is the triangle: fhtw = 3/2.
        assert!(close(fhtw(&loomis_whitney(3), 16).width, 1.5));
    }

    #[test]
    fn nested_chain_is_beta_acyclic() {
        let h = nested_chain(5);
        assert!(is_beta_acyclic(&h));
        assert!(close(fhtw(&h, 16).width, 1.0));
    }
}
