//! Edge-cover numbers and the AGM bound (paper §4.2).
//!
//! For a hypergraph `H = (V, E)` and a vertex set `B ⊆ V`:
//!
//! * `ρ_H(B)` — the minimum number of edges covering `B` (integral cover);
//! * `ρ*_H(B)` — its LP relaxation (fractional cover), solved with the
//!   in-repo simplex;
//! * `AGM_H(B)` — the data-dependent bound `Π_S |ψ_S|^{λ*_S}` where `λ*`
//!   minimizes `Σ λ_S log|ψ_S|` over fractional covers of `B`.

use crate::{Hypergraph, VarSet};
use faq_lp::{ConstraintOp, LinearProgram};

/// A fractional edge cover: one weight per edge of the hypergraph.
#[derive(Debug, Clone)]
pub struct FractionalCover {
    /// Per-edge weights `λ_S ≥ 0` (aligned with `Hypergraph::edges`).
    pub weights: Vec<f64>,
    /// The LP objective value.
    pub value: f64,
}

/// Solve the fractional edge cover LP for `B` with per-edge objective costs.
///
/// Minimizes `Σ cost_S · λ_S` subject to `Σ_{S ∋ v} λ_S ≥ 1` for every
/// `v ∈ B` and `λ ≥ 0`. Edges disjoint from `B` are still variables but any
/// optimal solution gives them weight 0 (their cost is assumed non-negative).
///
/// Returns `None` if some vertex of `B` is not covered by any edge (LP
/// infeasible).
pub fn fractional_cover_with_costs(
    h: &Hypergraph,
    b: &VarSet,
    costs: &[f64],
) -> Option<FractionalCover> {
    assert_eq!(costs.len(), h.num_edges());
    if b.is_empty() {
        return Some(FractionalCover { weights: vec![0.0; h.num_edges()], value: 0.0 });
    }
    let mut lp = LinearProgram::minimize(costs.to_vec());
    for v in b {
        let coeffs: Vec<f64> =
            h.edges().iter().map(|e| if e.contains(v) { 1.0 } else { 0.0 }).collect();
        if coeffs.iter().all(|&c| c == 0.0) {
            return None; // uncoverable vertex
        }
        lp = lp.constraint(coeffs, ConstraintOp::Ge, 1.0);
    }
    let sol = lp.solve().ok()?;
    Some(FractionalCover { weights: sol.x, value: sol.objective })
}

/// The optimal fractional edge cover of `B` (unit costs).
pub fn fractional_cover(h: &Hypergraph, b: &VarSet) -> Option<FractionalCover> {
    fractional_cover_with_costs(h, b, &vec![1.0; h.num_edges()])
}

/// `ρ*_H(B)` — the fractional edge cover number. Panics if `B` is uncoverable.
pub fn rho_star(h: &Hypergraph, b: &VarSet) -> f64 {
    fractional_cover(h, b)
        .unwrap_or_else(|| panic!("vertex set {b:?} not coverable by edges of {h:?}"))
        .value
}

/// An integral edge cover of `B`.
#[derive(Debug, Clone)]
pub struct IntegralCover {
    /// Indices of the chosen edges.
    pub edges: Vec<usize>,
}

/// The optimal integral edge cover of `B` via branch-and-bound over edges.
///
/// Query hypergraphs have few edges, so exponential search with pruning on
/// the incumbent is fine. Returns `None` if `B` is uncoverable.
pub fn integral_cover(h: &Hypergraph, b: &VarSet) -> Option<IntegralCover> {
    if b.is_empty() {
        return Some(IntegralCover { edges: Vec::new() });
    }
    // Only edges intersecting B are useful; dominated edges (whose B-part is
    // contained in another edge's) could be pruned, but plain BnB suffices.
    let useful: Vec<usize> = (0..h.num_edges()).filter(|&i| !h.edges()[i].is_disjoint(b)).collect();
    let mut best: Option<Vec<usize>> = None;
    let mut chosen: Vec<usize> = Vec::new();

    fn recurse(
        h: &Hypergraph,
        b: &VarSet,
        useful: &[usize],
        covered: &VarSet,
        chosen: &mut Vec<usize>,
        best: &mut Option<Vec<usize>>,
    ) {
        if b.is_subset(covered) {
            if best.as_ref().is_none_or(|bst| chosen.len() < bst.len()) {
                *best = Some(chosen.clone());
            }
            return;
        }
        if let Some(bst) = best {
            if chosen.len() + 1 >= bst.len() {
                return; // adding any edge cannot beat the incumbent
            }
        }
        // Branch on the first uncovered vertex; try every edge covering it.
        // Each recursion level covers a fresh vertex, so no duplicate covers
        // are enumerated.
        let target = *b.iter().find(|v| !covered.contains(v)).expect("uncovered vertex exists");
        for &e_idx in useful {
            if h.edges()[e_idx].contains(&target) {
                let mut cov2 = covered.clone();
                cov2.extend(h.edges()[e_idx].intersection(b).copied());
                chosen.push(e_idx);
                recurse(h, b, useful, &cov2, chosen, best);
                chosen.pop();
            }
        }
    }

    recurse(h, b, &useful, &VarSet::new(), &mut chosen, &mut best);
    best.map(|edges| IntegralCover { edges })
}

/// `ρ_H(B)` — the integral edge cover number. Panics if `B` is uncoverable.
pub fn rho_integral(h: &Hypergraph, b: &VarSet) -> usize {
    integral_cover(h, b)
        .unwrap_or_else(|| panic!("vertex set {b:?} not coverable by edges of {h:?}"))
        .edges
        .len()
}

/// `AGM_H(B)` for the given per-edge sizes (paper eq. (3)).
///
/// Minimizes `Σ λ_S log₂|ψ_S|` over fractional covers of `B` and returns
/// `Π |ψ_S|^{λ*_S}`. Sizes of 0 are clamped to 1 (an empty relation makes the
/// whole join empty; callers should special-case that upstream).
pub fn agm_bound(h: &Hypergraph, b: &VarSet, sizes: &[u64]) -> Option<f64> {
    assert_eq!(sizes.len(), h.num_edges());
    let costs: Vec<f64> = sizes.iter().map(|&s| (s.max(1) as f64).log2()).collect();
    let cover = fractional_cover_with_costs(h, b, &costs)?;
    Some(2f64.powf(cover.value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{varset, Hypergraph};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn triangle_fractional_vs_integral() {
        let h = Hypergraph::from_edges(&[&[0, 1], &[0, 2], &[1, 2]]);
        let b = varset(&[0, 1, 2]);
        assert!(close(rho_star(&h, &b), 1.5));
        assert_eq!(rho_integral(&h, &b), 2);
    }

    #[test]
    fn agm_triangle_is_n_to_1_5() {
        let h = Hypergraph::from_edges(&[&[0, 1], &[0, 2], &[1, 2]]);
        let b = varset(&[0, 1, 2]);
        let n = 1024u64;
        let agm = agm_bound(&h, &b, &[n, n, n]).unwrap();
        assert!(close(agm, (n as f64).powf(1.5)), "{agm}");
    }

    #[test]
    fn agm_prefers_small_relations() {
        // Cover {0,1,2} by {0,1} (size 2^10) + {2} (size 2^2) vs the big edge
        // {0,1,2} of size 2^20: LP should pick the small pair.
        let h = Hypergraph::from_edges(&[&[0, 1], &[2], &[0, 1, 2]]);
        let b = varset(&[0, 1, 2]);
        let agm = agm_bound(&h, &b, &[1 << 10, 1 << 2, 1 << 20]).unwrap();
        assert!(close(agm.log2(), 12.0), "{agm}");
    }

    #[test]
    fn empty_target_costs_nothing() {
        let h = Hypergraph::from_edges(&[&[0, 1]]);
        assert!(close(rho_star(&h, &VarSet::new()), 0.0));
        assert_eq!(rho_integral(&h, &VarSet::new()), 0);
    }

    #[test]
    fn subset_cover_uses_one_edge() {
        let h = Hypergraph::from_edges(&[&[0, 1, 2], &[2, 3]]);
        assert!(close(rho_star(&h, &varset(&[0, 1])), 1.0));
        assert_eq!(rho_integral(&h, &varset(&[0, 1])), 1);
        assert_eq!(rho_integral(&h, &varset(&[0, 3])), 2);
    }

    #[test]
    fn uncoverable_returns_none() {
        let h = Hypergraph::from_edges(&[&[0, 1]]);
        assert!(fractional_cover(&h, &varset(&[5])).is_none());
        assert!(integral_cover(&h, &varset(&[5])).is_none());
    }

    #[test]
    fn k_cycle_cover_is_k_over_2() {
        // C_5: ρ* = 5/2, ρ = 3.
        let h = Hypergraph::from_edges(&[&[0, 1], &[1, 2], &[2, 3], &[3, 4], &[4, 0]]);
        let b = varset(&[0, 1, 2, 3, 4]);
        assert!(close(rho_star(&h, &b), 2.5));
        assert_eq!(rho_integral(&h, &b), 3);
    }

    #[test]
    fn fractional_never_exceeds_integral() {
        use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..40 {
            let n: u32 = rng.gen_range(2..7);
            let m = rng.gen_range(1..7);
            let mut h = Hypergraph::new();
            let mut covered = VarSet::new();
            for _ in 0..m {
                let k = rng.gen_range(1..=n.min(3));
                let mut vs: Vec<u32> = (0..n).collect();
                vs.shuffle(&mut rng);
                let e: Vec<crate::Var> = vs[..k as usize].iter().map(|&i| crate::Var(i)).collect();
                covered.extend(e.iter().copied());
                h.add_edge(e);
            }
            let b = covered;
            if b.is_empty() {
                continue;
            }
            let frac = rho_star(&h, &b);
            let int = rho_integral(&h, &b) as f64;
            assert!(frac <= int + 1e-6, "ρ*={frac} > ρ={int}");
            assert!(frac >= 1.0 - 1e-6);
        }
    }
}
