//! β-acyclicity, nest points and nested elimination orders.
//!
//! A hypergraph is β-acyclic iff *every* subset of its edges is α-acyclic
//! (Definition 4.5). Equivalently (Proposition 4.10), there is a vertex
//! ordering `σ = (v₁, …, vₙ)` — a **nested elimination order** (NEO) — such
//! that at every elimination step the edges incident to the eliminated vertex
//! form a chain under inclusion. Such a vertex is a *nest point*; β-acyclic
//! hypergraphs always contain one (Brouwer–Kolen), which yields the greedy
//! recognition algorithm implemented here.
//!
//! NEOs are the backbone of the polynomial SAT / #SAT algorithms of paper
//! §8.3: eliminating the last NEO variable keeps the clause set from growing.

use crate::{Hypergraph, Var, VarSet};

/// Whether the edges incident to `v` (restricted to the live vertex set)
/// form an inclusion chain.
fn is_nest_point(edges: &[VarSet], v: Var) -> bool {
    let mut incident: Vec<&VarSet> = edges.iter().filter(|e| e.contains(&v)).collect();
    incident.sort_by_key(|e| e.len());
    for w in incident.windows(2) {
        if !w[0].is_subset(w[1]) {
            return false;
        }
    }
    true
}

/// Compute a nested elimination order for `h`.
///
/// Returns `σ = (v₁, …, vₙ)` such that eliminating from the back (`vₙ` first)
/// always removes a nest point; `None` if `h` is not β-acyclic.
pub fn nested_elimination_order(h: &Hypergraph) -> Option<Vec<Var>> {
    let mut live_vertices: Vec<Var> = h.vertices().iter().copied().collect();
    let mut edges: Vec<VarSet> = h.edges().to_vec();
    let mut rev_order: Vec<Var> = Vec::new();

    while !live_vertices.is_empty() {
        let pos = live_vertices.iter().position(|&v| is_nest_point(&edges, v))?;
        let v = live_vertices.remove(pos);
        rev_order.push(v);
        for e in edges.iter_mut() {
            e.remove(&v);
        }
        edges.retain(|e| !e.is_empty());
    }

    rev_order.reverse();
    Some(rev_order)
}

/// Whether `h` is β-acyclic (greedy nest-point elimination succeeds).
pub fn is_beta_acyclic(h: &Hypergraph) -> bool {
    nested_elimination_order(h).is_some()
}

/// Brute-force β-acyclicity via the definition: every subset of edges is
/// α-acyclic. Exponential in the number of edges; used to cross-validate
/// the nest-point algorithm in tests.
pub fn is_beta_acyclic_bruteforce(h: &Hypergraph) -> bool {
    let m = h.num_edges();
    assert!(m <= 16, "brute force limited to 16 edges");
    for mask in 0u32..(1 << m) {
        let mut sub = Hypergraph::new();
        for (i, e) in h.edges().iter().enumerate() {
            if mask >> i & 1 == 1 {
                sub.add_edge(e.iter().copied());
            }
        }
        if !crate::acyclic::is_alpha_acyclic(&sub) {
            return false;
        }
    }
    true
}

/// Check that `order` is a valid NEO for `h` (used by tests and by the CNF
/// engine to validate caller-provided orders).
pub fn is_nested_elimination_order(h: &Hypergraph, order: &[Var]) -> bool {
    if order.iter().copied().collect::<VarSet>() != *h.vertices() {
        return false;
    }
    let mut edges: Vec<VarSet> = h.edges().to_vec();
    for &v in order.iter().rev() {
        if !is_nest_point(&edges, v) {
            return false;
        }
        for e in edges.iter_mut() {
            e.remove(&v);
        }
        edges.retain(|e| !e.is_empty());
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_hypergraphs_are_beta_acyclic() {
        // Edges are intervals over a path: always β-acyclic.
        let h =
            Hypergraph::from_edges(&[&[0, 1, 2], &[1, 2], &[2, 3, 4], &[3, 4], &[0, 1, 2, 3, 4]]);
        assert!(is_beta_acyclic(&h));
        let neo = nested_elimination_order(&h).unwrap();
        assert!(is_nested_elimination_order(&h, &neo));
    }

    #[test]
    fn triangle_is_not_beta_acyclic() {
        let h = Hypergraph::from_edges(&[&[0, 1], &[0, 2], &[1, 2]]);
        assert!(!is_beta_acyclic(&h));
    }

    #[test]
    fn alpha_but_not_beta() {
        // Triangle + covering edge: α-acyclic but not β-acyclic (paper Def 4.5
        // motivation).
        let h = Hypergraph::from_edges(&[&[0, 1], &[0, 2], &[1, 2], &[0, 1, 2]]);
        assert!(crate::acyclic::is_alpha_acyclic(&h));
        assert!(!is_beta_acyclic(&h));
    }

    #[test]
    fn nested_chain_family() {
        let h = Hypergraph::from_edges(&[&[0], &[0, 1], &[0, 1, 2], &[0, 1, 2, 3]]);
        assert!(is_beta_acyclic(&h));
    }

    #[test]
    fn neo_matches_bruteforce_on_random_instances() {
        use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen_acyclic = 0;
        let mut seen_cyclic = 0;
        for _ in 0..80 {
            let n: u32 = rng.gen_range(3..7);
            let m = rng.gen_range(2..6);
            let mut h = Hypergraph::new();
            for _ in 0..m {
                let k = rng.gen_range(1..=n.min(4));
                let mut vs: Vec<u32> = (0..n).collect();
                vs.shuffle(&mut rng);
                h.add_edge(vs[..k as usize].iter().map(|&i| Var(i)));
            }
            let fast = is_beta_acyclic(&h);
            let slow = is_beta_acyclic_bruteforce(&h);
            assert_eq!(fast, slow, "mismatch on {h:?}");
            if fast {
                seen_acyclic += 1;
                let neo = nested_elimination_order(&h).unwrap();
                assert!(is_nested_elimination_order(&h, &neo));
            } else {
                seen_cyclic += 1;
            }
        }
        assert!(seen_acyclic > 0 && seen_cyclic > 0, "want both outcomes exercised");
    }

    #[test]
    fn beta_implies_alpha_on_random_instances() {
        use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..60 {
            let n: u32 = rng.gen_range(3..8);
            let m = rng.gen_range(2..6);
            let mut h = Hypergraph::new();
            for _ in 0..m {
                let k = rng.gen_range(1..=n.min(4));
                let mut vs: Vec<u32> = (0..n).collect();
                vs.shuffle(&mut rng);
                h.add_edge(vs[..k as usize].iter().map(|&i| Var(i)));
            }
            if is_beta_acyclic(&h) {
                assert!(crate::acyclic::is_alpha_acyclic(&h), "β ⊆ α violated: {h:?}");
            }
        }
    }

    #[test]
    fn wrong_order_rejected() {
        // On the chain family, eliminating the deepest-nested vertex LAST in
        // reverse order (i.e. first position of σ) is fine, but an order that
        // eliminates vertex 0 first breaks every chain containing it... in
        // fact for this family vertex 0 is in all edges, so removing it first
        // still leaves chains. Use a family where order matters:
        let h = Hypergraph::from_edges(&[&[0, 1], &[1, 2], &[1]]);
        // v=1 is not a nest point while 0 and 2 are present ({0,1} vs {1,2}).
        assert!(!is_nested_elimination_order(&h, &[Var(0), Var(2), Var(1)]));
        assert!(is_nested_elimination_order(&h, &[Var(1), Var(0), Var(2)]));
    }
}
