//! The elimination hypergraph sequence of a vertex ordering.
//!
//! Fix a vertex ordering `σ = (v₁, …, vₙ)`. Definition 4.8 (and its FAQ-aware
//! refinement, Definition 5.4) eliminates vertices from the *back* of the
//! ordering: at step `k = n, n−1, …, 1` the current hypergraph `H_k` loses
//! `v_k` together with its incident edges `∂(v_k)`, and gains either
//!
//! * the single "fold" edge `U_k − {v_k}` — when `v_k` is a free variable or a
//!   semiring aggregate (the intermediate factor `ψ_{U_k−{k}}` of InsideOut), or
//! * the shrunken edges `S − {v_k}` for `S ∈ ∂(v_k)` — when `v_k` is a product
//!   aggregate (paper eq. (8): factors are marginalized individually).
//!
//! The sets `U_k` drive every width parameter in the paper: the induced
//! `g`-width of `σ` is `max_k g(U_k)` (Definition 4.11), and the fractional
//! FAQ-width is `max_{k∈K} ρ*_H(U_k)` (Definition 5.10).

use crate::{Hypergraph, Var, VarSet};

/// How eliminating a vertex rewrites the hypergraph (Definition 5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElimRule {
    /// Free variable or semiring aggregate: `∂(v)` is replaced by the single
    /// edge `U_v − {v}`.
    Fold,
    /// Product aggregate: each edge of `∂(v)` individually loses `v`.
    Shrink,
}

/// The full elimination trace of a vertex ordering.
#[derive(Debug, Clone)]
pub struct EliminationSequence {
    order: Vec<Var>,
    rules: Vec<ElimRule>,
    /// `U_k` for each position `k` (aligned with `order`; `u_sets[k]` includes `v_{k+1}` itself).
    u_sets: Vec<VarSet>,
    /// Edge sets of `H_k` *before* eliminating `order[k]` (aligned with `order`).
    edge_sets: Vec<Vec<VarSet>>,
}

impl EliminationSequence {
    /// Run the elimination with every vertex folded (the classical Def 4.8
    /// sequence used for tree-width-style parameters).
    pub fn new(h: &Hypergraph, order: &[Var]) -> Self {
        Self::with_rules(h, order, &vec![ElimRule::Fold; order.len()])
    }

    /// Run the elimination with a per-vertex rewrite rule.
    ///
    /// `order` must list every vertex of `h` exactly once; `rules[k]` applies
    /// to `order[k]`.
    pub fn with_rules(h: &Hypergraph, order: &[Var], rules: &[ElimRule]) -> Self {
        assert_eq!(order.len(), rules.len(), "one rule per ordered vertex");
        assert_eq!(
            order.iter().copied().collect::<VarSet>(),
            h.vertices().clone(),
            "ordering must cover the vertex set exactly"
        );

        let n = order.len();
        let mut edges: Vec<VarSet> = h.edges().to_vec();
        let mut u_sets = vec![VarSet::new(); n];
        let mut edge_sets = vec![Vec::new(); n];

        for k in (0..n).rev() {
            let vk = order[k];
            edge_sets[k] = edges.clone();
            let (incident, rest): (Vec<VarSet>, Vec<VarSet>) =
                edges.into_iter().partition(|e| e.contains(&vk));
            let mut u = VarSet::new();
            for e in &incident {
                u.extend(e.iter().copied());
            }
            u_sets[k] = u.clone();
            edges = rest;
            match rules[k] {
                ElimRule::Fold => {
                    u.remove(&vk);
                    if !u.is_empty() {
                        edges.push(u);
                    }
                }
                ElimRule::Shrink => {
                    for mut e in incident {
                        e.remove(&vk);
                        if !e.is_empty() {
                            edges.push(e);
                        }
                    }
                }
            }
        }

        EliminationSequence { order: order.to_vec(), rules: rules.to_vec(), u_sets, edge_sets }
    }

    /// The ordering this sequence was built from.
    pub fn order(&self) -> &[Var] {
        &self.order
    }

    /// Per-vertex rewrite rules.
    pub fn rules(&self) -> &[ElimRule] {
        &self.rules
    }

    /// `U_k` for position `k` (0-based within `order`). Includes `order[k]`
    /// itself whenever the vertex has at least one incident edge.
    pub fn u_set(&self, k: usize) -> &VarSet {
        &self.u_sets[k]
    }

    /// All `U_k`, aligned with the ordering.
    pub fn u_sets(&self) -> &[VarSet] {
        &self.u_sets
    }

    /// The edge multiset of `H_k` (the hypergraph *before* `order[k]` is
    /// eliminated).
    pub fn edges_before(&self, k: usize) -> &[VarSet] {
        &self.edge_sets[k]
    }

    /// The induced `g`-width `max_k g(U_k)` (Definition 4.11) over a subset of
    /// positions. Positions with empty `U_k` (isolated at elimination time)
    /// are skipped.
    pub fn induced_width_over<F: FnMut(&VarSet) -> f64>(
        &self,
        positions: &[usize],
        mut g: F,
    ) -> f64 {
        let mut w = 0.0f64;
        for &k in positions {
            if !self.u_sets[k].is_empty() {
                w = w.max(g(&self.u_sets[k]));
            }
        }
        w
    }

    /// The induced `g`-width over *all* positions.
    pub fn induced_width<F: FnMut(&VarSet) -> f64>(&self, g: F) -> f64 {
        let all: Vec<usize> = (0..self.order.len()).collect();
        self.induced_width_over(&all, g)
    }

    /// The classical induced width (`g(B) = |B| − 1`), i.e. the tree-width
    /// witnessed by this ordering.
    pub fn induced_tree_width(&self) -> usize {
        self.u_sets.iter().map(|u| u.len().saturating_sub(1)).max().unwrap_or(0)
    }
}

/// The set `U_v` that a **fold-only** elimination would produce for `v` after
/// the vertices of `eliminated` have already been eliminated (in any order),
/// computed via the path characterization:
///
/// `u ∈ U_v` iff `u = v`, or some edge containing `u` is reachable from `v`
/// through vertices of `eliminated` in the Gaifman graph — equivalently there
/// is a path `v = w₀, w₁, …, w_t = u` whose internal vertices all lie in
/// `eliminated`.
///
/// This quantity is order-independent given the *set* `eliminated`, which is
/// what makes the exact subset-DP ordering search (`ordering::best_ordering_exact`)
/// correct. A property test cross-checks it against [`EliminationSequence`].
pub fn fold_u_set(h: &Hypergraph, eliminated: &VarSet, v: Var) -> VarSet {
    debug_assert!(!eliminated.contains(&v));
    let mut u = VarSet::new();
    let mut frontier = vec![v];
    let mut visited_elim = VarSet::new();
    let mut touched = false;
    while let Some(x) = frontier.pop() {
        for e in h.edges() {
            if e.contains(&x) {
                touched = true;
                for &y in e {
                    if y == v {
                        continue;
                    }
                    if eliminated.contains(&y) {
                        if visited_elim.insert(y) {
                            frontier.push(y);
                        }
                    } else {
                        u.insert(y);
                    }
                }
            }
        }
    }
    if touched {
        u.insert(v);
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{v, varset};

    fn path4() -> Hypergraph {
        // 0 - 1 - 2 - 3
        Hypergraph::from_edges(&[&[0, 1], &[1, 2], &[2, 3]])
    }

    #[test]
    fn path_elimination_end_first() {
        let h = path4();
        let order = [v(0), v(1), v(2), v(3)];
        let seq = EliminationSequence::new(&h, &order);
        // Eliminate 3: U = {2,3}; new edge {2}.
        assert_eq!(seq.u_set(3), &varset(&[2, 3]));
        // Eliminate 2: U = {1,2} (edges {1,2} and {2}).
        assert_eq!(seq.u_set(2), &varset(&[1, 2]));
        assert_eq!(seq.u_set(1), &varset(&[0, 1]));
        assert_eq!(seq.u_set(0), &varset(&[0]));
        assert_eq!(seq.induced_tree_width(), 1);
    }

    #[test]
    fn bad_order_on_path_raises_width() {
        let h = path4();
        // Eliminating the middle vertices last keeps them low; eliminating
        // interior first (i.e. placing them at the END of σ) creates fill.
        let order = [v(0), v(3), v(1), v(2)];
        let seq = EliminationSequence::new(&h, &order);
        // Eliminate 2 first: U = {1,2,3} -> width 2.
        assert_eq!(seq.u_set(3), &varset(&[1, 2, 3]));
        assert_eq!(seq.induced_tree_width(), 2);
    }

    #[test]
    fn triangle_width_is_two_any_order() {
        let h = Hypergraph::from_edges(&[&[0, 1], &[0, 2], &[1, 2]]);
        for order in [[v(0), v(1), v(2)], [v(2), v(0), v(1)], [v(1), v(2), v(0)]] {
            let seq = EliminationSequence::new(&h, &order);
            assert_eq!(seq.induced_tree_width(), 2, "order {order:?}");
        }
    }

    #[test]
    fn shrink_rule_keeps_edges_apart() {
        // Edges {0,2}, {1,2}; eliminating 2 with Shrink yields {0}, {1} —
        // no {0,1} fill edge, unlike Fold.
        let h = Hypergraph::from_edges(&[&[0, 2], &[1, 2]]);
        let fold = EliminationSequence::new(&h, &[v(0), v(1), v(2)]);
        assert_eq!(fold.u_set(1), &varset(&[0, 1])); // fill happened
        let rules = [ElimRule::Fold, ElimRule::Fold, ElimRule::Shrink];
        let shrink = EliminationSequence::with_rules(&h, &[v(0), v(1), v(2)], &rules);
        assert_eq!(shrink.u_set(2), &varset(&[0, 1, 2]));
        assert_eq!(shrink.u_set(1), &varset(&[1])); // no fill
        assert_eq!(shrink.u_set(0), &varset(&[0]));
    }

    #[test]
    fn isolated_vertex_has_empty_u() {
        let mut h = path4();
        h.add_vertex(v(7));
        let order = [v(0), v(1), v(2), v(3), v(7)];
        let seq = EliminationSequence::new(&h, &order);
        assert!(seq.u_set(4).is_empty());
        assert_eq!(seq.induced_tree_width(), 1);
    }

    #[test]
    fn fold_u_set_matches_direct_elimination() {
        use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..60 {
            let n: u32 = rng.gen_range(3..8);
            let m = rng.gen_range(2..8);
            let mut h = Hypergraph::new();
            for i in 0..n {
                h.add_vertex(Var(i));
            }
            for _ in 0..m {
                let k = rng.gen_range(1..=3.min(n));
                let mut vs: Vec<u32> = (0..n).collect();
                vs.shuffle(&mut rng);
                h.add_edge(vs[..k as usize].iter().map(|&i| Var(i)));
            }
            let mut order: Vec<Var> = (0..n).map(Var).collect();
            order.shuffle(&mut rng);
            let seq = EliminationSequence::new(&h, &order);
            for k in 0..order.len() {
                let eliminated: VarSet = order[k + 1..].iter().copied().collect();
                let expect = fold_u_set(&h, &eliminated, order[k]);
                assert_eq!(
                    seq.u_set(k),
                    &expect,
                    "vertex {:?} at position {k} in {order:?}",
                    order[k]
                );
            }
        }
    }
}
