//! Multi-hypergraphs, vertex orderings, acyclicity and width parameters.
//!
//! This crate implements the combinatorial substrate of the FAQ paper (§4):
//!
//! * [`Hypergraph`] — a multi-hypergraph over [`Var`] vertices;
//! * [`elim`] — the elimination hypergraph sequence of Definition 4.8 /
//!   Definition 5.4 and induced `g`-widths of vertex orderings;
//! * [`acyclic`] — GYO reduction, α-acyclicity (Def 4.4) and join trees;
//! * [`beta`] — β-acyclicity (Def 4.5), nest points and nested elimination
//!   orders (Prop 4.10);
//! * [`widths`] — integral and fractional edge cover numbers `ρ`, `ρ*`
//!   (§4.2) and the AGM bound;
//! * [`treedec`] — tree decompositions (Def 4.3) and their `g`-widths;
//! * [`ordering`] — exact (subset DP) and heuristic searches for vertex
//!   orderings minimizing induced widths (tw / fhtw, Cor 4.13);
//! * [`compose`] — hypergraph composition and the fhtw bounds of §8.5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acyclic;
pub mod beta;
pub mod compose;
pub mod elim;
pub mod ordering;
pub mod treedec;
pub mod widths;
pub mod zoo;

pub use acyclic::{gyo_reduce, is_alpha_acyclic, join_tree};
pub use beta::{is_beta_acyclic, nested_elimination_order};
pub use elim::EliminationSequence;
pub use ordering::{best_ordering_exact, min_degree_ordering, min_fill_ordering};
pub use treedec::TreeDecomposition;
pub use widths::{agm_bound, fractional_cover, integral_cover, rho_integral, rho_star};

use std::collections::BTreeSet;
use std::fmt;

/// A variable / vertex identifier.
///
/// Variables are small dense integers; domain metadata lives elsewhere
/// (`faq-factor`'s `Domains`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// Convenience constructor: `v(3)` is `Var(3)`.
pub fn v(i: u32) -> Var {
    Var(i)
}

/// A set of variables, kept sorted and deduplicated.
pub type VarSet = BTreeSet<Var>;

/// Build a [`VarSet`] from a slice of raw indices.
pub fn varset(vars: &[u32]) -> VarSet {
    vars.iter().map(|&i| Var(i)).collect()
}

/// A multi-hypergraph `H = (V, E)`.
///
/// Edges are stored as sorted, deduplicated variable lists; the same variable
/// set may appear in several edges (the FAQ hypergraph is a multi-hypergraph:
/// one edge per input factor). The vertex set is tracked explicitly so that
/// isolated vertices — which the paper's constructions use (the dummy free
/// variable `X₀`) — are representable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    vertices: VarSet,
    edges: Vec<VarSet>,
}

impl Hypergraph {
    /// An empty hypergraph.
    pub fn new() -> Self {
        Hypergraph { vertices: BTreeSet::new(), edges: Vec::new() }
    }

    /// Build from edges given as slices of raw variable indices.
    ///
    /// The vertex set is the union of the edges.
    pub fn from_edges(edges: &[&[u32]]) -> Self {
        let mut h = Hypergraph::new();
        for e in edges {
            h.add_edge(e.iter().map(|&i| Var(i)));
        }
        h
    }

    /// Add an edge; its vertices join the vertex set. Returns the edge index.
    pub fn add_edge<I: IntoIterator<Item = Var>>(&mut self, vars: I) -> usize {
        let set: VarSet = vars.into_iter().collect();
        self.vertices.extend(set.iter().copied());
        self.edges.push(set);
        self.edges.len() - 1
    }

    /// Add an isolated vertex (no incident edge).
    pub fn add_vertex(&mut self, v: Var) {
        self.vertices.insert(v);
    }

    /// The vertex set.
    pub fn vertices(&self) -> &VarSet {
        &self.vertices
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// The edges, in insertion order.
    pub fn edges(&self) -> &[VarSet] {
        &self.edges
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Indices of edges incident to `v` (the paper's `∂(v)`).
    pub fn incident(&self, v: Var) -> Vec<usize> {
        (0..self.edges.len()).filter(|&i| self.edges[i].contains(&v)).collect()
    }

    /// `U(v)` — the union of all edges incident to `v` (paper eq. (6)).
    pub fn neighborhood_closure(&self, v: Var) -> VarSet {
        let mut u = VarSet::new();
        for e in &self.edges {
            if e.contains(&v) {
                u.extend(e.iter().copied());
            }
        }
        u
    }

    /// Whether vertex `u` and `v` share an edge (Gaifman adjacency).
    pub fn adjacent(&self, u: Var, w: Var) -> bool {
        u != w && self.edges.iter().any(|e| e.contains(&u) && e.contains(&w))
    }

    /// The Gaifman (primal) graph as an adjacency list over the vertex set.
    pub fn gaifman(&self) -> Vec<(Var, VarSet)> {
        self.vertices
            .iter()
            .map(|&u| {
                let mut nbrs = VarSet::new();
                for e in &self.edges {
                    if e.contains(&u) {
                        nbrs.extend(e.iter().copied());
                    }
                }
                nbrs.remove(&u);
                (u, nbrs)
            })
            .collect()
    }

    /// The sub-hypergraph induced by `keep`: edges are intersected with `keep`
    /// and empty intersections dropped; vertex set becomes `keep ∩ V`.
    pub fn induced(&self, keep: &VarSet) -> Hypergraph {
        let vertices: VarSet = self.vertices.intersection(keep).copied().collect();
        let edges: Vec<VarSet> = self
            .edges
            .iter()
            .map(|e| e.intersection(keep).copied().collect::<VarSet>())
            .filter(|e: &VarSet| !e.is_empty())
            .collect();
        Hypergraph { vertices, edges }
    }

    /// Remove a set of vertices: `H − S` (edges shrink; empty edges dropped;
    /// vertices leave the vertex set).
    pub fn remove_vertices(&self, s: &VarSet) -> Hypergraph {
        let keep: VarSet = self.vertices.difference(s).copied().collect();
        self.induced(&keep)
    }

    /// Connected components of the vertex set (isolated vertices form their
    /// own components). Components are returned as sorted vertex sets, in
    /// ascending order of their minimum vertex.
    pub fn connected_components(&self) -> Vec<VarSet> {
        let mut comp: Vec<VarSet> = Vec::new();
        let mut seen: VarSet = BTreeSet::new();
        for &start in &self.vertices {
            if seen.contains(&start) {
                continue;
            }
            let mut stack = vec![start];
            let mut cur = VarSet::new();
            seen.insert(start);
            while let Some(x) = stack.pop() {
                cur.insert(x);
                for e in &self.edges {
                    if e.contains(&x) {
                        for &y in e {
                            if seen.insert(y) {
                                stack.push(y);
                            }
                        }
                    }
                }
            }
            comp.push(cur);
        }
        comp
    }

    /// Whether the hypergraph is connected (zero or one component).
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() <= 1
    }

    /// Deduplicate edges and drop edges contained in other edges.
    ///
    /// Width computations only depend on the inclusion-maximal edges; pruning
    /// shrinks the LPs. (Do **not** use this on FAQ query hypergraphs, where
    /// each edge carries a factor.)
    pub fn maximal_edges(&self) -> Hypergraph {
        let mut keep: Vec<bool> = vec![true; self.edges.len()];
        for (i, k) in keep.iter_mut().enumerate() {
            for j in 0..self.edges.len() {
                if i != j
                    && *k
                    && self.edges[i].is_subset(&self.edges[j])
                    && (self.edges[i] != self.edges[j] || i > j)
                {
                    *k = false;
                }
            }
        }
        let edges: Vec<VarSet> =
            self.edges.iter().zip(&keep).filter(|(_, &k)| k).map(|(e, _)| e.clone()).collect();
        Hypergraph { vertices: self.vertices.clone(), edges }
    }
}

impl Default for Hypergraph {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Hypergraph {
        Hypergraph::from_edges(&[&[0, 1], &[0, 2], &[1, 2]])
    }

    #[test]
    fn basic_accessors() {
        let h = triangle();
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.incident(Var(0)), vec![0, 1]);
        assert_eq!(h.neighborhood_closure(Var(0)), varset(&[0, 1, 2]));
        assert!(h.adjacent(Var(0), Var(1)));
        assert!(!h.adjacent(Var(0), Var(0)));
    }

    #[test]
    fn isolated_vertices_tracked() {
        let mut h = triangle();
        h.add_vertex(Var(9));
        assert_eq!(h.num_vertices(), 4);
        let comps = h.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[1], varset(&[9]));
    }

    #[test]
    fn induced_and_removal() {
        let h = Hypergraph::from_edges(&[&[0, 1, 2], &[2, 3], &[3, 4]]);
        let g = h.remove_vertices(&varset(&[2]));
        assert_eq!(g.num_vertices(), 4);
        // {0,1,2} -> {0,1}; {2,3} -> {3}; {3,4} unchanged.
        assert_eq!(g.edges().len(), 3);
        assert_eq!(g.edges()[0], varset(&[0, 1]));
        assert_eq!(g.edges()[1], varset(&[3]));
    }

    #[test]
    fn components_split_after_cut() {
        let h = Hypergraph::from_edges(&[&[0, 1], &[1, 2], &[3, 4]]);
        assert_eq!(h.connected_components().len(), 2);
        assert!(!h.is_connected());
        let g = h.remove_vertices(&varset(&[1]));
        assert_eq!(g.connected_components().len(), 3);
    }

    #[test]
    fn maximal_edge_pruning() {
        let h = Hypergraph::from_edges(&[&[0, 1], &[0, 1, 2], &[0, 1], &[2]]);
        let m = h.maximal_edges();
        assert_eq!(m.num_edges(), 1);
        assert_eq!(m.edges()[0], varset(&[0, 1, 2]));
        assert_eq!(m.num_vertices(), 3);
    }

    #[test]
    fn multigraph_edges_preserved() {
        let h = Hypergraph::from_edges(&[&[0, 1], &[0, 1]]);
        assert_eq!(h.num_edges(), 2);
    }
}
