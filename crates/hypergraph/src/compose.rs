//! Hypergraph composition and fhtw bounds (paper §8.5).
//!
//! Composition models FAQ instances whose input factors are themselves outputs
//! of inner FAQ instances (succinct input representations, §8.2): an outer
//! hypergraph `H⁰ = (V, E⁰)` where each edge `e ∈ E⁰` is replaced by the edge
//! set of an inner hypergraph `H¹_e` over the vertices `e`.
//!
//! * Proposition 8.5: `fhtw(H⁰ ∘ H¹) ≤ fhtw(H⁰) · max_e ρ*(H¹_e)`.
//! * Lemma 8.7: the bound cannot be improved to `fhtw(H⁰) · max_e fhtw(H¹_e)`
//!   — the star-of-stars family has an `Ω(n)` gap ([`star_of_stars_gap`]).

use crate::{Hypergraph, Var, VarSet};

/// Compose an outer hypergraph with one inner hypergraph per outer edge.
///
/// `inner[i]` must be a hypergraph whose vertex set is contained in outer edge
/// `i`. The result has the outer vertex set and the union of the inner edges.
pub fn compose(outer: &Hypergraph, inner: &[Hypergraph]) -> Hypergraph {
    assert_eq!(outer.num_edges(), inner.len(), "one inner hypergraph per outer edge");
    let mut h = Hypergraph::new();
    for &v in outer.vertices() {
        h.add_vertex(v);
    }
    for (i, hi) in inner.iter().enumerate() {
        let outer_edge: &VarSet = &outer.edges()[i];
        assert!(hi.vertices().is_subset(outer_edge), "inner hypergraph {i} escapes its outer edge");
        for e in hi.edges() {
            h.add_edge(e.iter().copied());
        }
    }
    h
}

/// The worst-case instance of Lemma 8.7 for a given `n`.
///
/// Outer: vertices `a₁..a_n, b₁..b_n` (encoded `a_i = Var(i)`,
/// `b_i = Var(n + i)`), edges `e_i = {a₁..a_n, b_i}` — a "star" with
/// `fhtw(H⁰) = 1`. Inner `H¹_{e_i}`: the star centered at `a_i` with leaves
/// `a₁..a_{i−1}, a_{i+1}..a_n, b_i`, again `fhtw = 1`. The composition
/// contains the clique `K_n` on `{a₁..a_n}`, so `fhtw(H⁰∘H¹) ≥ n/2` while
/// `fhtw(H⁰) · max fhtw(H¹) = 1`.
pub fn star_of_stars_gap(n: u32) -> (Hypergraph, Vec<Hypergraph>) {
    assert!(n >= 2);
    let a = |i: u32| Var(i);
    let b = |i: u32| Var(n + i);
    let mut outer = Hypergraph::new();
    let mut inner = Vec::new();
    for i in 0..n {
        let mut edge: Vec<Var> = (0..n).map(a).collect();
        edge.push(b(i));
        outer.add_edge(edge);
        // Inner star centered at a_i.
        let mut hi = Hypergraph::new();
        for j in 0..n {
            if j != i {
                hi.add_edge([a(i), a(j)]);
            }
        }
        hi.add_edge([a(i), b(i)]);
        inner.push(hi);
    }
    (outer, inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::fhtw;
    use crate::widths::rho_star;

    #[test]
    fn compose_unions_edges() {
        let outer = Hypergraph::from_edges(&[&[0, 1, 2], &[2, 3]]);
        let inner0 = Hypergraph::from_edges(&[&[0, 1], &[1, 2]]);
        let inner1 = Hypergraph::from_edges(&[&[2, 3]]);
        let c = compose(&outer, &[inner0, inner1]);
        assert_eq!(c.num_edges(), 3);
        assert_eq!(c.num_vertices(), 4);
    }

    #[test]
    #[should_panic(expected = "escapes")]
    fn escaping_inner_rejected() {
        let outer = Hypergraph::from_edges(&[&[0, 1]]);
        let inner0 = Hypergraph::from_edges(&[&[0, 5]]);
        compose(&outer, &[inner0]);
    }

    #[test]
    fn proposition_8_5_bound_holds() {
        // fhtw(H0 ∘ H1) ≤ fhtw(H0) · max_e ρ*(H1_e) on the gap family and on
        // a hand-built instance.
        for n in [2u32, 3, 4] {
            let (outer, inner) = star_of_stars_gap(n);
            let comp = compose(&outer, &inner);
            let lhs = fhtw(&comp, 12).width;
            let outer_w = fhtw(&outer, 12).width;
            let max_rho: f64 =
                inner.iter().map(|hi| rho_star(hi, &hi.vertices().clone())).fold(0.0, f64::max);
            assert!(lhs <= outer_w * max_rho + 1e-6, "n={n}: {lhs} > {outer_w} * {max_rho}");
        }
    }

    #[test]
    fn lemma_8_7_gap_grows() {
        // fhtw(H0 ∘ H1) ≥ n/2 (the composition contains K_n), while
        // fhtw(H0) · max fhtw(H1_e) = 1.
        for n in [3u32, 4, 5] {
            let (outer, inner) = star_of_stars_gap(n);
            let outer_w = fhtw(&outer, 12).width;
            assert!((outer_w - 1.0).abs() < 1e-6, "outer fhtw {outer_w}");
            for hi in &inner {
                let w = fhtw(hi, 12).width;
                assert!((w - 1.0).abs() < 1e-6, "inner fhtw {w}");
            }
            let comp = compose(&outer, &inner);
            let w = fhtw(&comp, 12).width;
            assert!(
                w >= n as f64 / 2.0 - 1e-6,
                "n={n}: composed fhtw {w} below clique bound {}",
                n as f64 / 2.0
            );
        }
    }
}
