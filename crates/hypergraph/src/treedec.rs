//! Tree decompositions and their widths (paper Definitions 4.3, 4.6).

use crate::elim::EliminationSequence;
use crate::{Hypergraph, Var, VarSet};

/// A tree decomposition `(T, χ)` of a hypergraph.
#[derive(Debug, Clone)]
pub struct TreeDecomposition {
    /// Bags, one per tree node.
    pub bags: Vec<VarSet>,
    /// `parent[i]` is the parent node of node `i`; the root maps to itself.
    pub parent: Vec<usize>,
}

impl TreeDecomposition {
    /// A decomposition with a single bag containing all vertices (always valid).
    pub fn trivial(h: &Hypergraph) -> Self {
        TreeDecomposition { bags: vec![h.vertices().clone()], parent: vec![0] }
    }

    /// Build a tree decomposition from a vertex ordering via the elimination
    /// sequence: the bag of `v_k` is `U_k`; it attaches to the bag of the
    /// earliest-eliminated vertex of `U_k − {v_k}` (standard construction
    /// behind Lemma 4.12 / Corollary 4.13).
    pub fn from_ordering(h: &Hypergraph, order: &[Var]) -> Self {
        let seq = EliminationSequence::new(h, order);
        let n = order.len();
        let pos: std::collections::BTreeMap<Var, usize> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut bags: Vec<VarSet> = Vec::with_capacity(n);
        let mut parent: Vec<usize> = Vec::with_capacity(n);
        for (k, &vert) in order.iter().enumerate() {
            let mut bag = seq.u_set(k).clone();
            if bag.is_empty() {
                bag.insert(vert); // isolated vertex still needs a bag
            }
            bags.push(bag);
        }
        for k in 0..n {
            // Parent = position of the latest-position vertex in U_k − {v_k}
            // that is eliminated AFTER v_k... vertices of U_k other than v_k
            // all have positions < k (they are eliminated later since we
            // eliminate from the back). Attach to the maximum such position.
            let anchor = bags[k].iter().filter(|&&u| u != order[k]).map(|u| pos[u]).max();
            parent.push(anchor.unwrap_or(k));
        }
        // Ensure root(s) self-loop; nodes with no anchor already do.
        TreeDecomposition { bags, parent }
    }

    /// Validate the two tree-decomposition properties plus tree-shapedness.
    pub fn validate(&self, h: &Hypergraph) -> Result<(), String> {
        let n = self.bags.len();
        if self.parent.len() != n {
            return Err("parent/bags length mismatch".into());
        }
        // (tree) parent pointers must be acyclic apart from self-loop roots.
        for start in 0..n {
            let mut cur = start;
            let mut steps = 0;
            while self.parent[cur] != cur {
                cur = self.parent[cur];
                steps += 1;
                if steps > n {
                    return Err("parent pointers contain a cycle".into());
                }
            }
        }
        // (a) every hyperedge is inside some bag.
        for (i, e) in h.edges().iter().enumerate() {
            if !self.bags.iter().any(|b| e.is_subset(b)) {
                return Err(format!("edge {i} ({e:?}) not covered by any bag"));
            }
        }
        // (b) for every vertex the nodes containing it form a connected subtree.
        for &vtx in h.vertices() {
            let holders: Vec<usize> = (0..n).filter(|&i| self.bags[i].contains(&vtx)).collect();
            if holders.is_empty() {
                return Err(format!("vertex {vtx:?} appears in no bag"));
            }
            // Walk up from every holder: once we leave the holder set, we may
            // not re-enter it.
            for &start in &holders {
                let mut cur = start;
                let mut left = false;
                while self.parent[cur] != cur {
                    cur = self.parent[cur];
                    let inside = self.bags[cur].contains(&vtx);
                    if !inside {
                        left = true;
                    } else if left {
                        return Err(format!("vertex {vtx:?} induces a disconnected subtree"));
                    }
                }
            }
            // Also: all holders must share the same "topmost holder".
            let top_of = |mut cur: usize| {
                let mut top = cur;
                while self.parent[cur] != cur {
                    cur = self.parent[cur];
                    if self.bags[cur].contains(&vtx) {
                        top = cur;
                    }
                }
                top
            };
            let tops: std::collections::BTreeSet<usize> =
                holders.iter().map(|&s| top_of(s)).collect();
            if tops.len() > 1 {
                return Err(format!("vertex {vtx:?} induces a forest, not a subtree"));
            }
        }
        Ok(())
    }

    /// The `g`-width of the decomposition: `max` of `g` over the bags
    /// (Adler's width-function framework, paper §4.3).
    pub fn g_width<F: FnMut(&VarSet) -> f64>(&self, g: F) -> f64 {
        self.bags.iter().map(g).fold(0.0, f64::max)
    }

    /// The classical width: `max |bag| − 1`.
    pub fn width(&self) -> usize {
        self.bags.iter().map(|b| b.len().saturating_sub(1)).max().unwrap_or(0)
    }

    /// A GYO-style vertex ordering extracted from the decomposition: vertices
    /// are listed root-bag first, then by the bag in which they appear closest
    /// to the root. Eliminating from the back of this ordering re-witnesses
    /// the decomposition's width (Lemma 4.12 direction ⇒).
    pub fn elimination_ordering(&self) -> Vec<Var> {
        let n = self.bags.len();
        // Depth of each node.
        let mut depth = vec![0usize; n];
        for (i, slot) in depth.iter_mut().enumerate() {
            let mut cur = i;
            let mut d = 0;
            while self.parent[cur] != cur {
                cur = self.parent[cur];
                d += 1;
            }
            *slot = d;
        }
        let mut order: Vec<Var> = Vec::new();
        let mut placed: VarSet = VarSet::new();
        let mut nodes: Vec<usize> = (0..n).collect();
        nodes.sort_by_key(|&i| depth[i]);
        for i in nodes {
            for &v in &self.bags[i] {
                if placed.insert(v) {
                    order.push(v);
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{v, varset, widths::rho_star};

    #[test]
    fn trivial_is_valid() {
        let h = Hypergraph::from_edges(&[&[0, 1], &[1, 2]]);
        let td = TreeDecomposition::trivial(&h);
        td.validate(&h).unwrap();
        assert_eq!(td.width(), 2);
    }

    #[test]
    fn path_ordering_gives_width_one() {
        let h = Hypergraph::from_edges(&[&[0, 1], &[1, 2], &[2, 3]]);
        let td = TreeDecomposition::from_ordering(&h, &[v(0), v(1), v(2), v(3)]);
        td.validate(&h).unwrap();
        assert_eq!(td.width(), 1);
    }

    #[test]
    fn triangle_from_ordering() {
        let h = Hypergraph::from_edges(&[&[0, 1], &[0, 2], &[1, 2]]);
        let td = TreeDecomposition::from_ordering(&h, &[v(0), v(1), v(2)]);
        td.validate(&h).unwrap();
        assert_eq!(td.width(), 2);
        // fractional width of the triangle decomposition: one bag {0,1,2} -> 1.5.
        let w = td.g_width(|b| rho_star(&h, b));
        assert!((w - 1.5).abs() < 1e-6);
    }

    #[test]
    fn random_orderings_yield_valid_decompositions() {
        use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..50 {
            let n: u32 = rng.gen_range(2..8);
            let m = rng.gen_range(1..8);
            let mut h = Hypergraph::new();
            for i in 0..n {
                h.add_vertex(Var(i));
            }
            for _ in 0..m {
                let k = rng.gen_range(1..=n.min(3));
                let mut vs: Vec<u32> = (0..n).collect();
                vs.shuffle(&mut rng);
                h.add_edge(vs[..k as usize].iter().map(|&i| Var(i)));
            }
            let mut order: Vec<Var> = (0..n).map(Var).collect();
            order.shuffle(&mut rng);
            let td = TreeDecomposition::from_ordering(&h, &order);
            td.validate(&h).unwrap_or_else(|e| panic!("{e} for {h:?} order {order:?}"));
        }
    }

    #[test]
    fn validate_rejects_uncovered_edge() {
        let h = Hypergraph::from_edges(&[&[0, 1], &[1, 2]]);
        let td =
            TreeDecomposition { bags: vec![varset(&[0, 1]), varset(&[2])], parent: vec![0, 0] };
        assert!(td.validate(&h).is_err());
    }

    #[test]
    fn validate_rejects_disconnected_vertex() {
        let mut h = Hypergraph::from_edges(&[&[0, 1]]);
        h.add_vertex(v(2));
        let td = TreeDecomposition {
            bags: vec![varset(&[0, 1, 2]), varset(&[0, 1]), varset(&[1, 2])],
            parent: vec![0, 0, 1],
        };
        // vertex 2 appears in bags 0 and 2 but not 1: path 2 -> 1 -> 0 leaves
        // and re-enters — invalid.
        assert!(td.validate(&h).is_err());
    }

    #[test]
    fn elimination_ordering_round_trips_width() {
        let h = Hypergraph::from_edges(&[&[0, 1], &[1, 2], &[2, 3], &[3, 0]]);
        // C4 has treewidth 2.
        let td = TreeDecomposition::from_ordering(&h, &[v(0), v(1), v(2), v(3)]);
        td.validate(&h).unwrap();
        let order = td.elimination_ordering();
        let td2 = TreeDecomposition::from_ordering(&h, &order);
        td2.validate(&h).unwrap();
        assert!(td2.width() <= td.width());
    }
}
