//! The serving runtime: worker pool, admission, epochs, result sharing.
//!
//! # Architecture
//!
//! [`FaqServer`] owns a pool of persistent `std::thread` workers, each with
//! its own mpsc inbox. Two kinds of messages flow in: **epochs** (a fresh
//! [`Snapshot`] published by the writer) and **jobs** (a query submission
//! with a reply channel). Each worker keeps the latest snapshot it has
//! received and evaluates jobs against it — the read path touches no lock
//! and no shared mutable state. All writer state (the factor catalog, the
//! master [`PreparedQuery`] handles with their delta-replay caches, the
//! epoch counter) lives behind a single `Mutex` that only
//! [`FaqServer::register`] and [`FaqServer::publish_delta`] take.
//!
//! Because an mpsc channel delivers messages in causal send order, a job
//! submitted after `publish_delta` returns is always answered at the new
//! epoch or later; a job already in a worker's inbox is answered at the
//! epoch it was enqueued under. Every answer carries its epoch, so callers
//! can correlate results with published data versions.
//!
//! # Result sharing
//!
//! Identical [`QuerySpec`]s dedupe to one [`QueryId`] at registration, so
//! results are shared across tenants by construction. Workers send every
//! freshly computed output back to the writer over a feedback channel
//! tagged with its epoch; at the next publish the writer folds still-valid
//! results (those computed at or after the query's last invalidation) into
//! the new snapshot's result cache. A delta publish refreshes the cached
//! output of every affected query itself, through the incremental
//! [`PreparedQuery::apply_delta`] path — so cached entries are *never*
//! stale: a cache hit at epoch `e` is bit-identical to a fresh evaluation
//! at epoch `e`. Workers additionally keep a tiny lock-free local memo
//! (latest result per query, valid only for their current epoch) so
//! repeated submissions between publishes dedupe without writer traffic.

use crate::snapshot::{QueryId, QuerySpec, Snapshot};
use faq_core::{Engine, ExecPolicy, FaqError, FaqQuery, PlanCache, Planner, PreparedQuery};
use faq_factor::fault::{self, InjectedPanic};
use faq_factor::{DeltaFactor, Domains, Factor};
use faq_semiring::{AggDomain, AggId, SemiringElem};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poison-proof lock acquisition: a worker that panicked while holding a
/// serving lock must not wedge the rest of the pool — the protected state is
/// either atomic-per-entry (in-flight table) or rebuilt wholesale on the next
/// publish, so recovering the guard is sound.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Deterministic, seeded worker-panic injection — the serve-side half of the
/// chaos harness (the storage half is [`faq_factor::FaultPlan`]).
///
/// Each job draws one hash of `(seed, sequence)` ([`fault::seeded_unit`])
/// before evaluation; a draw under `probability` raises an [`InjectedPanic`]
/// inside the worker's `catch_unwind` perimeter, which must surface as
/// [`ServeError::QueryPanicked`] without shrinking the pool. Clones share the
/// sequence counter and the enable flag, so a plan handle kept by a test can
/// switch injection off on a running server.
#[derive(Debug, Clone)]
pub struct PanicPlan {
    seed: u64,
    probability: f64,
    seq: Arc<AtomicU64>,
    enabled: Arc<AtomicBool>,
}

impl PanicPlan {
    /// A plan panicking each job independently with `probability`, decided by
    /// a deterministic hash of `seed` and the job sequence number.
    pub fn seeded(seed: u64, probability: f64) -> PanicPlan {
        PanicPlan {
            seed,
            probability,
            seq: Arc::new(AtomicU64::new(0)),
            enabled: Arc::new(AtomicBool::new(true)),
        }
    }

    /// Switch injection on or off across every clone of this plan.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::SeqCst);
    }

    fn should_panic(&self) -> bool {
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        self.enabled.load(Ordering::SeqCst) && fault::seeded_unit(self.seed, n) < self.probability
    }
}

/// Configuration for a [`FaqServer`].
///
/// Construct with [`ServeConfig::default`] and adjust through the builder
/// methods; the struct is `#[non_exhaustive]` so new knobs can be added
/// without breaking callers.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Number of persistent worker threads (≥ 1).
    pub workers: usize,
    /// Budget applied to submissions that carry none. The default is
    /// sequential: with one query per worker, inter-query parallelism
    /// already saturates the pool, and per-query threads would oversubscribe
    /// it. Submissions may raise this per call via
    /// [`FaqServer::submit_with`].
    pub default_budget: ExecPolicy,
    /// Global cap on admitted-but-unfinished submissions; submissions beyond
    /// it are rejected with [`ServeError::Overloaded`].
    pub max_in_flight: usize,
    /// Whether workers consult and maintain the shared result cache.
    pub share_results: bool,
    /// Planner used to prepare registered queries. Defaults to the full
    /// cost-based planner at hardware parallelism — plans record their best
    /// per-step policies and each submission's budget caps them down.
    pub planner: Planner,
    /// Chaos-testing hook: inject deterministic worker panics. `None` (the
    /// default) injects nothing.
    pub panic_plan: Option<PanicPlan>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ServeConfig {
            workers: hw,
            default_budget: ExecPolicy::sequential(),
            max_in_flight: hw * 4,
            share_results: true,
            planner: Planner::default(),
            panic_plan: None,
        }
    }
}

impl ServeConfig {
    /// This config with `n` worker threads (clamped to ≥ 1).
    pub fn workers(mut self, n: usize) -> ServeConfig {
        self.workers = n.max(1);
        self
    }

    /// This config with `budget` as the default per-submission budget.
    pub fn default_budget(mut self, budget: ExecPolicy) -> ServeConfig {
        self.default_budget = budget;
        self
    }

    /// This config admitting at most `n` concurrent submissions (≥ 1).
    pub fn max_in_flight(mut self, n: usize) -> ServeConfig {
        self.max_in_flight = n.max(1);
        self
    }

    /// This config with shared-result caching switched on or off.
    pub fn share_results(mut self, share: bool) -> ServeConfig {
        self.share_results = share;
        self
    }

    /// This config planning registered queries with `planner`.
    pub fn planner(mut self, planner: Planner) -> ServeConfig {
        self.planner = planner;
        self
    }

    /// This config injecting deterministic worker panics per `plan` — for
    /// chaos testing only.
    pub fn panic_plan(mut self, plan: PanicPlan) -> ServeConfig {
        self.panic_plan = Some(plan);
        self
    }
}

/// Errors surfaced by the serving runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// Admission rejected the submission: the `scope` ("server" or the
    /// tenant's name) already has `limit` submissions in flight.
    Overloaded {
        /// What hit its cap: `"server"` for the global limit, else the
        /// tenant name.
        scope: String,
        /// The in-flight cap that was hit.
        limit: usize,
    },
    /// The [`QueryId`] is not registered (or not yet visible to the worker's
    /// snapshot — impossible for ids returned by [`FaqServer::register`]
    /// before the submission).
    UnknownQuery(QueryId),
    /// A catalog slot index out of range.
    UnknownSlot(usize),
    /// The server is shutting down; the submission was dropped.
    ShuttingDown,
    /// Evaluation overran the submission's deadline (carried on its budget
    /// [`ExecPolicy`]) and was abandoned at a cooperative checkpoint. The
    /// worker and its snapshot are unharmed; resubmitting with a larger
    /// budget is always safe.
    DeadlineExceeded,
    /// The evaluation panicked inside the worker. The panic was contained:
    /// the worker recovered in place (the pool never shrinks), admission
    /// permits were released, and only this submission observes the error.
    QueryPanicked,
    /// The underlying engine failed (invalid spec, schema mismatch, storage
    /// fault, …).
    Faq(FaqError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { scope, limit } => {
                write!(f, "{scope} overloaded: {limit} submissions already in flight")
            }
            ServeError::UnknownQuery(id) => write!(f, "query #{} is not registered", id.0),
            ServeError::UnknownSlot(s) => write!(f, "catalog slot {s} is out of range"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::DeadlineExceeded => write!(f, "submission deadline exceeded"),
            ServeError::QueryPanicked => write!(f, "query evaluation panicked in its worker"),
            ServeError::Faq(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<FaqError> for ServeError {
    fn from(e: FaqError) -> ServeError {
        match e {
            FaqError::DeadlineExceeded => ServeError::DeadlineExceeded,
            e => ServeError::Faq(e),
        }
    }
}

/// How a submission interacts with the shared result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Serve from the snapshot's shared results (or the worker's same-epoch
    /// memo) when possible; evaluate otherwise.
    #[default]
    Shared,
    /// Always evaluate, ignoring caches — for benchmarking and tests. The
    /// computed result still feeds the cache for `Shared` readers.
    Bypass,
}

/// A tenant handle: a name plus a private in-flight budget.
///
/// Cheap to clone; clones share the same in-flight counter.
#[derive(Debug, Clone)]
pub struct Tenant {
    name: Arc<str>,
    max_in_flight: usize,
    in_flight: Arc<AtomicUsize>,
}

impl Tenant {
    /// The tenant's name (used in [`ServeError::Overloaded`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Submissions currently admitted under this tenant.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }
}

/// The answer to one submission.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeOutput<E: SemiringElem> {
    /// Epoch of the snapshot the answer was computed against.
    pub epoch: u64,
    /// The query's output factor at that epoch.
    pub factor: Arc<Factor<E>>,
    /// Whether the answer came from a cache (shared or worker-local memo)
    /// rather than a fresh evaluation.
    pub cache_hit: bool,
    /// Submission-to-completion latency (queueing + evaluation).
    pub latency: Duration,
}

/// A pending submission; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket<E: SemiringElem> {
    rx: Receiver<Result<ServeOutput<E>, ServeError>>,
}

impl<E: SemiringElem> Ticket<E> {
    /// Block until the submission completes.
    pub fn wait(self) -> Result<ServeOutput<E>, ServeError> {
        match self.rx.recv() {
            Ok(r) => r,
            Err(_) => Err(ServeError::ShuttingDown),
        }
    }

    /// The result if already complete, `None` if still running.
    pub fn poll(&self) -> Option<Result<ServeOutput<E>, ServeError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(std::sync::mpsc::TryRecvError::Empty) => None,
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }
}

/// Counters exposed by [`FaqServer::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct ServeStats {
    /// Submissions attempted (admitted or not).
    pub submitted: u64,
    /// Submissions answered (ok or error) by a worker.
    pub completed: u64,
    /// Submissions rejected by admission control.
    pub rejected: u64,
    /// Submissions answered with [`ServeError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Submissions answered with [`ServeError::QueryPanicked`].
    pub panicked: u64,
    /// Transparently retried chunk I/O operations, process-wide
    /// ([`fault::io_retries`]) — retries absorbed by the storage layer that
    /// no submission ever observed.
    pub io_retries: u64,
    /// Chunk reads that failed checksum verification on every attempt,
    /// process-wide ([`fault::corrupt_chunks`]).
    pub corrupt_chunks: u64,
    /// Answers served from a cache (shared or worker-local).
    pub cache_hits: u64,
    /// Answers that ran a fresh evaluation.
    pub evaluated: u64,
    /// Submissions answered by attaching to an identical in-flight
    /// submission of the same epoch (no queueing, no evaluation of their
    /// own).
    pub coalesced: u64,
    /// Epoch snapshots still alive — the latest one plus every older epoch
    /// some reader (an in-flight job, a held [`FaqServer::snapshot`]) is
    /// keeping pinned.
    pub live_epochs: usize,
    /// Resident bytes of the factor catalog: full array bytes for in-memory
    /// factors, currently pinned chunk-window bytes for spilled ones. Epoch
    /// snapshots share the same backing by handle, so they add nothing here.
    pub resident_bytes: usize,
    /// Shared results carried by the latest snapshot's cache.
    pub cache_entries: usize,
}

#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    deadline_exceeded: AtomicU64,
    panicked: AtomicU64,
    cache_hits: AtomicU64,
    evaluated: AtomicU64,
    coalesced: AtomicU64,
}

/// Releases admission slots when the job finishes (or is dropped anywhere
/// along the way — channel failure included).
#[derive(Debug)]
struct AdmissionPermit {
    counters: Vec<Arc<AtomicUsize>>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        for c in &self.counters {
            c.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

struct Job<D: AggDomain> {
    query: QueryId,
    budget: ExecPolicy,
    cache: CacheMode,
    submitted: Instant,
    reply: Sender<Result<ServeOutput<D::E>, ServeError>>,
    /// `Some` when this job leads a coalescing group: the key under which
    /// identical same-epoch submissions queued up as followers. The worker
    /// retires the entry and fans the answer out after evaluating.
    coalesce: Option<(usize, u64)>,
    _permit: AdmissionPermit,
}

/// A submission answered by an identical in-flight leader instead of a job
/// of its own. Holds its admission permit until the fan-out, so coalesced
/// submissions still count against the caps they were admitted under.
struct Follower<D: AggDomain> {
    reply: Sender<Result<ServeOutput<D::E>, ServeError>>,
    /// When this follower was admitted — its fanned-out answer reports its
    /// own submission-to-completion latency, not the leader's.
    submitted: Instant,
    _permit: AdmissionPermit,
}

/// In-flight leaders by `(query, epoch-at-submission)`, each with the
/// followers awaiting its answer.
type Inflight<D> = Mutex<HashMap<(usize, u64), Vec<Follower<D>>>>;

enum Msg<D: AggDomain> {
    Epoch(Arc<Snapshot<D>>),
    Job(Job<D>),
    Shutdown,
}

struct Feedback<E> {
    epoch: u64,
    query: usize,
    factor: Arc<Factor<E>>,
}

/// Writer-side state: everything the publish path mutates, behind one lock
/// that the read path never touches.
struct WriterState<D: AggDomain> {
    epoch: u64,
    domain: D,
    domains: Domains,
    /// Current (fully merged) factor value per catalog slot.
    catalog: Vec<Factor<D::E>>,
    /// Registered specs, index = [`QueryId`].
    specs: Vec<QuerySpec>,
    /// Writer-owned handles; keep their delta-replay caches warm.
    masters: Vec<PreparedQuery<D>>,
    /// Reader replicas as published in the latest snapshot. Replaced (via
    /// [`PreparedQuery`]'s cache-dropping `Clone`) only for queries a delta
    /// touched — untouched queries keep sharing the old `Arc`.
    published: Vec<Arc<PreparedQuery<D>>>,
    /// Last known output per query, always valid for the current catalog.
    results: Vec<Option<Arc<Factor<D::E>>>>,
    /// Epoch from which each query's current data version has been in
    /// effect; feedback computed at an earlier epoch is discarded.
    valid_from: Vec<u64>,
    engine: Engine,
    feedback_rx: Receiver<Feedback<D::E>>,
}

/// A multi-tenant serving runtime for FAQ queries.
///
/// See the [module docs](crate::server) for the architecture. Typical use:
///
/// 1. [`FaqServer::new`] with a factor catalog;
/// 2. [`FaqServer::register`] query templates ([`QuerySpec`]) → [`QueryId`];
/// 3. [`FaqServer::submit`] from any thread, [`Ticket::wait`] for answers;
/// 4. [`FaqServer::publish_delta`] to evolve the data — in-flight queries
///    finish against their snapshot, later ones see the new epoch.
pub struct FaqServer<D: AggDomain> {
    config: ServeConfig,
    worker_txs: Vec<Sender<Msg<D>>>,
    handles: Vec<JoinHandle<()>>,
    rr: AtomicUsize,
    global_in_flight: Arc<AtomicUsize>,
    published_epoch: AtomicU64,
    latest: Mutex<Arc<Snapshot<D>>>,
    stats: Arc<Counters>,
    /// Weak handles to every published snapshot, for the live-epoch gauge;
    /// pruned opportunistically on publish and on [`FaqServer::stats`].
    epochs: Mutex<Vec<Weak<Snapshot<D>>>>,
    inflight: Arc<Inflight<D>>,
    writer: Mutex<WriterState<D>>,
}

impl<D> FaqServer<D>
where
    D: AggDomain + Clone + Send + Sync + 'static,
    D::E: 'static,
{
    /// A server over `catalog` with the default [`ServeConfig`].
    pub fn new(domain: D, domains: Domains, catalog: Vec<Factor<D::E>>) -> FaqServer<D> {
        FaqServer::with_config(ServeConfig::default(), domain, domains, catalog)
    }

    /// A server over `catalog` with an explicit config.
    pub fn with_config(
        config: ServeConfig,
        domain: D,
        domains: Domains,
        catalog: Vec<Factor<D::E>>,
    ) -> FaqServer<D> {
        // A recovered worker panic must not spray a report per injected fault,
        // and spill dirs orphaned by a previous crashed process are reclaimed
        // before this one starts writing its own.
        fault::install_quiet_hook();
        let _ = faq_factor::gc_stale_spill_dirs(None);
        let stats = Arc::new(Counters::default());
        let inflight: Arc<Inflight<D>> = Arc::new(Mutex::new(HashMap::new()));
        let (feedback_tx, feedback_rx) = channel::<Feedback<D::E>>();
        let mut worker_txs = Vec::with_capacity(config.workers);
        let mut handles = Vec::with_capacity(config.workers);
        let first = Arc::new(Snapshot { epoch: 0, queries: Vec::new(), results: HashMap::new() });
        for i in 0..config.workers {
            let (tx, rx) = channel::<Msg<D>>();
            // Seed the inbox before the thread runs its first recv, so a job
            // submitted after construction always finds a snapshot in place.
            let _ = tx.send(Msg::Epoch(Arc::clone(&first)));
            let fb = feedback_tx.clone();
            let st = Arc::clone(&stats);
            let infl = Arc::clone(&inflight);
            let share = config.share_results;
            let plan = config.panic_plan.clone();
            let handle = std::thread::Builder::new()
                .name(format!("faq-serve-{i}"))
                .spawn(move || worker_loop::<D>(rx, fb, st, infl, share, plan))
                .expect("spawning a serving worker thread failed");
            worker_txs.push(tx);
            handles.push(handle);
        }
        let engine = Engine::sequential()
            .planner(config.planner.clone())
            .plan_cache(Arc::new(PlanCache::new()));
        FaqServer {
            config,
            worker_txs,
            handles,
            rr: AtomicUsize::new(0),
            global_in_flight: Arc::new(AtomicUsize::new(0)),
            published_epoch: AtomicU64::new(0),
            latest: Mutex::new(Arc::clone(&first)),
            stats,
            epochs: Mutex::new(vec![Arc::downgrade(&first)]),
            inflight,
            writer: Mutex::new(WriterState {
                epoch: 0,
                domain,
                domains,
                catalog,
                specs: Vec::new(),
                masters: Vec::new(),
                published: Vec::new(),
                results: Vec::new(),
                valid_from: Vec::new(),
                engine,
                feedback_rx,
            }),
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.worker_txs.len()
    }

    /// The epoch of the most recently published snapshot (lock-free read).
    pub fn current_epoch(&self) -> u64 {
        self.published_epoch.load(Ordering::SeqCst)
    }

    /// The most recently published snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot<D>> {
        Arc::clone(&lock_unpoisoned(&self.latest))
    }

    /// Runtime counters (monotonic since construction) and memory gauges
    /// (instantaneous).
    pub fn stats(&self) -> ServeStats {
        let live_epochs = {
            let mut epochs = lock_unpoisoned(&self.epochs);
            epochs.retain(|w| w.strong_count() > 0);
            epochs.len()
        };
        let cache_entries = lock_unpoisoned(&self.latest).results.len();
        let resident_bytes = {
            let w = lock_unpoisoned(&self.writer);
            w.catalog.iter().map(|f| f.resident_bytes()).sum()
        };
        ServeStats {
            submitted: self.stats.submitted.load(Ordering::SeqCst),
            completed: self.stats.completed.load(Ordering::SeqCst),
            rejected: self.stats.rejected.load(Ordering::SeqCst),
            deadline_exceeded: self.stats.deadline_exceeded.load(Ordering::SeqCst),
            panicked: self.stats.panicked.load(Ordering::SeqCst),
            io_retries: fault::io_retries(),
            corrupt_chunks: fault::corrupt_chunks(),
            cache_hits: self.stats.cache_hits.load(Ordering::SeqCst),
            evaluated: self.stats.evaluated.load(Ordering::SeqCst),
            coalesced: self.stats.coalesced.load(Ordering::SeqCst),
            live_epochs,
            resident_bytes,
            cache_entries,
        }
    }

    /// A tenant handle admitting at most `max_in_flight` concurrent
    /// submissions (clamped to ≥ 1).
    pub fn tenant(&self, name: &str, max_in_flight: usize) -> Tenant {
        Tenant {
            name: Arc::from(name),
            max_in_flight: max_in_flight.max(1),
            in_flight: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Register a query template; returns its [`QueryId`] and publishes a
    /// new epoch making it visible to the pool.
    ///
    /// Registering a spec identical to an existing one returns the existing
    /// id (no new epoch) — this is how unrelated tenants end up sharing
    /// results. Errors if a slot is out of range or the spec fails
    /// [`FaqQuery`] validation; the server is left unchanged.
    pub fn register(&self, spec: QuerySpec) -> Result<QueryId, ServeError> {
        let mut w = lock_unpoisoned(&self.writer);
        if let Some(i) = w.specs.iter().position(|s| *s == spec) {
            return Ok(QueryId(i));
        }
        let factors = spec
            .slots
            .iter()
            .map(|&s| w.catalog.get(s).cloned().ok_or(ServeError::UnknownSlot(s)))
            .collect::<Result<Vec<_>, _>>()?;
        let q = FaqQuery::new(
            w.domain.clone(),
            w.domains.clone(),
            spec.free.clone(),
            spec.bound.clone(),
            factors,
        )?;
        let master = w.engine.prepare(&q)?;
        let id = QueryId(w.specs.len());
        w.published.push(Arc::new(master.clone()));
        w.masters.push(master);
        w.specs.push(spec);
        w.results.push(None);
        let next = w.epoch + 1;
        w.valid_from.push(next);
        self.publish_locked(&mut w);
        Ok(id)
    }

    /// Apply `delta` to catalog slot `slot` and publish the resulting epoch.
    ///
    /// Affected queries are refreshed **incrementally** through
    /// [`PreparedQuery::apply_delta`] — their new outputs seed the epoch's
    /// shared result cache, so `Shared` readers of a touched query never pay
    /// for a recomputation the writer already did. Unaffected queries keep
    /// their prepared handles and cached results by `Arc` identity.
    ///
    /// Returns the new epoch. In-flight submissions are answered at the
    /// epoch they started under; submissions after this returns see the new
    /// data.
    pub fn publish_delta(&self, slot: usize, delta: &DeltaFactor<D::E>) -> Result<u64, ServeError> {
        let mut w = lock_unpoisoned(&self.writer);
        let base = w.catalog.get(slot).ok_or(ServeError::UnknownSlot(slot))?;
        // Validate schema + domains upfront: the per-master applications
        // below must not fail halfway (each errors without touching its
        // handle, but a mid-loop error would leave earlier masters ahead of
        // later ones).
        let base_schema: std::collections::BTreeSet<_> = base.schema().iter().copied().collect();
        let delta_schema: std::collections::BTreeSet<_> = delta.schema().iter().copied().collect();
        if base_schema != delta_schema || base.schema().len() != delta.schema().len() {
            let var = delta_schema
                .symmetric_difference(&base_schema)
                .next()
                .copied()
                .unwrap_or_else(|| base.schema()[0]);
            return Err(ServeError::Faq(FaqError::FactorSchemaMismatch { slot, var }));
        }
        for (key, _) in delta.iter() {
            for (&var, &value) in delta.schema().iter().zip(key) {
                if value >= w.domains.size(var) {
                    return Err(ServeError::Faq(FaqError::ValueOutOfDomain { var, value }));
                }
            }
        }
        if w.domain.num_ops() == 0 {
            return Err(ServeError::Faq(FaqError::UnknownAggregate(AggId(0))));
        }

        // Merge into a staged catalog copy — NOT installed yet. The spilled
        // splice path does chunk I/O on this thread, so a storage fault can
        // abort mid-merge; catching it here surfaces a typed error with the
        // catalog untouched.
        let aligned = delta.align_to(base.schema());
        let dom = w.domain.clone();
        let merged = match fault::catch_abort(|| {
            aligned.apply_to(base, |a, b| dom.add(AggId(0), a, b), |e| dom.is_zero(e))
        }) {
            Ok((merged, _ranges)) => merged,
            Err(abort) => return Err(ServeError::Faq(abort.into())),
        };

        // Incrementally refresh every query reading the slot, atomically:
        // outputs are staged and each touched master's pre-state is kept, so
        // any mid-apply failure (a fault on a spilled replay, say) rolls the
        // already-advanced masters back and leaves the previous epoch fully
        // intact — readers never observe a half-applied delta. The rollback
        // clones carry no replay cache ([`PreparedQuery`]'s `Clone` drops
        // it), so a failed publish costs the touched queries their warm
        // caches; the next successful delta re-primes them.
        let next = w.epoch + 1;
        let mut undo: Vec<(usize, PreparedQuery<D>)> = Vec::new();
        let mut staged: Vec<(usize, Arc<Factor<D::E>>)> = Vec::new();
        for qi in 0..w.specs.len() {
            let locals: Vec<usize> = w.specs[qi]
                .slots
                .iter()
                .enumerate()
                .filter_map(|(l, &s)| (s == slot).then_some(l))
                .collect();
            if locals.is_empty() {
                continue;
            }
            undo.push((qi, w.masters[qi].clone()));
            let mut out = None;
            for l in locals {
                match w.masters[qi].apply_delta(l, delta) {
                    Ok(o) => out = Some(o),
                    Err(e) => {
                        for (uqi, prev) in undo {
                            w.masters[uqi] = prev;
                        }
                        return Err(e.into());
                    }
                }
            }
            let out = out.expect("at least one local slot matched");
            staged.push((qi, Arc::new(out.factor)));
        }

        // Commit point: every master advanced cleanly — install the merged
        // catalog slot and the staged results, then publish.
        w.catalog[slot] = merged;
        for (qi, factor) in staged {
            w.results[qi] = Some(factor);
            w.valid_from[qi] = next;
            w.published[qi] = Arc::new(w.masters[qi].clone());
        }
        self.publish_locked(&mut w);
        Ok(w.epoch)
    }

    /// Fold pending worker feedback into the result cache, bump the epoch,
    /// and broadcast the new snapshot to every worker.
    fn publish_locked(&self, w: &mut WriterState<D>) {
        while let Ok(fb) = w.feedback_rx.try_recv() {
            if fb.epoch >= w.valid_from[fb.query] {
                w.results[fb.query] = Some(fb.factor);
            }
        }
        w.epoch += 1;
        let results = if self.config.share_results {
            w.results
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.as_ref().map(|f| (i, Arc::clone(f))))
                .collect()
        } else {
            HashMap::new()
        };
        let snap = Arc::new(Snapshot { epoch: w.epoch, queries: w.published.clone(), results });
        {
            let mut epochs = lock_unpoisoned(&self.epochs);
            epochs.retain(|w| w.strong_count() > 0);
            epochs.push(Arc::downgrade(&snap));
        }
        for tx in &self.worker_txs {
            let _ = tx.send(Msg::Epoch(Arc::clone(&snap)));
        }
        *lock_unpoisoned(&self.latest) = snap;
        self.published_epoch.store(w.epoch, Ordering::SeqCst);
    }

    /// Submit `query` for `tenant` under the server's default budget and
    /// [`CacheMode::Shared`].
    pub fn submit(&self, tenant: &Tenant, query: QueryId) -> Result<Ticket<D::E>, ServeError> {
        self.submit_with(tenant, query, None, CacheMode::Shared)
    }

    /// Submit `query` for `tenant` with an explicit per-query budget and
    /// cache mode.
    ///
    /// `budget` caps the prepared plan's per-step policies (thread count and
    /// chunk floor) for this evaluation only — outputs are bit-identical
    /// under every budget. `None` applies
    /// [`ServeConfig::default_budget`]. Admission is two-level: the global
    /// [`ServeConfig::max_in_flight`] cap, then the tenant's own; a
    /// rejection is immediate and costs no worker time.
    pub fn submit_with(
        &self,
        tenant: &Tenant,
        query: QueryId,
        budget: Option<&ExecPolicy>,
        cache: CacheMode,
    ) -> Result<Ticket<D::E>, ServeError> {
        self.stats.submitted.fetch_add(1, Ordering::SeqCst);
        if self.global_in_flight.fetch_add(1, Ordering::SeqCst) >= self.config.max_in_flight {
            self.global_in_flight.fetch_sub(1, Ordering::SeqCst);
            self.stats.rejected.fetch_add(1, Ordering::SeqCst);
            return Err(ServeError::Overloaded {
                scope: "server".to_owned(),
                limit: self.config.max_in_flight,
            });
        }
        if tenant.in_flight.fetch_add(1, Ordering::SeqCst) >= tenant.max_in_flight {
            tenant.in_flight.fetch_sub(1, Ordering::SeqCst);
            self.global_in_flight.fetch_sub(1, Ordering::SeqCst);
            self.stats.rejected.fetch_add(1, Ordering::SeqCst);
            return Err(ServeError::Overloaded {
                scope: tenant.name.to_string(),
                limit: tenant.max_in_flight,
            });
        }
        let permit = AdmissionPermit {
            counters: vec![Arc::clone(&self.global_in_flight), Arc::clone(&tenant.in_flight)],
        };
        let (reply_tx, reply_rx) = channel();
        // Identical `Shared` submissions racing at the same epoch coalesce:
        // the first becomes the group's leader, the rest enqueue as followers
        // and are fanned the leader's single answer. `Bypass` submissions
        // asked for an evaluation of their own and never coalesce.
        let coalesce = (cache == CacheMode::Shared)
            .then(|| (query.0, self.published_epoch.load(Ordering::SeqCst)));
        if let Some(key) = coalesce {
            let mut infl = lock_unpoisoned(&self.inflight);
            if let Some(followers) = infl.get_mut(&key) {
                followers.push(Follower {
                    reply: reply_tx,
                    submitted: Instant::now(),
                    _permit: permit,
                });
                self.stats.coalesced.fetch_add(1, Ordering::SeqCst);
                return Ok(Ticket { rx: reply_rx });
            }
            infl.insert(key, Vec::new());
        }
        let job = Job {
            query,
            budget: budget.cloned().unwrap_or_else(|| self.config.default_budget.clone()),
            cache,
            submitted: Instant::now(),
            reply: reply_tx,
            coalesce,
            _permit: permit,
        };
        let i = self.rr.fetch_add(1, Ordering::Relaxed) % self.worker_txs.len();
        if let Err(e) = self.worker_txs[i].send(Msg::Job(job)) {
            // Retire the leader entry so later submissions don't enqueue
            // behind a job that will never be answered.
            if let Some(key) = coalesce {
                lock_unpoisoned(&self.inflight).remove(&key);
            }
            drop(e);
            return Err(ServeError::ShuttingDown);
        }
        Ok(Ticket { rx: reply_rx })
    }
}

impl<D: AggDomain> Drop for FaqServer<D> {
    fn drop(&mut self) {
        for tx in &self.worker_txs {
            let _ = tx.send(Msg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A worker's local result memo: latest answer per query, tagged with the
/// epoch it was computed at.
type Memo<D> = HashMap<usize, (u64, Arc<Factor<<D as AggDomain>::E>>)>;

/// The worker: owns its current snapshot, answers jobs against it.
///
/// The only synchronization on this path is the channel recv — evaluation
/// reads exclusively from `Arc`-shared immutable snapshots and the worker's
/// own memo.
fn worker_loop<D>(
    rx: Receiver<Msg<D>>,
    feedback: Sender<Feedback<D::E>>,
    stats: Arc<Counters>,
    inflight: Arc<Inflight<D>>,
    share: bool,
    panic_plan: Option<PanicPlan>,
) where
    D: AggDomain + Clone + Sync,
{
    let mut current: Option<Arc<Snapshot<D>>> = None;
    // Latest locally computed result per query, tagged with its epoch.
    let mut memo: Memo<D> = HashMap::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Epoch(snap) => current = Some(snap),
            Msg::Shutdown => break,
            Msg::Job(job) => {
                // Panic perimeter: a poisoned evaluation (or an injected
                // chaos panic) is contained here — the worker recovers in
                // place, so the pool never shrinks and the submitter gets
                // `QueryPanicked` instead of a hung ticket. A `QueryAbort`
                // that escaped evaluation's own catch (e.g. raised from a
                // memo'd factor accessor) is converted back to its typed
                // error rather than reported as a panic.
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if let Some(plan) = &panic_plan {
                        if plan.should_panic() {
                            std::panic::panic_any(InjectedPanic("injected worker panic"));
                        }
                    }
                    answer(&job, current.as_deref(), &mut memo, &feedback, &stats, share)
                }));
                let reply = match caught {
                    Ok(r) => r,
                    Err(payload) => {
                        if let Some(abort) = payload.downcast_ref::<fault::QueryAbort>() {
                            Err(ServeError::from(FaqError::from(abort.clone())))
                        } else {
                            stats.panicked.fetch_add(1, Ordering::SeqCst);
                            Err(ServeError::QueryPanicked)
                        }
                    }
                };
                if matches!(reply, Err(ServeError::DeadlineExceeded)) {
                    stats.deadline_exceeded.fetch_add(1, Ordering::SeqCst);
                }
                stats.completed.fetch_add(1, Ordering::SeqCst);
                // Retire the coalescing group *before* replying: once the
                // leader's answer is observable, an identical new submission
                // must start a fresh group, not attach to a finished one.
                let Job { reply: tx, coalesce, _permit: permit, .. } = job;
                let followers = coalesce
                    .and_then(|key| lock_unpoisoned(&inflight).remove(&key))
                    .unwrap_or_default();
                // Release the admission slots before replying, so a caller
                // returning from `Ticket::wait` observes its permits freed.
                drop(permit);
                for f in followers {
                    let Follower { reply: ftx, submitted, _permit: fpermit } = f;
                    drop(fpermit);
                    stats.completed.fetch_add(1, Ordering::SeqCst);
                    let mut fanned = reply.clone();
                    if let Ok(out) = &mut fanned {
                        out.latency = submitted.elapsed();
                    }
                    let _ = ftx.send(fanned);
                }
                let _ = tx.send(reply);
            }
        }
    }
}

fn answer<D>(
    job: &Job<D>,
    snap: Option<&Snapshot<D>>,
    memo: &mut Memo<D>,
    feedback: &Sender<Feedback<D::E>>,
    stats: &Counters,
    share: bool,
) -> Result<ServeOutput<D::E>, ServeError>
where
    D: AggDomain + Clone + Sync,
{
    let Some(snap) = snap else {
        return Err(ServeError::UnknownQuery(job.query));
    };
    let qid = job.query.0;
    let Some(prepared) = snap.queries.get(qid) else {
        return Err(ServeError::UnknownQuery(job.query));
    };
    if share && job.cache == CacheMode::Shared {
        let hit = snap.results.get(&qid).cloned().or_else(|| {
            memo.get(&qid).filter(|(epoch, _)| *epoch == snap.epoch).map(|(_, f)| Arc::clone(f))
        });
        if let Some(factor) = hit {
            stats.cache_hits.fetch_add(1, Ordering::SeqCst);
            return Ok(ServeOutput {
                epoch: snap.epoch,
                factor,
                cache_hit: true,
                latency: job.submitted.elapsed(),
            });
        }
    }
    let out = prepared.evaluate_budgeted(&job.budget)?;
    let factor = Arc::new(out.factor);
    stats.evaluated.fetch_add(1, Ordering::SeqCst);
    memo.insert(qid, (snap.epoch, Arc::clone(&factor)));
    if share {
        let _ =
            feedback.send(Feedback { epoch: snap.epoch, query: qid, factor: Arc::clone(&factor) });
    }
    Ok(ServeOutput {
        epoch: snap.epoch,
        factor,
        cache_hit: false,
        latency: job.submitted.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use faq_core::VarAgg;
    use faq_hypergraph::{v, Var};
    use faq_semiring::CountDomain;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    const D: u32 = 12;

    /// Three random binary relations over variables 0, 1, 2 (triangle shape).
    fn edge_catalog_over(seed: u64, rows: usize, d: u32) -> Vec<Factor<u64>> {
        let mut r = StdRng::seed_from_u64(seed);
        (0..3)
            .map(|e| {
                let (a, b) = [(0, 1), (1, 2), (0, 2)][e];
                let mut tuples = std::collections::BTreeMap::new();
                for _ in 0..rows {
                    tuples.insert(vec![r.gen_range(0..d), r.gen_range(0..d)], r.gen_range(1..4u64));
                }
                Factor::new(vec![v(a), v(b)], tuples.into_iter().collect()).unwrap()
            })
            .collect()
    }

    fn edge_catalog(seed: u64, rows: usize) -> Vec<Factor<u64>> {
        edge_catalog_over(seed, rows, D)
    }

    /// Count triangles: all variables bound under Σ, factors = slots 0,1,2.
    fn triangle_spec() -> QuerySpec {
        QuerySpec::new(
            vec![],
            vec![
                (v(0), VarAgg::Semiring(CountDomain::SUM)),
                (v(1), VarAgg::Semiring(CountDomain::SUM)),
                (v(2), VarAgg::Semiring(CountDomain::SUM)),
            ],
            vec![0, 1, 2],
        )
    }

    fn server(workers: usize, rows: usize) -> FaqServer<CountDomain> {
        FaqServer::with_config(
            ServeConfig::default().workers(workers),
            CountDomain,
            Domains::uniform(3, D),
            edge_catalog(7, rows),
        )
    }

    #[test]
    fn serves_and_shares_results() {
        let s = server(1, 60);
        let q = s.register(triangle_spec()).unwrap();
        // An identical registration (another tenant's) dedupes to the same id
        // without publishing a new epoch.
        let epoch = s.current_epoch();
        assert_eq!(s.register(triangle_spec()).unwrap(), q);
        assert_eq!(s.current_epoch(), epoch);

        let a = s.tenant("a", 8);
        let b = s.tenant("b", 8);
        let first = s.submit(&a, q).unwrap().wait().unwrap();
        assert!(!first.cache_hit);
        // Same epoch, single worker: the local memo answers tenant b.
        let second = s.submit(&b, q).unwrap().wait().unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.factor, first.factor);
        assert_eq!(second.epoch, first.epoch);
        // Bypass still recomputes — and agrees.
        let fresh = s.submit_with(&b, q, None, CacheMode::Bypass).unwrap().wait().unwrap();
        assert!(!fresh.cache_hit);
        assert_eq!(*fresh.factor, *first.factor);
        let st = s.stats();
        assert_eq!(st.submitted, 3);
        assert_eq!(st.completed, 3);
        assert_eq!(st.cache_hits, 1);
        assert_eq!(st.evaluated, 2);
    }

    /// `CountDomain` with an artificially slow product, so a leader
    /// evaluation reliably outlasts the followers' submission race.
    #[derive(Clone)]
    struct SlowDomain;

    impl AggDomain for SlowDomain {
        type E = u64;
        fn zero(&self) -> u64 {
            0
        }
        fn one(&self) -> u64 {
            1
        }
        fn mul(&self, a: &u64, b: &u64) -> u64 {
            std::thread::sleep(Duration::from_micros(300));
            a * b
        }
        fn add(&self, _op: AggId, a: &u64, b: &u64) -> u64 {
            a + b
        }
        fn num_ops(&self) -> usize {
            1
        }
        fn op_desc(&self, _op: AggId) -> faq_semiring::AggDesc {
            faq_semiring::AggDesc { name: "sum" }
        }
    }

    /// Three complete binary relations over `0..d` — every triple is a
    /// triangle, so evaluation performs Θ(d³) products.
    fn complete_edges(d: u32) -> Vec<Factor<u64>> {
        (0..3)
            .map(|e| {
                let (a, b) = [(0, 1), (1, 2), (0, 2)][e];
                let rows = (0..d).flat_map(|x| (0..d).map(move |y| (vec![x, y], 1u64))).collect();
                Factor::new(vec![v(a), v(b)], rows).unwrap()
            })
            .collect()
    }

    #[test]
    fn identical_submissions_coalesce_to_one_evaluation() {
        let s = FaqServer::with_config(
            ServeConfig::default().workers(2),
            SlowDomain,
            Domains::uniform(3, 6),
            complete_edges(6),
        );
        let q = s.register(triangle_spec()).unwrap();
        let t = s.tenant("t", 16);
        // The first submission leads; the evaluation sleeps in every `⊗`, so
        // the three racing duplicates attach as followers long before it
        // finishes.
        let tickets: Vec<_> = (0..4).map(|_| s.submit(&t, q).unwrap()).collect();
        let outs: Vec<_> = tickets.into_iter().map(|tk| tk.wait().unwrap()).collect();
        assert_eq!(*outs[0].factor.get(&[]).unwrap(), 216, "6³ triangles");
        for o in &outs {
            assert_eq!(o.factor, outs[0].factor);
            assert_eq!(o.epoch, outs[0].epoch);
        }
        let st = s.stats();
        assert_eq!(st.submitted, 4);
        assert_eq!(st.completed, 4);
        assert_eq!(st.evaluated, 1, "one evaluation fanned out to the whole group");
        assert_eq!(st.coalesced, 3);
        assert_eq!(st.cache_hits, 0);
        assert_eq!(t.in_flight(), 0, "follower permits released at fan-out");
        // A later identical submission starts a fresh group — the finished
        // leader's entry was retired, so it does not coalesce.
        let again = s.submit(&t, q).unwrap().wait().unwrap();
        assert_eq!(again.factor, outs[0].factor);
        assert_eq!(s.stats().coalesced, 3);
    }

    #[test]
    fn stats_expose_memory_gauges() {
        let s = server(1, 40);
        let q = s.register(triangle_spec()).unwrap();
        let st = s.stats();
        assert!(st.resident_bytes > 0, "catalog factors are resident");
        assert!(st.live_epochs >= 1, "the published snapshot is alive");
        assert_eq!(st.cache_entries, 0);
        let t = s.tenant("t", 4);
        s.submit(&t, q).unwrap().wait().unwrap();
        // A delta publish refreshes the affected result and seeds the new
        // epoch's shared cache.
        let delta = DeltaFactor::inserts(vec![v(0), v(1)], vec![(vec![0, 1], 1u64)]).unwrap();
        s.publish_delta(0, &delta).unwrap();
        assert!(s.stats().cache_entries >= 1, "delta publish seeds the shared cache");
        // Holding an old snapshot keeps its epoch in the live gauge even
        // after further publishes.
        let held = s.snapshot();
        s.publish_delta(
            0,
            &DeltaFactor::inserts(vec![v(0), v(1)], vec![(vec![2, 3], 1u64)]).unwrap(),
        )
        .unwrap();
        assert!(s.stats().live_epochs >= 2, "held snapshot + latest are both live");
        drop(held);
    }

    #[test]
    fn budget_caps_threads_not_results() {
        let s = server(2, 80);
        let q = s.register(triangle_spec()).unwrap();
        let t = s.tenant("t", 8);
        let wide = ExecPolicy::with_threads(4).min_chunk_rows(1);
        let parallel =
            s.submit_with(&t, q, Some(&wide), CacheMode::Bypass).unwrap().wait().unwrap();
        let sequential = s
            .submit_with(&t, q, Some(&ExecPolicy::sequential()), CacheMode::Bypass)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(*parallel.factor, *sequential.factor);
    }

    #[test]
    fn admission_rejects_over_limit() {
        // One worker, heavy query: the first submission occupies the worker
        // for a long stretch (tens of milliseconds even on a fast machine)
        // while the next two race through the microsecond admission path.
        let s = FaqServer::with_config(
            ServeConfig::default().workers(1).max_in_flight(2),
            CountDomain,
            Domains::uniform(3, 64),
            edge_catalog_over(11, 4000, 64),
        );
        let q = s.register(triangle_spec()).unwrap();
        let t = s.tenant("big", 100);
        let t2 = s.tenant("small", 1);
        let first = s.submit_with(&t, q, None, CacheMode::Bypass).unwrap();
        let second = s.submit_with(&t, q, None, CacheMode::Bypass).unwrap();
        // Global cap (2) hit:
        match s.submit_with(&t, q, None, CacheMode::Bypass) {
            Err(ServeError::Overloaded { scope, limit }) => {
                assert_eq!(scope, "server");
                assert_eq!(limit, 2);
            }
            other => panic!("expected global overload, got {other:?}"),
        }
        assert_eq!(s.stats().rejected, 1);
        // Permits release once the answers land.
        first.wait().unwrap();
        second.wait().unwrap();
        assert_eq!(t.in_flight(), 0);
        // Per-tenant cap: hold one slot by not racing the worker — tenant
        // limit 1 means the second concurrent submit is rejected with the
        // tenant's name even though the server has room.
        let hold = s.submit_with(&t2, q, None, CacheMode::Bypass).unwrap();
        match s.submit_with(&t2, q, None, CacheMode::Bypass) {
            Err(ServeError::Overloaded { scope, limit }) => {
                assert_eq!(scope, "small");
                assert_eq!(limit, 1);
            }
            Ok(_) => {
                // The worker may already have drained the first job; the
                // admission decision is then legitimately "admit".
            }
            other => panic!("expected tenant overload, got {other:?}"),
        }
        hold.wait().unwrap();
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let s = server(1, 10);
        let t = s.tenant("t", 4);
        let err = s.submit(&t, QueryId(9)).unwrap().wait().unwrap_err();
        assert_eq!(err, ServeError::UnknownQuery(QueryId(9)));
        let err = s.register(QuerySpec::new(vec![], vec![], vec![7])).unwrap_err();
        assert_eq!(err, ServeError::UnknownSlot(7));
        let delta = DeltaFactor::inserts(vec![v(0), v(1)], vec![(vec![0, 0], 1u64)]).unwrap();
        assert_eq!(s.publish_delta(9, &delta).unwrap_err(), ServeError::UnknownSlot(9));
        // Schema mismatch: slot 0 holds (x0, x1), delta speaks (x0, x2).
        let skew = DeltaFactor::inserts(vec![v(0), v(2)], vec![(vec![0, 0], 1u64)]).unwrap();
        assert!(matches!(
            s.publish_delta(0, &skew).unwrap_err(),
            ServeError::Faq(FaqError::FactorSchemaMismatch { slot: 0, .. })
        ));
        // Out-of-domain key.
        let big = DeltaFactor::inserts(vec![v(0), v(1)], vec![(vec![D + 5, 0], 1u64)]).unwrap();
        assert!(matches!(
            s.publish_delta(0, &big).unwrap_err(),
            ServeError::Faq(FaqError::ValueOutOfDomain { var: Var(0), value }) if value == D + 5
        ));
    }

    #[test]
    fn delta_publish_refreshes_shared_results() {
        let s = server(2, 50);
        let q = s.register(triangle_spec()).unwrap();
        let t = s.tenant("t", 8);
        let before = s.submit_with(&t, q, None, CacheMode::Bypass).unwrap().wait().unwrap();

        // Publish a delta touching slot 0; the writer refreshes the cache
        // incrementally, so a Shared read at the new epoch hits it.
        let delta =
            DeltaFactor::inserts(vec![v(0), v(1)], vec![(vec![3, 4], 2u64), (vec![5, 6], 1u64)])
                .unwrap();
        let epoch = s.publish_delta(0, &delta).unwrap();
        assert_eq!(s.current_epoch(), epoch);
        assert!(epoch > before.epoch);

        let shared = s.submit(&t, q).unwrap().wait().unwrap();
        assert_eq!(shared.epoch, epoch);
        assert!(shared.cache_hit, "writer-seeded cache should answer the new epoch");
        // And the cached answer is bit-identical to a fresh evaluation.
        let fresh = s.submit_with(&t, q, None, CacheMode::Bypass).unwrap().wait().unwrap();
        assert_eq!(*shared.factor, *fresh.factor);
        // The snapshot accessors see the same state.
        let snap = s.snapshot();
        assert_eq!(snap.epoch(), epoch);
        assert_eq!(snap.query_count(), 1);
        assert_eq!(snap.cached_result(q).map(|f| (**f).clone()), Some((*fresh.factor).clone()));
    }

    #[test]
    fn injected_panic_is_isolated_and_pool_recovers() {
        let plan = PanicPlan::seeded(3, 1.0);
        let s = FaqServer::with_config(
            ServeConfig::default().workers(2).panic_plan(plan.clone()),
            CountDomain,
            Domains::uniform(3, D),
            edge_catalog(7, 60),
        );
        let q = s.register(triangle_spec()).unwrap();
        let t = s.tenant("t", 8);
        let err = s.submit_with(&t, q, None, CacheMode::Bypass).unwrap().wait().unwrap_err();
        assert_eq!(err, ServeError::QueryPanicked);
        assert_eq!(t.in_flight(), 0, "panicked submission released its permits");
        assert!(s.stats().panicked >= 1);

        // Both workers survive the panic: with injection off, a concurrent
        // burst twice the pool size drains cleanly and agrees on the answer.
        plan.set_enabled(false);
        let tickets: Vec<_> =
            (0..4).map(|_| s.submit_with(&t, q, None, CacheMode::Bypass).unwrap()).collect();
        let outs: Vec<_> = tickets.into_iter().map(|tk| tk.wait().unwrap()).collect();
        for o in &outs {
            assert_eq!(*o.factor, *outs[0].factor);
        }
        assert_eq!(s.worker_count(), 2);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn panicked_leader_fans_error_to_followers() {
        // Injection fires on the first job only (sequence 0 panics under
        // p=1.0, then the plan is disabled by the leader's own failure
        // observation below). A coalescing group whose leader panics must
        // fan the typed error out — followers would otherwise hang forever.
        let plan = PanicPlan::seeded(5, 1.0);
        let s = FaqServer::with_config(
            ServeConfig::default().workers(1).panic_plan(plan.clone()),
            SlowDomain,
            Domains::uniform(3, 6),
            complete_edges(6),
        );
        let q = s.register(triangle_spec()).unwrap();
        let t = s.tenant("t", 16);
        let mut tickets: Vec<_> = (0..3).map(|_| s.submit(&t, q).unwrap()).collect();
        // The single worker processes the first submission first; p = 1.0
        // guarantees it panics while injection is on.
        let first = tickets.remove(0).wait();
        assert_eq!(first.unwrap_err(), ServeError::QueryPanicked);
        plan.set_enabled(false);
        // Every remaining ticket resolves — no follower hangs on a panicked
        // leader: each gets the fanned panic error, or (for a group formed
        // after the failed leader's reply, or a job processed after the
        // disable above) a successful evaluation.
        for r in tickets.into_iter().map(|tk| tk.wait()) {
            match r {
                Ok(out) => assert_eq!(*out.factor.get(&[]).unwrap(), 216),
                Err(e) => assert_eq!(e, ServeError::QueryPanicked),
            }
        }
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn expired_deadline_surfaces_typed_error() {
        use faq_core::Deadline;
        // Complete d=12 relations: ≥ 1024 leapfrog seeks, so the amortized
        // checkpoint fires even though every factor is in memory.
        let s = FaqServer::with_config(
            ServeConfig::default().workers(1),
            CountDomain,
            Domains::uniform(3, 12),
            complete_edges(12),
        );
        let q = s.register(triangle_spec()).unwrap();
        let t = s.tenant("t", 4);
        let expired = ExecPolicy::sequential().deadline(Deadline::after(Duration::ZERO));
        let err =
            s.submit_with(&t, q, Some(&expired), CacheMode::Bypass).unwrap().wait().unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded);
        assert_eq!(t.in_flight(), 0, "deadline abort released its permits");
        assert!(s.stats().deadline_exceeded >= 1);
        // The worker and its snapshot are unharmed: an unbounded retry of
        // the same query succeeds.
        let ok = s.submit_with(&t, q, None, CacheMode::Bypass).unwrap().wait().unwrap();
        assert_eq!(*ok.factor.get(&[]).unwrap(), 12u64 * 12 * 12);
    }

    #[test]
    fn failed_publish_leaves_previous_epoch_intact() {
        use faq_factor::{FaultPlan, SpillConfig};
        // Spilled catalog: the delta splice and the masters' replay do chunk
        // I/O on the publishing thread, where a thread-local fault plan can
        // fail them deterministically.
        let spill =
            SpillConfig { dir: None, chunk_rows: 8, level_chunk_entries: 64, window_chunks: 2 };
        let catalog: Vec<Factor<u64>> =
            edge_catalog(7, 60).iter().map(|f| f.to_spilled(spill.clone())).collect();
        let s = FaqServer::with_config(
            ServeConfig::default().workers(1),
            CountDomain,
            Domains::uniform(3, D),
            catalog,
        );
        let q = s.register(triangle_spec()).unwrap();
        let t = s.tenant("t", 4);
        let before = s.submit_with(&t, q, None, CacheMode::Bypass).unwrap().wait().unwrap();
        let epoch_before = s.current_epoch();

        let delta =
            DeltaFactor::inserts(vec![v(0), v(1)], vec![(vec![3, 4], 2u64), (vec![5, 6], 1u64)])
                .unwrap();
        {
            let _g = FaultPlan::seeded(11).fail_hard(1.0).install_local();
            let err = s.publish_delta(0, &delta).unwrap_err();
            assert!(
                matches!(err, ServeError::Faq(FaqError::Storage(_))),
                "expected a typed storage error, got {err:?}"
            );
        }
        assert_eq!(s.current_epoch(), epoch_before, "failed publish must not advance the epoch");
        // The previous epoch still serves, bit-identically.
        let after = s.submit_with(&t, q, None, CacheMode::Bypass).unwrap().wait().unwrap();
        assert_eq!(*after.factor, *before.factor);
        // And with the faults gone, the same delta publishes cleanly and
        // matches a from-scratch evaluation of the updated catalog.
        let epoch = s.publish_delta(0, &delta).unwrap();
        assert!(epoch > epoch_before);
        let refreshed = s.submit_with(&t, q, None, CacheMode::Bypass).unwrap().wait().unwrap();
        assert_eq!(refreshed.epoch, epoch);
    }
}
