//! Multi-tenant serving runtime for FAQ queries (ROADMAP item 1).
//!
//! This crate turns the single-query engine of `faq_core` into a long-lived
//! **server**: many tenants submit prepared queries concurrently against a
//! shared, evolving factor catalog, with
//!
//! * **epoch snapshots** — writers publish new catalog versions as immutable
//!   `Arc`-shared [`Snapshot`]s; in-flight queries keep reading the snapshot
//!   they started with, and the read path takes **no locks**;
//! * a **persistent worker pool** — plain `std::thread` workers fed over
//!   mpsc channels, replacing the per-call `thread::scope` of the one-shot
//!   engine;
//! * **admission control** — a global and a per-[`Tenant`] in-flight cap,
//!   plus a per-query [`faq_core::ExecPolicy`] budget that clamps how much
//!   of the machine a single evaluation may use;
//! * **cross-query sharing** — identical registrations dedupe to one
//!   [`QueryId`], plans are shared through `faq_core`'s `PlanCache`, and
//!   computed results are cached per epoch so one tenant's work answers
//!   another tenant's identical query;
//! * **fault tolerance** — evaluation panics are contained per worker
//!   ([`ServeError::QueryPanicked`]; the pool never shrinks), storage
//!   faults and overrun deadlines surface as typed errors
//!   ([`ServeError::Faq`], [`ServeError::DeadlineExceeded`]), delta
//!   publishes are atomic (a mid-apply failure leaves the previous epoch
//!   fully intact), and a seeded [`PanicPlan`] drives the chaos suite.
//!
//! # Epoch lifecycle
//!
//! ```text
//!  register/publish_delta          workers                    clients
//!  ───────────────────────         ───────────────────────    ─────────────
//!  lock writer state               own Arc<Snapshot> (e)      submit → job
//!  apply delta incrementally       answer jobs against (e)      ⋱ round-robin
//!  clone touched replicas          recv Epoch(e+1) → swap     Ticket::wait
//!  fold worker feedback            answer against (e+1)
//!  broadcast Snapshot(e+1)
//! ```
//!
//! The writer applies deltas through `PreparedQuery::apply_delta` — the
//! incremental replay machinery of the core crate is the *publish
//! primitive* here — and seeds each new epoch's result cache with the
//! incrementally refreshed outputs. One caveat inherited from that
//! machinery: deltas anchored on a non-leading column of a step's join
//! order fall back to recomputing the whole step, so publish cost for such
//! deltas approaches a full (but still single-query) evaluation.
//!
//! # Pool sizing
//!
//! The default configuration runs one worker per hardware thread with a
//! **sequential** default budget: with one query per worker, inter-query
//! parallelism already saturates the machine, and per-query threads would
//! oversubscribe it. For a latency-sensitive single-tenant setup, invert
//! this: fewer workers, larger per-submission budgets via
//! [`FaqServer::submit_with`].
//!
//! # Quick example
//!
//! ```
//! use faq_core::VarAgg;
//! use faq_factor::{Domains, Factor};
//! use faq_hypergraph::Var;
//! use faq_semiring::CountDomain;
//! use faq_serve::{FaqServer, QuerySpec};
//!
//! // Catalog: one edge relation R(x0, x1).
//! let edges = Factor::new(
//!     vec![Var(0), Var(1)],
//!     vec![(vec![0, 1], 1u64), (vec![1, 0], 1u64)],
//! )
//! .unwrap();
//! let server = FaqServer::new(CountDomain, Domains::uniform(2, 2), vec![edges]);
//!
//! // Register "count all edges" and serve it.
//! let q = server
//!     .register(QuerySpec::new(
//!         vec![],
//!         vec![
//!             (Var(0), VarAgg::Semiring(CountDomain::SUM)),
//!             (Var(1), VarAgg::Semiring(CountDomain::SUM)),
//!         ],
//!         vec![0],
//!     ))
//!     .unwrap();
//! let tenant = server.tenant("docs", 4);
//! let out = server.submit(&tenant, q).unwrap().wait().unwrap();
//! assert_eq!(out.factor.value(0), &2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod server;
pub mod snapshot;

pub use server::{
    CacheMode, FaqServer, PanicPlan, ServeConfig, ServeError, ServeOutput, ServeStats, Tenant,
    Ticket,
};
pub use snapshot::{QueryId, QuerySpec, Snapshot};
