//! Epoch snapshots: the immutable unit the writer publishes and readers hold.
//!
//! A [`Snapshot`] is a frozen view of the server at one **epoch**: the
//! prepared handle for every registered query (each already bound to the
//! catalog factor versions current at that epoch) plus whatever shared
//! results are known to be valid for that data. Snapshots are shared by
//! `Arc` — publishing a new epoch never mutates an old one, so an in-flight
//! query keeps reading the snapshot it started with while later submissions
//! see the new data. No reader ever takes a lock to use one.

use faq_core::PreparedQuery;
use faq_core::VarAgg;
use faq_factor::Factor;
use faq_hypergraph::Var;
use faq_semiring::AggDomain;
use std::collections::HashMap;
use std::sync::Arc;

/// Handle for a query registered with a [`crate::FaqServer`].
///
/// Identical [`QuerySpec`]s registered by different tenants dedupe to the
/// same `QueryId`, which is what makes cross-tenant result sharing work: a
/// cached output is keyed by the id, so tenant B's submission can be served
/// from the result tenant A's submission computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub(crate) usize);

impl QueryId {
    /// The id's position in the server's registration order.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A query template over the server's factor catalog.
///
/// This is [`faq_core::FaqQuery`] with the factors replaced by **catalog
/// slot indices**: the server owns the data (and its evolution through
/// [`crate::FaqServer::publish_delta`]), so registrations reference slots
/// instead of carrying factor copies. The same slot may appear several
/// times (a self-join).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    /// Free (output) variables, in output-schema order.
    pub free: Vec<Var>,
    /// Bound variables with their aggregates, outermost first.
    pub bound: Vec<(Var, VarAgg)>,
    /// For each factor of the query, the catalog slot it reads.
    pub slots: Vec<usize>,
}

impl QuerySpec {
    /// A spec over `slots` with the given free and bound variables.
    pub fn new(free: Vec<Var>, bound: Vec<(Var, VarAgg)>, slots: Vec<usize>) -> QuerySpec {
        QuerySpec { free, bound, slots }
    }
}

/// One published epoch: every registered query prepared against the factor
/// catalog as of that epoch, plus the shared results valid for it.
///
/// Snapshots are immutable; workers receive them as `Arc`s over their
/// channel and evaluate jobs against whichever snapshot they currently
/// hold. Two jobs answered from the same snapshot are guaranteed to see
/// the same data — the consistency unit of the serving runtime.
pub struct Snapshot<D: AggDomain> {
    pub(crate) epoch: u64,
    pub(crate) queries: Vec<Arc<PreparedQuery<D>>>,
    pub(crate) results: HashMap<usize, Arc<Factor<D::E>>>,
}

impl<D: AggDomain> std::fmt::Debug for Snapshot<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("epoch", &self.epoch)
            .field("queries", &self.queries.len())
            .field("results", &self.results.len())
            .finish()
    }
}

impl<D: AggDomain> Snapshot<D> {
    /// The epoch counter at which this snapshot was published.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of registered queries in this snapshot.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// The prepared handle for `id`, if registered by this epoch.
    ///
    /// Exposed for direct (pool-free) evaluation in tests and tools; the
    /// serving path goes through [`crate::FaqServer::submit`].
    pub fn prepared(&self, id: QueryId) -> Option<&Arc<PreparedQuery<D>>> {
        self.queries.get(id.0)
    }

    /// The shared result for `id` cached in this snapshot, if any.
    pub fn cached_result(&self, id: QueryId) -> Option<&Arc<Factor<D::E>>> {
        self.results.get(&id.0)
    }

    /// Number of shared results carried by this snapshot.
    pub fn cached_results(&self) -> usize {
        self.results.len()
    }
}
