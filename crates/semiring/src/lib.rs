//! Commutative semirings and multi-aggregate domains for FAQ queries.
//!
//! The FAQ problem (Abo Khamis, Ngo, Rudra — PODS 2016, §1.2) is defined over a
//! fixed domain `D` carrying one *product* operator `⊗` and, for every bound
//! variable, either `⊗` itself or a semiring "addition" `⊕⁽ⁱ⁾` such that
//! `(D, ⊕⁽ⁱ⁾, ⊗)` is a commutative semiring. All semirings share the same
//! additive identity `0` (which annihilates `⊗`) and multiplicative identity `1`.
//!
//! This crate provides:
//!
//! * [`Semiring`] — a single commutative semiring `(D, ⊕, ⊗)`, used by the
//!   FAQ-SS ("single semiring") fast path and by substrate algorithms.
//! * [`AggDomain`] — a domain with one `⊗` and *several* named `⊕` operators,
//!   used by the general mixed-aggregate FAQ engine (max/sum/product queries,
//!   `#QCQ`, …).
//! * A library of concrete semirings: Boolean, counting, real sum-product,
//!   max-product ("Viterbi"), tropical min-plus/max-plus, the `01-OR` output
//!   semiring of §5.2.3, the set semiring, complex sum-product (for the DFT),
//!   modular arithmetic, and product-of-semirings combinators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod domains;
pub mod ext;
pub mod instrument;
pub mod provenance;
pub mod semirings;

pub use complex::Complex64;
pub use domains::{
    AggDesc, AggDomain, AggId, BoolDomain, CountDomain, RealDomain, SingleSemiringDomain,
};
pub use instrument::{InstrumentedDomain, OpCounters};
pub use provenance::{Polynomial, ProvenanceSemiring};
pub use semirings::{
    BoolSemiring, ComplexSumProd, CountSumProd, F64MaxProd, F64SumProd, MaxPlus, MinPlus,
    ModularSumProd, Or01, SetSemiring,
};

use std::fmt::Debug;

/// Marker bound for semiring element types.
///
/// Everything the engine stores in factors must be cloneable, comparable (to
/// detect explicit zeros) and debuggable (for diagnostics). Elements must
/// also be `Send + Sync`: the parallel InsideOut engine shares factors across
/// a scoped worker pool and sends per-chunk results back to the coordinator.
/// All carrier types in this crate (`bool`, `u64`, `f64`, `u8`, `Complex64`,
/// `BTreeSet<u32>`, pairs, [`Polynomial`]) are plain data and satisfy the
/// bound automatically.
pub trait SemiringElem: Clone + PartialEq + Debug + Send + Sync {}
impl<T: Clone + PartialEq + Debug + Send + Sync> SemiringElem for T {}

/// A commutative semiring `(D, ⊕, ⊗)`.
///
/// Laws (checked by the property tests in this crate):
///
/// * `(D, ⊕)` is a commutative monoid with identity [`Semiring::zero`];
/// * `(D, ⊗)` is a commutative monoid with identity [`Semiring::one`];
/// * `⊗` distributes over `⊕`;
/// * `zero ⊗ e = e ⊗ zero = zero` for every `e`.
///
/// Operations take `&self` so that stateful semirings (e.g. the set semiring,
/// which carries its universe) can be expressed.
pub trait Semiring {
    /// The carrier type of the semiring.
    type E: SemiringElem;

    /// The additive identity `0` (also the annihilator of `⊗`).
    fn zero(&self) -> Self::E;
    /// The multiplicative identity `1`.
    fn one(&self) -> Self::E;
    /// The semiring addition `⊕`.
    fn add(&self, a: &Self::E, b: &Self::E) -> Self::E;
    /// The semiring multiplication `⊗`.
    fn mul(&self, a: &Self::E, b: &Self::E) -> Self::E;

    /// Whether `a` is the additive identity. Listing-representation factors drop
    /// explicit zeros, so the engine consults this after every combination step.
    fn is_zero(&self, a: &Self::E) -> bool {
        *a == self.zero()
    }

    /// `a^k` under `⊗` by repeated squaring (`a^0 = 1`).
    ///
    /// Used when a product aggregate "passes through" a factor that does not
    /// contain the eliminated variable (paper eq. (8)).
    fn pow(&self, a: &Self::E, mut k: u64) -> Self::E {
        let mut base = a.clone();
        let mut acc = self.one();
        while k > 0 {
            if k & 1 == 1 {
                acc = self.mul(&acc, &base);
            }
            k >>= 1;
            if k > 0 {
                base = self.mul(&base, &base);
            }
        }
        acc
    }

    /// Fold an iterator with `⊕`, starting from `0`.
    fn sum<'a, I: IntoIterator<Item = &'a Self::E>>(&self, iter: I) -> Self::E
    where
        Self::E: 'a,
    {
        iter.into_iter().fold(self.zero(), |acc, x| self.add(&acc, x))
    }

    /// Fold an iterator with `⊗`, starting from `1`.
    fn product<'a, I: IntoIterator<Item = &'a Self::E>>(&self, iter: I) -> Self::E
    where
        Self::E: 'a,
    {
        iter.into_iter().fold(self.one(), |acc, x| self.mul(&acc, x))
    }

    /// Whether `e ⊗ e = e` (an idempotent element of the product monoid).
    ///
    /// Idempotent product aggregates (paper Definition 5.2) let InsideOut skip
    /// the `|Dom(X_k)|`-th powering step.
    fn is_mul_idempotent(&self, e: &Self::E) -> bool {
        self.mul(e, e) == *e
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn pow_matches_iterated_mul() {
        let s = CountSumProd;
        for base in 0u64..5 {
            let mut expect = 1u64;
            for k in 0u64..8 {
                assert_eq!(s.pow(&base, k), expect, "{base}^{k}");
                expect *= base;
            }
        }
    }

    #[test]
    fn sum_and_product_fold() {
        let s = CountSumProd;
        let xs = [1u64, 2, 3, 4];
        assert_eq!(s.sum(xs.iter()), 10);
        assert_eq!(s.product(xs.iter()), 24);
        let empty: [u64; 0] = [];
        assert_eq!(s.sum(empty.iter()), 0);
        assert_eq!(s.product(empty.iter()), 1);
    }

    #[test]
    fn idempotence_detection() {
        let b = BoolSemiring;
        assert!(b.is_mul_idempotent(&true));
        assert!(b.is_mul_idempotent(&false));
        let c = CountSumProd;
        assert!(c.is_mul_idempotent(&0));
        assert!(c.is_mul_idempotent(&1));
        assert!(!c.is_mul_idempotent(&2));
    }
}
