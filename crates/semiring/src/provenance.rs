//! Provenance polynomials: the free commutative semiring `ℕ[X]`.
//!
//! Annotating each input tuple with an indeterminate and evaluating a FAQ
//! query over `ℕ[X]` yields, for every output tuple, the polynomial recording
//! *how* it was derived (which input tuples, combined how many ways) — the
//! classical `ℕ[X]` provenance of Green–Karvounarakis–Tannen, and the
//! algebraic face of the factorized representations the paper relates to
//! (§2.2, §8.4). Because `ℕ[X]` is the free commutative semiring, any
//! semiring-homomorphic question (counting, Boolean, cost) can be answered
//! after the fact by evaluating the polynomial.

use crate::Semiring;
use std::collections::BTreeMap;
use std::fmt;

/// A monomial: indeterminate id → exponent (empty = the constant monomial).
pub type Monomial = BTreeMap<u32, u32>;

/// A polynomial in `ℕ[x₀, x₁, …]` with `u64` coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Polynomial {
    /// monomial → coefficient (no zero coefficients stored).
    terms: BTreeMap<Monomial, u64>,
}

impl Polynomial {
    /// The zero polynomial.
    pub fn zero() -> Polynomial {
        Polynomial::default()
    }

    /// The constant 1.
    pub fn one() -> Polynomial {
        Polynomial::constant(1)
    }

    /// A constant polynomial.
    pub fn constant(c: u64) -> Polynomial {
        let mut terms = BTreeMap::new();
        if c != 0 {
            terms.insert(Monomial::new(), c);
        }
        Polynomial { terms }
    }

    /// The indeterminate `x_id`.
    pub fn var(id: u32) -> Polynomial {
        let mut m = Monomial::new();
        m.insert(id, 1);
        let mut terms = BTreeMap::new();
        terms.insert(m, 1);
        Polynomial { terms }
    }

    /// Number of monomials.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Total degree (0 for constants and zero).
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(|m| m.values().sum::<u32>()).max().unwrap_or(0)
    }

    /// Evaluate under an assignment of the indeterminates (missing ids → the
    /// provided default). Evaluation is the semiring homomorphism `ℕ[X] → ℕ`.
    pub fn eval(&self, assignment: &BTreeMap<u32, u64>, default: u64) -> u64 {
        let mut total = 0u64;
        for (m, &c) in &self.terms {
            let mut term = c;
            for (&id, &e) in m {
                let base = assignment.get(&id).copied().unwrap_or(default);
                for _ in 0..e {
                    term = term.saturating_mul(base);
                }
            }
            total = total.saturating_add(term);
        }
        total
    }

    fn add(&self, other: &Polynomial) -> Polynomial {
        let mut terms = self.terms.clone();
        for (m, &c) in &other.terms {
            let entry = terms.entry(m.clone()).or_insert(0);
            *entry += c;
        }
        terms.retain(|_, c| *c != 0);
        Polynomial { terms }
    }

    fn mul(&self, other: &Polynomial) -> Polynomial {
        let mut terms: BTreeMap<Monomial, u64> = BTreeMap::new();
        for (ma, &ca) in &self.terms {
            for (mb, &cb) in &other.terms {
                let mut m = ma.clone();
                for (&id, &e) in mb {
                    *m.entry(id).or_insert(0) += e;
                }
                *terms.entry(m).or_insert(0) += ca * cb;
            }
        }
        terms.retain(|_, c| *c != 0);
        Polynomial { terms }
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        let rendered: Vec<String> = self
            .terms
            .iter()
            .map(|(m, c)| {
                let mut parts: Vec<String> = Vec::new();
                if *c != 1 || m.is_empty() {
                    parts.push(c.to_string());
                }
                for (id, e) in m {
                    if *e == 1 {
                        parts.push(format!("x{id}"));
                    } else {
                        parts.push(format!("x{id}^{e}"));
                    }
                }
                parts.join("·")
            })
            .collect();
        write!(f, "{}", rendered.join(" + "))
    }
}

/// The provenance semiring `(ℕ[X], +, ×)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProvenanceSemiring;

impl Semiring for ProvenanceSemiring {
    type E = Polynomial;
    fn zero(&self) -> Polynomial {
        Polynomial::zero()
    }
    fn one(&self) -> Polynomial {
        Polynomial::one()
    }
    fn add(&self, a: &Polynomial, b: &Polynomial) -> Polynomial {
        a.add(b)
    }
    fn mul(&self, a: &Polynomial, b: &Polynomial) -> Polynomial {
        a.mul(b)
    }
    fn is_zero(&self, a: &Polynomial) -> bool {
        a.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semiring_laws_on_samples() {
        let s = ProvenanceSemiring;
        let samples = [
            Polynomial::zero(),
            Polynomial::one(),
            Polynomial::var(0),
            Polynomial::var(1),
            Polynomial::var(0).add(&Polynomial::var(1)),
            Polynomial::var(0).mul(&Polynomial::var(0)),
            Polynomial::constant(3),
        ];
        for a in &samples {
            assert_eq!(s.add(a, &s.zero()), *a);
            assert_eq!(s.mul(a, &s.one()), *a);
            assert_eq!(s.mul(a, &s.zero()), s.zero());
            for b in &samples {
                assert_eq!(s.add(a, b), s.add(b, a));
                assert_eq!(s.mul(a, b), s.mul(b, a));
                for c in &samples {
                    assert_eq!(s.mul(a, &s.add(b, c)), s.add(&s.mul(a, b), &s.mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn polynomial_arithmetic() {
        // (x0 + x1)² = x0² + 2·x0·x1 + x1².
        let p = Polynomial::var(0).add(&Polynomial::var(1));
        let sq = p.mul(&p);
        assert_eq!(sq.num_terms(), 3);
        assert_eq!(sq.degree(), 2);
        let mut assign = BTreeMap::new();
        assign.insert(0, 2u64);
        assign.insert(1, 3u64);
        assert_eq!(sq.eval(&assign, 0), 25);
    }

    #[test]
    fn evaluation_is_homomorphic() {
        // eval(a + b) = eval(a) + eval(b); eval(a·b) = eval(a)·eval(b).
        let a = Polynomial::var(0).add(&Polynomial::constant(2));
        let b = Polynomial::var(1).mul(&Polynomial::var(0));
        let mut env = BTreeMap::new();
        env.insert(0, 5u64);
        env.insert(1, 7u64);
        assert_eq!(a.add(&b).eval(&env, 0), a.eval(&env, 0) + b.eval(&env, 0));
        assert_eq!(a.mul(&b).eval(&env, 0), a.eval(&env, 0) * b.eval(&env, 0));
    }

    #[test]
    fn display_is_readable() {
        let p = Polynomial::var(0).mul(&Polynomial::var(0)).add(&Polynomial::constant(2));
        assert_eq!(p.to_string(), "2 + x0^2");
    }
}
