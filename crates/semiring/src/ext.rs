//! Semiring combinators and "non-semiring aggregates as semirings" tricks.
//!
//! Paper Appendix B observes that several useful aggregates that are not
//! semiring additions on their face become semiring additions after lifting
//! the carrier. The classic example is `average`, which is a projection of the
//! `(sum, count)` pair semiring. This module provides:
//!
//! * [`PairSemiring`] — the product of two semirings, component-wise;
//! * [`AvgPair`] / [`avg_of`] — the average-as-semiring lifting;
//! * [`LogProb`] — a numerically-stable log-space sum-product semiring.

use crate::{Semiring, SemiringElem};

/// The product semiring `S × T` with component-wise operations.
///
/// If `(D₁, ⊕₁, ⊗₁)` and `(D₂, ⊕₂, ⊗₂)` are commutative semirings then so is
/// `(D₁ × D₂, ⊕, ⊗)` with both operations applied component-wise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairSemiring<S, T> {
    /// Left component semiring.
    pub left: S,
    /// Right component semiring.
    pub right: T,
}

impl<S: Semiring, T: Semiring> PairSemiring<S, T> {
    /// Build the product of two semirings.
    pub fn new(left: S, right: T) -> Self {
        PairSemiring { left, right }
    }
}

impl<S: Semiring, T: Semiring> Semiring for PairSemiring<S, T>
where
    (S::E, T::E): SemiringElem,
{
    type E = (S::E, T::E);

    fn zero(&self) -> Self::E {
        (self.left.zero(), self.right.zero())
    }
    fn one(&self) -> Self::E {
        (self.left.one(), self.right.one())
    }
    fn add(&self, a: &Self::E, b: &Self::E) -> Self::E {
        (self.left.add(&a.0, &b.0), self.right.add(&a.1, &b.1))
    }
    fn mul(&self, a: &Self::E, b: &Self::E) -> Self::E {
        (self.left.mul(&a.0, &b.0), self.right.mul(&a.1, &b.1))
    }
}

/// `(sum, count)` pairs: the lifting that turns `average` into a semiring
/// aggregate (paper Appendix B).
pub type AvgPair = (f64, f64);

/// Project an accumulated `(sum, count)` pair to the average it represents.
///
/// Returns `None` for an empty aggregate (count 0).
pub fn avg_of(pair: &AvgPair) -> Option<f64> {
    if pair.1 == 0.0 {
        None
    } else {
        Some(pair.0 / pair.1)
    }
}

/// Log-space sum-product semiring over `ℝ ∪ {−∞}`: elements are `ln(p)`.
///
/// `⊕` is log-sum-exp (numerically stable), `⊗` is `+`. `zero = −∞`
/// (representing probability 0) and `one = 0` (probability 1). Useful for PGM
/// inference when probabilities underflow `f64`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LogProb;

impl Semiring for LogProb {
    type E = f64;

    fn zero(&self) -> f64 {
        f64::NEG_INFINITY
    }
    fn one(&self) -> f64 {
        0.0
    }
    fn add(&self, a: &f64, b: &f64) -> f64 {
        // log(e^a + e^b) computed stably.
        if *a == f64::NEG_INFINITY {
            return *b;
        }
        if *b == f64::NEG_INFINITY {
            return *a;
        }
        let (hi, lo) = if a >= b { (*a, *b) } else { (*b, *a) };
        hi + (lo - hi).exp().ln_1p()
    }
    fn mul(&self, a: &f64, b: &f64) -> f64 {
        if *a == f64::NEG_INFINITY || *b == f64::NEG_INFINITY {
            f64::NEG_INFINITY
        } else {
            a + b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semirings::{CountSumProd, F64SumProd};

    #[test]
    fn pair_semiring_componentwise() {
        let s = PairSemiring::new(F64SumProd, CountSumProd);
        let a = (2.0, 3u64);
        let b = (5.0, 7u64);
        assert_eq!(s.add(&a, &b), (7.0, 10));
        assert_eq!(s.mul(&a, &b), (10.0, 21));
        assert_eq!(s.zero(), (0.0, 0));
        assert_eq!(s.one(), (1.0, 1));
    }

    #[test]
    fn average_via_pair() {
        let s = PairSemiring::new(F64SumProd, F64SumProd);
        // "average of {2, 4, 9}" accumulated as (sum, count) pairs.
        let acc =
            [(2.0, 1.0), (4.0, 1.0), (9.0, 1.0)].iter().fold(s.zero(), |acc, x| s.add(&acc, x));
        assert_eq!(avg_of(&acc), Some(5.0));
        assert_eq!(avg_of(&s.zero()), None);
    }

    #[test]
    fn log_prob_matches_linear_space() {
        let lp = LogProb;
        let lin = F64SumProd;
        let probs = [0.1f64, 0.25, 0.5, 1.0];
        for &p in &probs {
            for &q in &probs {
                let log_sum = lp.add(&p.ln(), &q.ln());
                let log_prod = lp.mul(&p.ln(), &q.ln());
                assert!((log_sum.exp() - lin.add(&p, &q)).abs() < 1e-12);
                assert!((log_prod.exp() - lin.mul(&p, &q)).abs() < 1e-12);
            }
        }
        // zero behaves as probability 0.
        assert_eq!(lp.add(&lp.zero(), &0.5f64.ln()), 0.5f64.ln());
        assert_eq!(lp.mul(&lp.zero(), &0.5f64.ln()), lp.zero());
    }

    #[test]
    fn log_prob_sum_is_stable_for_tiny_probs() {
        let lp = LogProb;
        // p = e^-1000 twice: linear space underflows, log space must not.
        let tiny = -1000.0;
        let s = lp.add(&tiny, &tiny);
        assert!((s - (tiny + 2f64.ln())).abs() < 1e-9);
    }
}
