//! Operation-counting decorator for [`AggDomain`] — the measurement side of
//! paper Theorem 8.1, which bounds InsideOut's cost in numbers of `⊕⁽ᵏ⁾` and
//! `⊗` operations rather than wall-clock time.

use crate::{AggDesc, AggDomain, AggId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared operation counters.
#[derive(Debug, Clone, Default)]
pub struct OpCounters {
    adds: Arc<AtomicU64>,
    muls: Arc<AtomicU64>,
}

impl OpCounters {
    /// Fresh zeroed counters.
    pub fn new() -> OpCounters {
        OpCounters::default()
    }

    /// Total semiring additions performed.
    pub fn adds(&self) -> u64 {
        self.adds.load(Ordering::Relaxed)
    }

    /// Total products performed.
    pub fn muls(&self) -> u64 {
        self.muls.load(Ordering::Relaxed)
    }

    /// Reset both counters.
    pub fn reset(&self) {
        self.adds.store(0, Ordering::Relaxed);
        self.muls.store(0, Ordering::Relaxed);
    }
}

/// An [`AggDomain`] wrapper that counts every `add` and `mul`.
///
/// The counters are shared (`Arc<AtomicU64>`, relaxed ordering), so clones of
/// the domain — the engine clones queries freely — all report into the same
/// tally, and the domain stays `Send + Sync` for the parallel engine's worker
/// pool (totals are exact there too; only the interleaving is unordered).
#[derive(Debug, Clone)]
pub struct InstrumentedDomain<D> {
    inner: D,
    counters: OpCounters,
}

impl<D: AggDomain> InstrumentedDomain<D> {
    /// Wrap a domain; read the counters through the returned handle.
    pub fn new(inner: D) -> (Self, OpCounters) {
        let counters = OpCounters::new();
        (InstrumentedDomain { inner, counters: counters.clone() }, counters)
    }

    /// Access the wrapped domain.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: AggDomain> AggDomain for InstrumentedDomain<D> {
    type E = D::E;

    fn zero(&self) -> D::E {
        self.inner.zero()
    }
    fn one(&self) -> D::E {
        self.inner.one()
    }
    fn mul(&self, a: &D::E, b: &D::E) -> D::E {
        self.counters.muls.fetch_add(1, Ordering::Relaxed);
        self.inner.mul(a, b)
    }
    fn add(&self, op: AggId, a: &D::E, b: &D::E) -> D::E {
        self.counters.adds.fetch_add(1, Ordering::Relaxed);
        self.inner.add(op, a, b)
    }
    fn num_ops(&self) -> usize {
        self.inner.num_ops()
    }
    fn op_desc(&self, op: AggId) -> AggDesc {
        self.inner.op_desc(op)
    }
    fn ops_identical(&self, a: AggId, b: AggId) -> bool {
        self.inner.ops_identical(a, b)
    }
    fn is_zero(&self, a: &D::E) -> bool {
        self.inner.is_zero(a)
    }
    fn is_mul_idempotent(&self, e: &D::E) -> bool {
        self.inner.is_mul_idempotent(e)
    }
    fn mul_idempotent_domain(&self) -> bool {
        self.inner.mul_idempotent_domain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CountDomain;

    #[test]
    fn counters_track_operations() {
        let (d, counters) = InstrumentedDomain::new(CountDomain);
        assert_eq!(counters.adds(), 0);
        let _ = d.add(CountDomain::SUM, &1, &2);
        let _ = d.add(CountDomain::MAX, &1, &2);
        let _ = d.mul(&3, &4);
        assert_eq!(counters.adds(), 2);
        assert_eq!(counters.muls(), 1);
        counters.reset();
        assert_eq!(counters.adds(), 0);
        assert_eq!(counters.muls(), 0);
    }

    #[test]
    fn clones_share_counters() {
        let (d, counters) = InstrumentedDomain::new(CountDomain);
        let d2 = d.clone();
        let _ = d2.mul(&2, &2);
        assert_eq!(counters.muls(), 1);
    }

    #[test]
    fn pow_counts_squarings() {
        let (d, counters) = InstrumentedDomain::new(CountDomain);
        // 2^8 via repeated squaring: ~log2(8) squarings + 1 final mul.
        let v = d.pow(&2, 8);
        assert_eq!(v, 256);
        assert!(counters.muls() <= 8, "repeated squaring used {} muls", counters.muls());
        assert!(counters.muls() >= 3);
    }
}
