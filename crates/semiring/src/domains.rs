//! Multi-aggregate domains: one `⊗` plus several named semiring `⊕` operators.
//!
//! The general FAQ expression (paper eq. (1)) attaches one aggregate to every
//! bound variable. Different variables may use *different* semiring additions
//! (e.g. `Σ` and `max` in `#QCQ`), but they must all share the same product
//! `⊗`, additive identity `0` and multiplicative identity `1`.
//! [`AggDomain`] captures exactly that structure.

use crate::{Semiring, SemiringElem};

/// Identifier of a semiring addition operator within an [`AggDomain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AggId(pub u32);

impl AggId {
    /// Index into the domain's operator table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Static description of an aggregate operator, used for diagnostics and for
/// the "identical aggregates" analysis of paper §6.1.2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggDesc {
    /// Human-readable name, e.g. `"sum"` or `"max"`.
    pub name: &'static str,
}

/// A domain `D` with one product `⊗` and several semiring additions `⊕⁽ᵒᵖ⁾`.
///
/// Requirements mirroring paper §1.2 (validated by property tests):
///
/// * every `(D, ⊕⁽ᵒᵖ⁾, ⊗)` is a commutative semiring;
/// * all operators share the same `0` and `1`;
/// * `0 ⊗ e = 0` for all `e`.
pub trait AggDomain {
    /// The carrier type.
    type E: SemiringElem;

    /// Shared additive identity `0`.
    fn zero(&self) -> Self::E;
    /// Shared multiplicative identity `1`.
    fn one(&self) -> Self::E;
    /// The product `⊗`.
    fn mul(&self, a: &Self::E, b: &Self::E) -> Self::E;
    /// The semiring addition for operator `op`.
    fn add(&self, op: AggId, a: &Self::E, b: &Self::E) -> Self::E;
    /// Number of distinct addition operators.
    fn num_ops(&self) -> usize;
    /// Description of operator `op`.
    fn op_desc(&self, op: AggId) -> AggDesc;

    /// Whether two addition operators are *functionally identical* on `D`
    /// (paper Definition 6.4). Identical aggregates commute and can be merged
    /// into one tag block; different semiring aggregates never commute
    /// (Proposition 6.6).
    fn ops_identical(&self, a: AggId, b: AggId) -> bool {
        a == b
    }

    /// Whether `a` is the shared additive identity.
    fn is_zero(&self, a: &Self::E) -> bool {
        *a == self.zero()
    }

    /// Whether `e ⊗ e = e`.
    fn is_mul_idempotent(&self, e: &Self::E) -> bool {
        self.mul(e, e) == *e
    }

    /// Whether `⊗` is idempotent on the *whole* domain.
    ///
    /// When it is not, the expression-tree construction must fall back to the
    /// general transformation of paper Definition 6.30 (extend every hyperedge
    /// with all product variables).
    fn mul_idempotent_domain(&self) -> bool {
        false
    }

    /// Whether `⊕⁽ᵒᵖ⁾` is *closed* on the `⊗`-idempotent elements `D_I`
    /// (paper §6.2: `a ⊕ b ∈ D_I` whenever `a, b ∈ D_I`).
    ///
    /// Closed aggregates keep sub-expression values idempotent, so product
    /// aggregates commute with them under the `F(D_I)` input promise;
    /// non-closed aggregates (e.g. `Σ` over `ℕ` with `D_I = {0,1}`) must keep
    /// their original order relative to every product variable. The default
    /// is conservative (`false`).
    fn op_closed_under_idempotents(&self, _op: AggId) -> bool {
        false
    }

    /// `a^k` under `⊗` by repeated squaring.
    fn pow(&self, a: &Self::E, mut k: u64) -> Self::E {
        let mut base = a.clone();
        let mut acc = self.one();
        while k > 0 {
            if k & 1 == 1 {
                acc = self.mul(&acc, &base);
            }
            k >>= 1;
            if k > 0 {
                base = self.mul(&base, &base);
            }
        }
        acc
    }
}

/// View a single [`Semiring`] as an [`AggDomain`] with one addition operator.
///
/// This is the FAQ-SS ("single semiring") embedding: `SumProd`, joins, PGM
/// marginals etc. all run through the same engine via this adapter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SingleSemiringDomain<S> {
    semiring: S,
}

impl<S: Semiring> SingleSemiringDomain<S> {
    /// Wrap a semiring.
    pub fn new(semiring: S) -> Self {
        SingleSemiringDomain { semiring }
    }

    /// The identifier of the unique addition operator.
    pub const OP: AggId = AggId(0);

    /// Access the underlying semiring.
    pub fn semiring(&self) -> &S {
        &self.semiring
    }
}

impl<S: Semiring> AggDomain for SingleSemiringDomain<S> {
    type E = S::E;

    fn zero(&self) -> S::E {
        self.semiring.zero()
    }
    fn one(&self) -> S::E {
        self.semiring.one()
    }
    fn mul(&self, a: &S::E, b: &S::E) -> S::E {
        self.semiring.mul(a, b)
    }
    fn add(&self, op: AggId, a: &S::E, b: &S::E) -> S::E {
        debug_assert_eq!(op, Self::OP);
        self.semiring.add(a, b)
    }
    fn num_ops(&self) -> usize {
        1
    }
    fn op_desc(&self, _op: AggId) -> AggDesc {
        AggDesc { name: "add" }
    }
    fn is_zero(&self, a: &S::E) -> bool {
        self.semiring.is_zero(a)
    }
    fn is_mul_idempotent(&self, e: &S::E) -> bool {
        self.semiring.is_mul_idempotent(e)
    }
}

/// Non-negative reals with additions `Σ` (op 0) and `max` (op 1), product `×`.
///
/// The workhorse mixed-aggregate domain: marginal-MAP queries, Example 5.6,
/// Example 6.2. Both `(ℝ₊, +, ×)` and `(ℝ₊, max, ×)` are commutative semirings
/// sharing `0` and `1`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RealDomain;

impl RealDomain {
    /// `Σ` aggregate.
    pub const SUM: AggId = AggId(0);
    /// `max` aggregate.
    pub const MAX: AggId = AggId(1);
}

impl AggDomain for RealDomain {
    type E = f64;

    fn zero(&self) -> f64 {
        0.0
    }
    fn one(&self) -> f64 {
        1.0
    }
    fn mul(&self, a: &f64, b: &f64) -> f64 {
        a * b
    }
    fn add(&self, op: AggId, a: &f64, b: &f64) -> f64 {
        match op {
            RealDomain::SUM => a + b,
            RealDomain::MAX => a.max(*b),
            _ => panic!("RealDomain has 2 ops, got {op:?}"),
        }
    }
    fn num_ops(&self) -> usize {
        2
    }
    fn op_desc(&self, op: AggId) -> AggDesc {
        match op {
            RealDomain::SUM => AggDesc { name: "sum" },
            RealDomain::MAX => AggDesc { name: "max" },
            _ => panic!("RealDomain has 2 ops, got {op:?}"),
        }
    }
    fn op_closed_under_idempotents(&self, op: AggId) -> bool {
        // D_I = {0, 1}: max is closed, + is not (1 + 1 = 2 ∉ D_I).
        op == RealDomain::MAX
    }
}

/// Unsigned counters with additions `Σ` (op 0) and `max` (op 1), product `×`.
///
/// The `#QCQ` domain (paper Example 1.3): input factors are `{0,1}`-valued,
/// `∃` becomes `max`, `∀` becomes `×`, and the counting head is `Σ` over `ℕ`.
///
/// Arithmetic saturates at `u64::MAX`. Saturation keeps `(D, Σ, ×)` and
/// `(D, max, ×)` commutative semirings (every operator is monotone, so any
/// sub-expression that exceeds the cap evaluates to the cap no matter how the
/// expression is re-associated), which InsideOut relies on: its product-
/// elimination steps power intermediates (paper eq. (8)) that can
/// legitimately exceed `u64` even when later factors shrink the final result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountDomain;

impl CountDomain {
    /// `Σ` aggregate.
    pub const SUM: AggId = AggId(0);
    /// `max` aggregate.
    pub const MAX: AggId = AggId(1);
}

impl AggDomain for CountDomain {
    type E = u64;

    fn zero(&self) -> u64 {
        0
    }
    fn one(&self) -> u64 {
        1
    }
    fn mul(&self, a: &u64, b: &u64) -> u64 {
        a.saturating_mul(*b)
    }
    fn add(&self, op: AggId, a: &u64, b: &u64) -> u64 {
        match op {
            CountDomain::SUM => a.saturating_add(*b),
            CountDomain::MAX => (*a).max(*b),
            _ => panic!("CountDomain has 2 ops, got {op:?}"),
        }
    }
    fn num_ops(&self) -> usize {
        2
    }
    fn op_desc(&self, op: AggId) -> AggDesc {
        match op {
            CountDomain::SUM => AggDesc { name: "sum" },
            CountDomain::MAX => AggDesc { name: "max" },
            _ => panic!("CountDomain has 2 ops, got {op:?}"),
        }
    }
    fn op_closed_under_idempotents(&self, op: AggId) -> bool {
        // D_I = {0, 1}: max is closed, + is not.
        op == CountDomain::MAX
    }
}

/// Booleans with one addition `∨` (op 0) and product `∧`.
///
/// The QCQ domain: `∃` is the semiring aggregate `∨`, `∀` is the product `∧`.
/// `∧` is idempotent on all of `{false,true}`, so QCQ instances never need the
/// powering step and qualify for the idempotent expression-tree construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoolDomain;

impl BoolDomain {
    /// `∨` aggregate.
    pub const OR: AggId = AggId(0);
}

impl AggDomain for BoolDomain {
    type E = bool;

    fn zero(&self) -> bool {
        false
    }
    fn one(&self) -> bool {
        true
    }
    fn mul(&self, a: &bool, b: &bool) -> bool {
        *a && *b
    }
    fn add(&self, op: AggId, a: &bool, b: &bool) -> bool {
        debug_assert_eq!(op, BoolDomain::OR);
        *a || *b
    }
    fn num_ops(&self) -> usize {
        1
    }
    fn op_desc(&self, _op: AggId) -> AggDesc {
        AggDesc { name: "or" }
    }
    fn mul_idempotent_domain(&self) -> bool {
        true
    }
    fn op_closed_under_idempotents(&self, _op: AggId) -> bool {
        true // ∨ on {false, true} = D_I
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semirings::CountSumProd;

    fn check_domain_laws<D: AggDomain>(d: &D, samples: &[D::E]) {
        let zero = d.zero();
        let one = d.one();
        for op_idx in 0..d.num_ops() {
            let op = AggId(op_idx as u32);
            for a in samples {
                assert_eq!(d.add(op, a, &zero), *a, "additive identity for op {op:?}");
                assert_eq!(d.mul(a, &one), *a);
                assert_eq!(d.mul(a, &zero), zero);
                for b in samples {
                    assert_eq!(d.add(op, a, b), d.add(op, b, a));
                    for c in samples {
                        assert_eq!(d.add(op, &d.add(op, a, b), c), d.add(op, a, &d.add(op, b, c)));
                        assert_eq!(
                            d.mul(a, &d.add(op, b, c)),
                            d.add(op, &d.mul(a, b), &d.mul(a, c)),
                            "distributivity for op {op:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn real_domain_laws() {
        check_domain_laws(&RealDomain, &[0.0, 1.0, 0.5, 2.0, 4.0]);
    }

    #[test]
    fn count_domain_laws() {
        check_domain_laws(&CountDomain, &[0, 1, 2, 5]);
    }

    #[test]
    fn bool_domain_laws() {
        check_domain_laws(&BoolDomain, &[false, true]);
        assert!(BoolDomain.mul_idempotent_domain());
    }

    #[test]
    fn single_semiring_adapter() {
        let d = SingleSemiringDomain::new(CountSumProd);
        check_domain_laws(&d, &[0, 1, 2, 3]);
        assert_eq!(d.num_ops(), 1);
        assert_eq!(d.add(SingleSemiringDomain::<CountSumProd>::OP, &2, &3), 5);
    }

    #[test]
    fn pow_by_squaring() {
        let d = RealDomain;
        assert_eq!(d.pow(&2.0, 10), 1024.0);
        assert_eq!(d.pow(&3.0, 0), 1.0);
        let c = CountDomain;
        assert_eq!(c.pow(&2, 16), 65536);
    }

    #[test]
    fn ops_identical_is_reflexive_only_by_default() {
        let d = RealDomain;
        assert!(d.ops_identical(RealDomain::SUM, RealDomain::SUM));
        assert!(!d.ops_identical(RealDomain::SUM, RealDomain::MAX));
    }
}
