//! A library of concrete commutative semirings.
//!
//! Each semiring corresponds to a family of FAQ applications (paper Appendix A):
//!
//! | semiring | applications |
//! |---|---|
//! | [`BoolSemiring`] `({0,1}, ∨, ∧)` | SAT, BCQ, CSP, joins |
//! | [`CountSumProd`] `(ℕ, +, ×)` | #SAT, #CQ, triangle counting, permanent |
//! | [`F64SumProd`] `(ℝ, +, ×)` | PGM marginals, partition functions |
//! | [`F64MaxProd`] `(ℝ₊, max, ×)` | MAP / MPE inference |
//! | [`MinPlus`] / [`MaxPlus`] | shortest paths, log-space Viterbi |
//! | [`Or01`] `({0,1}, 01-OR, ⊗)` | the output/"freeness" semiring of §5.2.3 |
//! | [`SetSemiring`] `(2^U, ∪, ∩)` | provenance-style reasoning |
//! | [`ComplexSumProd`] `(ℂ, +, ×)` | DFT/FFT (Table 1 row DFT) |
//! | [`ModularSumProd`] `(ℤ_m, +, ×)` | counting modulo m |

use crate::complex::Complex64;
use crate::Semiring;
use std::collections::BTreeSet;

/// The Boolean semiring `({false,true}, ∨, ∧)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoolSemiring;

impl Semiring for BoolSemiring {
    type E = bool;
    fn zero(&self) -> bool {
        false
    }
    fn one(&self) -> bool {
        true
    }
    fn add(&self, a: &bool, b: &bool) -> bool {
        *a || *b
    }
    fn mul(&self, a: &bool, b: &bool) -> bool {
        *a && *b
    }
}

/// The counting semiring `(u64, +, ×)`.
///
/// Used for exact model counting; panics on overflow in debug builds (standard
/// Rust semantics), which the tests rely on to catch unexpectedly large counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountSumProd;

impl Semiring for CountSumProd {
    type E = u64;
    fn zero(&self) -> u64 {
        0
    }
    fn one(&self) -> u64 {
        1
    }
    fn add(&self, a: &u64, b: &u64) -> u64 {
        a + b
    }
    fn mul(&self, a: &u64, b: &u64) -> u64 {
        a * b
    }
}

/// The real sum-product semiring `(f64, +, ×)`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct F64SumProd;

impl Semiring for F64SumProd {
    type E = f64;
    fn zero(&self) -> f64 {
        0.0
    }
    fn one(&self) -> f64 {
        1.0
    }
    fn add(&self, a: &f64, b: &f64) -> f64 {
        a + b
    }
    fn mul(&self, a: &f64, b: &f64) -> f64 {
        a * b
    }
}

/// The max-product semiring `(ℝ₊, max, ×)` over non-negative reals.
///
/// The canonical MAP/MPE inference semiring (paper Example 1.2). The carrier is
/// `f64` restricted to non-negative values; `0` is both the additive identity
/// and the product annihilator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct F64MaxProd;

impl Semiring for F64MaxProd {
    type E = f64;
    fn zero(&self) -> f64 {
        0.0
    }
    fn one(&self) -> f64 {
        1.0
    }
    fn add(&self, a: &f64, b: &f64) -> f64 {
        a.max(*b)
    }
    fn mul(&self, a: &f64, b: &f64) -> f64 {
        a * b
    }
}

/// The tropical min-plus semiring `(ℝ ∪ {∞}, min, +)`.
///
/// `zero = +∞`, `one = 0`. Useful for shortest-path-style dynamic programs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MinPlus;

impl Semiring for MinPlus {
    type E = f64;
    fn zero(&self) -> f64 {
        f64::INFINITY
    }
    fn one(&self) -> f64 {
        0.0
    }
    fn add(&self, a: &f64, b: &f64) -> f64 {
        a.min(*b)
    }
    fn mul(&self, a: &f64, b: &f64) -> f64 {
        a + b
    }
}

/// The tropical max-plus semiring `(ℝ ∪ {−∞}, max, +)` — MAP in log space.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MaxPlus;

impl Semiring for MaxPlus {
    type E = f64;
    fn zero(&self) -> f64 {
        f64::NEG_INFINITY
    }
    fn one(&self) -> f64 {
        0.0
    }
    fn add(&self, a: &f64, b: &f64) -> f64 {
        a.max(*b)
    }
    fn mul(&self, a: &f64, b: &f64) -> f64 {
        a + b
    }
}

/// The `01-OR` output semiring of paper Definition 5.3, specialized to `{0,1} ⊆ u8`.
///
/// `(01-OR, ⊗)` over `{0,1}`: `a 01 b = 0` iff `a = b = 0`. InsideOut uses this
/// semiring to eliminate *free* variables, turning "freeness" into a semiring
/// aggregate and recovering Yannakakis' algorithm (paper §5.2.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Or01;

impl Semiring for Or01 {
    type E = u8;
    fn zero(&self) -> u8 {
        0
    }
    fn one(&self) -> u8 {
        1
    }
    fn add(&self, a: &u8, b: &u8) -> u8 {
        if *a == 0 && *b == 0 {
            0
        } else {
            1
        }
    }
    fn mul(&self, a: &u8, b: &u8) -> u8 {
        if *a == 0 || *b == 0 {
            0
        } else {
            1
        }
    }
}

/// The set semiring `(2^U, ∪, ∩)` for a universe `{0, 1, …, universe−1}`.
///
/// `zero = ∅` and `one = U`. A stateful semiring: the universe travels with the
/// instance, demonstrating why [`Semiring`] methods take `&self`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetSemiring {
    universe: u32,
}

impl SetSemiring {
    /// A set semiring over the universe `{0, …, universe−1}`.
    pub fn new(universe: u32) -> Self {
        SetSemiring { universe }
    }

    /// The full universe as an element.
    pub fn universe_set(&self) -> BTreeSet<u32> {
        (0..self.universe).collect()
    }
}

impl Semiring for SetSemiring {
    type E = BTreeSet<u32>;
    fn zero(&self) -> BTreeSet<u32> {
        BTreeSet::new()
    }
    fn one(&self) -> BTreeSet<u32> {
        self.universe_set()
    }
    fn add(&self, a: &BTreeSet<u32>, b: &BTreeSet<u32>) -> BTreeSet<u32> {
        a.union(b).copied().collect()
    }
    fn mul(&self, a: &BTreeSet<u32>, b: &BTreeSet<u32>) -> BTreeSet<u32> {
        a.intersection(b).copied().collect()
    }
    fn is_zero(&self, a: &BTreeSet<u32>) -> bool {
        a.is_empty()
    }
}

/// The complex sum-product semiring `(ℂ, +, ×)` — a field, used for the DFT.
///
/// `is_zero` uses a small tolerance so that floating-point cancellation noise
/// does not blow up intermediate listing representations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComplexSumProd {
    /// Magnitudes below this threshold are treated as the additive identity.
    pub eps: f64,
}

impl Default for ComplexSumProd {
    fn default() -> Self {
        ComplexSumProd { eps: 0.0 }
    }
}

impl ComplexSumProd {
    /// A complex semiring that treats `|z| ≤ eps` as zero.
    pub fn with_eps(eps: f64) -> Self {
        ComplexSumProd { eps }
    }
}

impl Semiring for ComplexSumProd {
    type E = Complex64;
    fn zero(&self) -> Complex64 {
        Complex64::ZERO
    }
    fn one(&self) -> Complex64 {
        Complex64::ONE
    }
    fn add(&self, a: &Complex64, b: &Complex64) -> Complex64 {
        *a + *b
    }
    fn mul(&self, a: &Complex64, b: &Complex64) -> Complex64 {
        *a * *b
    }
    fn is_zero(&self, a: &Complex64) -> bool {
        if self.eps == 0.0 {
            *a == Complex64::ZERO
        } else {
            a.abs() <= self.eps
        }
    }
}

/// Sum-product arithmetic modulo `m`: `(ℤ_m, +, ×)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModularSumProd {
    modulus: u64,
}

impl ModularSumProd {
    /// Arithmetic modulo `modulus` (must be ≥ 2).
    pub fn new(modulus: u64) -> Self {
        assert!(modulus >= 2, "modulus must be at least 2");
        ModularSumProd { modulus }
    }

    /// The modulus of this instance.
    pub fn modulus(&self) -> u64 {
        self.modulus
    }
}

impl Semiring for ModularSumProd {
    type E = u64;
    fn zero(&self) -> u64 {
        0
    }
    fn one(&self) -> u64 {
        1 % self.modulus
    }
    fn add(&self, a: &u64, b: &u64) -> u64 {
        (a + b) % self.modulus
    }
    fn mul(&self, a: &u64, b: &u64) -> u64 {
        (a * b) % self.modulus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Check the semiring laws on a slice of sample elements.
    fn check_laws<S: Semiring>(s: &S, samples: &[S::E]) {
        let zero = s.zero();
        let one = s.one();
        for a in samples {
            assert_eq!(s.add(a, &zero), *a, "additive identity");
            assert_eq!(s.mul(a, &one), *a, "multiplicative identity");
            assert_eq!(s.mul(a, &zero), zero, "annihilation");
            for b in samples {
                assert_eq!(s.add(a, b), s.add(b, a), "⊕ commutativity");
                assert_eq!(s.mul(a, b), s.mul(b, a), "⊗ commutativity");
                for c in samples {
                    assert_eq!(s.add(&s.add(a, b), c), s.add(a, &s.add(b, c)), "⊕ associativity");
                    assert_eq!(s.mul(&s.mul(a, b), c), s.mul(a, &s.mul(b, c)), "⊗ associativity");
                    assert_eq!(
                        s.mul(a, &s.add(b, c)),
                        s.add(&s.mul(a, b), &s.mul(a, c)),
                        "distributivity"
                    );
                }
            }
        }
    }

    #[test]
    fn bool_laws() {
        check_laws(&BoolSemiring, &[false, true]);
    }

    #[test]
    fn count_laws() {
        check_laws(&CountSumProd, &[0, 1, 2, 3, 7]);
    }

    #[test]
    fn f64_sum_prod_laws() {
        check_laws(&F64SumProd, &[0.0, 1.0, 2.0, 0.5]);
    }

    #[test]
    fn max_prod_laws() {
        check_laws(&F64MaxProd, &[0.0, 1.0, 2.0, 0.5]);
    }

    #[test]
    fn min_plus_laws() {
        check_laws(&MinPlus, &[f64::INFINITY, 0.0, 1.0, 2.5, -3.0]);
    }

    #[test]
    fn max_plus_laws() {
        check_laws(&MaxPlus, &[f64::NEG_INFINITY, 0.0, 1.0, 2.5, -3.0]);
    }

    #[test]
    fn or01_laws() {
        check_laws(&Or01, &[0, 1]);
    }

    #[test]
    fn set_laws() {
        let s = SetSemiring::new(4);
        let samples: Vec<BTreeSet<u32>> = vec![
            BTreeSet::new(),
            [0u32].into_iter().collect(),
            [1u32, 2].into_iter().collect(),
            [0u32, 1, 2, 3].into_iter().collect(),
        ];
        check_laws(&s, &samples);
    }

    #[test]
    fn modular_laws() {
        check_laws(&ModularSumProd::new(7), &[0, 1, 2, 3, 6]);
    }

    #[test]
    fn complex_identities() {
        let s = ComplexSumProd::default();
        let a = Complex64::new(1.5, -0.5);
        assert_eq!(s.add(&a, &s.zero()), a);
        assert_eq!(s.mul(&a, &s.one()), a);
        assert_eq!(s.mul(&a, &s.zero()), s.zero());
        assert!(ComplexSumProd::with_eps(1e-9).is_zero(&Complex64::new(1e-12, -1e-12)));
    }

    #[test]
    fn or01_matches_definition_5_3() {
        let s = Or01;
        assert_eq!(s.add(&0, &0), 0);
        assert_eq!(s.add(&0, &1), 1);
        assert_eq!(s.add(&1, &0), 1);
        assert_eq!(s.add(&1, &1), 1);
    }

    #[test]
    fn modular_one_is_reduced() {
        let s = ModularSumProd::new(2);
        assert_eq!(s.one(), 1);
        assert_eq!(s.add(&1, &1), 0);
    }
}
