//! A minimal complex-number type for the DFT reduction (paper Table 1, row DFT).
//!
//! Implemented in-repo rather than pulling `num-complex`: the FAQ engine only
//! needs addition, multiplication and roots of unity.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The complex zero.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The complex one.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };

    /// Construct from rectangular components.
    pub fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    pub fn cis(theta: f64) -> Self {
        Complex64 { re: theta.cos(), im: theta.sin() }
    }

    /// The primitive `n`-th root of unity raised to the `k`-th power: `e^{2πik/n}`.
    pub fn root_of_unity(n: u64, k: u64) -> Self {
        Self::cis(2.0 * std::f64::consts::PI * (k % n) as f64 / n as f64)
    }

    /// Squared modulus `|z|²`.
    pub fn norm_sqr(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    pub fn abs(&self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Complex conjugate.
    pub fn conj(&self) -> Self {
        Complex64 { re: self.re, im: -self.im }
    }

    /// Whether both components are within `eps` of `other`'s.
    pub fn approx_eq(&self, other: &Self, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64 { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64 { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64 { re: -self.re, im: -self.im }
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex64::new(1.0, -2.0));
    }

    #[test]
    fn roots_of_unity_cycle() {
        let n = 8;
        for k in 0..n {
            let w = Complex64::root_of_unity(n, k);
            // w^n should be 1.
            let mut acc = Complex64::ONE;
            for _ in 0..n {
                acc *= w;
            }
            assert!(acc.approx_eq(&Complex64::ONE, 1e-9), "k={k}: {acc:?}");
        }
        // Sum of all n-th roots of unity is 0.
        let mut sum = Complex64::ZERO;
        for k in 0..n {
            sum += Complex64::root_of_unity(n, k);
        }
        assert!(sum.approx_eq(&Complex64::ZERO, 1e-9), "{sum:?}");
    }

    #[test]
    fn norms() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
    }
}
