//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;

/// Number-of-elements specifier: a fixed `usize`, `a..b`, or `a..=b`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange { lo, hi_inclusive: hi }
    }
}

/// Strategy for `Vec<S::Value>` with `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with roughly `size` elements.
///
/// Like real proptest, duplicates are retried a bounded number of times, so a
/// set may come out smaller than requested when the element space is tight.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}

/// Strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.size.draw(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < n && attempts < n * 20 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
