//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no network access to a cargo registry, so this
//! crate implements the subset of the proptest API that
//! `tests/proptest_invariants.rs` uses:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]` and
//!   `arg in strategy` bindings);
//! * [`Strategy`] with [`Strategy::prop_map`], implemented for integer and
//!   float ranges;
//! * [`collection::vec`] and [`collection::btree_set`] with `usize`, range,
//!   or inclusive-range size specifiers;
//! * [`prop_assert!`] / [`prop_assert_eq!`] and
//!   [`ProptestConfig::with_cases`].
//!
//! Failing cases are re-run verbatim by re-seeding (each case prints its seed
//! on failure), but there is **no shrinking** — the real crate minimizes
//! counterexamples, this one reports them as drawn. Swap the path dependency
//! for the registry crate when a registry is reachable; the tests need no
//! changes.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::Strategy;

/// Re-exports matching `proptest::prelude::*` as far as this workspace uses it.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

/// Test-runner configuration (only `cases` is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A default configuration overriding the number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Runs a property body over `config.cases` random cases. Called by the
/// [`proptest!`] expansion; not part of the public proptest API.
pub fn run_property(name: &str, config: &ProptestConfig, mut case: impl FnMut(&mut StdRng)) {
    // Deterministic but distinct per property: hash the property name (FNV-1a).
    let seed0 = name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3));
    for i in 0..config.cases as u64 {
        let seed = seed0.wrapping_add(i);
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!("proptest stand-in: property `{name}` failed on case {i} (seed {seed:#x}); no shrinking — values are as drawn");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the same surface shape as proptest's macro:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..10, v in collection::vec(0u32..5, 3)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategies = ( $($strategy,)* );
                let ( $(ref $arg,)* ) = strategies;
                $crate::run_property(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::Strategy::generate($arg, rng);)*
                    $body
                });
            }
        )*
    };
    ( $( $(#[$meta:meta])* fn $name:ident $rest:tt $body:block )* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name $rest $body )*
        }
    };
}

/// Assert inside a property body (maps to `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property body (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}
