//! The [`Strategy`] trait and its range implementations.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a generator. Strategies are used by `&self` so the `proptest!` macro
/// can draw many cases from one strategy instance.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// A strategy that post-processes generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}
