//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access to a cargo registry, so the
//! workspace vendors this minimal, dependency-free implementation of the
//! subset of the `rand 0.9` API the FAQ codebase uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator seeded via
//!   [`SeedableRng::seed_from_u64`] (SplitMix64 state expansion);
//! * [`Rng::gen_range`] / [`Rng::random_range`] over integer and float
//!   half-open and inclusive ranges;
//! * [`Rng::gen_bool`] / [`Rng::random_bool`];
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Distribution quality: integer sampling uses Lemire-style widening
//! multiplication without rejection, which is uniform enough for test-data
//! generation (bias < 2⁻³²) but NOT a drop-in statistical replacement for the
//! real crate. Swap this path dependency for the registry crate when a
//! registry is reachable; the call sites need no changes.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a uniform value of type `Self` from a range, given raw bits.
pub trait SampleUniform: Sized {
    /// Uniform sample from `low..high`. Panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `low..=high`. Panics if the range is empty.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let span = (high as i128 - low as i128) as u128;
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + offset) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                let span = (high as i128 - low as i128) as u128 + 1;
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                low + unit * (high - low)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (rand 0.8 spelling).
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Uniform sample from `range` (rand 0.9 spelling).
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (rand 0.8 spelling).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// `true` with probability `p` (rand 0.9 spelling).
    fn random_bool(&mut self, p: f64) -> bool {
        self.gen_bool(p)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let z: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&z));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}/10000 at p=0.25");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
