//! Sequence-related extension traits.

use crate::{Rng, RngCore};

/// Extension methods for slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Shuffle the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j: usize = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}
