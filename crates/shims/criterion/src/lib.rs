//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access to a cargo registry, so this
//! crate implements the subset of the criterion API the `faq_bench` benches
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`criterion_group!`]/[`criterion_main!`] — with a simple
//! wall-clock measurement loop: a warm-up pass, then `sample_size` timed
//! samples per benchmark, reporting min/median/mean to stdout.
//!
//! Numbers from this harness are honest wall-clock medians but lack
//! criterion's outlier rejection and statistical machinery; swap the path
//! dependency for the registry crate for publication-grade measurements. The
//! call sites need no changes.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to each registered benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup { _c: self, sample_size: 20 }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        run_one(name, 20, &mut f);
    }
}

/// A named benchmark identifier, `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `f`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmark `f` with no input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.label, self.sample_size, &mut f);
        self
    }

    /// Finish the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Whether the harness was invoked in `--test` mode (`cargo bench -- --test`):
/// run every benchmark once, unmeasured, as a smoke test — mirroring real
/// criterion's flag so CI can exercise bench kernels without paying for
/// sampling.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { elapsed: Duration::ZERO };
    if test_mode() {
        f(&mut b);
        println!("{label:<40} ok (--test mode: 1 unmeasured pass)");
        return;
    }
    // Warm-up (also primes caches and resolves lazy statics).
    f(&mut b);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        b.elapsed = Duration::ZERO;
        f(&mut b);
        times.push(b.elapsed);
    }
    times.sort_unstable();
    let min = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    println!("{label:<40} min {min:>12.3?}  median {median:>12.3?}  mean {mean:>12.3?}  ({samples} samples)");
}

/// Timer handle: benchmarks call [`Bencher::iter`] with the routine to time.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Time one execution of `routine` (criterion times many; one per sample
    /// keeps this stand-in fast while remaining comparable across runs).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
    }
}

/// Bundle benchmark functions into a runnable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        fn $group_name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Produce a `main` that runs the given groups, mirroring criterion's macro of
/// the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group_name:path),+ $(,)?) => {
        fn main() {
            $( $group_name(); )+
        }
    };
}
