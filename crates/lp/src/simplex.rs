//! Two-phase dense primal simplex.
//!
//! Solves `min cᵀx` subject to linear constraints and `x ≥ 0`. Constraints may
//! be `≤`, `≥` or `=`. Phase 1 minimizes the sum of artificial variables to
//! find a basic feasible solution; phase 2 optimizes the real objective.
//! Bland's rule guarantees termination.

use crate::EPS;

/// Comparison operator of a [`Constraint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// One linear constraint `Σ aᵢxᵢ (≤|≥|=) b`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Coefficients, one per structural variable.
    pub coeffs: Vec<f64>,
    /// Comparison operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program `min cᵀx  s.t.  constraints, x ≥ 0`.
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    /// Objective coefficients (minimization).
    pub objective: Vec<f64>,
    /// Constraint rows.
    pub constraints: Vec<Constraint>,
}

/// An optimal solution to a [`LinearProgram`].
#[derive(Debug, Clone)]
pub struct Solution {
    /// Optimal objective value.
    pub objective: f64,
    /// Optimal assignment to the structural variables.
    pub x: Vec<f64>,
}

/// Failure modes of the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// The program is malformed (e.g. ragged coefficient rows).
    Malformed(String),
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "infeasible linear program"),
            LpError::Unbounded => write!(f, "unbounded linear program"),
            LpError::Malformed(m) => write!(f, "malformed linear program: {m}"),
        }
    }
}

impl std::error::Error for LpError {}

impl LinearProgram {
    /// A program minimizing `objective` with no constraints yet.
    pub fn minimize(objective: Vec<f64>) -> Self {
        LinearProgram { objective, constraints: Vec::new() }
    }

    /// Add a constraint row.
    pub fn constraint(mut self, coeffs: Vec<f64>, op: ConstraintOp, rhs: f64) -> Self {
        self.constraints.push(Constraint { coeffs, op, rhs });
        self
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Solve the program with two-phase simplex.
    pub fn solve(&self) -> Result<Solution, LpError> {
        let n = self.num_vars();
        for (i, c) in self.constraints.iter().enumerate() {
            if c.coeffs.len() != n {
                return Err(LpError::Malformed(format!(
                    "constraint {i} has {} coefficients, expected {n}",
                    c.coeffs.len()
                )));
            }
        }
        Tableau::new(self).solve()
    }
}

/// Dense simplex tableau.
///
/// Column layout: `[structural (n) | slack/surplus (s) | artificial (a) | rhs]`.
struct Tableau {
    /// Rows of the tableau; one per constraint, plus the objective row last.
    rows: Vec<Vec<f64>>,
    /// Index of the basic variable of each constraint row.
    basis: Vec<usize>,
    n_struct: usize,
    n_slack: usize,
    n_art: usize,
    /// Objective coefficients of the original program (phase 2).
    objective: Vec<f64>,
}

impl Tableau {
    fn new(lp: &LinearProgram) -> Self {
        let n = lp.num_vars();
        let m = lp.constraints.len();

        // Count slack and artificial columns.
        let mut n_slack = 0;
        let mut n_art = 0;
        for c in &lp.constraints {
            // Normalize to non-negative rhs first; the op may flip.
            let (op, _) = normalized_op(c);
            match op {
                ConstraintOp::Le => n_slack += 1,
                ConstraintOp::Ge => {
                    n_slack += 1; // surplus
                    n_art += 1;
                }
                ConstraintOp::Eq => n_art += 1,
            }
        }

        let width = n + n_slack + n_art + 1;
        let mut rows = vec![vec![0.0; width]; m];
        let mut basis = vec![usize::MAX; m];
        let mut slack_cursor = 0;
        let mut art_cursor = 0;

        for (i, c) in lp.constraints.iter().enumerate() {
            let (op, flip) = normalized_op(c);
            let sign = if flip { -1.0 } else { 1.0 };
            for (j, &a) in c.coeffs.iter().enumerate() {
                rows[i][j] = sign * a;
            }
            rows[i][width - 1] = sign * c.rhs;
            match op {
                ConstraintOp::Le => {
                    let col = n + slack_cursor;
                    rows[i][col] = 1.0;
                    basis[i] = col;
                    slack_cursor += 1;
                }
                ConstraintOp::Ge => {
                    let s_col = n + slack_cursor;
                    rows[i][s_col] = -1.0; // surplus
                    slack_cursor += 1;
                    let a_col = n + n_slack + art_cursor;
                    rows[i][a_col] = 1.0;
                    basis[i] = a_col;
                    art_cursor += 1;
                }
                ConstraintOp::Eq => {
                    let a_col = n + n_slack + art_cursor;
                    rows[i][a_col] = 1.0;
                    basis[i] = a_col;
                    art_cursor += 1;
                }
            }
        }

        Tableau { rows, basis, n_struct: n, n_slack, n_art, objective: lp.objective.clone() }
    }

    fn width(&self) -> usize {
        self.n_struct + self.n_slack + self.n_art + 1
    }

    fn rhs_col(&self) -> usize {
        self.width() - 1
    }

    fn solve(mut self) -> Result<Solution, LpError> {
        // Phase 1: minimize the sum of artificial variables.
        if self.n_art > 0 {
            let width = self.width();
            let mut obj = vec![0.0; width];
            // Phase-1 costs: 1 on every artificial column.
            for c in &mut obj[(self.n_struct + self.n_slack)..(width - 1)] {
                *c = 1.0;
            }
            for i in 0..self.rows.len() {
                let b = self.basis[i];
                if b >= self.n_struct + self.n_slack {
                    // Basic artificial variable: subtract its row so the
                    // objective row is expressed over non-basic columns.
                    for (c, r) in obj.iter_mut().zip(&self.rows[i]) {
                        *c -= r;
                    }
                }
            }
            let allowed = self.n_struct + self.n_slack + self.n_art;
            self.run_simplex(&mut obj, allowed)?;
            let phase1 = -obj[self.rhs_col()];
            if phase1 > 1e-7 {
                return Err(LpError::Infeasible);
            }
            // Drive any remaining artificial variables out of the basis.
            self.purge_artificials();
        }

        // Phase 2: optimize the real objective over structural + slack columns.
        let width = self.width();
        let mut obj = vec![0.0; width];
        obj[..self.n_struct].copy_from_slice(&self.objective);
        // Express objective over the current basis.
        for i in 0..self.rows.len() {
            let b = self.basis[i];
            let coef = obj[b];
            if coef.abs() > EPS {
                for (c, r) in obj.iter_mut().zip(&self.rows[i]) {
                    *c -= coef * r;
                }
            }
        }
        let allowed = self.n_struct + self.n_slack;
        self.run_simplex(&mut obj, allowed)?;

        let mut x = vec![0.0; self.n_struct];
        let rhs = self.rhs_col();
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.n_struct {
                x[b] = self.rows[i][rhs];
            }
        }
        let objective: f64 = self.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
        Ok(Solution { objective, x })
    }

    /// Standard simplex iterations on the current tableau with objective row
    /// `obj` (stored separately). Columns `>= allowed` may not enter the basis.
    fn run_simplex(&mut self, obj: &mut [f64], allowed: usize) -> Result<(), LpError> {
        let rhs = self.rhs_col();
        loop {
            // Bland's rule: pick the lowest-index column with negative reduced cost.
            let enter = obj[..allowed].iter().position(|&c| c < -EPS);
            let Some(enter) = enter else { return Ok(()) };

            // Ratio test, Bland tie-break on basis index.
            let mut leave: Option<usize> = None;
            let mut best = f64::INFINITY;
            for i in 0..self.rows.len() {
                let a = self.rows[i][enter];
                if a > EPS {
                    let ratio = self.rows[i][rhs] / a;
                    if ratio < best - EPS
                        || (ratio < best + EPS
                            && leave.is_none_or(|l| self.basis[i] < self.basis[l]))
                    {
                        best = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(leave) = leave else { return Err(LpError::Unbounded) };

            self.pivot(leave, enter, obj);
        }
    }

    fn pivot(&mut self, row: usize, col: usize, obj: &mut [f64]) {
        let width = self.width();
        let pivot = self.rows[row][col];
        debug_assert!(pivot.abs() > EPS);
        for j in 0..width {
            self.rows[row][j] /= pivot;
        }
        for i in 0..self.rows.len() {
            if i != row {
                let f = self.rows[i][col];
                if f.abs() > EPS {
                    for j in 0..width {
                        self.rows[i][j] -= f * self.rows[row][j];
                    }
                }
            }
        }
        let f = obj[col];
        if f.abs() > EPS {
            for (c, r) in obj.iter_mut().zip(&self.rows[row]) {
                *c -= f * r;
            }
        }
        self.basis[row] = col;
    }

    /// After phase 1, pivot basic artificial variables out (or detect redundant
    /// rows, which can simply stay: their rhs is 0 and they never pivot again).
    fn purge_artificials(&mut self) {
        let art_start = self.n_struct + self.n_slack;
        for i in 0..self.rows.len() {
            if self.basis[i] >= art_start {
                // Find a non-artificial column with a nonzero entry to pivot in.
                let mut found = None;
                for j in 0..art_start {
                    if self.rows[i][j].abs() > EPS {
                        found = Some(j);
                        break;
                    }
                }
                if let Some(j) = found {
                    let mut dummy = vec![0.0; self.width()];
                    self.pivot(i, j, &mut dummy);
                }
                // else: the row is all-zero over real columns (redundant);
                // its rhs must be ~0 after a feasible phase 1.
            }
        }
    }
}

/// Normalize a constraint so its right-hand side is non-negative.
/// Returns the effective op and whether the row was negated.
fn normalized_op(c: &Constraint) -> (ConstraintOp, bool) {
    if c.rhs >= 0.0 {
        (c.op, false)
    } else {
        let flipped = match c.op {
            ConstraintOp::Le => ConstraintOp::Ge,
            ConstraintOp::Ge => ConstraintOp::Le,
            ConstraintOp::Eq => ConstraintOp::Eq,
        };
        (flipped, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn simple_min_with_ge() {
        // min x + y  s.t. x + y >= 2, x >= 0.5  => objective 2.
        let lp = LinearProgram::minimize(vec![1.0, 1.0])
            .constraint(vec![1.0, 1.0], ConstraintOp::Ge, 2.0)
            .constraint(vec![1.0, 0.0], ConstraintOp::Ge, 0.5);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 2.0);
        assert!(s.x[0] >= 0.5 - 1e-9);
        assert_close(s.x[0] + s.x[1], 2.0);
    }

    #[test]
    fn maximize_via_negation() {
        // max 3x + 2y s.t. x + y <= 4, x <= 2  => 3*2 + 2*2 = 10.
        let lp = LinearProgram::minimize(vec![-3.0, -2.0])
            .constraint(vec![1.0, 1.0], ConstraintOp::Le, 4.0)
            .constraint(vec![1.0, 0.0], ConstraintOp::Le, 2.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, -10.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 2.0);
    }

    #[test]
    fn equality_constraints() {
        // min 2x + 3y s.t. x + y = 10, x - y = 2  => x=6, y=4, obj 24.
        let lp = LinearProgram::minimize(vec![2.0, 3.0])
            .constraint(vec![1.0, 1.0], ConstraintOp::Eq, 10.0)
            .constraint(vec![1.0, -1.0], ConstraintOp::Eq, 2.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 24.0);
        assert_close(s.x[0], 6.0);
        assert_close(s.x[1], 4.0);
    }

    #[test]
    fn infeasible_detected() {
        let lp = LinearProgram::minimize(vec![1.0])
            .constraint(vec![1.0], ConstraintOp::Ge, 3.0)
            .constraint(vec![1.0], ConstraintOp::Le, 1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x s.t. x >= 1 (x can grow forever).
        let lp = LinearProgram::minimize(vec![-1.0]).constraint(vec![1.0], ConstraintOp::Ge, 1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalization() {
        // min x s.t. -x <= -3  (i.e. x >= 3).
        let lp = LinearProgram::minimize(vec![1.0]).constraint(vec![-1.0], ConstraintOp::Le, -3.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn fractional_triangle_cover() {
        // The triangle query hypergraph: vertices {1,2,3}, edges {12, 13, 23}.
        // ρ*(all) = 3/2 with λ = (1/2, 1/2, 1/2).
        let lp = LinearProgram::minimize(vec![1.0, 1.0, 1.0])
            .constraint(vec![1.0, 1.0, 0.0], ConstraintOp::Ge, 1.0) // vertex 1 in e12, e13
            .constraint(vec![1.0, 0.0, 1.0], ConstraintOp::Ge, 1.0) // vertex 2 in e12, e23
            .constraint(vec![0.0, 1.0, 1.0], ConstraintOp::Ge, 1.0); // vertex 3 in e13, e23
        let s = lp.solve().unwrap();
        assert_close(s.objective, 1.5);
    }

    #[test]
    fn degenerate_redundant_rows() {
        // Redundant equality should not break phase-1 purge.
        let lp = LinearProgram::minimize(vec![1.0, 1.0])
            .constraint(vec![1.0, 1.0], ConstraintOp::Eq, 2.0)
            .constraint(vec![2.0, 2.0], ConstraintOp::Eq, 4.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn zero_variable_program() {
        let lp = LinearProgram::minimize(vec![]);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 0.0);
        assert!(s.x.is_empty());
    }

    #[test]
    fn ragged_rows_rejected() {
        let lp =
            LinearProgram::minimize(vec![1.0, 2.0]).constraint(vec![1.0], ConstraintOp::Ge, 1.0);
        assert!(matches!(lp.solve().unwrap_err(), LpError::Malformed(_)));
    }

    #[test]
    fn random_covers_match_bruteforce_vertex_bound() {
        // For random small covering LPs, the simplex optimum must be between
        // the max fractional matching-ish lower bound 1 (any single vertex
        // needs total incident weight 1) and the number of vertices.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let nv = rng.gen_range(2..6);
            let ne = rng.gen_range(2..6);
            // Random incidence with every vertex covered by at least one edge.
            let mut inc = vec![vec![false; ne]; nv];
            for (v, row) in inc.iter_mut().enumerate() {
                row[v % ne] = true;
                for cell in row.iter_mut() {
                    if rng.gen_bool(0.4) {
                        *cell = true;
                    }
                }
            }
            let mut lp = LinearProgram::minimize(vec![1.0; ne]);
            for row in &inc {
                let coeffs: Vec<f64> = row.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
                lp = lp.constraint(coeffs, ConstraintOp::Ge, 1.0);
            }
            let s = lp.solve().unwrap();
            assert!(s.objective >= 1.0 - 1e-6, "cover below 1: {}", s.objective);
            assert!(s.objective <= nv as f64 + 1e-6);
            // Feasibility of the returned point.
            for row in &inc {
                let total: f64 = row.iter().zip(&s.x).map(|(&b, &x)| if b { x } else { 0.0 }).sum();
                assert!(total >= 1.0 - 1e-6);
            }
        }
    }
}
