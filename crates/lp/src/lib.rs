//! A small dense linear-programming solver.
//!
//! The FAQ paper's width machinery (§4.2) repeatedly solves tiny linear
//! programs: fractional edge covers `ρ*_H(B)` and the data-dependent AGM bound
//! `AGM_H(B)`. The number of variables equals the number of hyperedges of a
//! *query*, so these LPs have at most a few dozen variables — a dense two-phase
//! primal simplex with Bland's anti-cycling rule is more than enough, and keeps
//! the workspace dependency-free.
//!
//! The entry point is [`LinearProgram`]; [`solve`](LinearProgram::solve)
//! returns an optimal [`Solution`] or an [`LpError`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod simplex;

pub use simplex::{Constraint, ConstraintOp, LinearProgram, LpError, Solution};

/// Numerical tolerance used throughout the solver.
pub const EPS: f64 = 1e-9;
