//! Sorted point-update batches ([`DeltaFactor`]) and their application to
//! listing factors — the input side of incremental delta evaluation.
//!
//! A delta is a sorted, duplicate-free batch of keyed operations against one
//! factor: overwrite a tuple's value ([`DeltaOp::Put`]), `⊕`-combine into it
//! ([`DeltaOp::Merge`]), or remove it ([`DeltaOp::Delete`]). Applying a delta
//! yields the merged factor **plus** the half-open value ranges of the first
//! column that actually changed — the anchor ranges the incremental engine
//! uses to confine every downstream elimination step to the touched prefixes
//! of its inputs (see `faq_core::delta`).
//!
//! Like the rest of this crate, deltas are semiring-agnostic: the `⊕` used by
//! `Merge` and the zero test are passed in as closures.

use crate::colstore::SpillWriter;
use crate::factor::{check_schema, Factor, FactorBuilder, FactorError};
use faq_hypergraph::Var;
use faq_semiring::SemiringElem;

/// Record `key`'s first-column value as changed, coalescing with the last
/// range. Keys are visited in ascending tuple order, so first-column values
/// are non-decreasing and coalescing only ever touches the last range.
fn note_change(key: &[u32], changed: &mut Vec<(u32, u32)>) {
    let (lo, hi) = match key.first() {
        Some(&v) => (v, v.saturating_add(1)),
        None => (0, u32::MAX),
    };
    match changed.last_mut() {
        Some(last) if last.1 >= hi => {}
        Some(last) if lo <= last.1 => last.1 = hi,
        _ => changed.push((lo, hi)),
    }
}

/// One keyed operation of a [`DeltaFactor`].
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp<E> {
    /// Overwrite the tuple's value (insert if absent). A `Put` of the
    /// semiring zero deletes the tuple — listing factors never store zeros.
    Put(E),
    /// `⊕`-combine into the tuple's value (`old ⊕ v`), inserting `v` if the
    /// tuple is absent. A combination that reaches zero deletes the tuple.
    Merge(E),
    /// Remove the tuple (a no-op if it is absent). Unlike algebraic
    /// `⊕`-inverses — which most FAQ semirings lack — deletion here is exact:
    /// the delta engine recomputes affected ranges instead of subtracting.
    Delete,
}

/// A sorted, duplicate-free batch of point updates against one factor.
///
/// Keys are full tuples under `schema`; entries are kept sorted
/// lexicographically so application is a single merge pass over the base
/// factor's rows. Construct with [`DeltaFactor::new`] (arbitrary ops) or the
/// [`DeltaFactor::inserts`] / [`DeltaFactor::deletes`] conveniences.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaFactor<E> {
    schema: Vec<Var>,
    rows: Vec<u32>,
    ops: Vec<DeltaOp<E>>,
}

impl<E: SemiringElem> DeltaFactor<E> {
    /// Build a delta from `(tuple, op)` entries, sorting them and rejecting
    /// duplicate tuples and arity mismatches.
    pub fn new(
        schema: Vec<Var>,
        mut entries: Vec<(Vec<u32>, DeltaOp<E>)>,
    ) -> Result<Self, FactorError> {
        check_schema(&schema)?;
        let arity = schema.len();
        for (t, _) in &entries {
            if t.len() != arity {
                return Err(FactorError::ArityMismatch { expected: arity, got: t.len() });
            }
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        for w in entries.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(FactorError::DuplicateTuple(w[0].0.clone()));
            }
        }
        let mut rows = Vec::with_capacity(entries.len() * arity);
        let mut ops = Vec::with_capacity(entries.len());
        for (t, op) in entries {
            rows.extend_from_slice(&t);
            ops.push(op);
        }
        Ok(DeltaFactor { schema, rows, ops })
    }

    /// A delta that [`DeltaOp::Put`]s every `(tuple, value)` pair.
    pub fn inserts(schema: Vec<Var>, tuples: Vec<(Vec<u32>, E)>) -> Result<Self, FactorError> {
        Self::new(schema, tuples.into_iter().map(|(t, v)| (t, DeltaOp::Put(v))).collect())
    }

    /// A delta that [`DeltaOp::Delete`]s every tuple.
    pub fn deletes(schema: Vec<Var>, tuples: Vec<Vec<u32>>) -> Result<Self, FactorError> {
        Self::new(schema, tuples.into_iter().map(|t| (t, DeltaOp::Delete)).collect())
    }

    /// The column order the delta's keys are expressed in.
    pub fn schema(&self) -> &[Var] {
        &self.schema
    }

    /// Number of keyed operations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The `i`-th key tuple (sorted order).
    pub fn key(&self, i: usize) -> &[u32] {
        let a = self.schema.len();
        &self.rows[i * a..(i + 1) * a]
    }

    /// The `i`-th operation.
    pub fn op(&self, i: usize) -> &DeltaOp<E> {
        &self.ops[i]
    }

    /// Iterate `(key, op)` pairs in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u32], &DeltaOp<E>)> + '_ {
        (0..self.len()).map(move |i| (self.key(i), self.op(i)))
    }

    /// Re-express the delta's keys under the relative column order of
    /// `global` (every schema variable must appear in `global`), re-sorting
    /// the entries — the delta-side analogue of [`Factor::align_to`].
    pub fn align_to(&self, global: &[Var]) -> DeltaFactor<E> {
        let new_schema: Vec<Var> =
            global.iter().copied().filter(|v| self.schema.contains(v)).collect();
        assert_eq!(
            new_schema.len(),
            self.schema.len(),
            "global order {:?} does not cover delta schema {:?}",
            global,
            self.schema
        );
        if new_schema == self.schema {
            return self.clone();
        }
        let perm: Vec<usize> = new_schema
            .iter()
            .map(|v| self.schema.iter().position(|s| s == v).expect("covered above"))
            .collect();
        let entries: Vec<(Vec<u32>, DeltaOp<E>)> = self
            .iter()
            .map(|(key, op)| (perm.iter().map(|&p| key[p]).collect(), op.clone()))
            .collect();
        Self::new(new_schema, entries).expect("permuting distinct keys keeps them distinct")
    }

    /// Apply the delta to `base` (same schema), returning the merged factor
    /// and the coalesced half-open ranges of first-column values whose rows
    /// actually changed (inserted, removed, or given a different value).
    ///
    /// `merge` is the `⊕` used by [`DeltaOp::Merge`]; `is_zero` detects
    /// values that must be dropped from the listing. No-op entries — deleting
    /// an absent tuple, or a `Put`/`Merge` that reproduces the stored value —
    /// contribute no range, so an effect-free delta returns empty ranges and
    /// a factor equal to `base`.
    ///
    /// For a nullary `base` the single change range is `(0, u32::MAX)`:
    /// there is no first column to anchor on, and callers must treat the
    /// factor as fully changed.
    ///
    /// # Panics
    ///
    /// Panics if `base.schema()` differs from the delta's schema (align one
    /// side first with [`DeltaFactor::align_to`]).
    pub fn apply_to(
        &self,
        base: &Factor<E>,
        mut merge: impl FnMut(&E, &E) -> E,
        mut is_zero: impl FnMut(&E) -> bool,
    ) -> (Factor<E>, Vec<(u32, u32)>) {
        assert_eq!(
            base.schema(),
            &self.schema[..],
            "delta schema must match the base factor's column order"
        );
        if base.is_spilled() {
            return self.apply_to_spilled(base, &mut merge, &mut is_zero);
        }
        let arity = self.schema.len();
        let mut out =
            FactorBuilder::new(self.schema.clone()).expect("delta schema already validated");
        out.reserve(base.len() + self.len());
        let mut changed: Vec<(u32, u32)> = Vec::new();
        let note = note_change;
        let (mut i, mut d) = (0usize, 0usize);
        while i < base.len() || d < self.len() {
            let order = if i == base.len() {
                std::cmp::Ordering::Greater
            } else if d == self.len() {
                std::cmp::Ordering::Less
            } else {
                base.row(i).cmp(self.key(d))
            };
            match order {
                std::cmp::Ordering::Less => {
                    out.push(base.row(i), base.value(i).clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    // Key absent from the base: Put and Merge insert, Delete
                    // is a no-op. Inserting a zero is a no-op too.
                    match self.op(d) {
                        DeltaOp::Put(v) | DeltaOp::Merge(v) => {
                            if !is_zero(v) {
                                out.push(self.key(d), v.clone());
                                note(self.key(d), &mut changed);
                            }
                        }
                        DeltaOp::Delete => {}
                    }
                    d += 1;
                }
                std::cmp::Ordering::Equal => {
                    let old = base.value(i);
                    match self.op(d) {
                        DeltaOp::Put(v) => {
                            if is_zero(v) {
                                note(self.key(d), &mut changed);
                            } else {
                                if v != old {
                                    note(self.key(d), &mut changed);
                                }
                                out.push(self.key(d), v.clone());
                            }
                        }
                        DeltaOp::Merge(v) => {
                            let nv = merge(old, v);
                            if is_zero(&nv) {
                                note(self.key(d), &mut changed);
                            } else {
                                if nv != *old {
                                    note(self.key(d), &mut changed);
                                }
                                out.push(self.key(d), nv);
                            }
                        }
                        DeltaOp::Delete => note(self.key(d), &mut changed),
                    }
                    i += 1;
                    d += 1;
                }
            }
        }
        debug_assert!(arity > 0 || out.len() <= 1);
        (out.finish(), changed)
    }

    /// [`DeltaFactor::apply_to`] against a file-chunked base: a chunk-local
    /// splice. Chunks no delta key lands in pass through *by handle*
    /// ([`SpillWriter::adopt_chunk`]) — their bytes are never read — while
    /// touched chunks are decoded and merged exactly like the in-memory path,
    /// so the result factor and the reported changed ranges are bit-identical
    /// to applying the same delta to an unspilled copy of the base.
    fn apply_to_spilled(
        &self,
        base: &Factor<E>,
        merge: &mut impl FnMut(&E, &E) -> E,
        is_zero: &mut impl FnMut(&E) -> bool,
    ) -> (Factor<E>, Vec<(u32, u32)>) {
        let cols = base.spill_cols().expect("caller checked is_spilled");
        let arity = self.schema.len();
        debug_assert!(arity > 0, "nullary factors cannot spill");
        let mut w = SpillWriter::new_like(cols);
        let mut changed: Vec<(u32, u32)> = Vec::new();
        let mut d = 0usize;
        // Inserts for keys absent from the base and sorting before `upper`
        // (exclusive); `upper = None` means "all remaining keys". Deletes and
        // zero inserts of absent keys are no-ops, exactly as in `apply_to`.
        let insert_gap = |upper: Option<&[u32]>,
                          d: &mut usize,
                          w: &mut SpillWriter<E>,
                          is_zero: &mut dyn FnMut(&E) -> bool,
                          changed: &mut Vec<(u32, u32)>| {
            while *d < self.len() && upper.is_none_or(|u| self.key(*d) < u) {
                if let DeltaOp::Put(v) | DeltaOp::Merge(v) = self.op(*d) {
                    if !is_zero(v) {
                        w.push(self.key(*d), v.clone());
                        note_change(self.key(*d), changed);
                    }
                }
                *d += 1;
            }
        };
        for k in 0..cols.num_chunks() {
            insert_gap(Some(cols.chunk_first_row(k)), &mut d, &mut w, is_zero, &mut changed);
            let touched = d < self.len() && self.key(d) <= cols.chunk_last_row(k);
            if !touched {
                // No remaining key lands inside this chunk: share its
                // metadata without faulting its bytes in.
                w.adopt_chunk(&cols.share_chunk_meta(k));
                continue;
            }
            cols.with_chunk(k, |_, rows, vals| {
                let n = vals.len();
                let last = &rows[(n - 1) * arity..n * arity];
                let mut i = 0usize;
                while i < n || (d < self.len() && self.key(d) <= last) {
                    let order = if i == n {
                        std::cmp::Ordering::Greater
                    } else if d == self.len() || self.key(d) > last {
                        std::cmp::Ordering::Less
                    } else {
                        rows[i * arity..(i + 1) * arity].cmp(self.key(d))
                    };
                    match order {
                        std::cmp::Ordering::Less => {
                            w.push(&rows[i * arity..(i + 1) * arity], vals[i].clone());
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            if let DeltaOp::Put(v) | DeltaOp::Merge(v) = self.op(d) {
                                if !is_zero(v) {
                                    w.push(self.key(d), v.clone());
                                    note_change(self.key(d), &mut changed);
                                }
                            }
                            d += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            let old = &vals[i];
                            match self.op(d) {
                                DeltaOp::Put(v) => {
                                    if is_zero(v) {
                                        note_change(self.key(d), &mut changed);
                                    } else {
                                        if v != old {
                                            note_change(self.key(d), &mut changed);
                                        }
                                        w.push(self.key(d), v.clone());
                                    }
                                }
                                DeltaOp::Merge(v) => {
                                    let nv = merge(old, v);
                                    if is_zero(&nv) {
                                        note_change(self.key(d), &mut changed);
                                    } else {
                                        if nv != *old {
                                            note_change(self.key(d), &mut changed);
                                        }
                                        w.push(self.key(d), nv);
                                    }
                                }
                                DeltaOp::Delete => note_change(self.key(d), &mut changed),
                            }
                            i += 1;
                            d += 1;
                        }
                    }
                }
            });
        }
        insert_gap(None, &mut d, &mut w, is_zero, &mut changed);
        // Adopted chunks only reveal their first/last tuples, so fold the
        // base's column maxima in: the result stays a sound upper bound for
        // per-column validation (see `Factor::max_in_column`).
        w.raise_col_maxes(cols.col_maxes());
        (Factor::from_spill(self.schema.clone(), w.finish_cols()), changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faq_hypergraph::v;

    fn base() -> Factor<u64> {
        Factor::new(
            vec![v(0), v(1)],
            vec![(vec![0, 0], 3), (vec![0, 1], 5), (vec![2, 2], 7), (vec![5, 0], 9)],
        )
        .unwrap()
    }

    #[test]
    fn new_sorts_and_rejects_duplicates() {
        let d = DeltaFactor::new(
            vec![v(0), v(1)],
            vec![(vec![3, 0], DeltaOp::Put(1u64)), (vec![1, 1], DeltaOp::Delete)],
        )
        .unwrap();
        assert_eq!(d.key(0), &[1, 1]);
        assert_eq!(d.key(1), &[3, 0]);
        let err = DeltaFactor::new(
            vec![v(0)],
            vec![(vec![1], DeltaOp::Put(1u64)), (vec![1], DeltaOp::Delete)],
        )
        .unwrap_err();
        assert_eq!(err, FactorError::DuplicateTuple(vec![1]));
        let err =
            DeltaFactor::new(vec![v(0), v(1)], vec![(vec![1], DeltaOp::Put(1u64))]).unwrap_err();
        assert!(matches!(err, FactorError::ArityMismatch { expected: 2, got: 1 }));
    }

    #[test]
    fn apply_put_merge_delete() {
        let d = DeltaFactor::new(
            vec![v(0), v(1)],
            vec![
                (vec![0, 0], DeltaOp::Put(8u64)), // overwrite 3 -> 8
                (vec![0, 1], DeltaOp::Merge(2)),  // 5 ⊕ 2 -> 7
                (vec![2, 2], DeltaOp::Delete),    // remove
                (vec![3, 3], DeltaOp::Merge(4)),  // insert
                (vec![9, 9], DeltaOp::Delete),    // absent: no-op
            ],
        )
        .unwrap();
        let (f, ranges) = d.apply_to(&base(), |a, b| a + b, |&x| x == 0);
        let expect = Factor::new(
            vec![v(0), v(1)],
            vec![(vec![0, 0], 8), (vec![0, 1], 7), (vec![3, 3], 4), (vec![5, 0], 9)],
        )
        .unwrap();
        assert_eq!(f, expect);
        assert_eq!(ranges, vec![(0, 1), (2, 4)]);
    }

    #[test]
    fn noop_delta_reports_no_ranges() {
        let d = DeltaFactor::new(
            vec![v(0), v(1)],
            vec![
                (vec![0, 0], DeltaOp::Put(3u64)), // same value
                (vec![0, 1], DeltaOp::Merge(0)),  // 5 ⊕ 0 = 5
                (vec![7, 7], DeltaOp::Delete),    // absent
                (vec![8, 8], DeltaOp::Put(0)),    // zero insert
            ],
        )
        .unwrap();
        let (f, ranges) = d.apply_to(&base(), |a, b| a + b, |&x| x == 0);
        assert_eq!(f, base());
        assert!(ranges.is_empty());
        let empty = DeltaFactor::<u64>::new(vec![v(0), v(1)], vec![]).unwrap();
        let (f, ranges) = empty.apply_to(&base(), |a, b| a + b, |&x| x == 0);
        assert_eq!(f, base());
        assert!(ranges.is_empty());
    }

    #[test]
    fn merge_to_zero_deletes() {
        let b = Factor::new(vec![v(0)], vec![(vec![4], 5i64)]).unwrap();
        let d = DeltaFactor::new(vec![v(0)], vec![(vec![4], DeltaOp::Merge(-5i64))]).unwrap();
        let (f, ranges) = d.apply_to(&b, |a, b| a + b, |&x| x == 0);
        assert!(f.is_empty());
        assert_eq!(ranges, vec![(4, 5)]);
    }

    #[test]
    fn apply_to_empty_base() {
        let b = Factor::<u64>::new(vec![v(0), v(1)], vec![]).unwrap();
        let d = DeltaFactor::inserts(vec![v(0), v(1)], vec![(vec![1, 2], 6u64), (vec![1, 3], 7)])
            .unwrap();
        let (f, ranges) = d.apply_to(&b, |a, b| a + b, |&x| x == 0);
        assert_eq!(f.len(), 2);
        assert_eq!(f.get(&[1, 2]), Some(&6));
        assert_eq!(ranges, vec![(1, 2)]);
    }

    #[test]
    fn adjacent_changes_coalesce() {
        let d = DeltaFactor::inserts(
            vec![v(0), v(1)],
            vec![(vec![1, 0], 1u64), (vec![2, 0], 1), (vec![3, 0], 1)],
        )
        .unwrap();
        let (_, ranges) = d.apply_to(&base(), |a, b| a + b, |&x| x == 0);
        assert_eq!(ranges, vec![(1, 4)]);
    }

    #[test]
    fn nullary_change_is_full_range() {
        let b = Factor::nullary(Some(2u64));
        let d = DeltaFactor::new(vec![], vec![(vec![], DeltaOp::Put(9u64))]).unwrap();
        let (f, ranges) = d.apply_to(&b, |a, b| a + b, |&x| x == 0);
        assert_eq!(f.get(&[]), Some(&9));
        assert_eq!(ranges, vec![(0, u32::MAX)]);
    }

    #[test]
    fn spilled_apply_matches_mem_and_skips_cold_chunks() {
        use crate::colstore::SpillConfig;
        // 32 rows in 8 chunks of 4; touch only the second and last chunks.
        let rows: Vec<(Vec<u32>, u64)> =
            (0..32u32).map(|i| (vec![i, i % 3], u64::from(i) + 1)).collect();
        let mem = Factor::new(vec![v(0), v(1)], rows).unwrap();
        let config = SpillConfig { chunk_rows: 4, ..SpillConfig::default() };
        let spilled = mem.to_spilled(config);
        let d = DeltaFactor::new(
            vec![v(0), v(1)],
            vec![
                (vec![5, 2], DeltaOp::Put(99u64)), // chunk 1: overwrite
                (vec![6, 0], DeltaOp::Merge(10)),  // chunk 1: 7 ⊕ 10
                (vec![30, 0], DeltaOp::Delete),    // chunk 7: remove
                (vec![31, 2], DeltaOp::Put(1)),    // gap insert after last row
            ],
        )
        .unwrap();
        let (want, want_ranges) = d.apply_to(&mem, |a, b| a + b, |&x| x == 0);
        let before = spilled.spill_stats().unwrap().reads;
        let (got, got_ranges) = d.apply_to(&spilled, |a, b| a + b, |&x| x == 0);
        assert!(got.is_spilled());
        assert_eq!(got, want);
        assert_eq!(got_ranges, want_ranges);
        // Only the two touched chunks were decoded; the six cold ones were
        // adopted by handle.
        let reads = spilled.spill_stats().unwrap().reads - before;
        assert_eq!(reads, 2, "expected only touched chunks to fault in");
        // The spliced factor answers point lookups like the mem result.
        assert_eq!(got.get_cloned(&[5, 2]), Some(99));
        assert_eq!(got.get_cloned(&[6, 0]), Some(17));
        assert_eq!(got.get_cloned(&[30, 0]), None);
        assert_eq!(got.get_cloned(&[31, 2]), Some(1));
    }

    #[test]
    fn align_to_permutes_keys() {
        let d = DeltaFactor::inserts(vec![v(1), v(0)], vec![(vec![0, 5], 1u64), (vec![9, 2], 2)])
            .unwrap();
        let a = d.align_to(&[v(0), v(1), v(2)]);
        assert_eq!(a.schema(), &[v(0), v(1)]);
        assert_eq!(a.key(0), &[2, 9]);
        assert_eq!(a.key(1), &[5, 0]);
        assert_eq!(d.align_to(&[v(1), v(0)]), d);
    }
}
