//! Typed storage failures, cooperative deadlines and deterministic fault
//! injection.
//!
//! The out-of-core backing ([`crate::colstore`]) turns every chunk I/O
//! failure into a [`StorageError`] instead of panicking: transient errors are
//! retried a bounded number of times with backoff, and every chunk carries a
//! checksum verified on fault-in, so a torn or bit-flipped chunk surfaces as
//! [`StorageError::Corrupt`] rather than silently wrong answers.
//!
//! # The abort transport
//!
//! The hot accessor APIs (`Factor::get`, trie cursors, `LevelStorage`) are
//! deliberately infallible — threading `Result` through every seek would tax
//! the in-memory fast path that never touches a disk. Instead, a failed
//! chunk operation *raises* a [`QueryAbort`] by unwinding ([`raise`]), and
//! the evaluation entry points catch it ([`catch_abort`]) and convert it
//! into a typed error. Deadlines and cancellation ride the same transport:
//! [`checkpoint`] is called every few thousand seeks in the join loop and at
//! every chunk fault-in, and raises [`QueryAbort::DeadlineExceeded`] /
//! [`QueryAbort::Cancelled`] when the installed [`AbortCtl`] says so.
//! Unwinding only crosses frames owned by the evaluation itself (builders,
//! cursors, pinned-chunk guards — all with sound `Drop`s), never user code.
//!
//! # Fault injection
//!
//! A seeded [`FaultPlan`] decides, per *logical* chunk operation, whether to
//! inject a transient failure (first attempt only — the retry succeeds), a
//! hard failure (every attempt — the typed error surfaces), a corruption
//! (a flipped byte the checksum catches) or a delay. Decisions are a pure
//! hash of `(seed, operation sequence number)`, so a single-threaded run
//! replays exactly and a concurrent run draws from the same fault
//! distribution. Plans install globally (chaos suites) or thread-locally
//! (unit tests that must not disturb concurrent tests in the same process).

use std::cell::RefCell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Typed storage errors
// ---------------------------------------------------------------------------

/// A typed failure of the out-of-core chunk store.
///
/// Carries enough to diagnose the failing operation without holding the
/// (non-`Clone`) `std::io::Error` itself, so it can travel inside `Clone`
/// + `PartialEq` error enums up the stack.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StorageError {
    /// An I/O operation on a spill file failed after every retry attempt.
    Io {
        /// What was being done ("read chunk", "append chunk", …).
        op: &'static str,
        /// Path of the spill file or directory involved.
        path: String,
        /// Kind of the final underlying `std::io::Error`.
        kind: std::io::ErrorKind,
        /// Attempts made (1 = no retries were possible).
        attempts: u32,
    },
    /// A chunk read back from disk failed its checksum on every attempt.
    Corrupt {
        /// Path of the spill file.
        path: String,
        /// Index of the corrupt chunk within its file-chunked container.
        chunk: usize,
        /// Checksum recorded when the chunk was written.
        expected: u64,
        /// Checksum of the bytes actually read.
        actual: u64,
    },
}

impl StorageError {
    pub(crate) fn io(
        op: &'static str,
        path: &std::path::Path,
        err: &std::io::Error,
        attempts: u32,
    ) -> StorageError {
        StorageError::Io { op, path: path.display().to_string(), kind: err.kind(), attempts }
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io { op, path, kind, attempts } => {
                write!(f, "storage error: {op} on {path} failed with {kind:?} after {attempts} attempt(s)")
            }
            StorageError::Corrupt { path, chunk, expected, actual } => write!(
                f,
                "storage error: chunk {chunk} of {path} is corrupt \
                 (checksum {actual:#018x}, expected {expected:#018x})"
            ),
        }
    }
}

impl std::error::Error for StorageError {}

// ---------------------------------------------------------------------------
// The abort transport
// ---------------------------------------------------------------------------

/// Why an in-flight evaluation was aborted.
///
/// Raised by [`raise`] from infallible accessor code, caught by
/// [`catch_abort`] at evaluation entry points and converted into the
/// caller-facing error type there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryAbort {
    /// A chunk read/write failed with a typed [`StorageError`].
    Storage(StorageError),
    /// The installed [`Deadline`] passed.
    DeadlineExceeded,
    /// The installed [`CancelToken`] was triggered.
    Cancelled,
}

impl From<StorageError> for QueryAbort {
    fn from(e: StorageError) -> QueryAbort {
        QueryAbort::Storage(e)
    }
}

impl std::fmt::Display for QueryAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryAbort::Storage(e) => write!(f, "{e}"),
            QueryAbort::DeadlineExceeded => write!(f, "query deadline exceeded"),
            QueryAbort::Cancelled => write!(f, "query cancelled"),
        }
    }
}

/// Payload of a deliberately injected panic (chaos testing). The quiet
/// panic hook installed by [`install_quiet_hook`] suppresses its report,
/// exactly like a [`QueryAbort`]'s.
#[derive(Debug)]
pub struct InjectedPanic(pub &'static str);

/// Install (once, process-wide) a forwarding panic hook that stays silent
/// for [`QueryAbort`] and [`InjectedPanic`] payloads — they are control
/// flow, not bugs — and delegates every other panic to the previous hook.
pub fn install_quiet_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            if p.downcast_ref::<QueryAbort>().is_none()
                && p.downcast_ref::<InjectedPanic>().is_none()
            {
                prev(info);
            }
        }));
    });
}

/// Abort the in-flight evaluation by unwinding with `abort` as payload.
///
/// Must only be called under a [`catch_abort`] boundary — every public
/// evaluation entry point installs one. Unwinds with the quiet hook in
/// place, so no spurious panic report is printed.
pub fn raise(abort: QueryAbort) -> ! {
    install_quiet_hook();
    std::panic::panic_any(abort)
}

/// Run `f`, catching a [`raise`]d [`QueryAbort`] (any other panic resumes
/// unwinding untouched).
pub fn catch_abort<R>(f: impl FnOnce() -> R) -> Result<R, QueryAbort> {
    install_quiet_hook();
    match std::panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => Ok(r),
        Err(payload) => match payload.downcast::<QueryAbort>() {
            Ok(abort) => Err(*abort),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

// ---------------------------------------------------------------------------
// Deadlines and cancellation
// ---------------------------------------------------------------------------

/// A wall-clock point after which an evaluation should abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Deadline {
        Deadline { at: Instant::now() + budget }
    }

    /// A deadline at an explicit instant.
    pub fn at(at: Instant) -> Deadline {
        Deadline { at }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// The earlier of two optional deadlines.
    pub fn earliest(a: Option<Deadline>, b: Option<Deadline>) -> Option<Deadline> {
        match (a, b) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, None) => x,
            (None, y) => y,
        }
    }
}

/// A cooperative cancellation token; clones share the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, untriggered token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trigger cancellation: evaluations carrying this token abort at their
    /// next [`checkpoint`].
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for CancelToken {}

/// The abort controls of one evaluation: an optional deadline and an
/// optional cancel token. Installed thread-locally for the duration of an
/// evaluation ([`install_ctl`]) and propagated by hand into its scoped
/// worker threads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AbortCtl {
    /// Abort when this instant passes.
    pub deadline: Option<Deadline>,
    /// Abort when this token is triggered.
    pub cancel: Option<CancelToken>,
}

impl AbortCtl {
    fn armed(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }
}

thread_local! {
    static CURRENT_CTL: RefCell<AbortCtl> = RefCell::new(AbortCtl::default());
}

/// The [`AbortCtl`] currently installed on this thread (empty if none) —
/// capture it before spawning scoped workers and [`install_ctl`] it inside
/// them.
pub fn current_ctl() -> AbortCtl {
    CURRENT_CTL.with(|c| c.borrow().clone())
}

/// Restores the previously installed [`AbortCtl`] on drop.
#[must_use = "dropping the guard immediately uninstalls the controls"]
pub struct CtlGuard {
    prev: AbortCtl,
}

/// Install `ctl` as this thread's abort controls until the guard drops
/// (the previous controls are restored — installs nest).
pub fn install_ctl(ctl: AbortCtl) -> CtlGuard {
    let prev = CURRENT_CTL.with(|c| c.replace(ctl));
    CtlGuard { prev }
}

impl Drop for CtlGuard {
    fn drop(&mut self) {
        let prev = std::mem::take(&mut self.prev);
        CURRENT_CTL.with(|c| *c.borrow_mut() = prev);
    }
}

/// Abort the evaluation if its installed deadline has passed or its cancel
/// token fired; no-op (two thread-local reads) otherwise.
///
/// Called every few thousand seeks by the leapfrog join and at every chunk
/// fault-in by the out-of-core store.
pub fn checkpoint() {
    let abort = CURRENT_CTL.with(|c| {
        let ctl = c.borrow();
        if !ctl.armed() {
            return None;
        }
        if ctl.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(QueryAbort::Cancelled);
        }
        if ctl.deadline.as_ref().is_some_and(Deadline::expired) {
            return Some(QueryAbort::DeadlineExceeded);
        }
        None
    });
    if let Some(a) = abort {
        raise(a);
    }
}

// ---------------------------------------------------------------------------
// Failure counters
// ---------------------------------------------------------------------------

static IO_RETRIES: AtomicU64 = AtomicU64::new(0);
static CORRUPT_CHUNKS: AtomicU64 = AtomicU64::new(0);

/// Chunk I/O attempts retried after a (transient or injected) failure since
/// process start.
pub fn io_retries() -> u64 {
    IO_RETRIES.load(Ordering::Relaxed)
}

/// Chunk reads that exhausted their retries with a checksum mismatch since
/// process start.
pub fn corrupt_chunks() -> u64 {
    CORRUPT_CHUNKS.load(Ordering::Relaxed)
}

pub(crate) fn note_io_retry() {
    IO_RETRIES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_corrupt_chunk() {
    CORRUPT_CHUNKS.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

/// A seeded plan of injected chunk-store faults.
///
/// Each *logical* chunk operation (one read or append, however many retry
/// attempts it takes) draws one uniform variate from
/// [`seeded_unit`]`(seed, seq)` and the cumulative probability bands decide
/// its fate — so the k-th operation's fault is a pure function of the seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-operation hash.
    pub seed: u64,
    /// Probability of a transient failure (first attempt only; the retry
    /// succeeds and counts in [`io_retries`]).
    pub fail_transient: f64,
    /// Probability of a hard failure (every attempt; surfaces as
    /// [`StorageError::Io`]).
    pub fail_hard: f64,
    /// Probability of corrupting a read (every attempt; the checksum catches
    /// it and it surfaces as [`StorageError::Corrupt`]).
    pub corrupt: f64,
    /// Probability of delaying the operation by [`FaultPlan::delay_micros`].
    pub delay: f64,
    /// Injected delay duration, microseconds.
    pub delay_micros: u64,
}

impl FaultPlan {
    /// A plan with `seed` and all fault probabilities zero.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            fail_transient: 0.0,
            fail_hard: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            delay_micros: 50,
        }
    }

    /// This plan with a transient-failure probability.
    pub fn fail_transient(mut self, p: f64) -> FaultPlan {
        self.fail_transient = p;
        self
    }

    /// This plan with a hard-failure probability.
    pub fn fail_hard(mut self, p: f64) -> FaultPlan {
        self.fail_hard = p;
        self
    }

    /// This plan with a corruption probability.
    pub fn corrupt(mut self, p: f64) -> FaultPlan {
        self.corrupt = p;
        self
    }

    /// This plan with a delay probability.
    pub fn delay(mut self, p: f64, micros: u64) -> FaultPlan {
        self.delay = p;
        self.delay_micros = micros;
        self
    }

    /// Install this plan process-wide until the guard drops. Concurrent
    /// global installs serialize on an internal lock, so independent chaos
    /// tests in one binary cannot overlap.
    pub fn install_global(self) -> FaultGuard {
        install_quiet_hook();
        let lock = INSTALL_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        *global_plan().lock().unwrap_or_else(PoisonError::into_inner) =
            Some((self, Arc::new(AtomicU64::new(0))));
        GLOBAL_ACTIVE.store(true, Ordering::SeqCst);
        FaultGuard { global_lock: Some(lock) }
    }

    /// Install this plan for the current thread only, until the guard
    /// drops. Chunk operations of other threads are unaffected.
    pub fn install_local(self) -> FaultGuard {
        install_quiet_hook();
        LOCAL_PLAN.with(|p| *p.borrow_mut() = Some((self, 0)));
        FaultGuard { global_lock: None }
    }

    fn decide(&self, seq: u64) -> Injected {
        let u = seeded_unit(self.seed, seq);
        let mut edge = self.fail_transient;
        if u < edge {
            return Injected::FailTransient;
        }
        edge += self.fail_hard;
        if u < edge {
            return Injected::FailHard;
        }
        edge += self.corrupt;
        if u < edge {
            return Injected::Corrupt;
        }
        edge += self.delay;
        if u < edge {
            return Injected::Delay(self.delay_micros);
        }
        Injected::None
    }
}

static GLOBAL_ACTIVE: AtomicBool = AtomicBool::new(false);
static INSTALL_LOCK: Mutex<()> = Mutex::new(());

#[allow(clippy::type_complexity)]
fn global_plan() -> &'static Mutex<Option<(FaultPlan, Arc<AtomicU64>)>> {
    static PLAN: OnceLock<Mutex<Option<(FaultPlan, Arc<AtomicU64>)>>> = OnceLock::new();
    PLAN.get_or_init(|| Mutex::new(None))
}

thread_local! {
    static LOCAL_PLAN: RefCell<Option<(FaultPlan, u64)>> = const { RefCell::new(None) };
}

/// Uninstalls a [`FaultPlan`] on drop.
#[must_use = "dropping the guard immediately uninstalls the plan"]
pub struct FaultGuard {
    global_lock: Option<MutexGuard<'static, ()>>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        if self.global_lock.is_some() {
            GLOBAL_ACTIVE.store(false, Ordering::SeqCst);
            *global_plan().lock().unwrap_or_else(PoisonError::into_inner) = None;
        } else {
            LOCAL_PLAN.with(|p| *p.borrow_mut() = None);
        }
    }
}

/// The fate of one logical chunk operation under the installed plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Injected {
    None,
    FailTransient,
    FailHard,
    Corrupt,
    Delay(u64),
}

/// Draw the installed plan's decision for the next logical chunk operation
/// ([`Injected::None`] when no plan is installed). The thread-local plan
/// takes precedence over the global one.
pub(crate) fn chunk_op_fault() -> Injected {
    let local = LOCAL_PLAN.with(|p| {
        p.borrow_mut().as_mut().map(|(plan, seq)| {
            let s = *seq;
            *seq += 1;
            plan.decide(s)
        })
    });
    if let Some(d) = local {
        return d;
    }
    if !GLOBAL_ACTIVE.load(Ordering::Relaxed) {
        return Injected::None;
    }
    let plan = global_plan().lock().unwrap_or_else(PoisonError::into_inner);
    match plan.as_ref() {
        Some((plan, seq)) => plan.decide(seq.fetch_add(1, Ordering::Relaxed)),
        None => Injected::None,
    }
}

/// A uniform variate in `[0, 1)` as a pure function of `(seed, n)`
/// (splitmix64 finalizer). Shared by [`FaultPlan`] and the serving layer's
/// panic-injection plan so both replay from their seeds.
pub fn seeded_unit(seed: u64, n: u64) -> f64 {
    let mut z = seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catch_abort_roundtrips_payload() {
        let r: Result<(), QueryAbort> = catch_abort(|| raise(QueryAbort::DeadlineExceeded));
        assert_eq!(r, Err(QueryAbort::DeadlineExceeded));
        let e = StorageError::Io {
            op: "read chunk",
            path: "x".into(),
            kind: std::io::ErrorKind::Other,
            attempts: 3,
        };
        let r: Result<(), QueryAbort> = catch_abort(|| raise(QueryAbort::Storage(e.clone())));
        assert_eq!(r, Err(QueryAbort::Storage(e)));
        assert_eq!(catch_abort(|| 41 + 1), Ok(42));
    }

    #[test]
    fn checkpoint_honours_deadline_and_cancel() {
        // No controls installed: free pass.
        checkpoint();
        let expired = AbortCtl { deadline: Some(Deadline::at(Instant::now())), cancel: None };
        let g = install_ctl(expired);
        assert_eq!(catch_abort(checkpoint), Err(QueryAbort::DeadlineExceeded));
        drop(g);
        let token = CancelToken::new();
        let g = install_ctl(AbortCtl { deadline: None, cancel: Some(token.clone()) });
        checkpoint(); // not yet cancelled
        token.cancel();
        assert_eq!(catch_abort(checkpoint), Err(QueryAbort::Cancelled));
        drop(g);
        checkpoint(); // controls uninstalled again
    }

    #[test]
    fn ctl_installs_nest() {
        let outer =
            AbortCtl { deadline: Some(Deadline::after(Duration::from_secs(60))), cancel: None };
        let g1 = install_ctl(outer.clone());
        assert_eq!(current_ctl(), outer);
        {
            let inner = AbortCtl::default();
            let _g2 = install_ctl(inner.clone());
            assert_eq!(current_ctl(), inner);
        }
        assert_eq!(current_ctl(), outer);
        drop(g1);
        assert_eq!(current_ctl(), AbortCtl::default());
    }

    #[test]
    fn fault_plan_is_deterministic_and_banded() {
        let plan = FaultPlan::seeded(7).fail_transient(0.25).fail_hard(0.25).corrupt(0.25);
        let a: Vec<_> = (0..256).map(|s| plan.decide(s)).collect();
        let b: Vec<_> = (0..256).map(|s| plan.decide(s)).collect();
        assert_eq!(a, b, "decisions are a pure function of (seed, seq)");
        let faults = a.iter().filter(|d| **d != Injected::None).count();
        assert!(faults > 128, "three 25% bands should fault most operations, got {faults}/256");
        let none = FaultPlan::seeded(7);
        assert!((0..256).all(|s| none.decide(s) == Injected::None));
    }

    #[test]
    fn local_plan_scopes_to_installing_thread() {
        let plan = FaultPlan::seeded(3).fail_hard(1.0);
        let _g = plan.install_local();
        assert_eq!(chunk_op_fault(), Injected::FailHard);
        std::thread::scope(|s| {
            s.spawn(|| assert_eq!(chunk_op_fault(), Injected::None)).join().unwrap();
        });
        drop(_g);
        assert_eq!(chunk_op_fault(), Injected::None);
    }
}
