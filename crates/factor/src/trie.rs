//! Columnar trie index over a factor's sorted listing.
//!
//! A [`crate::Factor`] stores its non-zero tuples row-major and sorted
//! lexicographically. That ordering already *is* a trie — every distinct
//! prefix of length `d` is a trie node whose children share the prefix — but
//! walking it through the listing means every conditional query re-scans the
//! shared prefix columns with whole-row binary searches. A [`FactorTrie`]
//! materializes the trie once, columnar level by level, so that the seeks of
//! the OutsideIn join (paper Assumption 1: `O(log n)` conditional queries)
//! become searches over *distinct values of one column* and descents become
//! O(1) offset lookups.
//!
//! How a level's arrays are stored and searched is pluggable: every type here
//! is generic over a [`LevelStorage`] backend, defaulting to
//! [`crate::colstore::FactorLevel`] — an enum over the heap-backed
//! [`crate::storage::VecStorage`] (whose seek kernel gallops branch-free from
//! the cursor's last position, see [`crate::storage`]) and the file-chunked
//! [`crate::colstore::FileChunkedLevel`] a spilled factor's index lives in.
//! Downstream code that just writes `FactorTrie` / `TrieCursor` gets the
//! default and works over both backings.
//!
//! # Layout
//!
//! Level `d` holds one entry per distinct length-`d+1` row prefix, in
//! lexicographic order. Each entry stores
//!
//! * its column-`d` value ([`TrieLevel::value`]),
//! * the half-open range of its children among level `d+1`'s entries
//!   ([`TrieLevel::child_range`]), and
//! * the half-open range of listing rows below it ([`TrieLevel::row_range`]).
//!
//! At the deepest level every entry covers exactly one row (rows are
//! distinct), so entry index = row index and the trie leads straight back to
//! the factor's value array.
//!
//! # Worked example
//!
//! The factor `{(0,0)→a, (0,1)→b, (2,1)→c}` over schema `[x, y]` yields
//!
//! ```text
//! level 0 (x):  value 0 ── children 0..2 ── rows 0..2
//!               value 2 ── children 2..3 ── rows 2..3
//! level 1 (y):  value 0 ── rows 0..1        (prefix 0,0)
//!               value 1 ── rows 1..2        (prefix 0,1)
//!               value 1 ── rows 2..3        (prefix 2,1)
//! ```
//!
//! ```
//! use faq_factor::{Factor, TrieCursor};
//! use faq_hypergraph::v;
//!
//! let f = Factor::new(
//!     vec![v(0), v(1)],
//!     vec![(vec![0, 0], 'a'), (vec![0, 1], 'b'), (vec![2, 1], 'c')],
//! )
//! .unwrap();
//! // The index is built lazily on first use and cached on the factor.
//! let trie = f.trie();
//! assert_eq!(trie.level(0).len(), 2); // distinct x values: {0, 2}
//! assert_eq!(trie.level(1).len(), 3); // one leaf per row
//!
//! // Leapfrog-style navigation: seek the least x ≥ 1, descend, read a row.
//! let mut cur = TrieCursor::new(trie);
//! assert_eq!(cur.seek(1), Some(2)); // x = 1 is absent; lub is 2
//! cur.open(2);
//! assert_eq!(cur.seek(0), Some(1)); // under x = 2 the only y is 1
//! cur.open(1);
//! assert_eq!(f.value(cur.row()), &'c');
//! cur.up();
//! cur.up();
//! assert_eq!(cur.depth(), 0);
//! ```

use crate::colstore::FactorLevel;
use crate::storage::LevelStorage;

/// One level of a [`FactorTrie`]: the distinct length-`d+1` prefixes of the
/// factor's rows, in lexicographic order, stored columnar in a
/// [`LevelStorage`] backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrieLevel<S: LevelStorage = FactorLevel> {
    storage: S,
}

impl<S: LevelStorage> TrieLevel<S> {
    /// Wrap an already-assembled storage backend (the spill path builds its
    /// levels directly, bypassing [`LevelStorage::from_parts`]).
    pub(crate) fn from_storage(storage: S) -> TrieLevel<S> {
        TrieLevel { storage }
    }

    /// Number of entries (distinct prefixes) at this level.
    pub fn len(&self) -> usize {
        self.storage.len()
    }

    /// Whether the level has no entries (the factor is empty).
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty()
    }

    /// The column value of entry `j`.
    pub fn value(&self, j: usize) -> u32 {
        self.storage.value(j)
    }

    /// Entry `j`'s children in the next level (row indices at the last level).
    pub fn child_range(&self, j: usize) -> (usize, usize) {
        (self.storage.child_at(j), self.storage.child_at(j + 1))
    }

    /// The listing rows below entry `j`.
    pub fn row_range(&self, j: usize) -> (usize, usize) {
        (self.storage.row_at(j), self.storage.row_at(j + 1))
    }

    /// The first entry in `window` whose value is `≥ bound`, or `None` — the
    /// trie-native "seek least upper bound" conditional query, delegated to
    /// the storage's seek kernel ([`LevelStorage::lub_from`]).
    pub fn lub(&self, window: (usize, usize), bound: u32) -> Option<usize> {
        self.lub_from(window, usize::MAX, bound)
    }

    /// [`TrieLevel::lub`] with a gallop hint — the caller's last matched
    /// entry in this window, or `usize::MAX` when cold. The hint never
    /// changes the result (the kernel contract pins it to the
    /// `partition_point` oracle); it only shortens warm searches.
    pub fn lub_from(&self, window: (usize, usize), hint: usize, bound: u32) -> Option<usize> {
        let j = self.storage.lub_from(window, hint, bound);
        (j < window.1).then_some(j)
    }

    /// The entry in `window` whose value equals `value` exactly, or `None`.
    pub fn find(&self, window: (usize, usize), value: u32) -> Option<usize> {
        self.lub(window, value).filter(|&j| self.storage.value(j) == value)
    }
}

/// A columnar trie index over one factor: one [`TrieLevel`] per schema
/// column. Built by [`crate::Factor::trie`] (lazily, cached) — see the
/// [module docs](self) for layout and a worked example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactorTrie<S: LevelStorage = FactorLevel> {
    levels: Vec<TrieLevel<S>>,
    num_rows: usize,
}

impl<S: LevelStorage> FactorTrie<S> {
    /// Assemble a trie from already-built levels (the spill path).
    pub(crate) fn from_levels(levels: Vec<TrieLevel<S>>, num_rows: usize) -> FactorTrie<S> {
        FactorTrie { levels, num_rows }
    }

    /// Build the index from a sorted, distinct, row-major listing.
    ///
    /// `rows` holds `num_rows × arity` values. One pass per level: level `d`
    /// opens an entry wherever the length-`d+1` prefix changes, which is
    /// wherever the parent level opened one *or* column `d` changes within a
    /// parent — `O(arity × num_rows)` total.
    pub(crate) fn build(arity: usize, rows: &[u32], num_rows: usize) -> FactorTrie<S> {
        debug_assert_eq!(rows.len(), num_rows * arity);
        // Raw columnar arrays per level — (values, row starts + end sentinel)
        // — assembled into storage only once the child offsets are linked.
        let mut raw: Vec<(Vec<u32>, Vec<usize>)> = Vec::with_capacity(arity);
        // Row starts of the previous level's entries; a single root covers
        // everything before level 0.
        let mut parent_starts: Vec<usize> = vec![0];
        for d in 0..arity {
            let col = |i: usize| rows[i * arity + d];
            let mut values = Vec::new();
            let mut starts = Vec::new();
            let mut parent = 0usize; // index into parent_starts
            for i in 0..num_rows {
                let new_parent = parent + 1 < parent_starts.len() && parent_starts[parent + 1] == i;
                if new_parent {
                    parent += 1;
                }
                if i == 0 || new_parent || col(i) != col(i - 1) {
                    values.push(col(i));
                    starts.push(i);
                }
            }
            parent_starts = starts.clone();
            starts.push(num_rows);
            raw.push((values, starts));
        }
        // Child offsets: entry boundaries of level d are a subset of level
        // d + 1's, so one merge pass per level links them; the deepest level's
        // entries each cover exactly one row.
        let mut childs: Vec<Vec<usize>> = Vec::with_capacity(arity);
        for d in 0..arity {
            let starts = &raw[d].1;
            let child = match raw.get(d + 1) {
                Some((next_values, next_starts)) => {
                    let mut child = Vec::with_capacity(starts.len());
                    let mut k = 0usize;
                    for &start in starts {
                        while k < next_values.len() && next_starts[k] < start {
                            k += 1;
                        }
                        child.push(k);
                    }
                    child
                }
                None => starts.clone(),
            };
            childs.push(child);
        }
        let levels = raw
            .into_iter()
            .zip(childs)
            .map(|((values, starts), child)| TrieLevel {
                storage: S::from_parts(values, child, starts),
            })
            .collect();
        FactorTrie { levels, num_rows }
    }

    /// Number of levels (the factor's arity).
    pub fn arity(&self) -> usize {
        self.levels.len()
    }

    /// Number of listing rows below the root.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// The level indexing column `d`.
    pub fn level(&self, d: usize) -> &TrieLevel<S> {
        &self.levels[d]
    }

    /// The root entry window: all of level 0.
    pub fn root(&self) -> (usize, usize) {
        (0, self.levels.first().map_or(0, TrieLevel::len))
    }

    /// A view of the trie restricted to root values in `[lo, hi)` — the
    /// chunk-shaped slice the parallel engine hands each worker.
    pub fn view(&self, value_range: (u32, u32)) -> TrieView<'_, S> {
        match self.levels.first() {
            None => TrieView { trie: self, root: (0, 0) },
            Some(level) => {
                let window = (0, level.len());
                let lo = level.storage.lub_from(window, usize::MAX, value_range.0);
                let hi = level.storage.lub_from(window, lo, value_range.1);
                TrieView { trie: self, root: (lo, hi) }
            }
        }
    }

    /// Partition the root level into at most `max_chunks` half-open *value*
    /// ranges of roughly equal row counts, never splitting a value.
    ///
    /// Trie-native [`crate::Factor::column_partition`] for column 0: the root
    /// level already lists the distinct values with their row counts, so no
    /// scan or sort of the listing is needed. Same contract: ranges cover
    /// `[0, u32::MAX)` in ascending order, and an empty vector means "run
    /// sequentially" (fewer than 2 rows, or `max_chunks ≤ 1`).
    pub fn partition_root(&self, max_chunks: usize) -> Vec<(u32, u32)> {
        if max_chunks <= 1 || self.num_rows < 2 {
            return Vec::new();
        }
        let level = &self.levels[0];
        let target = self.num_rows.div_ceil(max_chunks);
        let mut cuts: Vec<u32> = Vec::new();
        let mut taken = 0usize;
        for j in 0..level.len() {
            if taken >= target && cuts.len() + 1 < max_chunks {
                cuts.push(level.value(j));
                taken = 0;
            }
            let (lo, hi) = level.row_range(j);
            taken += hi - lo;
        }
        if cuts.is_empty() {
            return Vec::new();
        }
        let mut ranges = Vec::with_capacity(cuts.len() + 1);
        let mut lo = 0u32;
        for &c in &cuts {
            ranges.push((lo, c));
            lo = c;
        }
        ranges.push((lo, u32::MAX));
        ranges
    }
}

/// One level of a trie under streaming construction: the columnar arrays of a
/// [`TrieLevel`] minus their end sentinels, which [`TrieBuilder::finish`]
/// appends.
#[derive(Debug, Clone, Default)]
struct LevelBuilder {
    values: Vec<u32>,
    child: Vec<usize>,
    rows: Vec<usize>,
}

/// Incremental construction of a [`FactorTrie`] from rows arriving in strictly
/// ascending lexicographic order — the streaming twin of [`FactorTrie::build`].
///
/// Elimination joins emit their output rows already sorted, so the trie of an
/// intermediate factor can be grown entry by entry as rows are appended: a row
/// whose first difference from its predecessor is at column `c` opens exactly
/// one new entry at every level `≥ c`. Amortized `O(arity)` per row, and the
/// result is structurally identical (`==`) to what [`FactorTrie::build`] would
/// produce from the finished listing — asserted by tests and relied on by
/// [`crate::FactorBuilder`], which is the only way rows reach this type.
///
/// Accumulation is storage-agnostic (plain `Vec`s); [`TrieBuilder::finish`]
/// seals the levels into the target [`LevelStorage`].
#[derive(Debug, Clone)]
pub(crate) struct TrieBuilder<S: LevelStorage = FactorLevel> {
    levels: Vec<LevelBuilder>,
    num_rows: usize,
    _storage: std::marker::PhantomData<S>,
}

impl<S: LevelStorage> TrieBuilder<S> {
    /// An empty trie under construction, one level per column.
    pub(crate) fn new(arity: usize) -> TrieBuilder<S> {
        TrieBuilder {
            levels: (0..arity).map(|_| LevelBuilder::default()).collect(),
            num_rows: 0,
            _storage: std::marker::PhantomData,
        }
    }

    /// Append the next row. `prev` is the previously appended row (`None` for
    /// the first); the caller guarantees `prev < row` (checked in debug).
    pub(crate) fn push(&mut self, row: &[u32], prev: Option<&[u32]>) {
        let arity = self.levels.len();
        debug_assert_eq!(row.len(), arity);
        // First column where the prefix changes: every level at or below it
        // opens a new entry; shallower levels extend their current entry.
        let start = match prev {
            None => 0,
            Some(p) => {
                debug_assert!(p < row, "streaming trie rows must be strictly ascending");
                row.iter().zip(p).position(|(a, b)| a != b).expect("rows are distinct")
            }
        };
        for (d, &value) in row.iter().enumerate().skip(start) {
            // The new entry's first child is the entry the next level is
            // about to open for this same row (the row index itself at the
            // deepest level) — levels are appended top-down, so the next
            // level's current length is exactly that index.
            let child_start =
                if d + 1 < arity { self.levels[d + 1].values.len() } else { self.num_rows };
            let level = &mut self.levels[d];
            level.values.push(value);
            level.child.push(child_start);
            level.rows.push(self.num_rows);
        }
        self.num_rows += 1;
    }

    /// Seal the trie: append the end sentinels and assemble the levels.
    pub(crate) fn finish(self) -> FactorTrie<S> {
        let num_rows = self.num_rows;
        let arity = self.levels.len();
        let next_len: Vec<usize> = (0..arity)
            .map(|d| if d + 1 < arity { self.levels[d + 1].values.len() } else { num_rows })
            .collect();
        let levels = self
            .levels
            .into_iter()
            .zip(next_len)
            .map(|(mut lb, end)| {
                lb.child.push(end);
                lb.rows.push(num_rows);
                TrieLevel { storage: S::from_parts(lb.values, lb.child, lb.rows) }
            })
            .collect();
        FactorTrie { levels, num_rows }
    }
}

/// A borrowed slice of a [`FactorTrie`]: the subtries whose root value lies in
/// a half-open value range. The parallel InsideOut engine gives each worker
/// one such view; a view over the full value range is the whole trie.
#[derive(Debug)]
pub struct TrieView<'t, S: LevelStorage = FactorLevel> {
    trie: &'t FactorTrie<S>,
    root: (usize, usize),
}

impl<S: LevelStorage> Clone for TrieView<'_, S> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<S: LevelStorage> Copy for TrieView<'_, S> {}

impl<'t, S: LevelStorage> TrieView<'t, S> {
    /// The underlying trie.
    pub fn trie(&self) -> &'t FactorTrie<S> {
        self.trie
    }

    /// The root entry window of this view.
    pub fn root(&self) -> (usize, usize) {
        self.root
    }

    /// Listing rows covered by the view.
    pub fn num_rows(&self) -> usize {
        let (lo, hi) = self.root;
        if lo == hi {
            return 0;
        }
        let level = self.trie.level(0);
        level.row_range(hi - 1).1 - level.row_range(lo).0
    }

    /// A cursor whose root-level candidates are restricted to the view.
    pub fn cursor(&self) -> TrieCursor<'t, S> {
        TrieCursor {
            trie: self.trie,
            windows: vec![self.root],
            path: Vec::new(),
            found: usize::MAX,
        }
    }
}

/// A leapfrog-style navigator over a [`FactorTrie`].
///
/// The cursor sits *between* levels: with `depth() == d` it has chosen an
/// entry at each of the first `d` levels and offers the entries of level `d`
/// within the chosen parent as candidates. [`TrieCursor::seek`] finds the
/// least candidate value `≥ bound` (galloping from the last match — see
/// [`crate::storage`]), [`TrieCursor::open`] descends into a sought value,
/// [`TrieCursor::next`] advances to the following sibling, and
/// [`TrieCursor::up`] backtracks. Once every level is open
/// ([`TrieCursor::at_leaf`]), [`TrieCursor::row`] is the listing row of the
/// full binding.
#[derive(Debug, Clone)]
pub struct TrieCursor<'t, S: LevelStorage = FactorLevel> {
    trie: &'t FactorTrie<S>,
    /// `windows[d]` = candidate entry window at level `d`; `windows` has one
    /// more frame than `path` (the candidates of the current level).
    windows: Vec<(usize, usize)>,
    /// The entry chosen at each open level.
    path: Vec<usize>,
    /// Entry located by the last [`TrieCursor::seek`]/[`TrieCursor::next`] at
    /// the current level; lets [`TrieCursor::open`] descend without
    /// re-searching and seeds the seek kernel's gallop.
    found: usize,
}

impl<'t, S: LevelStorage> TrieCursor<'t, S> {
    /// A cursor over the whole trie.
    pub fn new(trie: &'t FactorTrie<S>) -> TrieCursor<'t, S> {
        TrieCursor { trie, windows: vec![trie.root()], path: Vec::new(), found: usize::MAX }
    }

    /// Number of levels currently open.
    pub fn depth(&self) -> usize {
        self.path.len()
    }

    /// Whether every level is open (a full row is bound).
    pub fn at_leaf(&self) -> bool {
        self.path.len() == self.trie.arity()
    }

    /// The least candidate value `≥ bound` at the current level, or `None`
    /// when the window is exhausted. Remembers the located entry so a
    /// following [`TrieCursor::open`] of the same value is O(1), and seeds
    /// the next seek's gallop with it (leapfrog bounds only grow within a
    /// window, so the kernel rarely needs more than a few probes).
    pub fn seek(&mut self, bound: u32) -> Option<u32> {
        debug_assert!(!self.at_leaf(), "seek past the deepest level");
        let level = self.trie.level(self.path.len());
        let window = *self.windows.last().expect("root window");
        let j = level.lub_from(window, self.found, bound)?;
        self.found = j;
        Some(level.value(j))
    }

    /// The next candidate value after the last sought entry, or `None`.
    ///
    /// Named after the LeapFrog-TrieJoin primitive; the cursor is a
    /// navigator, not an [`Iterator`] (its items depend on interleaved
    /// `open`/`up` calls).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<u32> {
        let window = *self.windows.last().expect("root window");
        debug_assert!(self.found < window.1, "next without a prior seek");
        let j = self.found + 1;
        if j >= window.1 {
            return None;
        }
        self.found = j;
        Some(self.trie.level(self.path.len()).value(j))
    }

    /// Descend into the candidate with value `value` (which must be present —
    /// seek first). Uses the entry cached by the last seek when it matches.
    pub fn open(&mut self, value: u32) {
        let d = self.path.len();
        let level = self.trie.level(d);
        let window = *self.windows.last().expect("root window");
        let j = if self.found < window.1
            && self.found >= window.0
            && level.value(self.found) == value
        {
            self.found
        } else {
            level.find(window, value).expect("open of an absent value")
        };
        self.path.push(j);
        if d + 1 < self.trie.arity() {
            self.windows.push(level.child_range(j));
        }
        self.found = usize::MAX;
    }

    /// Backtrack one level. The parent's candidates become current again.
    pub fn up(&mut self) {
        let j = self.path.pop().expect("up at the root");
        if self.path.len() + 1 < self.trie.arity() {
            self.windows.pop();
        }
        self.found = j; // allow `next` (and the gallop) to resume after it
    }

    /// The listing row of the fully-bound tuple ([`TrieCursor::at_leaf`]).
    pub fn row(&self) -> usize {
        debug_assert!(self.at_leaf());
        let &leaf = self.path.last().expect("at_leaf checked");
        self.trie.level(self.trie.arity() - 1).row_range(leaf).0
    }

    /// The chosen value at the deepest open level.
    pub fn key(&self) -> u32 {
        let d = self.path.len();
        assert!(d > 0, "key at the root");
        self.trie.level(d - 1).value(self.path[d - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Factor;
    use faq_hypergraph::v;

    fn sample() -> Factor<u64> {
        // rows: (0,0,0) (0,0,2) (0,1,1) (2,1,0) (2,3,3)
        Factor::new(
            vec![v(0), v(1), v(2)],
            vec![
                (vec![0, 0, 0], 1),
                (vec![0, 0, 2], 2),
                (vec![0, 1, 1], 3),
                (vec![2, 1, 0], 4),
                (vec![2, 3, 3], 5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_levels() {
        let f = sample();
        let t = f.trie();
        assert_eq!(t.arity(), 3);
        assert_eq!(t.num_rows(), 5);
        // Level 0: distinct first-column values {0, 2}.
        assert_eq!(t.level(0).len(), 2);
        assert_eq!((t.level(0).value(0), t.level(0).row_range(0)), (0, (0, 3)));
        assert_eq!((t.level(0).value(1), t.level(0).row_range(1)), (2, (3, 5)));
        // Level 1: prefixes (0,0) (0,1) (2,1) (2,3).
        assert_eq!(t.level(1).len(), 4);
        assert_eq!(t.level(0).child_range(0), (0, 2));
        assert_eq!(t.level(0).child_range(1), (2, 4));
        assert_eq!(t.level(1).child_range(0), (0, 2)); // rows (0,0,0) (0,0,2)
                                                       // Level 2: one entry per row; entry index == row index.
        assert_eq!(t.level(2).len(), 5);
        for j in 0..5 {
            assert_eq!(t.level(2).row_range(j), (j, j + 1));
        }
    }

    #[test]
    fn cursor_walks_and_reads_rows() {
        let f = sample();
        let mut cur = TrieCursor::new(f.trie());
        assert_eq!(cur.seek(0), Some(0));
        cur.open(0);
        assert_eq!(cur.seek(1), Some(1));
        cur.open(1);
        assert_eq!(cur.seek(0), Some(1));
        cur.open(1);
        assert!(cur.at_leaf());
        assert_eq!(cur.row(), 2);
        assert_eq!(f.value(cur.row()), &3);
        cur.up();
        cur.up();
        // Back at level 1 under x0 = 0: resume after entry (0,1) — exhausted.
        assert_eq!(cur.next(), None);
        cur.up();
        assert_eq!(cur.next(), Some(2));
        assert_eq!(cur.depth(), 0);
    }

    #[test]
    fn seek_is_lub() {
        let f = sample();
        let t = f.trie();
        let mut cur = TrieCursor::new(t);
        assert_eq!(cur.seek(1), Some(2));
        assert_eq!(cur.seek(3), None);
        cur.open(2);
        assert_eq!(cur.seek(0), Some(1));
        assert_eq!(cur.seek(2), Some(3));
        assert_eq!(cur.seek(4), None);
    }

    #[test]
    fn seeks_with_descending_bounds_still_match_the_oracle() {
        // The gallop hint (cursor `found`) must never change a result, even
        // when bounds move backwards — the kernel validates the hint.
        let f =
            Factor::new(vec![v(0)], (0..200u32).map(|i| (vec![2 * i], 1u64)).collect::<Vec<_>>())
                .unwrap();
        let t = f.trie();
        let mut cur = TrieCursor::new(t);
        for bound in [0u32, 399, 5, 133, 132, 1, 398, 0, 400] {
            let got = cur.seek(bound);
            let want = (0..200u32).map(|i| 2 * i).find(|&x| x >= bound);
            assert_eq!(got, want, "bound {bound}");
        }
    }

    #[test]
    fn views_restrict_the_root() {
        let f = sample();
        let t = f.trie();
        assert_eq!(t.view((0, u32::MAX)).num_rows(), 5);
        let v01 = t.view((0, 1));
        assert_eq!(v01.num_rows(), 3);
        let mut cur = v01.cursor();
        assert_eq!(cur.seek(0), Some(0));
        cur.open(0);
        assert_eq!(cur.seek(0), Some(0));
        // Values ≥ the view's upper bound are invisible.
        let mut cur = v01.cursor();
        assert_eq!(cur.seek(1), None);
        assert_eq!(t.view((3, u32::MAX)).num_rows(), 0);
    }

    #[test]
    fn partition_matches_column_partition() {
        let f = Factor::new(
            vec![v(0), v(1)],
            vec![
                (vec![0, 0], 1u64),
                (vec![0, 1], 1),
                (vec![0, 2], 1),
                (vec![1, 0], 1),
                (vec![2, 0], 1),
                (vec![2, 1], 1),
                (vec![5, 0], 1),
                (vec![5, 1], 1),
            ],
        )
        .unwrap();
        for max_chunks in [1usize, 2, 3, 4, 8] {
            assert_eq!(
                f.trie().partition_root(max_chunks),
                f.column_partition(0, max_chunks),
                "max_chunks {max_chunks}"
            );
        }
    }

    #[test]
    fn empty_and_nullary_tries() {
        let e = Factor::<u64>::new(vec![v(0)], vec![]).unwrap();
        let t = e.trie();
        assert_eq!(t.root(), (0, 0));
        assert_eq!(TrieCursor::new(t).seek(0), None);
        assert!(t.partition_root(4).is_empty());
        let n = Factor::nullary(Some(7u64));
        assert_eq!(n.trie().arity(), 0);
        assert!(TrieCursor::new(n.trie()).at_leaf());
    }
}
