//! Variable domains: each variable `X_i` ranges over `{0, 1, …, size_i − 1}`.
//!
//! Domain values are dense `u32` codes; applications maintain their own
//! dictionaries when the natural domain is strings or sparse integers. The
//! paper assumes `|Dom(X_i)| ≥ 2` for bound variables; the engine validates
//! that where it matters.

use faq_hypergraph::Var;

/// Per-variable domain sizes, indexed by [`Var`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domains {
    sizes: Vec<u32>,
}

impl Domains {
    /// Build from explicit sizes: variable `i` has domain `{0..sizes[i]}`.
    pub fn new(sizes: Vec<u32>) -> Self {
        Domains { sizes }
    }

    /// `n` variables, all with the same domain size.
    pub fn uniform(n: usize, size: u32) -> Self {
        Domains { sizes: vec![size; n] }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether there are no variables.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Domain size of `v`. Panics if `v` is out of range.
    pub fn size(&self, v: Var) -> u32 {
        self.sizes[v.index()]
    }

    /// Append a variable with the given domain size, returning its [`Var`].
    pub fn push(&mut self, size: u32) -> Var {
        self.sizes.push(size);
        Var(self.sizes.len() as u32 - 1)
    }

    /// All variables in index order.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.sizes.len() as u32).map(Var)
    }

    /// The product of the domain sizes of `vars`, saturating at `u64::MAX`.
    pub fn space_size(&self, vars: &[Var]) -> u64 {
        let mut acc: u64 = 1;
        for &v in vars {
            acc = acc.saturating_mul(self.size(v) as u64);
        }
        acc
    }

    /// Iterate over every assignment to `vars` in lexicographic order.
    pub fn assignments<'a>(&'a self, vars: &'a [Var]) -> AssignmentIter<'a> {
        AssignmentIter {
            domains: self,
            vars,
            current: vec![0; vars.len()],
            done: vars.iter().any(|&v| self.size(v) == 0),
            started: false,
        }
    }
}

/// Odometer-style iterator over all assignments to a variable list.
#[derive(Debug)]
pub struct AssignmentIter<'a> {
    domains: &'a Domains,
    vars: &'a [Var],
    current: Vec<u32>,
    done: bool,
    started: bool,
}

impl<'a> Iterator for AssignmentIter<'a> {
    type Item = Vec<u32>;

    fn next(&mut self) -> Option<Vec<u32>> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(self.current.clone());
        }
        // Increment from the last position (lexicographic order).
        for i in (0..self.vars.len()).rev() {
            self.current[i] += 1;
            if self.current[i] < self.domains.size(self.vars[i]) {
                return Some(self.current.clone());
            }
            self.current[i] = 0;
        }
        self.done = true;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faq_hypergraph::v;

    #[test]
    fn sizes_and_push() {
        let mut d = Domains::uniform(2, 3);
        assert_eq!(d.len(), 2);
        assert_eq!(d.size(v(0)), 3);
        let nv = d.push(5);
        assert_eq!(nv, v(2));
        assert_eq!(d.size(nv), 5);
    }

    #[test]
    fn space_size_products() {
        let d = Domains::new(vec![2, 3, 4]);
        assert_eq!(d.space_size(&[v(0), v(1)]), 6);
        assert_eq!(d.space_size(&[v(0), v(1), v(2)]), 24);
        assert_eq!(d.space_size(&[]), 1);
    }

    #[test]
    fn assignment_iteration_lexicographic() {
        let d = Domains::new(vec![2, 3]);
        let all: Vec<Vec<u32>> = d.assignments(&[v(0), v(1)]).collect();
        assert_eq!(
            all,
            vec![vec![0, 0], vec![0, 1], vec![0, 2], vec![1, 0], vec![1, 1], vec![1, 2]]
        );
    }

    #[test]
    fn empty_varlist_has_one_assignment() {
        let d = Domains::new(vec![2]);
        let all: Vec<Vec<u32>> = d.assignments(&[]).collect();
        assert_eq!(all, vec![Vec::<u32>::new()]);
    }

    #[test]
    fn zero_size_domain_yields_nothing() {
        let d = Domains::new(vec![0]);
        assert_eq!(d.assignments(&[v(0)]).count(), 0);
    }
}
