//! The [`Factor`] type: a sorted listing of non-zero entries, plus the
//! [`FactorBuilder`] that assembles factors column-flat from sorted row
//! streams.

use crate::colstore::{FileChunkedColumns, FixedBytes, SpillConfig, SpillStats, SpillWriter};
use crate::trie::{FactorTrie, TrieBuilder};
use faq_hypergraph::Var;
use faq_semiring::SemiringElem;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

/// Errors raised by factor constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactorError {
    /// A tuple's arity does not match the schema.
    ArityMismatch {
        /// Expected arity (schema length).
        expected: usize,
        /// Arity of the offending tuple.
        got: usize,
    },
    /// The same tuple appeared twice in a constructor that forbids duplicates.
    DuplicateTuple(Vec<u32>),
    /// The schema lists the same variable twice.
    DuplicateSchemaVar(Var),
}

impl fmt::Display for FactorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactorError::ArityMismatch { expected, got } => {
                write!(f, "tuple arity {got} does not match schema arity {expected}")
            }
            FactorError::DuplicateTuple(t) => write!(f, "duplicate tuple {t:?}"),
            FactorError::DuplicateSchemaVar(v) => write!(f, "schema lists {v} twice"),
        }
    }
}

impl std::error::Error for FactorError {}

/// Data statistics of one factor, read off its columnar trie index — the
/// per-input signal a cost-based planner combines with AGM bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactorStats {
    /// Number of non-zero listing rows (`‖ψ_S‖`).
    pub rows: usize,
    /// Number of columns.
    pub arity: usize,
    /// Distinct length-`d+1` row prefixes per trie level `d`; in particular
    /// `level_distinct[0]` is the distinct-value count of the first column.
    pub level_distinct: Vec<usize>,
}

impl FactorStats {
    /// Distinct values of the first column (`0` for empty or nullary factors)
    /// — an upper bound on how many chunks a parallel join keyed on this
    /// factor's first column can be cut into.
    pub fn root_distinct(&self) -> usize {
        self.level_distinct.first().copied().unwrap_or(0)
    }
}

/// A factor in the listing representation.
///
/// * `schema` — the variables of the factor, in column order;
/// * rows — the non-zero tuples, stored row-major and sorted lexicographically;
/// * one value of type `E` per row.
///
/// Invariants: distinct schema variables; rows sorted and distinct; values
/// never equal to the semiring zero (constructors take an `is_zero` predicate
/// where values can be combined).
///
/// The row-major storage is private; consumers read rows through the accessor
/// API ([`Factor::row`], [`Factor::value`], [`Factor::iter`]) or through the
/// columnar trie index ([`Factor::trie`]), which is built lazily on first use
/// and cached for the factor's lifetime.
pub struct Factor<E> {
    schema: Vec<Var>,
    cols: Columns<E>,
    len: usize,
    /// Lazily-built columnar trie index (see [`crate::trie`]). Not part of
    /// the factor's identity: equality ignores it. The index is immutable
    /// relative to `rows`/`vals`, so clones carry it over instead of
    /// re-paying the build.
    trie: OnceLock<FactorTrie>,
    /// Point lookups served off the cold (trie-less) listing so far; once it
    /// reaches [`Factor::GETS_BEFORE_TRIE`], [`Factor::get`] builds the index.
    gets: AtomicU32,
}

/// The backing of a factor's listing: heap-resident flat arrays (the
/// default) or a file-chunked spill with a bounded pinned window (see
/// [`crate::colstore`]).
enum Columns<E> {
    Mem { rows: Vec<u32>, vals: Vec<E> },
    Spill(FileChunkedColumns<E>),
}

impl<E: Clone> Clone for Columns<E> {
    fn clone(&self) -> Self {
        match self {
            Columns::Mem { rows, vals } => Columns::Mem { rows: rows.clone(), vals: vals.clone() },
            // Spilled listings clone by handle: the clone shares the chunks,
            // the pinned-window cache and the spill directory — cold data is
            // never copied (this is what makes epoch snapshots of spilled
            // catalogs O(1)).
            Columns::Spill(c) => Columns::Spill(c.clone()),
        }
    }
}

/// A value read from a factor that may live on disk: borrowed from the heap
/// listing, or decoded (owned) out of a pinned spill chunk.
#[derive(Debug)]
pub enum ValRef<'a, E> {
    /// Borrowed from an in-memory listing.
    Borrowed(&'a E),
    /// Decoded out of a spilled chunk.
    Owned(E),
}

impl<E> AsRef<E> for ValRef<'_, E> {
    fn as_ref(&self) -> &E {
        match self {
            ValRef::Borrowed(e) => e,
            ValRef::Owned(e) => e,
        }
    }
}

impl<E> ValRef<'_, E> {
    /// Take the value by clone-or-move.
    pub fn into_owned(self) -> E
    where
        E: Clone,
    {
        match self {
            ValRef::Borrowed(e) => e.clone(),
            ValRef::Owned(e) => e,
        }
    }
}

impl<E> std::ops::Deref for ValRef<'_, E> {
    type Target = E;

    fn deref(&self) -> &E {
        self.as_ref()
    }
}

impl<E: Clone> Clone for Factor<E> {
    fn clone(&self) -> Self {
        // The trie is a pure function of (schema, rows), both cloned verbatim,
        // so a built index stays valid for the clone — dropping it here would
        // silently re-pay the O(arity × len) build on every cloned factor.
        let trie = OnceLock::new();
        if let Some(t) = self.trie.get() {
            let _ = trie.set(t.clone());
        }
        Factor {
            schema: self.schema.clone(),
            cols: self.cols.clone(),
            len: self.len,
            trie,
            gets: AtomicU32::new(self.gets.load(Ordering::Relaxed)),
        }
    }
}

impl<E: PartialEq> PartialEq for Factor<E> {
    fn eq(&self, other: &Self) -> bool {
        if self.schema != other.schema || self.len != other.len {
            return false;
        }
        match (&self.cols, &other.cols) {
            (Columns::Mem { rows: ra, vals: va }, Columns::Mem { rows: rb, vals: vb }) => {
                ra == rb && va == vb
            }
            (Columns::Spill(a), Columns::Mem { rows, vals })
            | (Columns::Mem { rows, vals }, Columns::Spill(a)) => a.eq_mem(rows, vals),
            (Columns::Spill(a), Columns::Spill(b)) => a.eq_spill(b),
        }
    }
}

impl<E: SemiringElem> fmt::Debug for Factor<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.is_spilled() { ", spilled" } else { "" };
        write!(f, "Factor{:?}[{} rows{tag}]", self.schema, self.len)?;
        if self.len <= 16 && !self.is_spilled() {
            write!(f, " {{")?;
            for i in 0..self.len {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:?}→{:?}", self.row(i), self.value(i))?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

impl<E> Factor<E> {
    /// Whether the listing lives on disk (file-chunked) rather than on the
    /// heap.
    pub fn is_spilled(&self) -> bool {
        matches!(self.cols, Columns::Spill(_))
    }

    #[track_caller]
    fn mem_rows(&self) -> &[u32] {
        match &self.cols {
            Columns::Mem { rows, .. } => rows,
            Columns::Spill(_) => {
                panic!("this operation requires an in-memory listing, but the factor is spilled")
            }
        }
    }

    #[track_caller]
    fn mem_vals(&self) -> &[E] {
        match &self.cols {
            Columns::Mem { vals, .. } => vals,
            Columns::Spill(_) => {
                panic!("this operation requires an in-memory listing, but the factor is spilled")
            }
        }
    }
}

impl<E: SemiringElem> Factor<E> {
    /// Build a factor from `(tuple, value)` pairs, rejecting duplicates.
    ///
    /// Zero values should already be absent; this constructor does not filter
    /// them (use [`Factor::with_combine`] when zeros may arise).
    pub fn new(schema: Vec<Var>, tuples: Vec<(Vec<u32>, E)>) -> Result<Self, FactorError> {
        check_schema(&schema)?;
        let arity = schema.len();
        let mut pairs: Vec<(Vec<u32>, E)> = Vec::with_capacity(tuples.len());
        for (t, v) in tuples {
            if t.len() != arity {
                return Err(FactorError::ArityMismatch { expected: arity, got: t.len() });
            }
            pairs.push((t, v));
        }
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        for w in pairs.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(FactorError::DuplicateTuple(w[0].0.clone()));
            }
        }
        Ok(Self::from_sorted_pairs(schema, pairs))
    }

    /// Build a factor combining duplicate tuples with `combine` and dropping
    /// rows whose final value satisfies `is_zero`.
    pub fn with_combine(
        schema: Vec<Var>,
        mut tuples: Vec<(Vec<u32>, E)>,
        mut combine: impl FnMut(&E, &E) -> E,
        mut is_zero: impl FnMut(&E) -> bool,
    ) -> Result<Self, FactorError> {
        check_schema(&schema)?;
        let arity = schema.len();
        for (t, _) in &tuples {
            if t.len() != arity {
                return Err(FactorError::ArityMismatch { expected: arity, got: t.len() });
            }
        }
        tuples.sort_by(|a, b| a.0.cmp(&b.0));
        let mut merged: Vec<(Vec<u32>, E)> = Vec::with_capacity(tuples.len());
        for (t, v) in tuples {
            match merged.last_mut() {
                Some((lt, lv)) if *lt == t => {
                    *lv = combine(lv, &v);
                }
                _ => merged.push((t, v)),
            }
        }
        merged.retain(|(_, v)| !is_zero(v));
        Ok(Self::from_sorted_pairs(schema, merged))
    }

    fn from_sorted_pairs(schema: Vec<Var>, pairs: Vec<(Vec<u32>, E)>) -> Self {
        let arity = schema.len();
        let len = pairs.len();
        let mut rows = Vec::with_capacity(len * arity);
        let mut vals = Vec::with_capacity(len);
        for (t, v) in pairs {
            rows.extend_from_slice(&t);
            vals.push(v);
        }
        Factor {
            schema,
            cols: Columns::Mem { rows, vals },
            len,
            trie: OnceLock::new(),
            gets: AtomicU32::new(0),
        }
    }

    /// Build a factor directly from column-flat storage whose rows are
    /// **already sorted and distinct** — the zero-copy fast path for join
    /// output, which is emitted in lexicographic order with distinct
    /// bindings, so the sort + duplicate scan of [`Factor::new`] is pure
    /// overhead.
    ///
    /// `rows` holds `vals.len() × schema.len()` values row-major. The
    /// sortedness contract is the caller's: it is verified with an `O(n)`
    /// pass in debug builds (the assertion fires on an out-of-order or
    /// duplicate row) and trusted in release builds. Errors only on malformed
    /// schemas or a `rows`/`vals` length mismatch — never on data, which it
    /// does not inspect outside debug mode.
    pub fn from_sorted_distinct(
        schema: Vec<Var>,
        rows: Vec<u32>,
        vals: Vec<E>,
    ) -> Result<Self, FactorError> {
        check_schema(&schema)?;
        let arity = schema.len();
        let len = vals.len();
        if arity == 0 && len > 1 {
            // Two values over the empty schema are two copies of the empty
            // tuple — report that, not a (vacuous) arity mismatch.
            return Err(FactorError::DuplicateTuple(Vec::new()));
        }
        if rows.len() != len * arity {
            return Err(FactorError::ArityMismatch {
                expected: arity,
                got: rows.len().checked_div(len).unwrap_or(rows.len()),
            });
        }
        debug_assert!(
            arity == 0
                || rows.len() <= arity
                || rows
                    .chunks_exact(arity)
                    .zip(rows[arity..].chunks_exact(arity))
                    .all(|(a, b)| a < b),
            "from_sorted_distinct requires strictly ascending rows"
        );
        Ok(Factor {
            schema,
            cols: Columns::Mem { rows, vals },
            len,
            trie: OnceLock::new(),
            gets: AtomicU32::new(0),
        })
    }

    /// A nullary (constant) factor: `Some(v)` is the scalar `v`, `None` is the
    /// empty factor (the constant zero).
    pub fn nullary(value: Option<E>) -> Self {
        let vals = value.into_iter().collect::<Vec<E>>();
        let len = vals.len();
        Factor {
            schema: Vec::new(),
            cols: Columns::Mem { rows: Vec::new(), vals },
            len,
            trie: OnceLock::new(),
            gets: AtomicU32::new(0),
        }
    }

    /// Tabulate `f` over the full cross product of the schema's domains,
    /// keeping only non-zero entries. `dom_sizes[i]` is the domain size of
    /// `schema[i]`.
    pub fn dense(
        schema: Vec<Var>,
        dom_sizes: &[u32],
        mut f: impl FnMut(&[u32]) -> E,
        mut is_zero: impl FnMut(&E) -> bool,
    ) -> Result<Self, FactorError> {
        check_schema(&schema)?;
        assert_eq!(schema.len(), dom_sizes.len());
        let arity = schema.len();
        let mut pairs: Vec<(Vec<u32>, E)> = Vec::new();
        let mut cur = vec![0u32; arity];
        if dom_sizes.contains(&0) {
            return Ok(Self::from_sorted_pairs(schema, pairs));
        }
        loop {
            let v = f(&cur);
            if !is_zero(&v) {
                pairs.push((cur.clone(), v));
            }
            // Odometer increment; generates rows in sorted order already.
            let mut i = arity;
            loop {
                if i == 0 {
                    return Ok(Self::from_sorted_pairs(schema, pairs));
                }
                i -= 1;
                cur[i] += 1;
                if cur[i] < dom_sizes[i] {
                    break;
                }
                cur[i] = 0;
            }
        }
    }

    /// The column order of this factor.
    pub fn schema(&self) -> &[Var] {
        &self.schema
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.len()
    }

    /// Number of non-zero rows — the factor size `‖ψ_S‖` of the paper.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the factor is identically zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th row. Requires an in-memory listing (panics on a spilled
    /// factor — use [`Factor::col`] for backing-agnostic key access).
    pub fn row(&self, i: usize) -> &[u32] {
        let a = self.arity();
        &self.mem_rows()[i * a..(i + 1) * a]
    }

    /// The `i`-th value. Requires an in-memory listing (panics on a spilled
    /// factor — use [`Factor::value_at`] for backing-agnostic access).
    pub fn value(&self, i: usize) -> &E {
        &self.mem_vals()[i]
    }

    /// The key value of row `i`, column `d` — works over both backings; a
    /// spilled factor pins (at most) one chunk.
    pub fn col(&self, i: usize, d: usize) -> u32 {
        match &self.cols {
            Columns::Mem { rows, .. } => rows[i * self.arity() + d],
            Columns::Spill(c) => c.col(i, d),
        }
    }

    /// The `i`-th value over either backing: borrowed from the heap listing,
    /// or decoded out of a pinned spill chunk.
    pub fn value_at(&self, i: usize) -> ValRef<'_, E> {
        match &self.cols {
            Columns::Mem { vals, .. } => ValRef::Borrowed(&vals[i]),
            Columns::Spill(c) => ValRef::Owned(c.value_owned(i)),
        }
    }

    /// The largest key value in column `d`, or `None` for an empty factor.
    /// Resident for spilled factors (tracked at write time), a column scan
    /// for in-memory ones — domain validation must not fault chunks in.
    /// After a delta splice with deletions this is an upper bound for a
    /// spilled factor, never an underestimate.
    pub fn max_in_column(&self, d: usize) -> Option<u32> {
        match &self.cols {
            Columns::Mem { rows, .. } => {
                let a = self.arity();
                (0..self.len).map(|i| rows[i * a + d]).max()
            }
            Columns::Spill(c) => c.col_max(d),
        }
    }

    /// Iterate `(row, value)` pairs in sorted row order. Requires an
    /// in-memory listing (panics on a spilled factor).
    pub fn iter(&self) -> impl Iterator<Item = (&[u32], &E)> + '_ {
        (0..self.len).map(move |i| (self.row(i), self.value(i)))
    }

    /// Copy this factor's listing into a file-chunked spill (see
    /// [`crate::colstore`]): the returned factor holds the same rows and
    /// values, chunked on disk with a bounded pinned window.
    pub fn to_spilled(&self, config: SpillConfig) -> Factor<E>
    where
        E: FixedBytes,
    {
        assert!(self.arity() > 0, "nullary factors cannot spill");
        let mut w: SpillWriter<E> = SpillWriter::new(self.arity(), config);
        for (row, val) in self.iter() {
            w.push(row, val.clone());
        }
        Factor::from_spill(self.schema.clone(), w.finish_cols())
    }

    /// Wrap an already-written spilled listing (rows strictly ascending) in a
    /// factor.
    pub(crate) fn from_spill(schema: Vec<Var>, cols: FileChunkedColumns<E>) -> Factor<E> {
        let len = cols.len();
        Factor {
            schema,
            cols: Columns::Spill(cols),
            len,
            trie: OnceLock::new(),
            gets: AtomicU32::new(0),
        }
    }

    /// Read access to the spilled listing, when there is one.
    pub(crate) fn spill_cols(&self) -> Option<&FileChunkedColumns<E>> {
        match &self.cols {
            Columns::Spill(c) => Some(c),
            Columns::Mem { .. } => None,
        }
    }

    /// Chunk and read statistics of the spilled listing, or `None` for an
    /// in-memory factor.
    pub fn spill_stats(&self) -> Option<SpillStats> {
        self.spill_cols().map(FileChunkedColumns::stats)
    }

    /// Heap bytes this factor's listing currently keeps resident: the full
    /// flat arrays for an in-memory factor, only the pinned chunk window for
    /// a spilled one.
    pub fn resident_bytes(&self) -> usize {
        match &self.cols {
            Columns::Mem { rows, vals } => rows.len() * 4 + vals.len() * std::mem::size_of::<E>(),
            Columns::Spill(c) => c.stats().resident_bytes,
        }
    }

    /// First-column partition whose cuts align to this factor's spill-chunk
    /// boundaries (same contract as [`Factor::column_partition`]), computed
    /// from resident chunk metadata without faulting anything — each worker
    /// of a chunked join then pins only its own range's chunks. `None` for
    /// in-memory factors, which have no chunk grid to align to.
    pub fn chunk_aligned_partition(&self, max_chunks: usize) -> Option<Vec<(u32, u32)>> {
        self.spill_cols().map(|c| c.partition_first(max_chunks))
    }

    /// The columnar trie index over this factor's rows (see [`crate::trie`]).
    ///
    /// Built on first use — `O(arity × len)` — and cached for the factor's
    /// lifetime, so joins, lookups and chunk partitioning that touch the same
    /// factor share one index. Thread-safe: concurrent first callers race
    /// benignly on a [`OnceLock`].
    pub fn trie(&self) -> &FactorTrie {
        self.trie.get_or_init(|| match &self.cols {
            Columns::Mem { rows, .. } => FactorTrie::build(self.schema.len(), rows, self.len),
            // Spilled listings stream their index straight back to disk: one
            // pass over the chunks, spilled levels out (see
            // [`crate::colstore`]).
            Columns::Spill(c) => c.build_trie(),
        })
    }

    /// The trie index if it has already been built, without forcing a build.
    pub fn trie_if_built(&self) -> Option<&FactorTrie> {
        self.trie.get()
    }

    /// Per-factor statistics for cost-based planning: row count plus the
    /// distinct-prefix count of every trie level (`level_distinct[0]` is the
    /// number of distinct first-column values — the chunkable parallelism of
    /// a join rooted at this factor).
    ///
    /// Builds (and caches) the trie index, which is what a planner wants
    /// anyway: the same index then serves every join and lookup.
    pub fn stats(&self) -> FactorStats {
        let trie = self.trie();
        FactorStats {
            rows: self.len,
            arity: self.arity(),
            level_distinct: (0..trie.arity()).map(|d| trie.level(d).len()).collect(),
        }
    }

    /// The cold lookup on which [`Factor::get`] builds the trie index: the
    /// first `GETS_BEFORE_TRIE − 1` probes of a cold factor use columnar
    /// binary search over the listing (a one-off probe must not pay the full
    /// `O(arity × len)` index build); the `GETS_BEFORE_TRIE`-th builds and
    /// caches the index, since a factor probed repeatedly is about to
    /// amortize it.
    pub const GETS_BEFORE_TRIE: u32 = 4;

    /// Look up a tuple.
    ///
    /// When the trie index is already built (by a join, the planner, or
    /// earlier repeated lookups) the descent is one binary search over the
    /// *distinct* values of each level. On a cold factor the lookup falls
    /// back to columnar binary search over the sorted listing
    /// ([`Factor::prefix_range`] per column) — same `O(arity × log len)`
    /// complexity, no index build; the [`Factor::GETS_BEFORE_TRIE`]-th cold
    /// lookup builds (and caches) the index on the factor.
    pub fn get(&self, tuple: &[u32]) -> Option<&E> {
        assert_eq!(tuple.len(), self.arity());
        if self.arity() == 0 {
            return self.mem_vals().first();
        }
        if self.trie_if_built().is_none() {
            let cold_gets = self.gets.fetch_add(1, Ordering::Relaxed) + 1;
            if cold_gets < Self::GETS_BEFORE_TRIE && !self.is_spilled() {
                let mut range = (0usize, self.len);
                for (depth, &value) in tuple.iter().enumerate() {
                    range = self.prefix_range(range, depth, value);
                    if range.0 == range.1 {
                        return None;
                    }
                }
                return Some(&self.mem_vals()[range.0]);
            }
        }
        let trie = self.trie();
        let mut window = trie.root();
        for (depth, &value) in tuple.iter().enumerate() {
            let level = trie.level(depth);
            let entry = level.find(window, value)?;
            if depth + 1 == self.arity() {
                return Some(&self.mem_vals()[level.row_range(entry).0]);
            }
            window = level.child_range(entry);
        }
        unreachable!("loop returns at the deepest level")
    }

    /// [`Factor::get`] over either backing, returning the value by clone —
    /// the spilled twin of `get`, whose borrowed return cannot outlive a
    /// pinned chunk.
    pub fn get_cloned(&self, tuple: &[u32]) -> Option<E> {
        if !self.is_spilled() {
            return self.get(tuple).cloned();
        }
        let trie = self.trie();
        let mut window = trie.root();
        for (depth, &value) in tuple.iter().enumerate() {
            let level = trie.level(depth);
            let entry = level.find(window, value)?;
            if depth + 1 == self.arity() {
                return Some(self.value_at(level.row_range(entry).0).into_owned());
            }
            window = level.child_range(entry);
        }
        unreachable!("loop returns at the deepest level")
    }

    /// The half-open row range whose first `depth` columns equal `prefix`
    /// within the given candidate range — the trie descent primitive used by
    /// the OutsideIn join and by conditional queries (paper Assumption 1).
    pub fn prefix_range(&self, range: (usize, usize), depth: usize, value: u32) -> (usize, usize) {
        debug_assert!(depth < self.arity());
        let (lo, hi) = range;
        let start = lo + partition_point(hi - lo, |i| self.col(lo + i, depth) < value);
        let end = lo + partition_point(hi - lo, |i| self.col(lo + i, depth) <= value);
        (start, end)
    }

    /// The smallest value `≥ bound` in column `depth` within the row range, or
    /// `None` — the "seek least upper bound" conditional query.
    pub fn seek_column(&self, range: (usize, usize), depth: usize, bound: u32) -> Option<u32> {
        let (lo, hi) = range;
        let idx = lo + partition_point(hi - lo, |i| self.col(lo + i, depth) < bound);
        if idx < hi {
            Some(self.col(idx, depth))
        } else {
            None
        }
    }

    /// Reorder columns to `new_schema` (a permutation of the current schema),
    /// re-sorting rows.
    pub fn reorder(&self, new_schema: &[Var]) -> Factor<E> {
        assert_eq!(new_schema.len(), self.arity());
        let perm: Vec<usize> = new_schema
            .iter()
            .map(|v| {
                self.schema
                    .iter()
                    .position(|s| s == v)
                    .unwrap_or_else(|| panic!("{v} not in schema {:?}", self.schema))
            })
            .collect();
        // Identity permutation: nothing to reorder, clone (keeping the built
        // trie) instead of re-sorting.
        if perm.iter().enumerate().all(|(i, &p)| i == p) {
            return self.clone();
        }
        // A spilled listing cannot serve the random row access of the index
        // sort below: stream its chunks once, permute each row, and sort the
        // materialized pairs. Engine paths keep large factors σ-aligned (the
        // identity branch above and `align_to_cow`'s borrow), so this
        // fallback only sees factors small enough to hold on the heap.
        if self.is_spilled() {
            let mut pairs: Vec<(Vec<u32>, E)> = Vec::with_capacity(self.len);
            self.for_each_row_grouped(true, &[], &mut |row, val| {
                pairs.push((perm.iter().map(|&p| row[p]).collect(), val.clone()));
            });
            pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            let mut out =
                FactorBuilder::new(new_schema.to_vec()).expect("permuted schema stays valid");
            out.reserve(pairs.len());
            for (row, val) in pairs {
                out.push(&row, val);
            }
            return out.finish();
        }
        // Sort row *indices* under the permuted comparison, then write the
        // permuted rows column-flat — no per-row tuple is ever allocated.
        let mut idx: Vec<usize> = (0..self.len).collect();
        idx.sort_unstable_by(|&a, &b| {
            let (ra, rb) = (self.row(a), self.row(b));
            perm.iter().map(|&p| ra[p]).cmp(perm.iter().map(|&p| rb[p]))
        });
        let mut out = FactorBuilder::new(new_schema.to_vec()).expect("permuted schema stays valid");
        out.reserve(self.len);
        let mut buf = vec![0u32; self.arity()];
        for &i in &idx {
            let row = self.row(i);
            for (slot, &p) in buf.iter_mut().zip(&perm) {
                *slot = row[p];
            }
            out.push(&buf, self.mem_vals()[i].clone());
        }
        out.finish()
    }

    /// Reorder columns so the schema follows the relative order of `global`
    /// (every schema variable must appear in `global`).
    pub fn align_to(&self, global: &[Var]) -> Factor<E> {
        self.align_to_cow(global).into_owned()
    }

    /// [`Factor::align_to`] without the copy when nothing needs reordering:
    /// borrows `self` when the schema already follows `global`'s relative
    /// order. Join kernels call this per input, so the aligned common case
    /// must not clone the factor.
    pub fn align_to_cow(&self, global: &[Var]) -> std::borrow::Cow<'_, Factor<E>> {
        let new_schema: Vec<Var> =
            global.iter().copied().filter(|v| self.schema.contains(v)).collect();
        assert_eq!(
            new_schema.len(),
            self.arity(),
            "global order {:?} does not cover schema {:?}",
            global,
            self.schema
        );
        if new_schema == self.schema {
            std::borrow::Cow::Borrowed(self)
        } else {
            std::borrow::Cow::Owned(self.reorder(&new_schema))
        }
    }

    /// Project onto the schema variables contained in `keep`, combining the
    /// values of collapsing rows with `combine` and dropping zeros.
    ///
    /// The result schema preserves this factor's column order.
    pub fn project_combine(
        &self,
        keep: &[Var],
        mut combine: impl FnMut(&E, &E) -> E,
        is_zero: impl FnMut(&E) -> bool,
    ) -> Factor<E> {
        let positions: Vec<usize> =
            (0..self.arity()).filter(|&i| keep.contains(&self.schema[i])).collect();
        self.project_fold(&positions, |v| v.clone(), |a, b| combine(a, b), is_zero)
    }

    /// The indicator projection `ψ_{S/T}` of paper Definition 4.2: project
    /// onto `keep ∩ schema` and map every surviving tuple to `one`.
    pub fn indicator_projection(&self, keep: &[Var], one: E) -> Factor<E> {
        let positions: Vec<usize> =
            (0..self.arity()).filter(|&i| keep.contains(&self.schema[i])).collect();
        self.project_fold(&positions, |_| one.clone(), |a, _| a.clone(), |_| false)
    }

    /// Shared engine of the projection family: project rows onto `positions`
    /// (columns of `self`, in output order), derive each row's contribution
    /// with `contribution`, fold group contributions in row order with
    /// `combine`, and drop groups whose fold `is_zero`.
    ///
    /// When `positions` is a prefix of the column order, the input's
    /// sortedness already groups equal keys consecutively — one streaming
    /// pass, which spilled listings serve chunk by chunk without ever
    /// materializing. Otherwise row *indices* are stably sorted under the
    /// projected key (ties keep row order, so non-commutative folds match the
    /// previous sort-of-pairs behaviour bit for bit). Neither path allocates
    /// per row.
    fn project_fold(
        &self,
        positions: &[usize],
        mut contribution: impl FnMut(&E) -> E,
        mut combine: impl FnMut(&E, &E) -> E,
        mut is_zero: impl FnMut(&E) -> bool,
    ) -> Factor<E> {
        let new_schema: Vec<Var> = positions.iter().map(|&i| self.schema[i]).collect();
        let k = positions.len();
        let mut out = FactorBuilder::new(new_schema).expect("projected schema stays valid");
        let is_prefix = positions.iter().enumerate().all(|(i, &p)| i == p);
        if !is_prefix && self.is_spilled() {
            // Reordering projection of a spilled listing: group through a
            // sorted map instead of an index sort, so the chunks stream once
            // in listing order (each group still folds in row order, which
            // is what the stable index sort of the heap path yields).
            let mut groups: std::collections::BTreeMap<Vec<u32>, E> =
                std::collections::BTreeMap::new();
            self.for_each_row_grouped(true, positions, &mut |row, val| {
                let key: Vec<u32> = positions.iter().map(|&p| row[p]).collect();
                match groups.entry(key) {
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        let folded = combine(e.get(), &contribution(val));
                        *e.get_mut() = folded;
                    }
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(contribution(val));
                    }
                }
            });
            for (key, done) in groups {
                if !is_zero(&done) {
                    out.push(&key, done);
                }
            }
            return out.finish();
        }
        let mut key: Vec<u32> = Vec::with_capacity(k);
        let mut buf: Vec<u32> = vec![0; k];
        let mut acc: Option<E> = None;
        self.for_each_row_grouped(is_prefix, positions, &mut |row, val| {
            for (slot, &p) in buf.iter_mut().zip(positions) {
                *slot = row[p];
            }
            match &mut acc {
                Some(a) if key == buf => *a = combine(a, &contribution(val)),
                _ => {
                    if let Some(done) = acc.take() {
                        if !is_zero(&done) {
                            out.push(&key, done);
                        }
                    }
                    key.clear();
                    key.extend_from_slice(&buf);
                    acc = Some(contribution(val));
                }
            }
        });
        if let Some(done) = acc.take() {
            if !is_zero(&done) {
                out.push(&key, done);
            }
        }
        out.finish()
    }

    /// Drive `feed` over every `(row, value)` pair: in listing order when
    /// `grouped` (the projection key is already consecutive), otherwise in
    /// stable projected-key order via an index sort. Spilled listings stream
    /// one chunk at a time and therefore support only the `grouped` order —
    /// which is the order every σ-aligned elimination step uses, since such
    /// steps always project away a suffix of the schema.
    fn for_each_row_grouped(
        &self,
        grouped: bool,
        positions: &[usize],
        feed: &mut impl FnMut(&[u32], &E),
    ) {
        if let Columns::Spill(cols) = &self.cols {
            assert!(
                grouped,
                "reordering projections of a spilled factor require an in-memory listing"
            );
            let arity = self.arity();
            for c in 0..cols.num_chunks() {
                cols.with_chunk(c, |_, rows, vals| {
                    for (i, val) in vals.iter().enumerate() {
                        feed(&rows[i * arity..(i + 1) * arity], val);
                    }
                });
            }
        } else if grouped {
            for i in 0..self.len {
                feed(self.row(i), &self.mem_vals()[i]);
            }
        } else {
            let mut idx: Vec<usize> = (0..self.len).collect();
            idx.sort_by(|&a, &b| {
                let (ra, rb) = (self.row(a), self.row(b));
                positions.iter().map(|&p| ra[p]).cmp(positions.iter().map(|&p| rb[p]))
            });
            for i in idx {
                feed(self.row(i), &self.mem_vals()[i]);
            }
        }
    }

    /// Product marginalization (paper Assumption 2):
    /// `ψ_{S−{v}}(x_{S−{v}}) = ⊗_{x_v ∈ Dom(X_v)} ψ_S(x_S)`.
    ///
    /// A group missing any of the `dom_size` values of `v` multiplies in an
    /// (implicit) zero and is dropped; surviving groups multiply their listed
    /// values. Rows whose product becomes zero are dropped too.
    pub fn marginalize_product(
        &self,
        var: Var,
        dom_size: u32,
        mut mul: impl FnMut(&E, &E) -> E,
        mut is_zero: impl FnMut(&E) -> bool,
    ) -> Factor<E> {
        let vpos = self
            .schema
            .iter()
            .position(|&s| s == var)
            .unwrap_or_else(|| panic!("{var} not in schema {:?}", self.schema));
        let positions: Vec<usize> = (0..self.arity()).filter(|&i| i != vpos).collect();
        let new_schema: Vec<Var> = positions.iter().map(|&i| self.schema[i]).collect();

        // Dropping the *last* column keeps rows grouped already (the order
        // spilled listings stream in); any other column pays for a stable
        // index sort inside `for_each_row_grouped`.
        let grouped = vpos + 1 == self.arity();
        let mut out = FactorBuilder::new(new_schema).expect("projected schema stays valid");
        let mut key: Vec<u32> = Vec::with_capacity(positions.len());
        let mut buf: Vec<u32> = vec![0; positions.len()];
        // The running fold plus the group's row count: a group only survives
        // when it lists every one of the `dom_size` values of `var`.
        let mut acc: Option<(E, u64)> = None;
        self.for_each_row_grouped(grouped, &positions, &mut |row, val| {
            for (slot, &p) in buf.iter_mut().zip(&positions) {
                *slot = row[p];
            }
            match &mut acc {
                Some((a, n)) if key == buf => {
                    *a = mul(a, val);
                    *n += 1;
                }
                _ => {
                    if let Some((done, n)) = acc.take() {
                        if n == u64::from(dom_size) && !is_zero(&done) {
                            out.push(&key, done);
                        }
                    }
                    key.clear();
                    key.extend_from_slice(&buf);
                    acc = Some((val.clone(), 1));
                }
            }
        });
        if let Some((done, n)) = acc.take() {
            if n == u64::from(dom_size) && !is_zero(&done) {
                out.push(&key, done);
            }
        }
        out.finish()
    }

    /// Apply `f` to every value, dropping rows that become zero.
    pub fn map_values(
        &self,
        mut f: impl FnMut(&E) -> E,
        mut is_zero: impl FnMut(&E) -> bool,
    ) -> Factor<E> {
        let mut out = FactorBuilder::new(self.schema.clone()).expect("schema already valid");
        out.reserve(self.len);
        for i in 0..self.len {
            let nv = f(&self.mem_vals()[i]);
            if !is_zero(&nv) {
                out.push(self.row(i), nv);
            }
        }
        out.finish()
    }

    /// Partition the values of column `col` into at most `max_chunks`
    /// half-open value ranges `[lo, hi)` of roughly equal row counts, never
    /// splitting a value across two ranges.
    ///
    /// The ranges are returned in ascending order; together they cover all of
    /// `[0, u32::MAX)` (the first starts at 0, the last ends at `u32::MAX`),
    /// so every possible column value falls in exactly one range. This is the
    /// chunking primitive of the parallel InsideOut engine: each range keys a
    /// worker's slice of the join's first-variable candidates, and because no
    /// value is split, no output group spans two chunks.
    ///
    /// Returns an empty vector when the factor has no rows or `max_chunks`
    /// admits only one chunk (callers fall back to a sequential run).
    pub fn column_partition(&self, col: usize, max_chunks: usize) -> Vec<(u32, u32)> {
        assert!(col < self.arity(), "column {col} out of range for arity {}", self.arity());
        if max_chunks <= 1 || self.len < 2 {
            return Vec::new();
        }
        // Spilled listings partition on resident chunk metadata only —
        // faulting every chunk to scan a column would defeat the point.
        if let Columns::Spill(c) = &self.cols {
            assert_eq!(col, 0, "spilled factors partition only on the first column");
            return c.partition_first(max_chunks);
        }
        // Column 0 with a built trie index: the root level already lists the
        // distinct values with their row counts — no scan of the listing.
        if col == 0 {
            if let Some(trie) = self.trie_if_built() {
                return trie.partition_root(max_chunks);
            }
        }
        // Column values in ascending order. Column 0 is already sorted (rows
        // are lexicographic); other columns need a sort.
        let mut values: Vec<u32> = (0..self.len).map(|i| self.row(i)[col]).collect();
        if col != 0 {
            values.sort_unstable();
        }
        let target = self.len.div_ceil(max_chunks);
        let mut cuts: Vec<u32> = Vec::new();
        let mut taken = 0usize;
        let mut i = 0usize;
        while i < values.len() {
            // The run of rows sharing values[i].
            let mut j = i + 1;
            while j < values.len() && values[j] == values[i] {
                j += 1;
            }
            if taken >= target && cuts.len() + 1 < max_chunks {
                cuts.push(values[i]);
                taken = 0;
            }
            taken += j - i;
            i = j;
        }
        if cuts.is_empty() {
            return Vec::new();
        }
        let mut ranges = Vec::with_capacity(cuts.len() + 1);
        let mut lo = 0u32;
        for &c in &cuts {
            ranges.push((lo, c));
            lo = c;
        }
        ranges.push((lo, u32::MAX));
        ranges
    }

    /// k-way merge of factors over the same schema, combining duplicate tuples
    /// with `combine` (applied left-to-right in input order) and dropping rows
    /// whose combined value satisfies `is_zero`.
    ///
    /// Each input's rows are already sorted (a `Factor` invariant), so the
    /// merge emits rows in globally sorted order — this is what makes chunked
    /// parallel execution deterministic: per-chunk outputs are merged in
    /// sorted-tuple order, so the result is independent of which worker
    /// produced which chunk.
    pub fn merge_sorted(
        parts: Vec<Factor<E>>,
        mut combine: impl FnMut(&E, &E) -> E,
        mut is_zero: impl FnMut(&E) -> bool,
    ) -> Factor<E> {
        assert!(!parts.is_empty(), "merge_sorted needs at least one part");
        let schema = parts[0].schema.clone();
        for p in &parts {
            assert_eq!(p.schema, schema, "merge_sorted requires identical schemas");
        }
        let chunks: Vec<Vec<(Vec<u32>, E)>> = parts
            .into_iter()
            .map(|p| p.iter().map(|(r, v)| (r.to_vec(), v.clone())).collect())
            .collect();
        let merged = merge_sorted_rows(chunks, &mut combine, &mut is_zero);
        Self::from_sorted_pairs(schema, merged)
    }

    /// Replace every row whose first-column value falls inside one of
    /// `ranges` with the rows of `replacement`, keeping all other rows — the
    /// cached-intermediate update primitive of incremental delta evaluation.
    ///
    /// `ranges` are half-open `[lo, hi)` value ranges of the first column,
    /// sorted and disjoint; every row of `replacement` (same schema) must
    /// fall inside one of them (debug-asserted). Because the kept rows and
    /// the replacement rows occupy disjoint ascending value ranges, the
    /// result is assembled in one sorted pass with a constant number of
    /// allocations — no re-sort, no per-row buffers.
    ///
    /// A nullary factor has no first column to anchor on; the result is then
    /// simply `replacement` itself.
    pub fn splice_by_first(&self, ranges: &[(u32, u32)], replacement: &Factor<E>) -> Factor<E> {
        assert_eq!(self.schema, replacement.schema, "splice requires identical schemas");
        if self.arity() == 0 {
            return replacement.clone();
        }
        debug_assert!(ranges.windows(2).all(|w| w[0].1 <= w[1].0), "ranges sorted and disjoint");
        let mut out = FactorBuilder::new(self.schema.clone()).expect("schema already valid");
        out.reserve(self.len + replacement.len);
        let (mut i, mut j) = (0usize, 0usize);
        for &(lo, hi) in ranges {
            while i < self.len && self.row(i)[0] < lo {
                out.push(self.row(i), self.mem_vals()[i].clone());
                i += 1;
            }
            while i < self.len && self.row(i)[0] < hi {
                i += 1; // cached rows inside the range are superseded
            }
            while j < replacement.len && replacement.row(j)[0] < hi {
                debug_assert!(replacement.row(j)[0] >= lo, "replacement row outside ranges");
                out.push(replacement.row(j), replacement.mem_vals()[j].clone());
                j += 1;
            }
        }
        while i < self.len {
            out.push(self.row(i), self.mem_vals()[i].clone());
            i += 1;
        }
        debug_assert_eq!(j, replacement.len, "replacement row outside ranges");
        out.finish()
    }

    /// Restrict to rows where column `var` equals `value`, dropping the column —
    /// the conditional factor `ψ_S(· | x_v)` used by naive evaluation.
    pub fn condition(&self, var: Var, value: u32) -> Factor<E> {
        let vpos = self
            .schema
            .iter()
            .position(|&s| s == var)
            .unwrap_or_else(|| panic!("{var} not in schema {:?}", self.schema));
        let positions: Vec<usize> = (0..self.arity()).filter(|&i| i != vpos).collect();
        let new_schema: Vec<Var> = positions.iter().map(|&i| self.schema[i]).collect();
        // Removing a column whose value is fixed preserves both sortedness
        // and distinctness: any two surviving rows first differ at some other
        // column, and that comparison is unchanged — stream, don't sort.
        let mut out = FactorBuilder::new(new_schema).expect("reduced schema stays valid");
        let mut buf: Vec<u32> = vec![0; positions.len()];
        for i in 0..self.len {
            let row = self.row(i);
            if row[vpos] != value {
                continue;
            }
            for (slot, &p) in buf.iter_mut().zip(&positions) {
                *slot = row[p];
            }
            out.push(&buf, self.mem_vals()[i].clone());
        }
        out.finish()
    }
}

pub(crate) fn check_schema(schema: &[Var]) -> Result<(), FactorError> {
    for (i, v) in schema.iter().enumerate() {
        if schema[..i].contains(v) {
            return Err(FactorError::DuplicateSchemaVar(*v));
        }
    }
    Ok(())
}

/// Flat-row construction of a [`Factor`] from a stream of rows arriving in
/// **strictly ascending lexicographic order** — the allocation-free spine of
/// the InsideOut hot path.
///
/// Every [`FactorBuilder::push`] copies the binding straight into the final
/// column-flat `rows` storage: no per-row `Vec<u32>` is ever allocated, and
/// [`FactorBuilder::finish`] hands the buffers to the factor as-is (the
/// [`Factor::from_sorted_distinct`] fast path — no sort, no duplicate scan).
/// Heap traffic is therefore `O(arity + log rows)` per factor (amortized
/// buffer doubling), not `O(rows)`.
///
/// # Sortedness contract
///
/// Rows must arrive sorted and distinct. The contract is the caller's — join
/// kernels satisfy it by construction, since the backtracking search
/// enumerates bindings in lexicographic order of the join's variable
/// ordering. Debug builds verify it on every push: the debug assertion fires
/// as soon as a row is `≤` its predecessor (or, for a nullary schema, on a
/// second row). Release builds trust the stream.
///
/// # Streaming trie construction
///
/// [`FactorBuilder::with_streaming_trie`] additionally grows the factor's
/// columnar trie index ([`FactorTrie`]) *while* rows are appended, for
/// amortized `O(arity)` extra work per row. The finished factor then carries
/// a built index from birth — structurally identical to the lazily built one
/// — so a consumer that would force the index anyway (every elimination step
/// joins its intermediates) never re-indexes the listing.
pub struct FactorBuilder<E> {
    schema: Vec<Var>,
    arity: usize,
    cols: BuilderCols<E>,
    len: usize,
    trie: Option<TrieBuilder>,
}

/// The accumulation target of a [`FactorBuilder`]: heap buffers (the
/// default) or a strictly-sequential spill writer.
enum BuilderCols<E> {
    Mem { rows: Vec<u32>, vals: Vec<E> },
    Spill(SpillWriter<E>),
}

impl<E: SemiringElem> FactorBuilder<E> {
    /// An empty builder over `schema` (rejects duplicate schema variables).
    pub fn new(schema: Vec<Var>) -> Result<Self, FactorError> {
        check_schema(&schema)?;
        let arity = schema.len();
        Ok(FactorBuilder {
            schema,
            arity,
            cols: BuilderCols::Mem { rows: Vec::new(), vals: Vec::new() },
            len: 0,
            trie: None,
        })
    }

    /// An empty builder whose rows stream straight to a file-chunked spill
    /// (see [`crate::colstore`]): pushes buffer one chunk at a time, writes
    /// are strictly sequential, and [`FactorBuilder::finish`] yields a
    /// spilled factor whose resident footprint is the chunk metadata plus the
    /// pinned window. Streaming tries and [`FactorBuilder::append`] are not
    /// supported in spill mode (the index is built lazily, streaming from
    /// the chunks).
    pub fn new_spilled(schema: Vec<Var>, config: SpillConfig) -> Result<Self, FactorError>
    where
        E: FixedBytes,
    {
        check_schema(&schema)?;
        let arity = schema.len();
        assert!(arity > 0, "nullary factors cannot spill");
        Ok(FactorBuilder {
            schema,
            arity,
            cols: BuilderCols::Spill(SpillWriter::new(arity, config)),
            len: 0,
            trie: None,
        })
    }

    /// Grow the trie index incrementally as rows are appended (see the type
    /// docs). Must be enabled before the first push.
    pub fn with_streaming_trie(mut self) -> Self {
        assert_eq!(self.len, 0, "enable the streaming trie before pushing rows");
        assert!(
            matches!(self.cols, BuilderCols::Mem { .. }),
            "spilled builders index lazily; streaming tries are heap-only"
        );
        self.trie = Some(TrieBuilder::new(self.arity));
        self
    }

    /// Pre-allocate room for `additional` more rows (no-op in spill mode,
    /// which buffers at most one chunk).
    pub fn reserve(&mut self, additional: usize) {
        if let BuilderCols::Mem { rows, vals } = &mut self.cols {
            rows.reserve(additional * self.arity);
            vals.reserve(additional);
        }
    }

    /// The column order of the factor under construction.
    pub fn schema(&self) -> &[Var] {
        &self.schema
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no row has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a row. `row` must sort strictly after every row already pushed
    /// (debug-asserted — see the type docs for the contract).
    pub fn push(&mut self, row: &[u32], val: E) {
        debug_assert_eq!(row.len(), self.arity, "row arity must match the schema");
        debug_assert!(self.arity > 0 || self.len == 0, "a nullary factor holds at most one row");
        let len = self.len;
        let arity = self.arity;
        match &mut self.cols {
            BuilderCols::Mem { rows, vals } => {
                if let Some(trie) = &mut self.trie {
                    let prev = if len == 0 { None } else { Some(&rows[(len - 1) * arity..]) };
                    trie.push(row, prev);
                } else {
                    debug_assert!(
                        len == 0 || &rows[(len - 1) * arity..] < row,
                        "builder rows must be strictly ascending"
                    );
                }
                rows.extend_from_slice(row);
                vals.push(val);
            }
            BuilderCols::Spill(w) => {
                debug_assert!(
                    w.last_row().is_none_or(|p| p.as_slice() < row),
                    "builder rows must be strictly ascending"
                );
                w.push(row, val);
            }
        }
        self.len += 1;
    }

    /// Append every row of `other` (same schema), all of which must sort
    /// strictly after this builder's rows.
    ///
    /// This is the k-way chunk merge of the parallel engine: per-chunk
    /// outputs cover disjoint ascending value ranges of the first column, so
    /// the merge is a concatenation. Without a streaming trie the row block
    /// is copied in bulk; with one, rows are re-pushed individually so the
    /// index keeps growing in stream order.
    pub fn append(&mut self, other: FactorBuilder<E>) {
        assert_eq!(self.schema, other.schema, "append requires identical schemas");
        if other.len == 0 {
            return;
        }
        let BuilderCols::Mem { rows: orows, vals: ovals } = other.cols else {
            panic!("append of a spilled builder is not supported");
        };
        assert!(
            matches!(self.cols, BuilderCols::Mem { .. }),
            "append into a spilled builder is not supported"
        );
        if self.trie.is_none() {
            let len = self.len;
            let arity = self.arity;
            let BuilderCols::Mem { rows, vals } = &mut self.cols else { unreachable!() };
            debug_assert!(
                len == 0 || arity == 0 || rows[(len - 1) * arity..] < orows[..arity],
                "appended chunks must be disjoint and ascending"
            );
            rows.extend_from_slice(&orows);
            vals.extend(ovals);
            self.len += other.len;
        } else {
            self.reserve(other.len);
            let mut vals = ovals.into_iter();
            if self.arity == 0 {
                for val in vals {
                    self.push(&[], val);
                }
            } else {
                for row in orows.chunks_exact(self.arity) {
                    self.push(row, vals.next().expect("one value per row"));
                }
            }
        }
    }

    /// Finish: hand the flat buffers (and the streamed trie index, when
    /// enabled) to the factor without copying or re-sorting anything. A
    /// spilled builder flushes its tail chunk and yields a spilled factor.
    pub fn finish(self) -> Factor<E> {
        let trie_slot = OnceLock::new();
        if let Some(trie) = self.trie {
            let _ = trie_slot.set(trie.finish());
        }
        let cols = match self.cols {
            BuilderCols::Mem { rows, vals } => Columns::Mem { rows, vals },
            BuilderCols::Spill(w) => Columns::Spill(w.finish_cols()),
        };
        Factor {
            schema: self.schema,
            cols,
            len: self.len,
            trie: trie_slot,
            gets: AtomicU32::new(0),
        }
    }
}

/// k-way merge of row lists that are each sorted by tuple, combining duplicate
/// tuples with `combine` (left-to-right in chunk order) and dropping rows whose
/// combined value satisfies `is_zero`.
///
/// This is the row-level engine behind [`Factor::merge_sorted`], exposed so
/// the parallel executor can merge per-chunk outputs without first wrapping
/// them in factors. Ties across chunks are resolved in chunk index order,
/// which keeps the `⊕`-fold association deterministic.
pub fn merge_sorted_rows<E: SemiringElem>(
    mut chunks: Vec<Vec<(Vec<u32>, E)>>,
    mut combine: impl FnMut(&E, &E) -> E,
    mut is_zero: impl FnMut(&E) -> bool,
) -> Vec<(Vec<u32>, E)> {
    chunks.retain(|c| !c.is_empty());
    if chunks.is_empty() {
        return Vec::new();
    }
    let total: usize = chunks.iter().map(Vec::len).sum();
    // Fast path: every row of chunk `c` precedes every row of chunk `c + 1`.
    // This always holds for the parallel engine's per-chunk outputs (the
    // chunk value ranges partition the first column in ascending order), so
    // no duplicates can exist across chunks and the merge is a move-through
    // concatenation — no row clones, no per-row k-way head scan.
    let disjoint = chunks
        .windows(2)
        .all(|w| w[0].last().expect("chunks are non-empty").0 < w[1].first().expect("non-empty").0);
    if disjoint {
        let mut out = Vec::with_capacity(total);
        for chunk in chunks {
            out.extend(chunk.into_iter().filter(|(_, v)| !is_zero(v)));
        }
        return out;
    }
    // General path: k-way merge by head row. Each chunk is reversed so its
    // head is `last()`, letting `pop()` move rows out without cloning.
    for c in &mut chunks {
        c.reverse();
    }
    let mut out: Vec<(Vec<u32>, E)> = Vec::with_capacity(total);
    loop {
        // Smallest head tuple; ties go to the lowest chunk index.
        let mut best: Option<usize> = None;
        for (ci, chunk) in chunks.iter().enumerate() {
            let Some((row, _)) = chunk.last() else { continue };
            match best {
                Some(b) if chunks[b].last().expect("best chunk is non-empty").0 <= *row => {}
                _ => best = Some(ci),
            }
        }
        let Some(ci) = best else { break };
        let (row, val) = chunks[ci].pop().expect("best head exists");
        match out.last_mut() {
            Some((last_row, last_val)) if *last_row == row => {
                *last_val = combine(last_val, &val);
            }
            _ => {
                // Flush-time zero check for the previous row happens lazily:
                // a row is only final once a greater tuple arrives.
                if let Some((_, prev)) = out.last() {
                    if is_zero(prev) {
                        out.pop();
                    }
                }
                out.push((row, val));
            }
        }
    }
    if let Some((_, prev)) = out.last() {
        if is_zero(prev) {
            out.pop();
        }
    }
    out
}

/// `partition_point` over an abstract index range `[0, len)`.
fn partition_point(len: usize, mut pred: impl FnMut(usize) -> bool) -> usize {
    let mut lo = 0;
    let mut hi = len;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use faq_hypergraph::v;

    fn sample() -> Factor<u64> {
        Factor::new(
            vec![v(0), v(1)],
            vec![(vec![1, 0], 10), (vec![0, 1], 5), (vec![0, 0], 3), (vec![2, 2], 7)],
        )
        .unwrap()
    }

    #[test]
    fn construction_sorts_rows() {
        let f = sample();
        assert_eq!(f.len(), 4);
        assert_eq!(f.row(0), &[0, 0]);
        assert_eq!(f.row(1), &[0, 1]);
        assert_eq!(f.row(2), &[1, 0]);
        assert_eq!(f.row(3), &[2, 2]);
        assert_eq!(*f.value(0), 3);
    }

    #[test]
    fn duplicate_tuples_rejected() {
        let err = Factor::new(vec![v(0)], vec![(vec![1], 1u64), (vec![1], 2)]).unwrap_err();
        assert_eq!(err, FactorError::DuplicateTuple(vec![1]));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = Factor::new(vec![v(0), v(1)], vec![(vec![1], 1u64)]).unwrap_err();
        assert!(matches!(err, FactorError::ArityMismatch { expected: 2, got: 1 }));
    }

    #[test]
    fn duplicate_schema_rejected() {
        let err = Factor::<u64>::new(vec![v(0), v(0)], vec![]).unwrap_err();
        assert_eq!(err, FactorError::DuplicateSchemaVar(v(0)));
    }

    #[test]
    fn with_combine_merges_and_drops_zero() {
        let f = Factor::with_combine(
            vec![v(0)],
            vec![(vec![1], 3i64), (vec![1], -3), (vec![2], 5)],
            |a, b| a + b,
            |x| *x == 0,
        )
        .unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f.get(&[2]), Some(&5));
        assert_eq!(f.get(&[1]), None);
    }

    #[test]
    fn lookup() {
        let f = sample();
        assert_eq!(f.get(&[1, 0]), Some(&10));
        assert_eq!(f.get(&[1, 1]), None);
    }

    #[test]
    fn one_off_get_builds_no_trie() {
        let f = sample();
        assert_eq!(f.get(&[0, 1]), Some(&5));
        assert!(f.trie_if_built().is_none(), "a single point lookup must not pay the index build");
        // Cold lookups agree with the trie descent for hits and misses alike.
        assert_eq!(f.get(&[9, 9]), None);
        assert!(f.trie_if_built().is_none());
    }

    #[test]
    fn repeated_gets_eventually_build_the_trie() {
        let f = sample();
        for _ in 0..Factor::<u64>::GETS_BEFORE_TRIE {
            assert_eq!(f.get(&[2, 2]), Some(&7));
        }
        assert!(f.trie_if_built().is_some(), "repeated lookups should amortize into an index");
        assert_eq!(f.get(&[2, 2]), Some(&7));
    }

    #[test]
    fn clone_preserves_built_trie() {
        let f = sample();
        let cold = f.clone();
        assert!(cold.trie_if_built().is_none(), "clone of a cold factor stays cold");
        let _ = f.trie();
        let warm = f.clone();
        assert!(warm.trie_if_built().is_some(), "clone must keep the built index");
        assert_eq!(warm.trie_if_built(), f.trie_if_built());
        assert_eq!(warm, f);
    }

    #[test]
    fn stats_report_trie_cardinalities() {
        let f = sample(); // rows (0,0) (0,1) (1,0) (2,2): 3 distinct first values
        let s = f.stats();
        assert_eq!(s.rows, 4);
        assert_eq!(s.arity, 2);
        assert_eq!(s.level_distinct, vec![3, 4]);
        assert_eq!(s.root_distinct(), 3);
        assert!(f.trie_if_built().is_some(), "stats() builds and caches the index");
        let n = Factor::nullary(Some(1u64));
        assert_eq!(n.stats(), FactorStats { rows: 1, arity: 0, level_distinct: vec![] });
        assert_eq!(n.stats().root_distinct(), 0);
    }

    #[test]
    fn nullary_behaviour() {
        let s = Factor::nullary(Some(42u64));
        assert_eq!(s.arity(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&[]), Some(&42));
        let z = Factor::<u64>::nullary(None);
        assert!(z.is_empty());
        assert_eq!(z.get(&[]), None);
    }

    #[test]
    fn dense_tabulation() {
        let f = Factor::dense(
            vec![v(0), v(1)],
            &[2, 3],
            |row| (row[0] * 10 + row[1]) as u64,
            |&x| x == 0,
        )
        .unwrap();
        // (0,0) -> 0 dropped; 5 rows remain.
        assert_eq!(f.len(), 5);
        assert_eq!(f.get(&[1, 2]), Some(&12));
    }

    #[test]
    fn reorder_and_align() {
        let f = sample();
        let g = f.reorder(&[v(1), v(0)]);
        assert_eq!(g.schema(), &[v(1), v(0)]);
        assert_eq!(g.get(&[0, 1]), Some(&10)); // was (1,0)→10
        assert_eq!(g.row(0), &[0, 0]);
        let aligned = g.align_to(&[v(0), v(1), v(2)]);
        assert_eq!(aligned.schema(), &[v(0), v(1)]);
        assert_eq!(aligned, f);
    }

    #[test]
    fn project_combine_sums_groups() {
        let f = sample();
        let p = f.project_combine(&[v(0)], |a, b| a + b, |&x| x == 0);
        assert_eq!(p.schema(), &[v(0)]);
        assert_eq!(p.get(&[0]), Some(&8)); // 3 + 5
        assert_eq!(p.get(&[1]), Some(&10));
        assert_eq!(p.get(&[2]), Some(&7));
    }

    #[test]
    fn indicator_projection_is_support() {
        let f = sample();
        let p = f.indicator_projection(&[v(1)], 1u64);
        assert_eq!(p.schema(), &[v(1)]);
        assert_eq!(p.len(), 3); // column 1 values {0, 1, 2}
        for i in 0..p.len() {
            assert_eq!(*p.value(i), 1);
        }
    }

    #[test]
    fn indicator_projection_keeps_all_given_full_schema() {
        let f = sample();
        let p = f.indicator_projection(&[v(0), v(1)], 1u64);
        assert_eq!(p.len(), f.len());
    }

    #[test]
    fn marginalize_product_requires_full_groups() {
        // Dom(v1) = 2. Group x0=0 has both v1-values; group x0=1 only one.
        let f = Factor::new(
            vec![v(0), v(1)],
            vec![(vec![0, 0], 3u64), (vec![0, 1], 5), (vec![1, 0], 7)],
        )
        .unwrap();
        let m = f.marginalize_product(v(1), 2, |a, b| a * b, |&x| x == 0);
        assert_eq!(m.schema(), &[v(0)]);
        assert_eq!(m.get(&[0]), Some(&15));
        assert_eq!(m.get(&[1]), None); // implicit zero annihilated the product
    }

    #[test]
    fn marginalize_product_to_scalar() {
        let f = Factor::new(vec![v(0)], vec![(vec![0], 2u64), (vec![1], 3)]).unwrap();
        let m = f.marginalize_product(v(0), 2, |a, b| a * b, |&x| x == 0);
        assert_eq!(m.arity(), 0);
        assert_eq!(m.get(&[]), Some(&6));
    }

    #[test]
    fn map_values_drops_new_zeros() {
        let f = Factor::new(vec![v(0)], vec![(vec![0], 1i64), (vec![1], 2)]).unwrap();
        let g = f.map_values(|x| x - 1, |&x| x == 0);
        assert_eq!(g.len(), 1);
        assert_eq!(g.get(&[1]), Some(&1));
    }

    #[test]
    fn condition_restricts_and_drops_column() {
        let f = sample();
        let c = f.condition(v(0), 0);
        assert_eq!(c.schema(), &[v(1)]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&[0]), Some(&3));
        assert_eq!(c.get(&[1]), Some(&5));
    }

    #[test]
    fn prefix_range_and_seek() {
        let f = sample(); // rows: (0,0) (0,1) (1,0) (2,2)
        let full = (0, f.len());
        let r0 = f.prefix_range(full, 0, 0);
        assert_eq!(r0, (0, 2));
        let r1 = f.prefix_range(r0, 1, 1);
        assert_eq!(r1, (1, 2));
        assert_eq!(f.seek_column(full, 0, 1), Some(1));
        assert_eq!(f.seek_column(full, 0, 3), None);
        assert_eq!(f.seek_column((2, 4), 0, 2), Some(2));
    }

    #[test]
    fn prefix_range_respects_subranges() {
        let f = Factor::new(
            vec![v(0), v(1)],
            vec![(vec![0, 0], 1u64), (vec![0, 2], 1), (vec![1, 2], 1)],
        )
        .unwrap();
        let r = f.prefix_range((0, 3), 0, 0);
        assert_eq!(r, (0, 2));
        // Within x0 = 0 rows, seek column 1 for value >= 1.
        assert_eq!(f.seek_column(r, 1, 1), Some(2));
    }

    #[test]
    fn column_partition_covers_and_respects_values() {
        // Column 0 values: 0 ×3, 1 ×1, 2 ×2, 5 ×2.
        let f = Factor::new(
            vec![v(0), v(1)],
            vec![
                (vec![0, 0], 1u64),
                (vec![0, 1], 1),
                (vec![0, 2], 1),
                (vec![1, 0], 1),
                (vec![2, 0], 1),
                (vec![2, 1], 1),
                (vec![5, 0], 1),
                (vec![5, 1], 1),
            ],
        )
        .unwrap();
        for max_chunks in [2usize, 3, 4, 8] {
            let ranges = f.column_partition(0, max_chunks);
            assert!(ranges.len() <= max_chunks, "{ranges:?}");
            if ranges.is_empty() {
                continue;
            }
            // Contiguous cover of [0, u32::MAX).
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges.last().unwrap().1, u32::MAX);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
            // No value is split: each row's column value falls in one range.
            for i in 0..f.len() {
                let val = f.row(i)[0];
                let hits = ranges.iter().filter(|&&(lo, hi)| lo <= val && val < hi).count();
                assert_eq!(hits, 1);
            }
        }
        // Degenerate cases fall back to "no partition".
        assert!(f.column_partition(0, 1).is_empty());
        let single = Factor::new(vec![v(0)], vec![(vec![3], 1u64)]).unwrap();
        assert!(single.column_partition(0, 4).is_empty());
    }

    #[test]
    fn column_partition_of_unsorted_column() {
        // Column 1 is not sorted in row order; partition must sort it first.
        let f = sample(); // rows: (0,0) (0,1) (1,0) (2,2)
        let ranges = f.column_partition(1, 2);
        if !ranges.is_empty() {
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges.last().unwrap().1, u32::MAX);
        }
    }

    #[test]
    fn splice_by_first_replaces_ranges() {
        let f = sample(); // rows: (0,0)→3 (0,1)→5 (1,0)→10 (2,2)→7
        let replacement = Factor::new(
            vec![v(0), v(1)],
            vec![(vec![0, 2], 100u64), (vec![2, 0], 200), (vec![2, 9], 300)],
        )
        .unwrap();
        let spliced = f.splice_by_first(&[(0, 1), (2, 3)], &replacement);
        let expect = Factor::new(
            vec![v(0), v(1)],
            vec![(vec![0, 2], 100), (vec![1, 0], 10), (vec![2, 0], 200), (vec![2, 9], 300)],
        )
        .unwrap();
        assert_eq!(spliced, expect);
        // Empty replacement inside a range deletes the covered rows.
        let nothing = Factor::<u64>::new(vec![v(0), v(1)], vec![]).unwrap();
        let gone = f.splice_by_first(&[(0, 2)], &nothing);
        assert_eq!(gone.len(), 1);
        assert_eq!(gone.row(0), &[2, 2]);
        // No ranges: identity.
        assert_eq!(f.splice_by_first(&[], &nothing), f);
    }

    #[test]
    fn splice_by_first_nullary_takes_replacement() {
        let f = Factor::nullary(Some(1u64));
        let r = Factor::nullary(Some(9u64));
        assert_eq!(f.splice_by_first(&[(0, u32::MAX)], &r), r);
    }

    #[test]
    fn merge_sorted_combines_duplicates_in_order() {
        let a = Factor::new(vec![v(0)], vec![(vec![0], 1i64), (vec![2], 5)]).unwrap();
        let b = Factor::new(vec![v(0)], vec![(vec![1], 3i64), (vec![2], -5)]).unwrap();
        let m = Factor::merge_sorted(vec![a, b], |x, y| x + y, |&x| x == 0);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&[0]), Some(&1));
        assert_eq!(m.get(&[1]), Some(&3));
        assert_eq!(m.get(&[2]), None); // 5 + (-5) combined to zero and dropped
    }

    #[test]
    fn merge_sorted_rows_three_way() {
        let chunks: Vec<Vec<(Vec<u32>, u64)>> = vec![
            vec![(vec![0], 1), (vec![3], 1)],
            vec![(vec![1], 2), (vec![3], 2)],
            vec![],
            vec![(vec![2], 3), (vec![3], 3)],
        ];
        let merged = merge_sorted_rows(chunks, |a, b| a + b, |&x| x == 0);
        assert_eq!(
            merged,
            vec![(vec![0], 1), (vec![1], 2), (vec![2], 3), (vec![3], 6)],
            "ties combine across chunks in chunk order"
        );
    }

    #[test]
    fn merge_sorted_rows_drops_trailing_zero() {
        let chunks: Vec<Vec<(Vec<u32>, i64)>> = vec![vec![(vec![5], 4)], vec![(vec![5], -4)]];
        assert!(merge_sorted_rows(chunks, |a, b| a + b, |&x| x == 0).is_empty());
    }

    #[test]
    fn randomized_projection_equals_bruteforce() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..30 {
            let n_rows = rng.gen_range(0..20);
            let mut tuples = Vec::new();
            for _ in 0..n_rows {
                tuples.push((
                    vec![rng.gen_range(0..4u32), rng.gen_range(0..4), rng.gen_range(0..4)],
                    rng.gen_range(1..10u64),
                ));
            }
            let f = Factor::with_combine(
                vec![v(0), v(1), v(2)],
                tuples.clone(),
                |a, b| a + b,
                |&x| x == 0,
            )
            .unwrap();
            let p = f.project_combine(&[v(0), v(2)], |a, b| a + b, |&x| x == 0);
            // Brute-force expected sums.
            use std::collections::BTreeMap;
            let mut expect: BTreeMap<(u32, u32), u64> = BTreeMap::new();
            for (t, val) in &tuples {
                *expect.entry((t[0], t[2])).or_insert(0) += val;
            }
            assert_eq!(p.len(), expect.len());
            for ((a, c), s) in expect {
                assert_eq!(p.get(&[a, c]), Some(&s));
            }
        }
    }
}
