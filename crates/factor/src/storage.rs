//! Pluggable storage for trie levels, with branch-free seek kernels.
//!
//! A [`crate::trie::FactorTrie`] is three parallel arrays per level —
//! `values`, `child` offsets, `rows` offsets — and one hot operation over
//! them: the *windowed least-upper-bound* seek behind every leapfrog join
//! step. [`LevelStorage`] abstracts how those arrays are stored and searched,
//! so the trie machinery ([`crate::trie::FactorTrie`], the crate-internal
//! `TrieBuilder`, [`crate::trie::TrieCursor`],
//! [`crate::trie::TrieView`]) is generic over the backing representation:
//! today a `Vec`-backed default ([`VecStorage`]), later memory-mapped or
//! compressed levels for out-of-core factors.
//!
//! # Storage contract
//!
//! * `values` holds the level's entry values in **window-sorted** order:
//!   within each window — the half-open child range of one parent entry —
//!   values are strictly increasing (sorted and distinct). Values from
//!   different windows are unrelated.
//! * `child` and `rows` hold `len + 1` monotone offsets; entry `j` owns
//!   `child[j]..child[j+1]` in the next level and `rows[j]..rows[j+1]` in
//!   the listing.
//! * [`LevelStorage::lub_from`] must return **exactly**
//!   `lo + values[lo..hi].partition_point(|v| v < bound)` for any window
//!   `(lo, hi)` inside one parent window and *any* hint value — the hint may
//!   speed the search up but can never change the result. The join layer
//!   counts seeks per cursor call, so kernels are interchangeable without
//!   perturbing the engine's deterministic seek accounting.
//!
//! # The branch-free kernel
//!
//! [`VecStorage`] implements `lub_from` as exponential galloping from the
//! cursor's last position, finished by a fixed-width branchless block search:
//!
//! * **Warm seeks** (a valid hint — leapfrog bounds only grow within one
//!   window, so the previous match is almost always a valid start): verify
//!   `values[hint - 1] < bound` with one load, then gallop right in doubling
//!   steps until a probe `≥ bound` brackets the answer. Leapfrog
//!   intersections move in short hops, so gallops are usually 1–3 probes.
//! * **Cold seeks** (fresh window, no hint): a per-level *head-sample* array
//!   (`heads[k] = values[64k]`) is searched first; it is 64× smaller than the
//!   level, so the first probes hit cache, and the answer is narrowed to a
//!   window of at most 65 values.
//! * **Finish**: a conditional-move style `partition_point` halves the
//!   bracket without branching (`base += (probe < bound) as usize * half`)
//!   down to an 8-lane tail counted branch-free — a shape the compiler
//!   autovectorizes.

/// Backing storage of one trie level: the `values`/`child`/`rows` arrays and
/// the windowed-lub search over them. See the [module docs](self) for the
/// exact contract.
pub trait LevelStorage: Clone + std::fmt::Debug + PartialEq + Eq + Send + Sync {
    /// Assemble a level from its finished columnar arrays. `child` and `rows`
    /// must hold `values.len() + 1` monotone offsets each.
    fn from_parts(values: Vec<u32>, child: Vec<usize>, rows: Vec<usize>) -> Self;

    /// Number of entries.
    fn len(&self) -> usize;

    /// Whether the level has no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value of entry `j`.
    fn value(&self, j: usize) -> u32;

    /// The `j`-th child offset (`j ≤ len`).
    fn child_at(&self, j: usize) -> usize;

    /// The `j`-th row offset (`j ≤ len`).
    fn row_at(&self, j: usize) -> usize;

    /// The first index in `[lo, hi)` whose value is `≥ bound`, or `hi` when
    /// there is none — bit-identical to
    /// `lo + values[lo..hi].partition_point(|v| v < bound)`.
    ///
    /// `hint` is the caller's last matched index in this window (pass
    /// `usize::MAX` when cold); implementations may gallop from a valid hint
    /// but must return the same index for any hint value.
    fn lub_from(&self, window: (usize, usize), hint: usize, bound: u32) -> usize;
}

/// Values are sampled into the head array every `HEAD_STRIDE` entries.
pub(crate) const HEAD_STRIDE: usize = 64;

/// Tail width of the branchless block search; small enough to count with a
/// handful of vector lanes, large enough to end the halving loop early.
const LANES: usize = 8;

/// Branchless `partition_point` over `values[lo..hi]` (window-sorted):
/// conditional-move halving down to `LANES`, then a branch-free tail count.
#[inline]
pub(crate) fn block_lub(values: &[u32], lo: usize, hi: usize, bound: u32) -> usize {
    debug_assert!(lo <= hi && hi <= values.len());
    let mut base = lo;
    let mut len = hi - lo;
    // Invariant: the window's partition point lies in [base, base + len].
    // Each step halves the window around the midpoint probe with an
    // all-ones/all-zeros mask select. The `black_box` is load-bearing: the
    // probe outcome is a coin flip, and without it LLVM if-converts the mask
    // arithmetic back into a conditional jump whose ~50% mispredicts cost
    // more than the whole search (measured ~2× on uniform bounds).
    while len > LANES {
        let half = len / 2;
        let mid = base + half;
        let mask = std::hint::black_box(((values[mid - 1] < bound) as usize).wrapping_neg());
        base = (base & !mask) | (mid & mask);
        len -= half;
    }
    // Counted, not searched: the sum of `< bound` flags over a sorted tail
    // *is* the partition offset, and the loop has no data-dependent branch.
    let tail = &values[base..base + len];
    base + tail.iter().map(|&v| usize::from(v < bound)).sum::<usize>()
}

/// The default heap-backed level storage: plain `Vec`s plus the head-sample
/// array powering cold seeks. See the [module docs](self) for the kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VecStorage {
    values: Vec<u32>,
    child: Vec<usize>,
    rows: Vec<usize>,
    /// `heads[k] = values[HEAD_STRIDE * k]` — the cache-friendly first probes
    /// of cold windows. Derived from `values`, so it never affects `==`
    /// semantics beyond what `values` already decides.
    heads: Vec<u32>,
}

impl VecStorage {
    /// Cold-window seek: narrow `[lo, hi)` with the head samples, then block
    /// search the surviving stretch (at most `HEAD_STRIDE + 1` values).
    #[inline]
    fn cold_lub(&self, lo: usize, hi: usize, bound: u32) -> usize {
        // Samples covering the window: heads[k] with HEAD_STRIDE·k ∈ [lo, hi).
        let ks = lo.div_ceil(HEAD_STRIDE);
        let ke = hi.div_ceil(HEAD_STRIDE);
        if ks >= ke {
            return block_lub(&self.values, lo, hi, bound);
        }
        // The samples are values from one sorted window, so they are sorted;
        // find the first sample ≥ bound.
        let p = block_lub(&self.heads, ks, ke, bound);
        // Sample p−1 (if inside) is < bound: the answer lies strictly after
        // its position. Sample p (if inside) is ≥ bound: the answer lies at
        // or before its position.
        let nlo = if p > ks { HEAD_STRIDE * (p - 1) + 1 } else { lo };
        let nhi = if p < ke { (HEAD_STRIDE * p + 1).min(hi) } else { hi };
        block_lub(&self.values, nlo, nhi, bound)
    }
}

impl LevelStorage for VecStorage {
    fn from_parts(values: Vec<u32>, child: Vec<usize>, rows: Vec<usize>) -> VecStorage {
        debug_assert_eq!(child.len(), values.len() + 1);
        debug_assert_eq!(rows.len(), values.len() + 1);
        let heads = values.iter().step_by(HEAD_STRIDE).copied().collect();
        VecStorage { values, child, rows, heads }
    }

    fn len(&self) -> usize {
        self.values.len()
    }

    fn value(&self, j: usize) -> u32 {
        self.values[j]
    }

    fn child_at(&self, j: usize) -> usize {
        self.child[j]
    }

    fn row_at(&self, j: usize) -> usize {
        self.rows[j]
    }

    #[inline]
    fn lub_from(&self, (lo, hi): (usize, usize), hint: usize, bound: u32) -> usize {
        if lo >= hi {
            return hi;
        }
        // A hint is a valid gallop start iff the partition point cannot lie
        // before it: it is inside the window and its left neighbour is below
        // the bound. One extra load makes the hint safe for *any* caller
        // value instead of relying on a monotone-seek contract.
        if hint > lo && hint < hi {
            if self.values[hint - 1] >= bound {
                return self.cold_lub(lo, hi, bound);
            }
        } else if hint != lo {
            return self.cold_lub(lo, hi, bound);
        }
        if self.values[hint] >= bound {
            return hint; // leapfrog re-seek of the current match: 1 load
        }
        // Gallop right in doubling steps from the hint until a probe ≥ bound
        // brackets the answer in (prev, probe]; block search the bracket.
        let mut prev = hint;
        let mut step = 1usize;
        loop {
            let probe = prev + step;
            if probe >= hi {
                return block_lub(&self.values, prev + 1, hi, bound);
            }
            if self.values[probe] >= bound {
                return block_lub(&self.values, prev + 1, probe + 1, bound);
            }
            prev = probe;
            step <<= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storage_of(values: Vec<u32>) -> VecStorage {
        let offsets: Vec<usize> = (0..=values.len()).collect();
        VecStorage::from_parts(values, offsets.clone(), offsets)
    }

    /// The oracle the kernel must match bit for bit.
    fn oracle(values: &[u32], lo: usize, hi: usize, bound: u32) -> usize {
        lo + values[lo..hi].partition_point(|&v| v < bound)
    }

    #[test]
    fn kernel_matches_partition_point_for_every_window_hint_and_bound() {
        // Sizes straddling the head-sample stride and the block width.
        for n in [0usize, 1, 2, 7, 8, 9, 63, 64, 65, 130] {
            let values: Vec<u32> = (0..n as u32).map(|i| 3 * i + 1).collect();
            let s = storage_of(values.clone());
            for lo in 0..=n {
                for hi in lo..=n {
                    for bound in 0..=(3 * n as u32 + 2) {
                        let want = oracle(&values, lo, hi, bound);
                        for hint in (0..=n).chain([usize::MAX]) {
                            assert_eq!(
                                s.lub_from((lo, hi), hint, bound),
                                want,
                                "n={n} lo={lo} hi={hi} hint={hint} bound={bound}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn kernel_handles_duplicate_and_equal_runs() {
        // Sorted but non-distinct: the kernel contract only needs
        // sortedness, so all-equal windows must still match the oracle.
        let values = vec![5u32; 100];
        let s = storage_of(values.clone());
        for bound in [0u32, 4, 5, 6, u32::MAX] {
            for hint in [usize::MAX, 0, 1, 50, 99] {
                assert_eq!(s.lub_from((0, 100), hint, bound), oracle(&values, 0, 100, bound));
            }
        }
    }

    #[test]
    fn head_samples_follow_the_stride() {
        let s = storage_of((0..200u32).collect());
        assert_eq!(s.heads.len(), 200usize.div_ceil(HEAD_STRIDE));
        for (k, &h) in s.heads.iter().enumerate() {
            assert_eq!(h, s.value(HEAD_STRIDE * k));
        }
    }
}
