//! Listing-representation factors over discrete domains.
//!
//! A *factor* `ψ_S : Π_{i∈S} Dom(X_i) → D` is stored as the table of its
//! non-zero entries `⟨x_S, ψ_S(x_S)⟩` (paper Definition 4.1). Values live in a
//! semiring carrier type `E`; the semiring itself is passed into operations as
//! closures so factors stay decoupled from any particular algebra.
//!
//! Rows are kept sorted lexicographically under the factor's column order,
//! which supplies the *conditional query* oracle of paper Assumption 1 via
//! binary search. On top of the listing, [`Factor::trie`] exposes a columnar
//! trie index ([`trie::FactorTrie`]) — built lazily, cached — that the
//! OutsideIn join walks with [`trie::TrieCursor`]s instead of repeating
//! whole-row binary searches.
//!
//! Modules:
//! * [`domains`] — per-variable domain sizes and assignment iteration;
//! * [`factor`] — the [`Factor`] type and its algebra (projection, indicator
//!   projection per Definition 4.2, product marginalization per Assumption 2,
//!   point-wise maps, powering);
//! * [`delta`] — sorted point-update batches ([`DeltaFactor`]) and their
//!   application, reporting the changed first-column ranges that anchor
//!   incremental re-evaluation;
//! * [`trie`] — the columnar trie index: levels, cursors, range-restricted
//!   views, root-level chunk partitioning;
//! * [`storage`] — pluggable trie-level storage ([`LevelStorage`]) and the
//!   branch-free galloping seek kernel of [`VecStorage`];
//! * [`colstore`] — the file-chunked out-of-core backing: spilled listings
//!   ([`colstore::FileChunkedColumns`]), spilled trie levels
//!   ([`colstore::FileChunkedLevel`]) and the [`FactorLevel`] enum the
//!   default trie is stored in, plus the process-wide pinned-chunk gauges;
//! * [`fault`] — typed storage errors ([`StorageError`]), the
//!   [`QueryAbort`] unwinding transport that carries them (and deadlines /
//!   cancellation) out of infallible accessor code, and the seeded
//!   [`FaultPlan`] injection hook behind the chaos suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod colstore;
pub mod delta;
pub mod domains;
pub mod factor;
pub mod fault;
pub mod storage;
pub mod trie;

pub use colstore::{
    chunk_reads, gc_stale_spill_dirs, peak_pinned_bytes, pinned_bytes, reset_peak_pinned_bytes,
    FactorLevel, FileChunkedLevel, FixedBytes, SpillConfig, SpillStats,
};
pub use delta::{DeltaFactor, DeltaOp};
pub use domains::{AssignmentIter, Domains};
pub use factor::{merge_sorted_rows, Factor, FactorBuilder, FactorError, FactorStats, ValRef};
pub use fault::{AbortCtl, CancelToken, Deadline, FaultPlan, QueryAbort, StorageError};
pub use storage::{LevelStorage, VecStorage};
pub use trie::{FactorTrie, TrieCursor, TrieLevel, TrieView};
