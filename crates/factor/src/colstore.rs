//! File-chunked out-of-core column storage — the disk backing behind
//! spilled factors and spilled trie levels.
//!
//! A [`crate::Factor`] normally keeps its listing (`rows` + `vals`) and its
//! trie index in memory. This module adds a second backing, built on
//! `std::fs` only, where both live in fixed-size chunks inside unlinked-on-
//! drop spill files and at most a small *pinned window* of chunks is resident
//! at a time:
//!
//! * [`FileChunkedColumns`] — the listing: row-major keys plus fixed-width
//!   encoded values ([`FixedBytes`]), chunked by row count. Chunk metadata
//!   (first/last tuple, row count, file offset) stays resident, so range
//!   queries, chunk-aligned partitioning and delta splices know which chunks
//!   to fault without reading any of them.
//! * [`FileChunkedLevel`] — one trie level (`values`/`child`/`rows` arrays)
//!   in uniform entry chunks, with the head-sample array (`values[64k]`) kept
//!   resident so a cold seek narrows to one 64-entry stride — at most one
//!   chunk fault — before touching the file (see [`crate::storage`] for the
//!   seek contract it must match bit for bit).
//! * [`FactorLevel`] — the enum a default [`crate::trie::FactorTrie`] is
//!   stored in: heap ([`crate::storage::VecStorage`]) or disk, chosen per
//!   factor, with every in-memory consumer compiling against the same type.
//!
//! Writes are strictly sequential: [`SpillWriter`] (driven by
//! [`crate::FactorBuilder`] in spill mode) appends encoded chunks and never
//! seeks backwards, so building a spilled factor streams at disk bandwidth
//! with one chunk of buffering. Reads go through a per-column LRU window
//! ([`SpillConfig::window_chunks`]); every pinned chunk is accounted in a
//! process-global gauge ([`pinned_bytes`] / [`peak_pinned_bytes`]) that the
//! out-of-core benchmarks assert against their resident cap.
//!
//! Spill files live in a per-factor temporary directory that is removed when
//! the last handle drops (`SpillDir`), so cloned factors and snapshots
//! share the cold data by reference and nothing is copied on epoch publish.

use crate::fault::{self, Injected, QueryAbort, StorageError};
use crate::storage::{block_lub, LevelStorage, HEAD_STRIDE};
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Retry budget of one logical chunk operation: the initial attempt plus two
/// retries, with a short growing backoff between attempts.
const MAX_IO_ATTEMPTS: u32 = 3;

fn retry_backoff(attempt: u32) {
    std::thread::sleep(std::time::Duration::from_micros(50 * u64::from(attempt)));
}

/// FNV-1a 64-bit over a chunk's encoded bytes — the per-chunk checksum
/// recorded at write time and verified on every fault-in.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Convert a typed storage failure into a raised [`QueryAbort`] at the
/// infallible accessor boundary (see [`crate::fault`] for the transport).
fn ok_or_raise<T>(r: Result<T, StorageError>) -> T {
    match r {
        Ok(t) => t,
        Err(e) => fault::raise(QueryAbort::Storage(e)),
    }
}

// ---------------------------------------------------------------------------
// Pinned-chunk gauges
// ---------------------------------------------------------------------------

static PINNED_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_PINNED: AtomicUsize = AtomicUsize::new(0);
static CHUNK_READS: AtomicU64 = AtomicU64::new(0);

fn track_pin(bytes: usize) {
    let now = PINNED_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_PINNED.fetch_max(now, Ordering::Relaxed);
}

fn untrack_pin(bytes: usize) {
    PINNED_BYTES.fetch_sub(bytes, Ordering::Relaxed);
}

/// Bytes of spilled chunks currently pinned in memory, process-wide.
pub fn pinned_bytes() -> usize {
    PINNED_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of [`pinned_bytes`] since the last
/// [`reset_peak_pinned_bytes`].
pub fn peak_pinned_bytes() -> usize {
    PEAK_PINNED.load(Ordering::Relaxed)
}

/// Reset the [`peak_pinned_bytes`] high-water mark to the current level.
pub fn reset_peak_pinned_bytes() {
    PEAK_PINNED.store(PINNED_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Chunks faulted in from spill files since process start, process-wide.
pub fn chunk_reads() -> u64 {
    CHUNK_READS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Fixed-width value codec
// ---------------------------------------------------------------------------

/// Fixed-width byte codec for semiring carriers that can be spilled to disk.
///
/// Spilled chunks store one value per row at a fixed [`FixedBytes::WIDTH`],
/// so chunk offsets are arithmetic and reads never parse. Implemented for the
/// plain-data carriers of the stock domains (`u32`, `u64`, `i64`, `f64`,
/// `bool`, `u8`); variable-size carriers (sets, polynomials) cannot spill.
pub trait FixedBytes: Sized {
    /// Encoded size in bytes of every value.
    const WIDTH: usize;
    /// Append exactly [`FixedBytes::WIDTH`] bytes encoding `self`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode a value from exactly [`FixedBytes::WIDTH`] bytes.
    fn decode(bytes: &[u8]) -> Self;
}

macro_rules! fixed_bytes_int {
    ($($t:ty),*) => {$(
        impl FixedBytes for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("fixed width"))
            }
        }
    )*};
}
fixed_bytes_int!(u8, u32, u64, i64);

impl FixedBytes for f64 {
    const WIDTH: usize = 8;
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(bytes: &[u8]) -> Self {
        f64::from_bits(u64::from_le_bytes(bytes.try_into().expect("fixed width")))
    }
}

impl FixedBytes for bool {
    const WIDTH: usize = 1;
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(bytes: &[u8]) -> Self {
        bytes[0] != 0
    }
}

fn decode_fn<E: FixedBytes>(bytes: &[u8]) -> E {
    E::decode(bytes)
}

fn encode_fn<E: FixedBytes>(e: &E, out: &mut Vec<u8>) {
    e.encode(out)
}

// ---------------------------------------------------------------------------
// Spill directories and files
// ---------------------------------------------------------------------------

/// Tuning knobs of the file-chunked backing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillConfig {
    /// Directory to create the spill directory under; the OS temp dir when
    /// `None`.
    pub dir: Option<PathBuf>,
    /// Rows per listing chunk ([`FileChunkedColumns`]).
    pub chunk_rows: usize,
    /// Entries per trie-level chunk ([`FileChunkedLevel`]); rounded up to a
    /// multiple of the head-sample stride (64) so a cold seek's narrowed
    /// window never straddles a chunk boundary.
    pub level_chunk_entries: usize,
    /// Maximum chunks pinned per column / per level (the LRU window).
    pub window_chunks: usize,
}

impl Default for SpillConfig {
    fn default() -> SpillConfig {
        SpillConfig { dir: None, chunk_rows: 4096, level_chunk_entries: 4096, window_chunks: 8 }
    }
}

impl SpillConfig {
    fn level_entries(&self) -> usize {
        self.level_chunk_entries.max(1).div_ceil(HEAD_STRIDE) * HEAD_STRIDE
    }
}

/// A uniquely-named spill directory, removed (with everything in it) when the
/// last [`Arc`] handle drops — factors, their tries and their clones share
/// one.
#[derive(Debug)]
pub(crate) struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    fn create(under: Option<&PathBuf>) -> Result<Arc<SpillDir>, StorageError> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let base = under.cloned().unwrap_or_else(std::env::temp_dir);
        let path = base.join(format!("faq-spill-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path)
            .map_err(|e| StorageError::io("create spill directory", &path, &e, 1))?;
        Ok(Arc::new(SpillDir { path }))
    }

    fn new_file(&self, name: &str) -> Result<Arc<SpillFile>, StorageError> {
        let path = self.path.join(name);
        let file = File::options()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| StorageError::io("create spill file", &path, &e, 1))?;
        Ok(Arc::new(SpillFile { file: Mutex::new(file), path }))
    }

    /// The directory path (tests assert cleanup-on-drop against it).
    #[cfg(test)]
    pub(crate) fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Sweep spill directories orphaned by crashed processes.
///
/// Scans `under` (the OS temp dir when `None`) for `faq-spill-<pid>-<n>`
/// directories whose owning pid is neither this process nor a live one, and
/// removes them. Liveness is probed via `/proc/<pid>` on Linux; elsewhere
/// foreign pids are conservatively assumed alive and left alone. Returns the
/// number of directories removed; I/O failures skip the entry (a stale dir
/// is retried at the next sweep, and nothing here may panic).
pub fn gc_stale_spill_dirs(under: Option<&Path>) -> usize {
    let base = under.map(Path::to_path_buf).unwrap_or_else(std::env::temp_dir);
    let Ok(entries) = std::fs::read_dir(&base) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(rest) = name.to_string_lossy().strip_prefix("faq-spill-").map(str::to_owned)
        else {
            continue;
        };
        let Some((pid, _n)) = rest.split_once('-') else {
            continue;
        };
        let Ok(pid) = pid.parse::<u32>() else {
            continue;
        };
        if pid == std::process::id() || process_alive(pid) {
            continue;
        }
        if std::fs::remove_dir_all(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

#[cfg(target_os = "linux")]
fn process_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

#[cfg(not(target_os = "linux"))]
fn process_alive(_pid: u32) -> bool {
    // No portable liveness probe without extra dependencies: assume alive,
    // never delete another process's data.
    true
}

/// One spill file. All access serializes on the file handle itself, so
/// factor clones sharing chunks across caches never interleave seek/read
/// pairs.
#[derive(Debug)]
pub(crate) struct SpillFile {
    file: Mutex<File>,
    path: PathBuf,
}

impl SpillFile {
    /// One read attempt. Lock poisoning is survivable: the guarded `File` is
    /// repositioned by every operation, so a panic mid-operation leaves no
    /// state a later seek+read would trust.
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), std::io::Error> {
        let mut f = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }

    fn append_once(&self, offset: u64, bytes: &[u8]) -> Result<(), std::io::Error> {
        let mut f = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(bytes)
    }

    /// Append with injection, bounded retry and backoff — one logical chunk
    /// write.
    fn append(&self, offset: u64, bytes: &[u8]) -> Result<(), StorageError> {
        let injected = fault::chunk_op_fault();
        if let Injected::Delay(us) = injected {
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
        let mut attempt = 0;
        loop {
            attempt += 1;
            let r = match injected {
                Injected::FailHard => Err(injected_io_error()),
                Injected::FailTransient if attempt == 1 => Err(injected_io_error()),
                _ => self.append_once(offset, bytes),
            };
            match r {
                Ok(()) => return Ok(()),
                Err(_) if attempt < MAX_IO_ATTEMPTS => {
                    fault::note_io_retry();
                    retry_backoff(attempt);
                }
                Err(e) => {
                    return Err(StorageError::io("append chunk", &self.path, &e, attempt));
                }
            }
        }
    }
}

fn injected_io_error() -> std::io::Error {
    std::io::Error::other("injected chunk I/O fault")
}

/// One logical chunk read: the injection decision is drawn once, then up to
/// [`MAX_IO_ATTEMPTS`] seek+read+verify attempts run with backoff. A read
/// that keeps failing its checksum after every retry is reported corrupt —
/// re-reading distinguishes a transient torn read from rotten bytes at rest.
fn read_chunk_verified(
    file: &SpillFile,
    offset: u64,
    buf: &mut [u8],
    chunk: usize,
    expected: u64,
) -> Result<(), StorageError> {
    let injected = fault::chunk_op_fault();
    if let Injected::Delay(us) = injected {
        std::thread::sleep(std::time::Duration::from_micros(us));
    }
    let mut attempt = 0;
    loop {
        attempt += 1;
        let r = match injected {
            Injected::FailHard => Err(injected_io_error()),
            Injected::FailTransient if attempt == 1 => Err(injected_io_error()),
            _ => file.read_exact_at(offset, buf),
        };
        match r {
            Ok(()) => {
                if injected == Injected::Corrupt && !buf.is_empty() {
                    buf[0] ^= 0xA5;
                }
                let actual = fnv1a64(buf);
                if actual == expected {
                    return Ok(());
                }
                if attempt < MAX_IO_ATTEMPTS {
                    fault::note_io_retry();
                    retry_backoff(attempt);
                    continue;
                }
                fault::note_corrupt_chunk();
                return Err(StorageError::Corrupt {
                    path: file.path.display().to_string(),
                    chunk,
                    expected,
                    actual,
                });
            }
            Err(_) if attempt < MAX_IO_ATTEMPTS => {
                fault::note_io_retry();
                retry_backoff(attempt);
            }
            Err(e) => return Err(StorageError::io("read chunk", &file.path, &e, attempt)),
        }
    }
}

// ---------------------------------------------------------------------------
// The pinned-window LRU
// ---------------------------------------------------------------------------

/// A tiny LRU over chunk index → pinned chunk. The window is small (a
/// handful of chunks), so eviction is a linear min-tick scan.
#[derive(Debug)]
struct Lru<T> {
    map: HashMap<usize, (u64, Arc<T>)>,
    tick: u64,
    cap: usize,
}

impl<T> Lru<T> {
    fn new(cap: usize) -> Lru<T> {
        Lru { map: HashMap::new(), tick: 0, cap: cap.max(1) }
    }

    fn get(&mut self, k: usize) -> Option<Arc<T>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&k).map(|e| {
            e.0 = tick;
            Arc::clone(&e.1)
        })
    }

    fn insert(&mut self, k: usize, v: Arc<T>) {
        self.tick += 1;
        self.map.insert(k, (self.tick, v));
        while self.map.len() > self.cap {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(&k, _)| k)
                .expect("non-empty map");
            self.map.remove(&oldest);
        }
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.map.len()
    }
}

// ---------------------------------------------------------------------------
// FileChunkedColumns: the spilled listing
// ---------------------------------------------------------------------------

/// Resident metadata of one listing chunk. The first/last tuples let range
/// and splice logic decide which chunks a key touches without faulting any;
/// each chunk carries its own file handle so a delta splice can mix original
/// chunks with freshly written ones.
#[derive(Debug, Clone)]
pub(crate) struct ChunkMeta {
    file: Arc<SpillFile>,
    offset: u64,
    rows: usize,
    first_row: Vec<u32>,
    last_row: Vec<u32>,
    /// FNV-1a over the chunk's encoded bytes, verified on every fault-in.
    checksum: u64,
}

/// One faulted listing chunk: decoded rows and values, gauge-accounted while
/// pinned.
#[derive(Debug)]
struct DataChunk<E> {
    rows: Vec<u32>,
    vals: Vec<E>,
    bytes: usize,
}

impl<E> Drop for DataChunk<E> {
    fn drop(&mut self) {
        untrack_pin(self.bytes);
    }
}

/// Read-side statistics of one spilled listing (see
/// [`crate::Factor::spill_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct SpillStats {
    /// Number of listing chunks on disk.
    pub chunks: usize,
    /// Chunks faulted in from disk over this listing's lifetime (shared by
    /// clones).
    pub reads: u64,
    /// Bytes of this listing's chunks currently pinned.
    pub resident_bytes: usize,
    /// Total encoded bytes on disk.
    pub file_bytes: usize,
}

struct ColsInner<E> {
    arity: usize,
    len: usize,
    width: usize,
    decode: fn(&[u8]) -> E,
    /// Captured at construction (where `E: FixedBytes` is known), so splices
    /// can write new chunks without re-stating the bound.
    encode: fn(&E, &mut Vec<u8>),
    chunks: Vec<ChunkMeta>,
    /// `row_starts[k]` = first listing row of chunk `k`; one end sentinel.
    row_starts: Vec<usize>,
    /// Per-column maximum key value (resident, so domain validation never
    /// faults a chunk). An upper bound after delta splices with deletions.
    col_maxes: Vec<u32>,
    config: SpillConfig,
    dir: Arc<SpillDir>,
    cache: Mutex<Lru<DataChunk<E>>>,
    reads: AtomicU64,
}

impl<E> std::fmt::Debug for ColsInner<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileChunkedColumns")
            .field("arity", &self.arity)
            .field("len", &self.len)
            .field("chunks", &self.chunks.len())
            .finish()
    }
}

/// A factor listing spilled to disk in row chunks, with a bounded pinned
/// window. Cloning is an `Arc` bump: clones (and epoch snapshots holding
/// them) share the chunks, the cache and the spill directory.
pub struct FileChunkedColumns<E> {
    inner: Arc<ColsInner<E>>,
}

impl<E> Clone for FileChunkedColumns<E> {
    fn clone(&self) -> Self {
        FileChunkedColumns { inner: Arc::clone(&self.inner) }
    }
}

impl<E> std::fmt::Debug for FileChunkedColumns<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<E> FileChunkedColumns<E> {
    pub(crate) fn len(&self) -> usize {
        self.inner.len
    }

    pub(crate) fn col_max(&self, d: usize) -> Option<u32> {
        (self.inner.len > 0).then(|| self.inner.col_maxes[d])
    }

    pub(crate) fn col_maxes(&self) -> &[u32] {
        &self.inner.col_maxes
    }

    #[cfg(test)]
    pub(crate) fn spill_dir(&self) -> &Arc<SpillDir> {
        &self.inner.dir
    }

    pub(crate) fn stats(&self) -> SpillStats {
        let i = &self.inner;
        let resident = i
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .map
            .values()
            .map(|(_, c)| c.bytes)
            .sum();
        let row_bytes = i.arity * 4 + i.width;
        SpillStats {
            chunks: i.chunks.len(),
            reads: i.reads.load(Ordering::Relaxed),
            resident_bytes: resident,
            file_bytes: i.len * row_bytes,
        }
    }

    fn chunk_of(&self, i: usize) -> usize {
        debug_assert!(i < self.inner.len);
        self.inner.row_starts.partition_point(|&s| s <= i) - 1
    }

    /// Fault in chunk `k` or surface a typed storage error: one logical read
    /// with injection, checksum verification, bounded retry and a deadline
    /// checkpoint (a chunk fault is the natural cancellation point of an
    /// out-of-core scan).
    fn try_pin(&self, k: usize) -> Result<Arc<DataChunk<E>>, StorageError> {
        fault::checkpoint();
        let inner = &self.inner;
        let mut cache = inner.cache.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(c) = cache.get(k) {
            return Ok(c);
        }
        let meta = &inner.chunks[k];
        let row_bytes = meta.rows * inner.arity * 4;
        let val_bytes = meta.rows * inner.width;
        let mut buf = vec![0u8; row_bytes + val_bytes];
        read_chunk_verified(&meta.file, meta.offset, &mut buf, k, meta.checksum)?;
        let rows: Vec<u32> = buf[..row_bytes]
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
            .collect();
        let vals: Vec<E> =
            buf[row_bytes..].chunks_exact(inner.width.max(1)).map(inner.decode).collect();
        let bytes = buf.len();
        track_pin(bytes);
        inner.reads.fetch_add(1, Ordering::Relaxed);
        CHUNK_READS.fetch_add(1, Ordering::Relaxed);
        let chunk = Arc::new(DataChunk { rows, vals, bytes });
        cache.insert(k, Arc::clone(&chunk));
        Ok(chunk)
    }

    fn pin(&self, k: usize) -> Arc<DataChunk<E>> {
        ok_or_raise(self.try_pin(k))
    }

    /// Key value of row `i`, column `d`.
    pub(crate) fn col(&self, i: usize, d: usize) -> u32 {
        let k = self.chunk_of(i);
        let chunk = self.pin(k);
        let local = i - self.inner.row_starts[k];
        chunk.rows[local * self.inner.arity + d]
    }

    /// Run `f` over chunk `k`'s decoded rows and values; `start` is the
    /// chunk's first listing row.
    pub(crate) fn with_chunk<R>(&self, k: usize, f: impl FnOnce(usize, &[u32], &[E]) -> R) -> R {
        let chunk = self.pin(k);
        f(self.inner.row_starts[k], &chunk.rows, &chunk.vals)
    }

    pub(crate) fn num_chunks(&self) -> usize {
        self.inner.chunks.len()
    }

    pub(crate) fn chunk_first_row(&self, k: usize) -> &[u32] {
        &self.inner.chunks[k].first_row
    }

    pub(crate) fn chunk_last_row(&self, k: usize) -> &[u32] {
        &self.inner.chunks[k].last_row
    }

    pub(crate) fn share_chunk_meta(&self, k: usize) -> ChunkMeta {
        self.inner.chunks[k].clone()
    }
}

impl<E: Clone> FileChunkedColumns<E> {
    /// Owned copy of row `i`'s value.
    pub(crate) fn value_owned(&self, i: usize) -> E {
        self.with_value(i, E::clone)
    }
}

impl<E> FileChunkedColumns<E> {
    /// Run `f` over row `i`'s value without cloning it out of the chunk.
    fn with_value<R>(&self, i: usize, f: impl FnOnce(&E) -> R) -> R {
        let k = self.chunk_of(i);
        let chunk = self.pin(k);
        f(&chunk.vals[i - self.inner.row_starts[k]])
    }
}

impl<E: PartialEq> FileChunkedColumns<E> {
    /// Entry-wise comparison against an in-memory listing.
    pub(crate) fn eq_mem(&self, rows: &[u32], vals: &[E]) -> bool {
        if vals.len() != self.inner.len {
            return false;
        }
        for k in 0..self.num_chunks() {
            let equal = self.with_chunk(k, |start, crows, cvals| {
                let a = self.inner.arity;
                crows == &rows[start * a..start * a + crows.len()]
                    && cvals == &vals[start..start + cvals.len()]
            });
            if !equal {
                return false;
            }
        }
        true
    }

    /// Entry-wise comparison against another spilled listing (chunk grids
    /// may differ).
    pub(crate) fn eq_spill(&self, other: &FileChunkedColumns<E>) -> bool {
        if self.inner.len != other.inner.len || self.inner.arity != other.inner.arity {
            return false;
        }
        let a = self.inner.arity;
        for k in 0..self.num_chunks() {
            let equal = self.with_chunk(k, |start, crows, cvals| {
                (0..cvals.len()).all(|j| {
                    let i = start + j;
                    (0..a).all(|d| other.col(i, d) == crows[j * a + d])
                        && other.with_value(i, |v| *v == cvals[j])
                })
            });
            if !equal {
                return false;
            }
        }
        true
    }
}

impl<E> FileChunkedColumns<E> {
    /// Partition the first column into at most `max_chunks` half-open value
    /// ranges whose cuts fall on *chunk boundaries* — same contract as
    /// [`crate::Factor::column_partition`] (ascending, covering
    /// `[0, u32::MAX)`, never splitting a value), chosen so each worker of a
    /// chunked join pins only its own range's chunks. Computed entirely from
    /// resident metadata: no chunk is faulted.
    pub(crate) fn partition_first(&self, max_chunks: usize) -> Vec<(u32, u32)> {
        let inner = &self.inner;
        if max_chunks <= 1 || inner.len < 2 {
            return Vec::new();
        }
        let target = inner.len.div_ceil(max_chunks);
        let mut cuts: Vec<u32> = Vec::new();
        let mut taken = 0usize;
        for (k, meta) in inner.chunks.iter().enumerate() {
            // A cut at this chunk's first value is legal only when the value
            // run does not extend back into the previous chunk.
            if taken >= target
                && cuts.len() + 1 < max_chunks
                && k > 0
                && inner.chunks[k - 1].last_row[0] < meta.first_row[0]
            {
                cuts.push(meta.first_row[0]);
                taken = 0;
            }
            taken += meta.rows;
        }
        if cuts.is_empty() {
            return Vec::new();
        }
        let mut ranges = Vec::with_capacity(cuts.len() + 1);
        let mut lo = 0u32;
        for &c in &cuts {
            ranges.push((lo, c));
            lo = c;
        }
        ranges.push((lo, u32::MAX));
        ranges
    }

    /// Streaming rebuild of the factor's trie index with spilled levels:
    /// chunks are faulted once, in order, and each level's arrays are written
    /// straight back out in level chunks — peak residency is the pinned
    /// window plus one level chunk of buffering per column.
    pub(crate) fn build_trie(&self) -> crate::trie::FactorTrie {
        let arity = self.inner.arity;
        let mut builder = SpillTrieBuilder::new(
            arity,
            Arc::clone(&self.inner.dir),
            self.inner.config.level_entries(),
            self.inner.config.window_chunks,
        );
        let mut prev: Vec<u32> = Vec::new();
        for k in 0..self.num_chunks() {
            self.with_chunk(k, |_, rows, _| {
                for row in rows.chunks_exact(arity.max(1)) {
                    builder.push(row, if prev.is_empty() { None } else { Some(&prev) });
                    prev.clear();
                    prev.extend_from_slice(row);
                }
            });
        }
        builder.finish()
    }
}

// ---------------------------------------------------------------------------
// SpillWriter: strictly-sequential chunk writing
// ---------------------------------------------------------------------------

/// Strictly-sequential writer of a [`FileChunkedColumns`]: rows arrive in
/// ascending order, buffer one chunk at a time, and flush as encoded bytes
/// appended to the spill file. Also the splice engine of delta application:
/// `SpillWriter::adopt_chunk` passes an untouched chunk of an existing
/// spilled listing through by reference — no read, no copy.
pub struct SpillWriter<E> {
    dir: Arc<SpillDir>,
    file: Arc<SpillFile>,
    offset: u64,
    arity: usize,
    width: usize,
    decode: fn(&[u8]) -> E,
    encode: fn(&E, &mut Vec<u8>),
    config: SpillConfig,
    buf_rows: Vec<u32>,
    buf_vals: Vec<E>,
    chunks: Vec<ChunkMeta>,
    row_starts: Vec<usize>,
    len: usize,
    col_maxes: Vec<u32>,
}

static FILE_N: AtomicU64 = AtomicU64::new(0);

impl<E: FixedBytes> SpillWriter<E> {
    /// A writer over a fresh spill directory.
    ///
    /// Raises a [`QueryAbort::Storage`] (caught at the evaluation boundary)
    /// if the directory or file cannot be created.
    pub fn new(arity: usize, config: SpillConfig) -> SpillWriter<E> {
        let dir = ok_or_raise(SpillDir::create(config.dir.as_ref()));
        let file = ok_or_raise(
            dir.new_file(&format!("cols-{}.bin", FILE_N.fetch_add(1, Ordering::Relaxed))),
        );
        SpillWriter {
            dir,
            file,
            offset: 0,
            arity,
            width: E::WIDTH,
            decode: decode_fn::<E>,
            encode: encode_fn::<E>,
            config,
            buf_rows: Vec::new(),
            buf_vals: Vec::new(),
            chunks: Vec::new(),
            row_starts: vec![0],
            len: 0,
            col_maxes: vec![0; arity],
        }
    }
}

impl<E> SpillWriter<E> {
    /// A writer producing a sibling listing of `base`: same spill directory,
    /// codec and configuration, writing to a fresh file. The splice engine of
    /// delta application — no `FixedBytes` bound, the codec was captured when
    /// `base` was built.
    pub(crate) fn new_like(base: &FileChunkedColumns<E>) -> SpillWriter<E> {
        let dir = Arc::clone(&base.inner.dir);
        let file = ok_or_raise(
            dir.new_file(&format!("cols-{}.bin", FILE_N.fetch_add(1, Ordering::Relaxed))),
        );
        let arity = base.inner.arity;
        SpillWriter {
            dir,
            file,
            offset: 0,
            arity,
            width: base.inner.width,
            decode: base.inner.decode,
            encode: base.inner.encode,
            config: base.inner.config.clone(),
            buf_rows: Vec::new(),
            buf_vals: Vec::new(),
            chunks: Vec::new(),
            row_starts: vec![0],
            len: 0,
            col_maxes: vec![0; arity],
        }
    }
}

impl<E> SpillWriter<E> {
    /// Rows written so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no row has been written yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub(crate) fn last_row(&self) -> Option<Vec<u32>> {
        let n = self.buf_vals.len();
        if n > 0 {
            Some(self.buf_rows[(n - 1) * self.arity..].to_vec())
        } else {
            self.chunks.last().map(|c| c.last_row.clone())
        }
    }

    /// Append the next row (strictly ascending; debug-asserted by the
    /// builder driving this writer). A failed chunk write (after retries)
    /// raises a [`QueryAbort::Storage`] caught at the evaluation boundary.
    pub fn push(&mut self, row: &[u32], val: E) {
        debug_assert_eq!(row.len(), self.arity);
        for (m, &v) in self.col_maxes.iter_mut().zip(row) {
            *m = (*m).max(v);
        }
        self.buf_rows.extend_from_slice(row);
        self.buf_vals.push(val);
        self.len += 1;
        if self.buf_vals.len() >= self.config.chunk_rows.max(1) {
            ok_or_raise(self.flush());
        }
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        let n = self.buf_vals.len();
        if n == 0 {
            return Ok(());
        }
        let mut bytes = Vec::with_capacity(n * (self.arity * 4 + self.width));
        for &k in &self.buf_rows {
            bytes.extend_from_slice(&k.to_le_bytes());
        }
        for v in &self.buf_vals {
            (self.encode)(v, &mut bytes);
        }
        self.file.append(self.offset, &bytes)?;
        self.chunks.push(ChunkMeta {
            file: Arc::clone(&self.file),
            offset: self.offset,
            rows: n,
            first_row: self.buf_rows[..self.arity].to_vec(),
            last_row: self.buf_rows[(n - 1) * self.arity..].to_vec(),
            checksum: fnv1a64(&bytes),
        });
        self.offset += bytes.len() as u64;
        self.row_starts.push(self.len);
        self.buf_rows.clear();
        self.buf_vals.clear();
        Ok(())
    }

    /// Adopt an untouched chunk of an existing spilled listing by reference:
    /// its rows slot in after everything written so far without any I/O.
    /// Pending buffered rows are flushed first (chunk row counts may vary).
    pub(crate) fn adopt_chunk(&mut self, meta: &ChunkMeta) {
        ok_or_raise(self.flush());
        for (m, &v) in self.col_maxes.iter_mut().zip(&meta.first_row) {
            *m = (*m).max(v);
        }
        for (m, &v) in self.col_maxes.iter_mut().zip(&meta.last_row) {
            *m = (*m).max(v);
        }
        self.len += meta.rows;
        self.row_starts.push(self.len);
        self.chunks.push(meta.clone());
    }

    /// Raise the resident per-column maxima to at least `maxes` (adopted
    /// chunks only reveal their first/last tuples, so a splice folds in the
    /// base listing's maxima wholesale — an upper bound after deletions).
    pub(crate) fn raise_col_maxes(&mut self, maxes: &[u32]) {
        for (m, &v) in self.col_maxes.iter_mut().zip(maxes) {
            *m = (*m).max(v);
        }
    }

    /// Seal the listing.
    pub(crate) fn finish_cols(mut self) -> FileChunkedColumns<E> {
        ok_or_raise(self.flush());
        let window = self.config.window_chunks;
        FileChunkedColumns {
            inner: Arc::new(ColsInner {
                arity: self.arity,
                len: self.len,
                width: self.width,
                decode: self.decode,
                encode: self.encode,
                chunks: self.chunks,
                row_starts: self.row_starts,
                col_maxes: self.col_maxes,
                config: self.config,
                dir: self.dir,
                cache: Mutex::new(Lru::new(window)),
                reads: AtomicU64::new(0),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// FileChunkedLevel: spilled trie levels
// ---------------------------------------------------------------------------

/// One faulted trie-level chunk, gauge-accounted while pinned.
#[derive(Debug)]
struct LevelChunk {
    values: Vec<u32>,
    child: Vec<usize>,
    rows: Vec<usize>,
    bytes: usize,
}

impl Drop for LevelChunk {
    fn drop(&mut self) {
        untrack_pin(self.bytes);
    }
}

#[derive(Debug)]
struct LevelInner {
    len: usize,
    /// Entries per full chunk; a multiple of the head-sample stride, so the
    /// narrowed window of a cold seek never spans two chunks.
    entries: usize,
    file: Arc<SpillFile>,
    #[allow(dead_code)] // held to keep the spill directory alive
    dir: Arc<SpillDir>,
    /// Resident head samples: `heads[k] = values[HEAD_STRIDE * k]`.
    heads: Vec<u32>,
    /// Resident end sentinels (`child[len]` / `rows[len]` are never on disk).
    child_end: usize,
    rows_end: usize,
    /// Per-chunk checksums, verified on fault-in.
    checksums: Vec<u64>,
    cache: Mutex<Lru<LevelChunk>>,
}

/// A trie level spilled to disk in uniform entry chunks, with the
/// head-sample array resident. Implements the same windowed-lub contract as
/// [`crate::storage::VecStorage`] (identical results for every window, hint
/// and bound — the join layer's seek accounting can not tell them apart);
/// a cold seek narrows on the resident heads and faults at most one chunk.
#[derive(Clone, Debug)]
pub struct FileChunkedLevel {
    inner: Arc<LevelInner>,
}

/// On-disk entry width: `values` u32 + `child` u64 + `rows` u64.
const LEVEL_ENTRY_BYTES: usize = 4 + 8 + 8;

impl FileChunkedLevel {
    /// Fault in level chunk `k` or surface a typed storage error — same
    /// injection/retry/checksum/deadline discipline as the listing path.
    fn try_pin(&self, k: usize) -> Result<Arc<LevelChunk>, StorageError> {
        fault::checkpoint();
        let inner = &self.inner;
        let mut cache = inner.cache.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(c) = cache.get(k) {
            return Ok(c);
        }
        let start = k * inner.entries;
        let n = inner.entries.min(inner.len - start);
        let mut buf = vec![0u8; n * LEVEL_ENTRY_BYTES];
        read_chunk_verified(
            &inner.file,
            (start * LEVEL_ENTRY_BYTES) as u64,
            &mut buf,
            k,
            inner.checksums[k],
        )?;
        let (vb, rest) = buf.split_at(n * 4);
        let (cb, rb) = rest.split_at(n * 8);
        let values =
            vb.chunks_exact(4).map(|b| u32::from_le_bytes(b.try_into().unwrap())).collect();
        let child = cb
            .chunks_exact(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()) as usize)
            .collect();
        let rows = rb
            .chunks_exact(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()) as usize)
            .collect();
        let bytes = buf.len();
        track_pin(bytes);
        CHUNK_READS.fetch_add(1, Ordering::Relaxed);
        let chunk = Arc::new(LevelChunk { values, child, rows, bytes });
        cache.insert(k, Arc::clone(&chunk));
        Ok(chunk)
    }

    fn pin(&self, k: usize) -> Arc<LevelChunk> {
        ok_or_raise(self.try_pin(k))
    }

    fn with_entry<R>(&self, j: usize, f: impl FnOnce(&LevelChunk, usize) -> R) -> R {
        let k = j / self.inner.entries;
        let chunk = self.pin(k);
        f(&chunk, j - k * self.inner.entries)
    }

    fn val(&self, j: usize) -> u32 {
        // Head-aligned entries are resident; everything else is one chunk.
        if j.is_multiple_of(HEAD_STRIDE) {
            return self.inner.heads[j / HEAD_STRIDE];
        }
        self.with_entry(j, |c, l| c.values[l])
    }
}

impl PartialEq for FileChunkedLevel {
    fn eq(&self, other: &Self) -> bool {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return true;
        }
        self.inner.len == other.inner.len
            && (0..self.inner.len).all(|j| {
                self.value(j) == other.value(j)
                    && self.child_at(j) == other.child_at(j)
                    && self.row_at(j) == other.row_at(j)
            })
            && self.child_at(self.inner.len) == other.child_at(self.inner.len)
            && self.row_at(self.inner.len) == other.row_at(self.inner.len)
    }
}

impl Eq for FileChunkedLevel {}

impl FileChunkedLevel {
    fn len(&self) -> usize {
        self.inner.len
    }

    fn value(&self, j: usize) -> u32 {
        self.val(j)
    }

    fn child_at(&self, j: usize) -> usize {
        if j == self.inner.len {
            return self.inner.child_end;
        }
        self.with_entry(j, |c, l| c.child[l])
    }

    fn row_at(&self, j: usize) -> usize {
        if j == self.inner.len {
            return self.inner.rows_end;
        }
        self.with_entry(j, |c, l| c.rows[l])
    }

    fn lub_from(&self, (lo, hi): (usize, usize), _hint: usize, bound: u32) -> usize {
        if lo >= hi {
            return hi;
        }
        // Narrow on the resident head samples exactly like the heap kernel;
        // the surviving window spans at most one 64-entry stride, which lies
        // inside one chunk (chunk sizes are multiples of the stride) — the
        // stride-aligned probe at its upper edge is resident.
        let ks = lo.div_ceil(HEAD_STRIDE);
        let ke = hi.div_ceil(HEAD_STRIDE);
        let (mut nlo, mut nhi) = (lo, hi);
        if ks < ke {
            let p = block_lub(&self.inner.heads, ks, ke, bound);
            nlo = if p > ks { HEAD_STRIDE * (p - 1) + 1 } else { lo };
            nhi = if p < ke { (HEAD_STRIDE * p + 1).min(hi) } else { hi };
        }
        // partition_point over [nlo, nhi) by probing — the hint is ignored
        // (it only ever affects speed, never the result).
        let (mut l, mut h) = (nlo, nhi);
        while l < h {
            let mid = (l + h) / 2;
            if self.val(mid) < bound {
                l = mid + 1;
            } else {
                h = mid;
            }
        }
        l
    }
}

// ---------------------------------------------------------------------------
// FactorLevel: the pluggable default level storage
// ---------------------------------------------------------------------------

use crate::storage::VecStorage;

/// The storage of one default [`crate::trie::FactorTrie`] level: heap-backed
/// ([`VecStorage`], what [`LevelStorage::from_parts`] builds) or spilled to
/// disk ([`FileChunkedLevel`], built only by the streaming spill path of a
/// spilled factor's index). Every delegated call is a single enum dispatch
/// in front of the heap kernel, so code that never spills pays one
/// well-predicted branch per storage probe.
#[derive(Debug, Clone)]
pub enum FactorLevel {
    /// Heap-backed arrays with the branch-free galloping kernel.
    Mem(VecStorage),
    /// File-chunked arrays with resident head samples.
    Disk(FileChunkedLevel),
}

impl PartialEq for FactorLevel {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (FactorLevel::Mem(a), FactorLevel::Mem(b)) => a == b,
            (FactorLevel::Disk(a), FactorLevel::Disk(b)) => a == b,
            // Mixed backings compare semantically, entry by entry.
            (a, b) => {
                let n = a.len();
                n == b.len()
                    && (0..=n).all(|j| {
                        (j == n || (a.value(j) == b.value(j) && a.row_at(j) == b.row_at(j)))
                            && a.child_at(j) == b.child_at(j)
                            && a.row_at(j) == b.row_at(j)
                    })
            }
        }
    }
}

impl Eq for FactorLevel {}

impl LevelStorage for FactorLevel {
    fn from_parts(values: Vec<u32>, child: Vec<usize>, rows: Vec<usize>) -> FactorLevel {
        FactorLevel::Mem(VecStorage::from_parts(values, child, rows))
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            FactorLevel::Mem(s) => s.len(),
            FactorLevel::Disk(s) => s.len(),
        }
    }

    #[inline]
    fn value(&self, j: usize) -> u32 {
        match self {
            FactorLevel::Mem(s) => s.value(j),
            FactorLevel::Disk(s) => s.value(j),
        }
    }

    #[inline]
    fn child_at(&self, j: usize) -> usize {
        match self {
            FactorLevel::Mem(s) => s.child_at(j),
            FactorLevel::Disk(s) => s.child_at(j),
        }
    }

    #[inline]
    fn row_at(&self, j: usize) -> usize {
        match self {
            FactorLevel::Mem(s) => s.row_at(j),
            FactorLevel::Disk(s) => s.row_at(j),
        }
    }

    #[inline]
    fn lub_from(&self, window: (usize, usize), hint: usize, bound: u32) -> usize {
        match self {
            FactorLevel::Mem(s) => s.lub_from(window, hint, bound),
            FactorLevel::Disk(s) => s.lub_from(window, hint, bound),
        }
    }
}

// ---------------------------------------------------------------------------
// SpillTrieBuilder: streaming construction of spilled trie levels
// ---------------------------------------------------------------------------

/// One spilled level under streaming construction: a chunk of buffered
/// entries plus the growing resident heads.
struct LevelSpill {
    file: Arc<SpillFile>,
    offset: u64,
    buf_values: Vec<u32>,
    buf_child: Vec<usize>,
    buf_rows: Vec<usize>,
    total: usize,
    heads: Vec<u32>,
    checksums: Vec<u64>,
}

impl LevelSpill {
    fn push_entry(&mut self, value: u32, child_start: usize, row_start: usize, entries: usize) {
        if self.total.is_multiple_of(HEAD_STRIDE) {
            self.heads.push(value);
        }
        self.buf_values.push(value);
        self.buf_child.push(child_start);
        self.buf_rows.push(row_start);
        self.total += 1;
        if self.buf_values.len() >= entries {
            ok_or_raise(self.flush());
        }
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        let n = self.buf_values.len();
        if n == 0 {
            return Ok(());
        }
        let mut bytes = Vec::with_capacity(n * LEVEL_ENTRY_BYTES);
        for &v in &self.buf_values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        for &c in &self.buf_child {
            bytes.extend_from_slice(&(c as u64).to_le_bytes());
        }
        for &r in &self.buf_rows {
            bytes.extend_from_slice(&(r as u64).to_le_bytes());
        }
        self.file.append(self.offset, &bytes)?;
        self.checksums.push(fnv1a64(&bytes));
        self.offset += bytes.len() as u64;
        self.buf_values.clear();
        self.buf_child.clear();
        self.buf_rows.clear();
        Ok(())
    }
}

/// The streaming twin of the crate-internal `TrieBuilder` for spilled
/// factors: rows arrive in ascending order (one faulted chunk at a time) and
/// every level's arrays stream straight back to disk — only the head samples
/// and one chunk of buffering per level stay resident.
pub(crate) struct SpillTrieBuilder {
    levels: Vec<LevelSpill>,
    num_rows: usize,
    dir: Arc<SpillDir>,
    entries: usize,
    window_chunks: usize,
}

impl SpillTrieBuilder {
    pub(crate) fn new(
        arity: usize,
        dir: Arc<SpillDir>,
        entries: usize,
        window_chunks: usize,
    ) -> SpillTrieBuilder {
        static LEVEL_N: AtomicU64 = AtomicU64::new(0);
        let levels = (0..arity)
            .map(|d| LevelSpill {
                file: ok_or_raise(dir.new_file(&format!(
                    "trie-{}-l{d}.bin",
                    LEVEL_N.fetch_add(1, Ordering::Relaxed)
                ))),
                offset: 0,
                buf_values: Vec::new(),
                buf_child: Vec::new(),
                buf_rows: Vec::new(),
                total: 0,
                heads: Vec::new(),
                checksums: Vec::new(),
            })
            .collect();
        SpillTrieBuilder { levels, num_rows: 0, dir, entries, window_chunks }
    }

    /// Mirror of `TrieBuilder::push`: the row's first difference from its
    /// predecessor opens one entry at every level at or below that column.
    pub(crate) fn push(&mut self, row: &[u32], prev: Option<&[u32]>) {
        let arity = self.levels.len();
        debug_assert_eq!(row.len(), arity);
        let start = match prev {
            None => 0,
            Some(p) => {
                debug_assert!(p < row, "spilled trie rows must be strictly ascending");
                row.iter().zip(p).position(|(a, b)| a != b).expect("rows are distinct")
            }
        };
        for (d, &value) in row.iter().enumerate().skip(start) {
            let child_start = if d + 1 < arity { self.levels[d + 1].total } else { self.num_rows };
            let entries = self.entries;
            self.levels[d].push_entry(value, child_start, self.num_rows, entries);
        }
        self.num_rows += 1;
    }

    /// Seal the trie: flush every level's tail chunk and assemble
    /// [`FileChunkedLevel`]s (the end sentinels stay resident, never on
    /// disk).
    pub(crate) fn finish(self) -> crate::trie::FactorTrie {
        let num_rows = self.num_rows;
        let arity = self.levels.len();
        let next_len: Vec<usize> = (0..arity)
            .map(|d| if d + 1 < arity { self.levels[d + 1].total } else { num_rows })
            .collect();
        let levels = self
            .levels
            .into_iter()
            .zip(next_len)
            .map(|(mut ls, end)| {
                ok_or_raise(ls.flush());
                let storage = FactorLevel::Disk(FileChunkedLevel {
                    inner: Arc::new(LevelInner {
                        len: ls.total,
                        entries: self.entries,
                        file: ls.file,
                        dir: Arc::clone(&self.dir),
                        heads: ls.heads,
                        child_end: end,
                        rows_end: num_rows,
                        checksums: ls.checksums,
                        cache: Mutex::new(Lru::new(self.window_chunks)),
                    }),
                });
                crate::trie::TrieLevel::from_storage(storage)
            })
            .collect();
        crate::trie::FactorTrie::from_levels(levels, num_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_bytes_roundtrip() {
        fn rt<E: FixedBytes + PartialEq + std::fmt::Debug>(v: E) {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            assert_eq!(buf.len(), E::WIDTH);
            assert_eq!(E::decode(&buf), v);
        }
        rt(0u32);
        rt(u32::MAX);
        rt(u64::MAX - 1);
        rt(-17i64);
        rt(3.5f64);
        rt(f64::NEG_INFINITY);
        rt(true);
        rt(false);
        rt(255u8);
    }

    #[test]
    fn writer_chunks_and_rereads() {
        let cfg = SpillConfig { chunk_rows: 3, window_chunks: 2, ..SpillConfig::default() };
        let mut w: SpillWriter<u64> = SpillWriter::new(2, cfg);
        for i in 0..10u32 {
            w.push(&[i, i + 1], u64::from(i) * 10);
        }
        let cols = w.finish_cols();
        assert_eq!(cols.len(), 10);
        assert_eq!(cols.num_chunks(), 4); // 3+3+3+1
        for i in 0..10u32 {
            assert_eq!(cols.col(i as usize, 0), i);
            assert_eq!(cols.col(i as usize, 1), i + 1);
            assert_eq!(cols.value_owned(i as usize), u64::from(i) * 10);
        }
        assert_eq!(cols.col_max(0), Some(9));
        assert_eq!(cols.col_max(1), Some(10));
        // The LRU window bounds residency to at most 2 chunks.
        let stats = cols.stats();
        assert!(stats.reads >= 4, "each chunk faulted at least once");
        assert!(cols.inner.cache.lock().unwrap().len() <= 2);
    }

    #[test]
    fn spill_dir_removed_on_drop() {
        let cfg = SpillConfig { chunk_rows: 2, ..SpillConfig::default() };
        let mut w: SpillWriter<u64> = SpillWriter::new(1, cfg);
        w.push(&[1], 1);
        w.push(&[2], 2);
        let cols = w.finish_cols();
        let path = cols.spill_dir().path().to_path_buf();
        assert!(path.exists());
        let clone = cols.clone();
        drop(cols);
        assert!(path.exists(), "clone still holds the directory");
        drop(clone);
        assert!(!path.exists(), "last handle removes the spill directory");
    }

    #[test]
    fn partition_cuts_on_chunk_boundaries() {
        let cfg = SpillConfig { chunk_rows: 4, ..SpillConfig::default() };
        let mut w: SpillWriter<u64> = SpillWriter::new(1, cfg);
        for i in 0..32u32 {
            w.push(&[i / 2], 1); // two rows per value: 16 distinct values
        }
        let cols = w.finish_cols();
        let ranges = cols.partition_first(4);
        assert!(!ranges.is_empty());
        assert_eq!(ranges[0].0, 0);
        assert_eq!(ranges.last().unwrap().1, u32::MAX);
        for w2 in ranges.windows(2) {
            assert_eq!(w2[0].1, w2[1].0);
        }
        // Every cut falls on a chunk's first value.
        for &(_, hi) in &ranges[..ranges.len() - 1] {
            assert!(
                (0..cols.num_chunks()).any(|k| cols.chunk_first_row(k)[0] == hi),
                "cut {hi} not on a chunk boundary"
            );
        }
    }

    #[test]
    fn injected_transient_fault_is_retried_and_absorbed() {
        let cfg = SpillConfig { chunk_rows: 4, window_chunks: 1, ..SpillConfig::default() };
        let mut w: SpillWriter<u64> = SpillWriter::new(1, cfg);
        for i in 0..8u32 {
            w.push(&[i], u64::from(i));
        }
        let cols = w.finish_cols();
        let retries_before = fault::io_retries();
        let _g = fault::FaultPlan::seeded(5).fail_transient(1.0).install_local();
        for i in 0..8usize {
            assert_eq!(cols.value_owned(i), i as u64, "retry absorbs the transient failure");
        }
        assert!(fault::io_retries() > retries_before, "each faulted read counted a retry");
    }

    #[test]
    fn injected_corruption_surfaces_typed_error() {
        let cfg = SpillConfig { chunk_rows: 4, window_chunks: 1, ..SpillConfig::default() };
        let mut w: SpillWriter<u64> = SpillWriter::new(1, cfg);
        for i in 0..4u32 {
            w.push(&[i], 7);
        }
        let cols = w.finish_cols();
        let corrupt_before = fault::corrupt_chunks();
        let _g = fault::FaultPlan::seeded(5).corrupt(1.0).install_local();
        let r = fault::catch_abort(|| cols.value_owned(0));
        match r {
            Err(QueryAbort::Storage(StorageError::Corrupt { chunk: 0, .. })) => {}
            other => panic!("expected a corrupt-chunk abort, got {other:?}"),
        }
        assert!(fault::corrupt_chunks() > corrupt_before);
        drop(_g);
        assert_eq!(cols.value_owned(0), 7, "the data at rest was never harmed");
    }

    #[test]
    fn injected_hard_failure_surfaces_typed_io_error() {
        let cfg = SpillConfig { chunk_rows: 4, window_chunks: 1, ..SpillConfig::default() };
        let mut w: SpillWriter<u64> = SpillWriter::new(1, cfg);
        for i in 0..4u32 {
            w.push(&[i], 7);
        }
        let cols = w.finish_cols();
        let _g = fault::FaultPlan::seeded(5).fail_hard(1.0).install_local();
        match fault::catch_abort(|| cols.value_owned(0)) {
            Err(QueryAbort::Storage(StorageError::Io { op: "read chunk", attempts, .. })) => {
                assert_eq!(attempts, MAX_IO_ATTEMPTS);
            }
            other => panic!("expected a hard I/O abort, got {other:?}"),
        }
    }

    #[test]
    fn deadline_checkpoint_fires_at_chunk_fault_in() {
        let cfg = SpillConfig { chunk_rows: 2, window_chunks: 1, ..SpillConfig::default() };
        let mut w: SpillWriter<u64> = SpillWriter::new(1, cfg);
        for i in 0..4u32 {
            w.push(&[i], 1);
        }
        let cols = w.finish_cols();
        let ctl = fault::AbortCtl {
            deadline: Some(fault::Deadline::at(std::time::Instant::now())),
            cancel: None,
        };
        let _g = fault::install_ctl(ctl);
        assert_eq!(
            fault::catch_abort(|| cols.value_owned(0)),
            Err(QueryAbort::DeadlineExceeded),
            "an expired deadline aborts at the fault-in checkpoint"
        );
    }

    #[test]
    fn gc_sweeps_dead_pid_spill_dirs_only() {
        let base = std::env::temp_dir().join(format!("faq-gc-test-{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        // A pid far above any real one (the kernel's default pid_max is far
        // below u32::MAX), so /proc/<pid> cannot exist.
        let dead = base.join("faq-spill-4294967294-0");
        let mine = base.join(format!("faq-spill-{}-999", std::process::id()));
        let noise = base.join("unrelated-dir");
        for d in [&dead, &mine, &noise] {
            std::fs::create_dir_all(d).unwrap();
        }
        let removed = gc_stale_spill_dirs(Some(&base));
        assert_eq!(removed, 1, "exactly the dead process's directory is swept");
        assert!(!dead.exists());
        assert!(mine.exists(), "the current process's spill dirs survive");
        assert!(noise.exists(), "non-spill directories are never touched");
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn pinned_gauge_rises_and_falls() {
        let cfg = SpillConfig { chunk_rows: 8, window_chunks: 2, ..SpillConfig::default() };
        let mut w: SpillWriter<u64> = SpillWriter::new(1, cfg);
        for i in 0..64u32 {
            w.push(&[i], 1);
        }
        let cols = w.finish_cols();
        let before = pinned_bytes();
        for i in 0..64usize {
            let _ = cols.col(i, 0);
        }
        assert!(pinned_bytes() > before, "chunks pinned while reading");
        assert!(peak_pinned_bytes() >= pinned_bytes());
        drop(cols);
        assert!(pinned_bytes() <= before, "dropping the listing releases its pins");
    }
}
