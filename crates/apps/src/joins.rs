//! Natural join queries as FAQ instances (Table 1, row "Joins").
//!
//! A natural join is the quantifier-free FAQ over the Boolean semiring — or,
//! more usefully for benchmarking, over the counting semiring where the output
//! values are join multiplicities. InsideOut with all variables free runs the
//! guard phase and the final OutsideIn join within the fractional-hypertree
//! bound `O~(N^{fhtw} + ‖ϕ‖)`; the classic triangle query exhibits the
//! `N^{3/2}` AGM bound against the `N²` of any pairwise join plan.

use faq_core::{Engine, ExecPolicy};
use faq_core::{FaqError, FaqOutput, FaqQuery, Planner, PreparedQuery};
use faq_factor::{DeltaFactor, Domains, Factor};
use faq_hypergraph::Var;
use faq_semiring::{CountSumProd, SingleSemiringDomain};
use rand::Rng;

/// A named relation: a list of tuples over a variable schema.
#[derive(Debug, Clone)]
pub struct Relation {
    /// The schema (join variables).
    pub vars: Vec<Var>,
    /// The tuples (distinct).
    pub tuples: Vec<Vec<u32>>,
}

impl Relation {
    /// Build a relation, deduplicating tuples.
    pub fn new(vars: Vec<Var>, mut tuples: Vec<Vec<u32>>) -> Relation {
        tuples.sort();
        tuples.dedup();
        Relation { vars, tuples }
    }

    /// Convert to a counting factor (every tuple has multiplicity 1).
    pub fn to_factor(&self) -> Factor<u64> {
        Factor::new(self.vars.clone(), self.tuples.iter().map(|t| (t.clone(), 1u64)).collect())
            .expect("relation tuples are distinct")
    }
}

/// A natural join query over a set of relations.
#[derive(Debug, Clone)]
pub struct NaturalJoin {
    /// Per-variable domain sizes.
    pub domains: Domains,
    /// The relations.
    pub relations: Vec<Relation>,
    /// Output variable order (the union of the schemas).
    pub output_order: Vec<Var>,
}

impl NaturalJoin {
    /// Build the FAQ instance: all variables free, counting semiring.
    pub fn to_faq(&self) -> Result<FaqQuery<SingleSemiringDomain<CountSumProd>>, FaqError> {
        FaqQuery::new(
            SingleSemiringDomain::new(CountSumProd),
            self.domains.clone(),
            self.output_order.clone(),
            vec![],
            self.relations.iter().map(|r| r.to_factor()).collect(),
        )
    }

    /// Evaluate with InsideOut (worst-case-optimal join + guards).
    pub fn evaluate(&self) -> Result<FaqOutput<u64>, FaqError> {
        let q = self.to_faq()?;
        let sigma = q.ordering();
        Engine::sequential().evaluate_with_order(&q, &sigma)
    }

    /// Evaluate on the parallel engine: the guard joins and the output join
    /// are chunked across the policy's worker pool. The output factor is
    /// bit-identical to [`NaturalJoin::evaluate`].
    pub fn evaluate_par(&self, policy: &ExecPolicy) -> Result<FaqOutput<u64>, FaqError> {
        let q = self.to_faq()?;
        let sigma = q.ordering();
        Engine::with_policy(policy.clone()).evaluate_with_order(&q, &sigma)
    }

    /// The join size (number of output tuples).
    pub fn count(&self) -> Result<u64, FaqError> {
        Ok(self.evaluate()?.factor.len() as u64)
    }

    /// Prepare the join for repeated evaluation with the default planner:
    /// cost-based ordering choice plus cached aligned/indexed inputs, so
    /// each [`PreparedQuery::evaluate`] skips planning, alignment, and index
    /// builds — the serving path.
    pub fn prepare(&self) -> Result<PreparedQuery<SingleSemiringDomain<CountSumProd>>, FaqError> {
        self.prepare_with(&Planner::default())
    }

    /// [`NaturalJoin::prepare`] under an explicit planner configuration.
    pub fn prepare_with(
        &self,
        planner: &Planner,
    ) -> Result<PreparedQuery<SingleSemiringDomain<CountSumProd>>, FaqError> {
        planner.prepare(&self.to_faq()?)
    }

    /// A delta batch inserting `tuples` into relation `slot` with
    /// multiplicity 1, ready for [`PreparedQuery::apply_delta`] on a handle
    /// from [`NaturalJoin::prepare`]. Tuples already present keep
    /// multiplicity 1 (set semantics, like [`Relation::new`]); duplicates in
    /// the batch are dropped.
    ///
    /// # Panics
    ///
    /// If a tuple's arity differs from the relation's schema.
    pub fn insert_delta(&self, slot: usize, tuples: &[Vec<u32>]) -> DeltaFactor<u64> {
        let mut tuples: Vec<Vec<u32>> = tuples.to_vec();
        tuples.sort();
        tuples.dedup();
        DeltaFactor::inserts(
            self.relations[slot].vars.clone(),
            tuples.into_iter().map(|t| (t, 1u64)).collect(),
        )
        .expect("deduplicated tuples over the relation schema")
    }

    /// A delta batch deleting `tuples` from relation `slot` — the incremental
    /// counterpart of rebuilding the relation without them. Deleting an
    /// absent tuple is a no-op.
    ///
    /// # Panics
    ///
    /// If a tuple's arity differs from the relation's schema.
    pub fn delete_delta(&self, slot: usize, tuples: &[Vec<u32>]) -> DeltaFactor<u64> {
        let mut tuples: Vec<Vec<u32>> = tuples.to_vec();
        tuples.sort();
        tuples.dedup();
        DeltaFactor::deletes(self.relations[slot].vars.clone(), tuples)
            .expect("deduplicated tuples over the relation schema")
    }
}

/// The triangle query `R(a,b) ⋈ S(b,c) ⋈ T(a,c)` over a single edge list.
pub fn triangle_query(edges: &[(u32, u32)], num_nodes: u32) -> NaturalJoin {
    let a = Var(0);
    let b = Var(1);
    let c = Var(2);
    let tuples: Vec<Vec<u32>> = edges.iter().map(|&(x, y)| vec![x, y]).collect();
    NaturalJoin {
        domains: Domains::uniform(3, num_nodes),
        relations: vec![
            Relation::new(vec![a, b], tuples.clone()),
            Relation::new(vec![b, c], tuples.clone()),
            Relation::new(vec![a, c], tuples),
        ],
        output_order: vec![a, b, c],
    }
}

/// The length-`k` path join `R(x0,x1) ⋈ R(x1,x2) ⋈ … ⋈ R(x_{k−1},x_k)`.
pub fn path_query(edges: &[(u32, u32)], num_nodes: u32, k: usize) -> NaturalJoin {
    assert!(k >= 1);
    let tuples: Vec<Vec<u32>> = edges.iter().map(|&(x, y)| vec![x, y]).collect();
    let relations: Vec<Relation> = (0..k)
        .map(|i| Relation::new(vec![Var(i as u32), Var(i as u32 + 1)], tuples.clone()))
        .collect();
    NaturalJoin {
        domains: Domains::uniform(k + 1, num_nodes),
        relations,
        output_order: (0..=k as u32).map(Var).collect(),
    }
}

/// The 4-cycle join `R(a,b) ⋈ S(b,c) ⋈ T(c,d) ⋈ U(d,a)`.
pub fn four_cycle_query(edges: &[(u32, u32)], num_nodes: u32) -> NaturalJoin {
    let tuples: Vec<Vec<u32>> = edges.iter().map(|&(x, y)| vec![x, y]).collect();
    let mk = |i: u32, j: u32| Relation::new(vec![Var(i), Var(j)], tuples.clone());
    NaturalJoin {
        domains: Domains::uniform(4, num_nodes),
        relations: vec![mk(0, 1), mk(1, 2), mk(2, 3), mk(3, 0)],
        output_order: (0..4).map(Var).collect(),
    }
}

/// A random graph with `n` nodes and `m` distinct directed edges.
pub fn random_graph<R: Rng>(n: u32, m: usize, rng: &mut R) -> Vec<(u32, u32)> {
    let mut edges = std::collections::BTreeSet::new();
    let cap = (n as u64 * (n as u64 - 1)).min(m as u64);
    while (edges.len() as u64) < cap {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            edges.insert((a, b));
        }
    }
    edges.into_iter().collect()
}

/// The AGM-hard "lollipop" instance for the triangle query: `N/2` edges out
/// of a hub plus a matching, keeping every pairwise join of size `Θ(N²)`
/// while the triangle output stays tiny.
pub fn skewed_triangle_instance(n: u32) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    // A hub (node 0) connected both ways to everyone: pairwise R ⋈ S blows up.
    for i in 1..n {
        edges.push((0, i));
        edges.push((i, 0));
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use faq_join::pairwise_hash_join;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn triangle_on_k4() {
        // K4 with both edge directions: each unordered triangle appears 6
        // ways; K4 has 4 triangles ⇒ 24 output tuples.
        let mut edges = Vec::new();
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    edges.push((i, j));
                }
            }
        }
        let q = triangle_query(&edges, 4);
        assert_eq!(q.count().unwrap(), 24);
    }

    #[test]
    fn triangle_matches_hash_join_baseline() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let edges = random_graph(8, 20, &mut rng);
            let q = triangle_query(&edges, 8);
            let ours = q.evaluate().unwrap().factor;
            let factors: Vec<Factor<u64>> = q.relations.iter().map(|r| r.to_factor()).collect();
            let refs: Vec<&Factor<u64>> = factors.iter().collect();
            let hj = pairwise_hash_join(&refs, |a, b| a * b, |&x| x == 0);
            let aligned = hj.align_to(&[Var(0), Var(1), Var(2)]);
            assert_eq!(ours, aligned);
        }
    }

    #[test]
    fn path_join_counts() {
        // Path graph 0->1->2: 2-paths = {(0,1,2)}.
        let q = path_query(&[(0, 1), (1, 2)], 3, 2);
        let out = q.evaluate().unwrap().factor;
        assert_eq!(out.len(), 1);
        assert_eq!(out.get(&[0, 1, 2]), Some(&1));
    }

    #[test]
    fn four_cycle_on_square() {
        // The 4-cycle 0->1->2->3->0 contains exactly one directed 4-cycle per
        // rotation: bindings (0,1,2,3), (1,2,3,0), (2,3,0,1), (3,0,1,2).
        let q = four_cycle_query(&[(0, 1), (1, 2), (2, 3), (3, 0)], 4);
        assert_eq!(q.count().unwrap(), 4);
    }

    #[test]
    fn skewed_instance_has_no_triangles_through_pairs() {
        // The hub instance has no directed triangle with distinct nodes other
        // than via the hub twice — LFTJ output stays small.
        let edges = skewed_triangle_instance(64);
        let q = triangle_query(&edges, 64);
        let out = q.evaluate().unwrap();
        // Every triangle needs 3 edges among {a,b,c}; only pairs (0,i) exist,
        // so a triangle must use 0 twice — impossible with distinct roles? No:
        // (a,b,c) = (0,i,0) is excluded since (c,a)=(0,0) is no edge, but
        // (i,0,j)? needs (i,0),(0,j),(i,j): (i,j) missing. Triangles: only
        // those with a repeated node value, e.g. a=c: needs (a,b),(b,a),(a,a)—
        // (a,a) missing. Hence zero.
        assert_eq!(out.factor.len(), 0);
        // ... while R ⋈ S alone (through the hub) has ~N² tuples — that is
        // exactly the pairwise-join blow-up the AGM bound avoids.
        let r = q.relations[0].to_factor();
        let s = q.relations[1].to_factor();
        let rs = faq_join::baseline::hash_join_pair(&r, &s, |a, b| a * b, |&x| x == 0);
        assert!(rs.len() as u64 >= 63 * 63);
    }

    #[test]
    fn empty_relation_empty_join() {
        let q = triangle_query(&[], 4);
        assert_eq!(q.count().unwrap(), 0);
    }

    #[test]
    fn prepared_join_matches_cold_evaluation() {
        let mut rng = StdRng::seed_from_u64(11);
        let edges = random_graph(12, 40, &mut rng);
        let q = triangle_query(&edges, 12);
        let cold = q.evaluate().unwrap();
        let prepared = q.prepare_with(&faq_core::Planner::sequential()).unwrap();
        for _ in 0..3 {
            assert_eq!(prepared.evaluate().unwrap().factor, cold.factor);
        }
    }

    #[test]
    fn incremental_deltas_match_rebuild() {
        let mut rng = StdRng::seed_from_u64(5);
        let edges = random_graph(12, 50, &mut rng);
        let q = triangle_query(&edges, 12);
        let planner = faq_core::Planner::sequential();
        let mut prepared = q.prepare_with(&planner).unwrap();
        let mut oracle = q.prepare_with(&planner).unwrap();
        let mut tuples: Vec<Vec<u32>> = edges.iter().map(|&(x, y)| vec![x, y]).collect();

        // Insert two fresh edges into R(a,b) only.
        let new_edges = [vec![3u32, 7], vec![9, 2]];
        let got = prepared.apply_delta(0, &q.insert_delta(0, &new_edges)).unwrap();
        tuples.extend(new_edges.iter().cloned());
        oracle
            .update_factor(0, Relation::new(vec![Var(0), Var(1)], tuples.clone()).to_factor())
            .unwrap();
        assert_eq!(got.factor, oracle.evaluate().unwrap().factor);

        // Delete one of them again; deltas accumulate on the same handle.
        let got = prepared.apply_delta(0, &q.delete_delta(0, &[vec![3, 7]])).unwrap();
        tuples.retain(|t| t != &[3, 7]);
        oracle.update_factor(0, Relation::new(vec![Var(0), Var(1)], tuples).to_factor()).unwrap();
        assert_eq!(got.factor, oracle.evaluate().unwrap().factor);
    }

    #[test]
    fn parallel_evaluation_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(7);
        let edges = random_graph(16, 80, &mut rng);
        let q = triangle_query(&edges, 16);
        let seq = q.evaluate().unwrap();
        for threads in [1usize, 2, 4] {
            let policy = ExecPolicy::sequential().threads(threads).min_chunk_rows(1);
            let par = q.evaluate_par(&policy).unwrap();
            assert_eq!(par.factor, seq.factor, "threads {threads}");
        }
    }
}
