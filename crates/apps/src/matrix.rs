//! Matrix computations as FAQ instances (Table 1, rows MCM and DFT).
//!
//! * **Matrix chain multiplication** (paper Example 1.1, Appendix E): the
//!   product `A_1 ⋯ A_n` is the FAQ-SS query
//!   `ϕ(x_0, x_n) = Σ_{x_1..x_{n−1}} Π_i ψ_i(x_{i−1}, x_i)` over `(ℝ, +, ×)`.
//!   Choosing the elimination order of the inner variables *is* choosing the
//!   parenthesization; the textbook `O(n³)` dynamic program emerges as a
//!   variable-ordering optimizer with data-dependent (AGM-style) costs.
//! * **DFT** (Table 1 row DFT, Aji–McEliece): over `Z_{p^m}`, splitting
//!   indices into base-`p` digits turns the Fourier matrix into a product of
//!   `O(m²)` twiddle factors `ψ_{jk}(x_j, y_k) = e^{2πi x_j y_k / p^{m−j−k}}`
//!   (trivial when `j+k ≥ m`); InsideOut eliminating one digit at a time *is*
//!   the FFT, `O(N log N)` against the naive `O(N²)`.

use faq_core::{Engine, FaqError, FaqQuery, VarAgg};
use faq_factor::{Domains, Factor};
use faq_hypergraph::Var;
use faq_semiring::{Complex64, ComplexSumProd, F64SumProd, SingleSemiringDomain};
use rand::Rng;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// A random matrix with entries in `(0, 1)`.
    pub fn random<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(0.01..1.0))
    }

    /// Entry access.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Entry assignment.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Classic `O(rows·cols·inner)` product.
    pub fn multiply(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows);
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.data[r * other.cols + c] += a * other.get(k, c);
                }
            }
        }
        out
    }

    /// Max absolute entry difference.
    pub fn max_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// The factor of the matrix as `ψ(row_var, col_var)`.
    pub fn to_factor(&self, row_var: Var, col_var: Var) -> Factor<f64> {
        Factor::dense(
            vec![row_var, col_var],
            &[self.rows as u32, self.cols as u32],
            |t| self.get(t[0] as usize, t[1] as usize),
            |&x| x == 0.0,
        )
        .expect("distinct vars")
    }
}

/// A chain of compatible matrices.
#[derive(Debug, Clone)]
pub struct MatrixChain {
    /// `matrices[i]` has shape `dims[i] × dims[i+1]`.
    pub matrices: Vec<Matrix>,
}

impl MatrixChain {
    /// The dimension vector `p_0, …, p_n`.
    pub fn dims(&self) -> Vec<usize> {
        let mut d = vec![self.matrices[0].rows];
        for m in &self.matrices {
            assert_eq!(m.rows, *d.last().unwrap(), "incompatible chain");
            d.push(m.cols);
        }
        d
    }

    /// The FAQ-SS instance `ϕ(x_0, x_n) = Σ_{inner} Π ψ_i`.
    pub fn to_faq(&self) -> Result<FaqQuery<SingleSemiringDomain<F64SumProd>>, FaqError> {
        let n = self.matrices.len();
        let dims = self.dims();
        let domains = Domains::new(dims.iter().map(|&d| d as u32).collect());
        let factors: Vec<Factor<f64>> = self
            .matrices
            .iter()
            .enumerate()
            .map(|(i, m)| m.to_factor(Var(i as u32), Var(i as u32 + 1)))
            .collect();
        let free = vec![Var(0), Var(n as u32)];
        let bound: Vec<(Var, VarAgg)> = (1..n)
            .map(|i| (Var(i as u32), VarAgg::Semiring(SingleSemiringDomain::<F64SumProd>::OP)))
            .collect();
        FaqQuery::new(SingleSemiringDomain::new(F64SumProd), domains, free, bound, factors)
    }

    /// Evaluate the chain product via InsideOut along `order` (an ordering of
    /// the FAQ variables; use [`MatrixChain::dp_variable_ordering`] for the
    /// optimal one).
    pub fn evaluate_insideout(&self, order: &[Var]) -> Result<Matrix, FaqError> {
        let q = self.to_faq()?;
        let out = Engine::sequential().evaluate_with_order(&q, order)?;
        let dims = self.dims();
        let n = self.matrices.len();
        let mut m = Matrix::zeros(dims[0], dims[n]);
        for (row, val) in out.factor.iter() {
            m.set(row[0] as usize, row[1] as usize, *val);
        }
        Ok(m)
    }

    /// Evaluate with the query's own ordering.
    pub fn evaluate(&self) -> Result<Matrix, FaqError> {
        let q = self.to_faq()?;
        let out = Engine::sequential().evaluate(&q)?;
        let dims = self.dims();
        let n = self.matrices.len();
        let mut m = Matrix::zeros(dims[0], dims[n]);
        for (row, val) in out.factor.iter() {
            m.set(row[0] as usize, row[1] as usize, *val);
        }
        Ok(m)
    }

    /// Direct left-to-right evaluation (the worst parenthesization for skewed
    /// chains).
    pub fn evaluate_left_to_right(&self) -> Matrix {
        let mut acc = self.matrices[0].clone();
        for m in &self.matrices[1..] {
            acc = acc.multiply(m);
        }
        acc
    }

    /// The textbook `O(n³)` matrix-chain DP: returns `(cost, split)` where
    /// `split[i][j]` is the optimal top split of the product `A_i ⋯ A_{j−1}`
    /// and `cost` the minimal scalar multiplication count.
    pub fn dp_optimal(&self) -> (u64, Vec<Vec<usize>>) {
        let dims = self.dims();
        let n = self.matrices.len();
        let mut cost = vec![vec![0u64; n + 1]; n + 1];
        let mut split = vec![vec![0usize; n + 1]; n + 1];
        for len in 2..=n {
            for i in 0..=n - len {
                let j = i + len;
                cost[i][j] = u64::MAX;
                for k in i + 1..j {
                    let c = cost[i][k] + cost[k][j] + (dims[i] * dims[k] * dims[j]) as u64;
                    if c < cost[i][j] {
                        cost[i][j] = c;
                        split[i][j] = k;
                    }
                }
            }
        }
        (cost[0][n], split)
    }

    /// The FAQ variable ordering corresponding to the optimal parenthesization
    /// (paper Appendix E): free endpoints first, then inner variables with
    /// the *top* split first — so elimination from the back performs the
    /// innermost multiplications first.
    pub fn dp_variable_ordering(&self) -> Vec<Var> {
        let n = self.matrices.len();
        let (_, split) = self.dp_optimal();
        let mut order = vec![Var(0), Var(n as u32)];
        fn rec(split: &[Vec<usize>], i: usize, j: usize, out: &mut Vec<Var>) {
            if j - i <= 1 {
                return;
            }
            let k = split[i][j];
            out.push(Var(k as u32));
            rec(split, i, k, out);
            rec(split, k, j, out);
        }
        rec(&split, 0, n, &mut order);
        order
    }

    /// Evaluate using the textbook DP order directly on dense matrices.
    pub fn evaluate_dp(&self) -> Matrix {
        let (_, split) = self.dp_optimal();
        fn rec(ms: &[Matrix], split: &[Vec<usize>], i: usize, j: usize) -> Matrix {
            if j - i == 1 {
                return ms[i].clone();
            }
            let k = split[i][j];
            rec(ms, split, i, k).multiply(&rec(ms, split, k, j))
        }
        rec(&self.matrices, &split, 0, self.matrices.len())
    }
}

/// Naive `O(N²)` DFT of `input` (length `N`), returning `X_x = Σ_y b_y ω^{xy}`.
pub fn naive_dft(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len() as u64;
    (0..n)
        .map(|x| {
            let mut acc = Complex64::ZERO;
            for (y, b) in input.iter().enumerate() {
                acc += *b * Complex64::root_of_unity(n, x * y as u64);
            }
            acc
        })
        .collect()
}

/// The DFT over `Z_{p^m}` as a FAQ-SS instance, evaluated by InsideOut —
/// the FFT in disguise (`O(N log N)` semiring operations).
///
/// `input.len()` must equal `p^m`. Output index `x` is the plain integer
/// frequency (digits recombined).
pub fn dft_faq(p: u32, m: usize, input: &[Complex64]) -> Result<Vec<Complex64>, FaqError> {
    assert!(p >= 2 && m >= 1);
    let n: u64 = (p as u64).pow(m as u32);
    assert_eq!(input.len() as u64, n, "input length must be p^m");

    // Variables: x-digits 0..m (free), y-digits m..2m (bound).
    let domains = Domains::uniform(2 * m, p);
    let xv = |j: usize| Var(j as u32);
    let yv = |k: usize| Var((m + k) as u32);

    let mut factors: Vec<Factor<Complex64>> = Vec::new();
    // The input vector as a factor over the y-digits (little-endian digits).
    let y_schema: Vec<Var> = (0..m).map(yv).collect();
    let sizes = vec![p; m];
    let b = Factor::dense(
        y_schema,
        &sizes,
        |digits| {
            let mut idx: u64 = 0;
            for (k, &d) in digits.iter().enumerate() {
                idx += d as u64 * (p as u64).pow(k as u32);
            }
            input[idx as usize]
        },
        |z| *z == Complex64::ZERO,
    )
    .expect("distinct y-digit variables");
    factors.push(b);
    // Twiddle factors ψ_{jk}(x_j, y_k) = e^{2πi x_j y_k / p^{m−j−k}}, j+k < m.
    for j in 0..m {
        for k in 0..m - j {
            let modulus = (p as u64).pow((m - j - k) as u32);
            let f = Factor::dense(
                vec![xv(j), yv(k)],
                &[p, p],
                |t| Complex64::root_of_unity(modulus, t[0] as u64 * t[1] as u64),
                |_| false, // roots of unity are never zero
            )
            .expect("distinct twiddle variables");
            factors.push(f);
        }
    }

    let free: Vec<Var> = (0..m).map(xv).collect();
    let bound: Vec<(Var, VarAgg)> = (0..m)
        .map(|k| (yv(k), VarAgg::Semiring(SingleSemiringDomain::<ComplexSumProd>::OP)))
        .collect();
    let q = FaqQuery::new(
        SingleSemiringDomain::new(ComplexSumProd::default()),
        domains,
        free,
        bound,
        factors,
    )?;
    let out = Engine::sequential().evaluate(&q)?;

    let mut result = vec![Complex64::ZERO; n as usize];
    for (row, val) in out.factor.iter() {
        let mut idx: u64 = 0;
        for (j, &d) in row.iter().enumerate() {
            idx += d as u64 * (p as u64).pow(j as u32);
        }
        result[idx as usize] = *val;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn matrix_product_basics() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        let b = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64);
        let p = a.multiply(&b);
        // [[0,1,2],[3,4,5]] * [[0,1],[2,3],[4,5]] = [[10,13],[28,40]].
        assert_eq!(p.get(0, 0), 10.0);
        assert_eq!(p.get(0, 1), 13.0);
        assert_eq!(p.get(1, 0), 28.0);
        assert_eq!(p.get(1, 1), 40.0);
    }

    #[test]
    fn chain_via_faq_matches_direct() {
        let mut rng = StdRng::seed_from_u64(10);
        let chain = MatrixChain {
            matrices: vec![
                Matrix::random(3, 4, &mut rng),
                Matrix::random(4, 2, &mut rng),
                Matrix::random(2, 5, &mut rng),
            ],
        };
        let direct = chain.evaluate_left_to_right();
        let faq = chain.evaluate().unwrap();
        assert!(faq.max_diff(&direct) < 1e-9, "{}", faq.max_diff(&direct));
        let dp = chain.evaluate_dp();
        assert!(dp.max_diff(&direct) < 1e-9);
    }

    #[test]
    fn dp_picks_cheap_split_on_skewed_dims() {
        let mut rng = StdRng::seed_from_u64(11);
        // dims 1 × N × 1 × N: optimal is A1 (A2 A3) with cost N + N = 2N,
        // versus (A1 A2) A3 costing N + N² .
        let n = 16;
        let chain = MatrixChain {
            matrices: vec![
                Matrix::random(1, n, &mut rng),
                Matrix::random(n, 1, &mut rng),
                Matrix::random(1, n, &mut rng),
            ],
        };
        let (cost, split) = chain.dp_optimal();
        assert_eq!(split[0][3], 2, "top split groups (A1 A2) first? no: k=2 means (A1A2)(A3)");
        assert_eq!(cost, (n + n) as u64);
        // And the FAQ evaluation along the DP ordering matches.
        let order = chain.dp_variable_ordering();
        let got = chain.evaluate_insideout(&order).unwrap();
        assert!(got.max_diff(&chain.evaluate_left_to_right()) < 1e-9);
    }

    #[test]
    fn dp_ordering_is_a_valid_permutation() {
        let mut rng = StdRng::seed_from_u64(12);
        let chain = MatrixChain {
            matrices: vec![
                Matrix::random(2, 3, &mut rng),
                Matrix::random(3, 4, &mut rng),
                Matrix::random(4, 2, &mut rng),
                Matrix::random(2, 2, &mut rng),
            ],
        };
        let order = chain.dp_variable_ordering();
        let mut sorted: Vec<u32> = order.iter().map(|v| v.0).collect();
        sorted.sort();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sparse_matrices_stay_sparse_in_faq() {
        // Zero entries are dropped from the listing representation.
        let a = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        let f = a.to_factor(Var(0), Var(1));
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn dft_matches_naive_p2() {
        let mut rng = StdRng::seed_from_u64(13);
        for m in 1..=4usize {
            let n = 1usize << m;
            let input: Vec<Complex64> = (0..n)
                .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let fast = dft_faq(2, m, &input).unwrap();
            let slow = naive_dft(&input);
            for (a, b) in fast.iter().zip(&slow) {
                assert!(a.approx_eq(b, 1e-6), "m={m}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn dft_matches_naive_p3() {
        let mut rng = StdRng::seed_from_u64(14);
        let m = 2usize;
        let n = 9usize;
        let input: Vec<Complex64> =
            (0..n).map(|_| Complex64::new(rng.gen_range(-1.0..1.0), 0.0)).collect();
        let fast = dft_faq(3, m, &input).unwrap();
        let slow = naive_dft(&input);
        for (a, b) in fast.iter().zip(&slow) {
            assert!(a.approx_eq(b, 1e-6), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn dft_of_impulse_is_flat() {
        // DFT of δ_0 is the all-ones vector.
        let mut input = vec![Complex64::ZERO; 8];
        input[0] = Complex64::ONE;
        let out = dft_faq(2, 3, &input).unwrap();
        for z in out {
            assert!(z.approx_eq(&Complex64::ONE, 1e-9), "{z:?}");
        }
    }
}
