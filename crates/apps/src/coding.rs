//! Coding theory: list recovery as a FAQ instance (paper Example A.7).
//!
//! Given a code `C ⊆ F_q^n` and per-position alphabets `S_1, …, S_n ⊆ F_q`,
//! *list recovery* asks for every codeword `c ∈ C` with `c_i ∈ S_i` for all
//! `i`. As a FAQ over the Boolean semiring:
//!
//! ```text
//! ϕ(c_1…c_n) = ψ_C(c_1…c_n) ∧ ⋀_i ψ_i(c_i)
//! ```
//!
//! with the code as an `n`-ary factor and the `S_i` as singleton factors.
//! All variables are free — the answer is the recovered list, and InsideOut's
//! guard phase keeps the enumeration output-sensitive.

use faq_core::{Engine, FaqError, FaqQuery};
use faq_factor::{Domains, Factor};
use faq_hypergraph::Var;
use faq_semiring::BoolDomain;

/// A block code: a list of codewords over `F_q` (values `0..q`).
#[derive(Debug, Clone)]
pub struct Code {
    /// Alphabet size `q`.
    pub q: u32,
    /// Block length `n`.
    pub n: usize,
    /// The codewords.
    pub words: Vec<Vec<u32>>,
}

impl Code {
    /// The `[n, k]_q` Reed–Solomon-style evaluation code of all polynomials
    /// of degree `< k` over `Z_q` (`q` prime), evaluated at points `0..n`.
    pub fn polynomial_code(q: u32, n: usize, k: usize) -> Code {
        assert!(n as u32 <= q, "need n distinct evaluation points");
        let mut words = Vec::new();
        let mut coeffs = vec![0u32; k];
        loop {
            let word: Vec<u32> = (0..n as u32)
                .map(|x| {
                    // Horner evaluation mod q.
                    let mut acc: u64 = 0;
                    for &c in coeffs.iter().rev() {
                        acc = (acc * x as u64 + c as u64) % q as u64;
                    }
                    acc as u32
                })
                .collect();
            words.push(word);
            // Odometer over coefficient vectors.
            let mut i = 0;
            loop {
                if i == k {
                    return Code { q, n, words };
                }
                coeffs[i] += 1;
                if coeffs[i] < q {
                    break;
                }
                coeffs[i] = 0;
                i += 1;
            }
        }
    }

    /// Recover every codeword consistent with the per-position lists
    /// (Example A.7). `lists[i]` is `S_{i+1}`.
    pub fn list_recover(&self, lists: &[Vec<u32>]) -> Result<Vec<Vec<u32>>, FaqError> {
        assert_eq!(lists.len(), self.n);
        let vars: Vec<Var> = (0..self.n as u32).map(Var).collect();
        let mut factors =
            vec![Factor::new(vars.clone(), self.words.iter().map(|w| (w.clone(), true)).collect())
                .expect("codewords are distinct")];
        for (i, s) in lists.iter().enumerate() {
            let mut vals: Vec<u32> = s.clone();
            vals.sort();
            vals.dedup();
            factors.push(
                Factor::new(
                    vec![Var(i as u32)],
                    vals.into_iter().map(|x| (vec![x], true)).collect(),
                )
                .expect("distinct symbols"),
            );
        }
        let q = FaqQuery::new(BoolDomain, Domains::uniform(self.n, self.q), vars, vec![], factors)?;
        let out = Engine::sequential().evaluate(&q)?;
        Ok(out.factor.iter().map(|(row, _)| row.to_vec()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_code_sizes() {
        let c = Code::polynomial_code(5, 4, 2);
        assert_eq!(c.words.len(), 25); // q^k
        assert_eq!(c.words[0], vec![0, 0, 0, 0]);
        // Every word has length n and symbols < q.
        assert!(c.words.iter().all(|w| w.len() == 4 && w.iter().all(|&x| x < 5)));
    }

    #[test]
    fn full_lists_recover_whole_code() {
        let c = Code::polynomial_code(3, 3, 1);
        let all: Vec<u32> = (0..3).collect();
        let lists = vec![all.clone(), all.clone(), all];
        let got = c.list_recover(&lists).unwrap();
        assert_eq!(got.len(), c.words.len());
    }

    #[test]
    fn singleton_lists_are_decoding() {
        // With |S_i| = 1 everywhere, recovery finds the codeword iff it is in
        // the code (list decoding at radius 0).
        let c = Code::polynomial_code(5, 4, 2);
        let word = c.words[7].clone();
        let lists: Vec<Vec<u32>> = word.iter().map(|&x| vec![x]).collect();
        let got = c.list_recover(&lists).unwrap();
        assert_eq!(got, vec![word]);
        // A non-codeword yields the empty list.
        let junk = vec![vec![0u32], vec![0], vec![1], vec![3]];
        let got = c.list_recover(&junk).unwrap();
        assert!(got.is_empty() || c.words.contains(&vec![0, 0, 1, 3]));
    }

    #[test]
    fn recovery_matches_filtering() {
        let c = Code::polynomial_code(5, 5, 2);
        let lists: Vec<Vec<u32>> =
            vec![vec![0, 1], vec![1, 2, 3], vec![0, 2, 4], vec![0, 1, 2, 3, 4], vec![3, 4]];
        let got = c.list_recover(&lists).unwrap();
        let expect: Vec<Vec<u32>> = c
            .words
            .iter()
            .filter(|w| w.iter().zip(&lists).all(|(x, s)| s.contains(x)))
            .cloned()
            .collect();
        let mut sorted = expect.clone();
        sorted.sort();
        assert_eq!(got, sorted);
    }
}
