//! Quantified conjunctive queries: QCQ and #QCQ (Table 1, rows 1–2).
//!
//! For `Φ(X_1..X_f) = Q_{f+1}X_{f+1} … Q_nX_n ∧_R R`, with `Q_i ∈ {∃, ∀}`:
//!
//! * QCQ (paper Example A.20): over the Boolean domain, `∃ → ∨` (semiring)
//!   and `∀ → ∧ = ⊗` (product). Since `∧` is idempotent on `{0,1}`, every
//!   product aggregate is idempotent and the §6.2 machinery applies.
//! * #QCQ (paper Example 1.3): over the counting domain, the head variables
//!   are summed (`Σ`), `∃ → max`, `∀ → ×`; input factors are `{0,1}`-valued,
//!   so all product aggregates act idempotently on the inner part while the
//!   outer `Σ` counts. This was the paper's *new* tractability result.
//!
//! [`chen_dalmau_family`] builds the §7.2.1 instances separating `faqw`
//! (bounded by 2) from the Chen–Dalmau prefix width (`n+1`).

use crate::cq::Atom;
use faq_core::{naive_eval, Engine, FaqError, FaqQuery, VarAgg};
use faq_factor::Domains;
use faq_hypergraph::Var;
use faq_semiring::{BoolDomain, CountDomain};

/// A quantifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    /// Existential.
    Exists,
    /// Universal.
    ForAll,
}

/// A quantified conjunctive query.
#[derive(Debug, Clone)]
pub struct QuantifiedCq {
    /// Per-variable domain sizes.
    pub domains: Domains,
    /// Free variables (the counting head of #QCQ).
    pub free: Vec<Var>,
    /// Quantified variables, outermost first.
    pub prefix: Vec<(Var, Quantifier)>,
    /// The atoms.
    pub atoms: Vec<Atom>,
}

impl QuantifiedCq {
    /// The Boolean FAQ for QCQ (free variables stay free).
    pub fn to_bool_faq(&self) -> Result<FaqQuery<BoolDomain>, FaqError> {
        FaqQuery::new(
            BoolDomain,
            self.domains.clone(),
            self.free.clone(),
            self.prefix
                .iter()
                .map(|&(v, q)| {
                    (
                        v,
                        match q {
                            Quantifier::Exists => VarAgg::Semiring(BoolDomain::OR),
                            Quantifier::ForAll => VarAgg::Product,
                        },
                    )
                })
                .collect(),
            self.atoms.iter().map(|a| a.bool_factor()).collect(),
        )
    }

    /// The counting FAQ for #QCQ: `Σ_{free} (∃→max / ∀→×) Π ψ`, a scalar.
    pub fn to_count_faq(&self) -> Result<FaqQuery<CountDomain>, FaqError> {
        let mut bound: Vec<(Var, VarAgg)> =
            self.free.iter().map(|&v| (v, VarAgg::Semiring(CountDomain::SUM))).collect();
        bound.extend(self.prefix.iter().map(|&(v, q)| {
            (
                v,
                match q {
                    Quantifier::Exists => VarAgg::Semiring(CountDomain::MAX),
                    Quantifier::ForAll => VarAgg::Product,
                },
            )
        }));
        FaqQuery::new(
            CountDomain,
            self.domains.clone(),
            vec![],
            bound,
            self.atoms.iter().map(|a| a.count_factor()).collect(),
        )
    }

    /// Evaluate QCQ: the relation over the free variables (or, with no free
    /// variables, a scalar truth value — use [`QuantifiedCq::holds`]).
    pub fn evaluate(&self) -> Result<faq_factor::Factor<bool>, FaqError> {
        let q = self.to_bool_faq()?;
        // Careful with idempotence: BoolDomain's ⊗ = ∧ is idempotent on the
        // whole domain, so the §6.2 expression tree is used as-is.
        let shape = q.shape();
        let order = crate::width_order_or(&shape, q.ordering(), 5_000, 14)?;
        Ok(Engine::sequential().evaluate_with_order(&q, &order)?.factor)
    }

    /// The sentence value of a fully quantified QCQ.
    pub fn holds(&self) -> Result<bool, FaqError> {
        assert!(self.free.is_empty(), "holds() requires a sentence");
        Ok(self.evaluate()?.get(&[]).copied().unwrap_or(false))
    }

    /// #QCQ: count free-variable assignments satisfying the quantified part.
    pub fn count(&self) -> Result<u64, FaqError> {
        let q = self.to_count_faq()?;
        // Input factors are {0,1}-valued: the F(D_I) promise of Def 5.8 holds.
        let shape = q.shape_promising_idempotent_inputs();
        let order = crate::width_order_or(&shape, q.ordering(), 5_000, 14)?;
        let out = Engine::sequential().evaluate_with_order(&q, &order)?;
        Ok(out.scalar().copied().unwrap_or(0))
    }

    /// #QCQ by brute force (test oracle).
    pub fn count_naive(&self) -> Result<u64, FaqError> {
        let q = self.to_count_faq()?;
        Ok(naive_eval(&q).get(&[]).copied().unwrap_or(0))
    }
}

/// The §7.2.1 family `Φ = ∀x_1 … ∀x_n ∃x_{n+1} (S(x_1..x_n) ∧ ∧_i R(x_i, x_{n+1}))`.
///
/// `s_tuples` populates `S` (arity `n`), `r_tuples` populates `R` (arity 2);
/// all variables share domain size `d`. The Chen–Dalmau prefix width of this
/// family is `n+1`, while `faqw = 2 − 1/n ≤ 2`.
pub fn chen_dalmau_family(
    n: u32,
    d: u32,
    s_tuples: Vec<Vec<u32>>,
    r_tuples: Vec<Vec<u32>>,
) -> QuantifiedCq {
    let mut prefix: Vec<(Var, Quantifier)> = (0..n).map(|i| (Var(i), Quantifier::ForAll)).collect();
    prefix.push((Var(n), Quantifier::Exists));
    let mut atoms = vec![Atom { vars: (0..n).map(Var).collect(), tuples: s_tuples }];
    for i in 0..n {
        atoms.push(Atom { vars: vec![Var(i), Var(n)], tuples: r_tuples.clone() });
    }
    QuantifiedCq { domains: Domains::uniform(n as usize + 1, d), free: vec![], prefix, atoms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faq_hypergraph::v;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn atom(vars: &[u32], tuples: &[&[u32]]) -> Atom {
        Atom {
            vars: vars.iter().map(|&i| v(i)).collect(),
            tuples: tuples.iter().map(|t| t.to_vec()).collect(),
        }
    }

    #[test]
    fn forall_exists_sentence() {
        // ∀x0 ∃x1 R(x0,x1) over domain 2.
        let full = atom(&[0, 1], &[&[0, 0], &[1, 1]]);
        let q = QuantifiedCq {
            domains: Domains::uniform(2, 2),
            free: vec![],
            prefix: vec![(v(0), Quantifier::ForAll), (v(1), Quantifier::Exists)],
            atoms: vec![full],
        };
        assert!(q.holds().unwrap());

        let partial = atom(&[0, 1], &[&[0, 0], &[0, 1]]);
        let q2 = QuantifiedCq {
            domains: Domains::uniform(2, 2),
            free: vec![],
            prefix: vec![(v(0), Quantifier::ForAll), (v(1), Quantifier::Exists)],
            atoms: vec![partial],
        };
        assert!(!q2.holds().unwrap());
    }

    #[test]
    fn exists_forall_differs_from_forall_exists() {
        // R = {(0,0),(1,1),(0,1)}: ∀x0∃x1 R ✓ and ∃x1∀x0 R? need a column
        // x1 hitting all x0: x1=... (0,?)&(1,?): x1=1 gives (0,1),(1,1) ✓.
        let r = atom(&[0, 1], &[&[0, 0], &[1, 1], &[0, 1]]);
        let fe = QuantifiedCq {
            domains: Domains::uniform(2, 2),
            free: vec![],
            prefix: vec![(v(0), Quantifier::ForAll), (v(1), Quantifier::Exists)],
            atoms: vec![r.clone()],
        };
        assert!(fe.holds().unwrap());
        // Drop (1,1): ∀∃ still holds via (1,?)… no—(1,·) only via (1,1).
        let r2 = atom(&[0, 1], &[&[0, 0], &[0, 1]]);
        let fe2 = QuantifiedCq {
            domains: Domains::uniform(2, 2),
            free: vec![],
            prefix: vec![(v(0), Quantifier::ForAll), (v(1), Quantifier::Exists)],
            atoms: vec![r2],
        };
        assert!(!fe2.holds().unwrap());
    }

    #[test]
    fn sharp_qcq_counts_free_assignments() {
        // ϕ(x0) = ∀x1 ∃x2: R(x0,x1) → … simplified: count x0 with
        // ∀x1 ∃x2 (S(x0,x1) ∧ T(x1,x2)).
        let s = atom(&[0, 1], &[&[0, 0], &[0, 1], &[1, 0]]);
        let t = atom(&[1, 2], &[&[0, 1], &[1, 0]]);
        let q = QuantifiedCq {
            domains: Domains::uniform(3, 2),
            free: vec![v(0)],
            prefix: vec![(v(1), Quantifier::ForAll), (v(2), Quantifier::Exists)],
            atoms: vec![s, t],
        };
        // x0=0: S(0,0),S(0,1) ✓ and T has a witness for both x1 ⇒ satisfied.
        // x0=1: S(1,1) missing ⇒ ∀x1 fails.
        assert_eq!(q.count().unwrap(), 1);
        assert_eq!(q.count_naive().unwrap(), 1);
    }

    #[test]
    fn random_sharp_qcq_vs_naive() {
        let mut rng = StdRng::seed_from_u64(99);
        for round in 0..20 {
            let d = 2u32;
            let mk = |rng: &mut StdRng, vars: &[u32]| {
                let mut tuples = Vec::new();
                for _ in 0..rng.gen_range(1..7) {
                    tuples.push((0..vars.len()).map(|_| rng.gen_range(0..d)).collect::<Vec<u32>>());
                }
                tuples.sort();
                tuples.dedup();
                Atom { vars: vars.iter().map(|&i| v(i)).collect(), tuples }
            };
            let quants = [Quantifier::ForAll, Quantifier::Exists];
            let q = QuantifiedCq {
                domains: Domains::uniform(4, d),
                free: vec![v(0)],
                prefix: vec![
                    (v(1), quants[rng.gen_range(0..2)]),
                    (v(2), quants[rng.gen_range(0..2)]),
                    (v(3), quants[rng.gen_range(0..2)]),
                ],
                atoms: vec![mk(&mut rng, &[0, 1]), mk(&mut rng, &[1, 2]), mk(&mut rng, &[2, 3])],
            };
            assert_eq!(
                q.count().unwrap(),
                q.count_naive().unwrap(),
                "round {round}: {:?}",
                q.prefix
            );
        }
    }

    #[test]
    fn chen_dalmau_instances_evaluate() {
        // S = all tuples, R = identity pairs: ∀x ∃y (true ∧ R(x,y)) holds
        // exactly when R's left column is total.
        let n = 3u32;
        let d = 2u32;
        let mut s_tuples = Vec::new();
        for a in 0..d {
            for b in 0..d {
                for c in 0..d {
                    s_tuples.push(vec![a, b, c]);
                }
            }
        }
        // R(x, 0) for every x: y = 0 witnesses every universal choice.
        let r_tuples: Vec<Vec<u32>> = (0..d).map(|x| vec![x, 0]).collect();
        let q = chen_dalmau_family(n, d, s_tuples.clone(), r_tuples);
        assert!(q.holds().unwrap());
        // Remove the R-row for x=1: ∀ fails.
        let q2 = chen_dalmau_family(n, d, s_tuples, vec![vec![0, 0]]);
        assert!(!q2.holds().unwrap());
    }
}
