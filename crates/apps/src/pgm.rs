//! Probabilistic graphical models: marginals and MAP (Table 1, rows 5–6).
//!
//! A discrete Markov random field is a hypergraph of non-negative potentials
//! `ψ_S`. Marginalization is FAQ-SS over `(ℝ₊, +, ×)`; MAP over
//! `(ℝ₊, max, ×)`. InsideOut with a width-optimized ordering is exactly
//! variable elimination with the fractional-hypertree-width guarantee —
//! improving the classical treewidth bound the PGM literature states.

use faq_core::{naive_eval, Engine, FaqError, FaqQuery, VarAgg};
use faq_factor::{Domains, Factor};
use faq_hypergraph::Var;
use faq_semiring::RealDomain;
use rand::Rng;

/// A discrete graphical model (unnormalized Gibbs distribution).
#[derive(Debug, Clone)]
pub struct GraphicalModel {
    /// Per-variable domain sizes.
    pub domains: Domains,
    /// The potentials.
    pub potentials: Vec<Factor<f64>>,
}

impl GraphicalModel {
    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.domains.len()
    }

    fn faq(
        &self,
        free: Vec<Var>,
        op: faq_semiring::AggId,
    ) -> Result<FaqQuery<RealDomain>, FaqError> {
        let free_set: std::collections::BTreeSet<Var> = free.iter().copied().collect();
        let bound: Vec<(Var, VarAgg)> = self
            .domains
            .vars()
            .filter(|v| !free_set.contains(v))
            .map(|v| (v, VarAgg::Semiring(op)))
            .collect();
        FaqQuery::new(RealDomain, self.domains.clone(), free, bound, self.potentials.clone())
    }

    fn run(&self, q: &FaqQuery<RealDomain>) -> Result<Factor<f64>, FaqError> {
        // Conditioning can leave a variable with no potential at all; `faqw`
        // is then undefined (Uncoverable) but elimination still is — fall
        // back to the query's own ordering for such degenerate models.
        //
        // The width search dominates inference on small models (an order of
        // magnitude over the elimination itself), and depends only on the
        // query shape — memoized, so repeated passes over one model (every
        // marginal, each `map_assignment` conditioning step) search once.
        let order = crate::width_order_or_cached(&q.shape(), q.ordering(), 2_000, 14)?;
        Ok(Engine::sequential().evaluate_with_order(q, &order)?.factor)
    }

    /// The unnormalized marginal over `free`: `Σ_{rest} Π ψ`.
    pub fn marginal(&self, free: &[Var]) -> Result<Factor<f64>, FaqError> {
        let q = self.faq(free.to_vec(), RealDomain::SUM)?;
        self.run(&q)
    }

    /// The partition function `Z = Σ_x Π ψ`.
    pub fn partition_function(&self) -> Result<f64, FaqError> {
        Ok(self.marginal(&[])?.get(&[]).copied().unwrap_or(0.0))
    }

    /// The MAP value `max_x Π ψ`.
    pub fn map_value(&self) -> Result<f64, FaqError> {
        let q = self.faq(vec![], RealDomain::MAX)?;
        Ok(self.run(&q)?.get(&[]).copied().unwrap_or(0.0))
    }

    /// Max-marginal over `free`: `max_{rest} Π ψ`.
    pub fn max_marginal(&self, free: &[Var]) -> Result<Factor<f64>, FaqError> {
        let q = self.faq(free.to_vec(), RealDomain::MAX)?;
        self.run(&q)
    }

    /// A MAP assignment, recovered by iterative conditioning: fix each
    /// variable to an argmax of its max-marginal given the prefix, condition,
    /// and repeat. Costs `n` inference passes.
    pub fn map_assignment(&self) -> Result<(Vec<u32>, f64), FaqError> {
        let mut model = self.clone();
        let vars: Vec<Var> = self.domains.vars().collect();
        let mut assignment: Vec<u32> = vec![0; vars.len()];
        let map_val = self.map_value()?;
        for &v in &vars {
            let mm = model.max_marginal(&[v])?;
            // argmax over the marginal.
            let mut best: Option<(u32, f64)> = None;
            for i in 0..mm.len() {
                let x = mm.row(i)[0];
                let val = *mm.value(i);
                if best.is_none_or(|(_, b)| val > b) {
                    best = Some((x, val));
                }
            }
            let (x, _) = best.unwrap_or((0, 0.0));
            assignment[v.index()] = x;
            // Condition every potential containing v on x. Keep the variable
            // in the domain catalog (arity bookkeeping) but restrict factors.
            model.potentials = model
                .potentials
                .iter()
                .map(|f| if f.schema().contains(&v) { f.condition(v, x) } else { f.clone() })
                .collect();
        }
        Ok((assignment, map_val))
    }

    /// Condition the model on evidence `var = value`: every potential
    /// containing `var` is restricted (the variable disappears from its
    /// schema). Subsequent queries are conditioned on the evidence, up to the
    /// usual unnormalized scaling.
    pub fn with_evidence(&self, evidence: &[(Var, u32)]) -> GraphicalModel {
        let mut potentials = self.potentials.clone();
        let mut sizes: Vec<u32> = self.domains.vars().map(|v| self.domains.size(v)).collect();
        for &(var, value) in evidence {
            assert!(value < self.domains.size(var), "evidence outside the domain of {var}");
            potentials = potentials
                .into_iter()
                .map(|f| if f.schema().contains(&var) { f.condition(var, value) } else { f })
                .collect();
            // The observed variable no longer appears in any factor; shrink
            // its domain to a single point so the Σ over it does not scale
            // the result by |Dom|.
            sizes[var.index()] = 1;
        }
        GraphicalModel { domains: Domains::new(sizes), potentials }
    }

    /// Evaluate `Π ψ` at a full assignment.
    pub fn score(&self, assignment: &[u32]) -> f64 {
        let mut acc = 1.0;
        for f in &self.potentials {
            let key: Vec<u32> = f.schema().iter().map(|v| assignment[v.index()]).collect();
            match f.get(&key) {
                Some(val) => acc *= val,
                None => return 0.0,
            }
        }
        acc
    }

    /// Brute-force marginal (test oracle).
    pub fn marginal_naive(&self, free: &[Var]) -> Result<Factor<f64>, FaqError> {
        let q = self.faq(free.to_vec(), RealDomain::SUM)?;
        Ok(naive_eval(&q))
    }

    /// Brute-force MAP value (test oracle).
    pub fn map_value_naive(&self) -> Result<f64, FaqError> {
        let q = self.faq(vec![], RealDomain::MAX)?;
        Ok(naive_eval(&q).get(&[]).copied().unwrap_or(0.0))
    }
}

/// A random chain model `x_0 — x_1 — … — x_{n−1}` with dense pairwise
/// potentials in `(0, 1]`.
pub fn random_chain<R: Rng>(n: usize, d: u32, rng: &mut R) -> GraphicalModel {
    assert!(n >= 2);
    let domains = Domains::uniform(n, d);
    let mut potentials = Vec::new();
    for i in 0..n - 1 {
        potentials.push(random_potential(&[Var(i as u32), Var(i as u32 + 1)], d, rng));
    }
    GraphicalModel { domains, potentials }
}

/// A random `rows × cols` grid model with dense pairwise potentials.
pub fn random_grid<R: Rng>(rows: usize, cols: usize, d: u32, rng: &mut R) -> GraphicalModel {
    let n = rows * cols;
    let domains = Domains::uniform(n, d);
    let at = |r: usize, c: usize| Var((r * cols + c) as u32);
    let mut potentials = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                potentials.push(random_potential(&[at(r, c), at(r, c + 1)], d, rng));
            }
            if r + 1 < rows {
                potentials.push(random_potential(&[at(r, c), at(r + 1, c)], d, rng));
            }
        }
    }
    GraphicalModel { domains, potentials }
}

/// A random tree model over `n` variables (uniform random attachment).
pub fn random_tree<R: Rng>(n: usize, d: u32, rng: &mut R) -> GraphicalModel {
    assert!(n >= 2);
    let domains = Domains::uniform(n, d);
    let mut potentials = Vec::new();
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        potentials.push(random_potential(&[Var(parent as u32), Var(i as u32)], d, rng));
    }
    GraphicalModel { domains, potentials }
}

fn random_potential<R: Rng>(vars: &[Var], d: u32, rng: &mut R) -> Factor<f64> {
    let sizes = vec![d; vars.len()];
    Factor::dense(vars.to_vec(), &sizes, |_| rng.gen_range(0.05..1.0), |&x| x == 0.0)
        .expect("distinct vars")
}

#[cfg(test)]
mod tests {
    use super::*;
    use faq_hypergraph::v;
    use rand::{rngs::StdRng, SeedableRng};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    fn factors_close(a: &Factor<f64>, b: &Factor<f64>) {
        assert_eq!(a.len(), b.len(), "{a:?} vs {b:?}");
        for (row, val) in a.iter() {
            let other = b.get(row).unwrap_or_else(|| panic!("missing row {row:?}"));
            assert!(close(*val, *other), "row {row:?}: {val} vs {other}");
        }
    }

    #[test]
    fn chain_marginal_matches_naive() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = random_chain(5, 3, &mut rng);
        let got = m.marginal(&[v(2)]).unwrap();
        let want = m.marginal_naive(&[v(2)]).unwrap();
        factors_close(&got, &want);
    }

    #[test]
    fn grid_partition_function_matches_naive() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = random_grid(2, 3, 2, &mut rng);
        let got = m.partition_function().unwrap();
        let want = m.marginal_naive(&[]).unwrap().get(&[]).copied().unwrap();
        assert!(close(got, want), "{got} vs {want}");
    }

    #[test]
    fn map_value_matches_naive() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let m = random_tree(6, 2, &mut rng);
            assert!(close(m.map_value().unwrap(), m.map_value_naive().unwrap()));
        }
    }

    #[test]
    fn map_assignment_achieves_map_value() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..5 {
            let m = random_chain(5, 3, &mut rng);
            let (assignment, map_val) = m.map_assignment().unwrap();
            assert!(
                close(m.score(&assignment), map_val),
                "score {} vs map {}",
                m.score(&assignment),
                map_val
            );
        }
    }

    #[test]
    fn pairwise_marginal() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = random_grid(2, 2, 2, &mut rng);
        let got = m.marginal(&[v(0), v(3)]).unwrap();
        let want = m.marginal_naive(&[v(0), v(3)]).unwrap();
        factors_close(&got, &want);
    }

    #[test]
    fn evidence_conditioning_matches_filtered_enumeration() {
        let mut rng = StdRng::seed_from_u64(23);
        let m = random_chain(5, 3, &mut rng);
        let conditioned = m.with_evidence(&[(v(2), 1)]);
        // Z(evidence) must equal the sum of scores over assignments with
        // x2 = 1.
        let z_cond = conditioned.partition_function().unwrap();
        let mut expect = 0.0;
        for a0 in 0..3u32 {
            for a1 in 0..3u32 {
                for a3 in 0..3u32 {
                    for a4 in 0..3u32 {
                        expect += m.score(&[a0, a1, 1, a3, a4]);
                    }
                }
            }
        }
        assert!(close(z_cond, expect), "{z_cond} vs {expect}");
        // Evidence on two variables composes.
        let double = m.with_evidence(&[(v(0), 2), (v(4), 0)]);
        let z2 = double.partition_function().unwrap();
        let mut expect2 = 0.0;
        for a1 in 0..3u32 {
            for a2 in 0..3u32 {
                for a3 in 0..3u32 {
                    expect2 += m.score(&[2, a1, a2, a3, 0]);
                }
            }
        }
        assert!(close(z2, expect2));
    }

    #[test]
    fn deterministic_potentials() {
        // Hand-built chain: ψ01 = [[1,0],[0,1]] (identity), ψ12 likewise;
        // Z = Σ over x0=x1=x2: 2.
        let eye =
            Factor::new(vec![v(0), v(1)], vec![(vec![0, 0], 1.0), (vec![1, 1], 1.0)]).unwrap();
        let eye2 = eye.reorder(&[v(0), v(1)]);
        let mut eye12 =
            Factor::new(vec![v(1), v(2)], vec![(vec![0, 0], 1.0), (vec![1, 1], 1.0)]).unwrap();
        let m = GraphicalModel {
            domains: Domains::uniform(3, 2),
            potentials: vec![eye2, std::mem::replace(&mut eye12, Factor::nullary(None))],
        };
        assert!(close(m.partition_function().unwrap(), 2.0));
        assert!(close(m.map_value().unwrap(), 1.0));
        let (a, _) = m.map_assignment().unwrap();
        assert!(a == vec![0, 0, 0] || a == vec![1, 1, 1]);
    }
}
