//! FAQ applications — the problems of Table 1 and Appendix A as FAQ instances.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`joins`] | natural joins / worst-case-optimal join (Table 1, "Joins") |
//! | [`cq`] | Boolean CQ, CQ evaluation, #CQ (Table 1, "#CQ") |
//! | [`qcq`] | QCQ and #QCQ with quantifier alternation (Table 1 rows 1–2) |
//! | [`pgm`] | probabilistic graphical models: marginals & MAP (rows 5–6) |
//! | [`junction`] | junction-tree message passing over tree decompositions (§8.4) |
//! | [`matrix`] | matrix chain multiplication & the DFT (rows 7–8) |
//! | [`csp`] | CSPs: k-coloring, triangle counting, the permanent (App. A) |
//! | [`coding`] | list recovery for block codes (Example A.7) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coding;
pub mod cq;
pub mod csp;
pub mod joins;
pub mod junction;
pub mod matrix;
pub mod pgm;
pub mod qcq;

/// A width-optimized ordering for `shape`, falling back to `query_order` when
/// the width is undefined (`FaqError::Uncoverable`: some free/semiring
/// variable appears in no factor — an isolated k-coloring vertex, a
/// conditioned-away potential). Such queries evaluate fine by domain
/// iteration; only `ρ*`-based width optimization is meaningless for them.
pub(crate) fn width_order_or(
    shape: &faq_core::QueryShape,
    query_order: Vec<faq_hypergraph::Var>,
    linex_cap: usize,
    exact_limit: usize,
) -> Result<Vec<faq_hypergraph::Var>, faq_core::FaqError> {
    match faq_core::width::faqw_optimize(shape, linex_cap, exact_limit) {
        Ok(best) => Ok(best.order),
        Err(faq_core::FaqError::Uncoverable(_)) => Ok(query_order),
        Err(e) => Err(e),
    }
}
