//! FAQ applications — the problems of Table 1 and Appendix A as FAQ instances.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`joins`] | natural joins / worst-case-optimal join (Table 1, "Joins") |
//! | [`cq`] | Boolean CQ, CQ evaluation, #CQ (Table 1, "#CQ") |
//! | [`qcq`] | QCQ and #QCQ with quantifier alternation (Table 1 rows 1–2) |
//! | [`pgm`] | probabilistic graphical models: marginals & MAP (rows 5–6) |
//! | [`junction`] | junction-tree message passing over tree decompositions (§8.4) |
//! | [`matrix`] | matrix chain multiplication & the DFT (rows 7–8) |
//! | [`csp`] | CSPs: k-coloring, triangle counting, the permanent (App. A) |
//! | [`coding`] | list recovery for block codes (Example A.7) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coding;
pub mod cq;
pub mod csp;
pub mod joins;
pub mod junction;
pub mod matrix;
pub mod pgm;
pub mod qcq;

/// A width-optimized ordering for `shape`, falling back to `query_order` when
/// the width is undefined (`FaqError::Uncoverable`: some free/semiring
/// variable appears in no factor — an isolated k-coloring vertex, a
/// conditioned-away potential). Such queries evaluate fine by domain
/// iteration; only `ρ*`-based width optimization is meaningless for them.
pub(crate) fn width_order_or(
    shape: &faq_core::QueryShape,
    query_order: Vec<faq_hypergraph::Var>,
    linex_cap: usize,
    exact_limit: usize,
) -> Result<Vec<faq_hypergraph::Var>, faq_core::FaqError> {
    match faq_core::width::faqw_optimize(shape, linex_cap, exact_limit) {
        Ok(best) => Ok(best.order),
        Err(faq_core::FaqError::Uncoverable(_)) => Ok(query_order),
        Err(e) => Err(e),
    }
}

/// Everything the ordering search reads from a query, flattened into a
/// hashable key: the tagged prefix, the hyperedges, the idempotence flags,
/// and the search budget. Two queries with equal keys get equal orderings, so
/// the result of the (combinatorial, often `~20×` the elimination itself)
/// search is safe to reuse across calls — e.g. every `GraphicalModel`
/// inference pass over the same model shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct OrderKey {
    seq: Vec<(u32, u8, u32)>,
    edges: Vec<Vec<u32>>,
    mul_idempotent: bool,
    closed_ops: Vec<u32>,
    linex_cap: usize,
    exact_limit: usize,
}

impl OrderKey {
    fn of(shape: &faq_core::QueryShape, linex_cap: usize, exact_limit: usize) -> OrderKey {
        let seq = shape
            .seq
            .iter()
            .map(|&(v, tag)| match tag {
                faq_core::Tag::Free => (v.0, 0u8, 0u32),
                faq_core::Tag::Semiring(op) => (v.0, 1u8, op.0),
                faq_core::Tag::Product => (v.0, 2u8, 0u32),
            })
            .collect();
        let edges =
            shape.edges.iter().map(|e| e.iter().map(|v| v.0).collect::<Vec<u32>>()).collect();
        let closed_ops = shape.closed_ops.iter().map(|op| op.0).collect();
        OrderKey {
            seq,
            edges,
            mul_idempotent: shape.mul_idempotent,
            closed_ops,
            linex_cap,
            exact_limit,
        }
    }
}

/// Entry cap for the ordering memo — shapes are tiny compared to the factors
/// they describe, so this is generous; hitting it clears the table rather
/// than evicting (repeated inference loops touch few distinct shapes).
const ORDER_MEMO_CAP: usize = 256;

/// [`width_order_or`] with a process-wide memo keyed on the query *shape*
/// (the ordering depends on nothing else). Callers that pose the same-shaped
/// query repeatedly — `GraphicalModel::marginal` per variable,
/// `map_assignment`'s conditioning loop — pay for the width search once.
pub(crate) fn width_order_or_cached(
    shape: &faq_core::QueryShape,
    query_order: Vec<faq_hypergraph::Var>,
    linex_cap: usize,
    exact_limit: usize,
) -> Result<Vec<faq_hypergraph::Var>, faq_core::FaqError> {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static MEMO: OnceLock<Mutex<HashMap<OrderKey, Vec<faq_hypergraph::Var>>>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    let key = OrderKey::of(shape, linex_cap, exact_limit);
    if let Some(order) = memo.lock().unwrap().get(&key) {
        return Ok(order.clone());
    }
    let order = width_order_or(shape, query_order, linex_cap, exact_limit)?;
    let mut guard = memo.lock().unwrap();
    if guard.len() >= ORDER_MEMO_CAP {
        guard.clear();
    }
    guard.insert(key, order.clone());
    Ok(order)
}
