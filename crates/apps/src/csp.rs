//! Constraint satisfaction problems as FAQ instances (paper Appendix A).
//!
//! * k-coloring (Example A.2): Boolean FAQ with disequality factors;
//! * #k-coloring: the same hypergraph over the counting semiring;
//! * the permanent (Example A.11): `Σ_x Π_i ψ_i(x_i) Π_{j<k} [x_j ≠ x_k]`;
//! * triangle counting (Example A.8) lives in [`crate::joins`].

use faq_core::{Engine, FaqError, FaqQuery, VarAgg};
use faq_factor::{Domains, Factor};
use faq_hypergraph::Var;
use faq_semiring::{BoolDomain, CountDomain};

/// Build the disequality factor `ψ(x_u, x_v) = [x_u ≠ x_v]` over `k` values.
fn diseq_bool(u: Var, w: Var, k: u32) -> Factor<bool> {
    Factor::dense(vec![u, w], &[k, k], |t| t[0] != t[1], |&b| !b).expect("distinct vars")
}

fn diseq_count(u: Var, w: Var, k: u32) -> Factor<u64> {
    Factor::dense(vec![u, w], &[k, k], |t| u64::from(t[0] != t[1]), |&x| x == 0)
        .expect("distinct vars")
}

/// Whether the graph (edge list over `n` nodes) is `k`-colorable.
pub fn is_k_colorable(n: u32, edges: &[(u32, u32)], k: u32) -> Result<bool, FaqError> {
    let factors: Vec<Factor<bool>> =
        edges.iter().map(|&(a, b)| diseq_bool(Var(a), Var(b), k)).collect();
    let q = FaqQuery::new(
        BoolDomain,
        Domains::uniform(n as usize, k),
        vec![],
        (0..n).map(|i| (Var(i), VarAgg::Semiring(BoolDomain::OR))).collect(),
        factors,
    )?;
    let shape = q.shape();
    let order = crate::width_order_or(&shape, q.ordering(), 2_000, 14)?;
    Ok(Engine::sequential().evaluate_with_order(&q, &order)?.scalar().copied().unwrap_or(false))
}

/// The number of proper `k`-colorings of the graph.
pub fn count_k_colorings(n: u32, edges: &[(u32, u32)], k: u32) -> Result<u64, FaqError> {
    let factors: Vec<Factor<u64>> =
        edges.iter().map(|&(a, b)| diseq_count(Var(a), Var(b), k)).collect();
    let q = FaqQuery::new(
        CountDomain,
        Domains::uniform(n as usize, k),
        vec![],
        (0..n).map(|i| (Var(i), VarAgg::Semiring(CountDomain::SUM))).collect(),
        factors,
    )?;
    let shape = q.shape();
    let order = crate::width_order_or(&shape, q.ordering(), 2_000, 14)?;
    Ok(Engine::sequential().evaluate_with_order(&q, &order)?.scalar().copied().unwrap_or(0))
}

/// The permanent of an `n×n` non-negative integer matrix via FAQ
/// (Example A.11): variable `x_i` = the column assigned to row `i`; singleton
/// factors carry the entries, pairwise disequalities enforce a permutation.
pub fn permanent(a: &[Vec<u64>]) -> Result<u64, FaqError> {
    let n = a.len() as u32;
    assert!(a.iter().all(|row| row.len() == n as usize), "square matrix required");
    let mut factors: Vec<Factor<u64>> = Vec::new();
    for (i, row) in a.iter().enumerate() {
        factors.push(
            Factor::new(
                vec![Var(i as u32)],
                row.iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0)
                    .map(|(j, &v)| (vec![j as u32], v))
                    .collect(),
            )
            .expect("distinct columns"),
        );
    }
    for j in 0..n {
        for k in j + 1..n {
            factors.push(diseq_count(Var(j), Var(k), n));
        }
    }
    let q = FaqQuery::new(
        CountDomain,
        Domains::uniform(n as usize, n),
        vec![],
        (0..n).map(|i| (Var(i), VarAgg::Semiring(CountDomain::SUM))).collect(),
        factors,
    )?;
    // The permanent's hypergraph is a clique: no ordering beats another, so
    // use the input one.
    Ok(Engine::sequential().evaluate(&q)?.scalar().copied().unwrap_or(0))
}

/// A general binary-or-higher CSP: variables with finite domains and
/// table constraints (paper Example A.4).
#[derive(Debug, Clone)]
pub struct Csp {
    /// Per-variable domain sizes.
    pub domains: Domains,
    /// Constraints: scope plus the allowed tuples.
    pub constraints: Vec<(Vec<Var>, Vec<Vec<u32>>)>,
}

impl Csp {
    /// Whether the CSP has a solution (Boolean FAQ).
    pub fn is_satisfiable(&self) -> Result<bool, FaqError> {
        let q = self.bool_query()?;
        let shape = q.shape();
        let order = crate::width_order_or(&shape, q.ordering(), 2_000, 12)?;
        Ok(Engine::sequential().evaluate_with_order(&q, &order)?.scalar().copied().unwrap_or(false))
    }

    /// The number of solutions (counting FAQ).
    pub fn count_solutions(&self) -> Result<u64, FaqError> {
        let factors: Vec<Factor<u64>> = self
            .constraints
            .iter()
            .map(|(vars, tuples)| {
                Factor::new(vars.clone(), tuples.iter().map(|t| (t.clone(), 1u64)).collect())
                    .expect("distinct allowed tuples")
            })
            .collect();
        let q = FaqQuery::new(
            CountDomain,
            self.domains.clone(),
            vec![],
            self.domains.vars().map(|v| (v, VarAgg::Semiring(CountDomain::SUM))).collect(),
            factors,
        )?;
        let shape = q.shape();
        let order = crate::width_order_or(&shape, q.ordering(), 2_000, 12)?;
        Ok(Engine::sequential().evaluate_with_order(&q, &order)?.scalar().copied().unwrap_or(0))
    }

    /// Enumerate all solutions (all variables free).
    pub fn solutions(&self) -> Result<Vec<Vec<u32>>, FaqError> {
        let factors: Vec<Factor<bool>> = self
            .constraints
            .iter()
            .map(|(vars, tuples)| {
                Factor::new(vars.clone(), tuples.iter().map(|t| (t.clone(), true)).collect())
                    .expect("distinct allowed tuples")
            })
            .collect();
        let q = FaqQuery::new(
            BoolDomain,
            self.domains.clone(),
            self.domains.vars().collect(),
            vec![],
            factors,
        )?;
        let out = Engine::sequential().evaluate(&q)?;
        Ok(out.factor.iter().map(|(row, _)| row.to_vec()).collect())
    }

    fn bool_query(&self) -> Result<FaqQuery<BoolDomain>, FaqError> {
        let factors: Vec<Factor<bool>> = self
            .constraints
            .iter()
            .map(|(vars, tuples)| {
                Factor::new(vars.clone(), tuples.iter().map(|t| (t.clone(), true)).collect())
                    .expect("distinct allowed tuples")
            })
            .collect();
        FaqQuery::new(
            BoolDomain,
            self.domains.clone(),
            vec![],
            self.domains.vars().map(|v| (v, VarAgg::Semiring(BoolDomain::OR))).collect(),
            factors,
        )
    }
}

/// The `n`-queens problem as a CSP: variable `i` = the column of the queen in
/// row `i`; pairwise constraints forbid shared columns and diagonals.
pub fn n_queens(n: u32) -> Csp {
    let mut constraints = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            let mut allowed = Vec::new();
            for a in 0..n {
                for b in 0..n {
                    let diag = (a as i64 - b as i64).unsigned_abs() as u32 == j - i;
                    if a != b && !diag {
                        allowed.push(vec![a, b]);
                    }
                }
            }
            constraints.push((vec![Var(i), Var(j)], allowed));
        }
    }
    Csp { domains: Domains::uniform(n as usize, n), constraints }
}

/// Reference permanent by Ryser-style full expansion (test oracle, `n ≤ 10`).
pub fn permanent_naive(a: &[Vec<u64>]) -> u64 {
    let n = a.len();
    assert!(n <= 10);
    let mut perm = 0u64;
    let mut cols: Vec<usize> = (0..n).collect();
    fn rec(a: &[Vec<u64>], row: usize, cols: &mut Vec<usize>, acc: u64, total: &mut u64) {
        if acc == 0 {
            // Still need to exhaust permutations, but products stay zero —
            // prune.
            return;
        }
        let n = a.len();
        if row == n {
            *total += acc;
            return;
        }
        for i in row..n {
            cols.swap(row, i);
            rec(a, row + 1, cols, acc * a[row][cols[row]], total);
            cols.swap(row, i);
        }
    }
    rec(a, 0, &mut cols, 1, &mut perm);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: u32) -> Vec<(u32, u32)> {
        (0..n).map(|i| (i, (i + 1) % n)).collect()
    }

    #[test]
    fn odd_cycle_not_2_colorable() {
        assert!(!is_k_colorable(5, &cycle(5), 2).unwrap());
        assert!(is_k_colorable(5, &cycle(5), 3).unwrap());
        assert!(is_k_colorable(6, &cycle(6), 2).unwrap());
    }

    #[test]
    fn isolated_vertices_color_freely() {
        // Vertex 2 touches no edge: the width is undefined (Uncoverable) but
        // the coloring query must still evaluate — regression for the
        // fallible-faqw migration.
        assert!(is_k_colorable(3, &[(0, 1)], 2).unwrap());
        // 2 choices for the edge's proper colorings (2·1) × 2 free for v2 = 4.
        assert_eq!(count_k_colorings(3, &[(0, 1)], 2).unwrap(), 4);
    }

    #[test]
    fn counting_colorings_of_cycles() {
        // Proper k-colorings of C_n: (k−1)^n + (−1)^n (k−1).
        let count = |n: u32, k: u32| count_k_colorings(n, &cycle(n), k).unwrap();
        assert_eq!(count(3, 3), 6);
        assert_eq!(count(4, 2), 2);
        assert_eq!(count(4, 3), 18);
        assert_eq!(count(5, 3), 30);
    }

    #[test]
    fn counting_colorings_of_path() {
        // Path with n vertices: k(k−1)^{n−1}.
        let edges = [(0, 1), (1, 2), (2, 3)];
        assert_eq!(count_k_colorings(4, &edges, 3).unwrap(), 3 * 2 * 2 * 2);
    }

    #[test]
    fn triangle_needs_three_colors() {
        let t = [(0, 1), (1, 2), (0, 2)];
        assert!(!is_k_colorable(3, &t, 2).unwrap());
        assert!(is_k_colorable(3, &t, 3).unwrap());
        assert_eq!(count_k_colorings(3, &t, 3).unwrap(), 6);
    }

    #[test]
    fn n_queens_counts() {
        // Known values: 4-queens = 2, 5-queens = 10, 6-queens = 4.
        assert_eq!(n_queens(4).count_solutions().unwrap(), 2);
        assert_eq!(n_queens(5).count_solutions().unwrap(), 10);
        assert_eq!(n_queens(6).count_solutions().unwrap(), 4);
        assert!(n_queens(4).is_satisfiable().unwrap());
        assert!(!n_queens(3).is_satisfiable().unwrap());
    }

    #[test]
    fn n_queens_solutions_are_valid() {
        let sols = n_queens(5).solutions().unwrap();
        assert_eq!(sols.len(), 10);
        for s in &sols {
            for i in 0..5usize {
                for j in i + 1..5 {
                    assert_ne!(s[i], s[j]);
                    assert_ne!((s[i] as i64 - s[j] as i64).unsigned_abs(), (j - i) as u64);
                }
            }
        }
    }

    #[test]
    fn csp_consistency_between_modes() {
        // count == |solutions| and satisfiable == (count > 0).
        let csp = n_queens(5);
        let count = csp.count_solutions().unwrap();
        assert_eq!(count, csp.solutions().unwrap().len() as u64);
        assert_eq!(csp.is_satisfiable().unwrap(), count > 0);
    }

    #[test]
    fn permanent_small_cases() {
        // Identity: 1. All-ones 3×3: 3! = 6.
        let eye = vec![vec![1, 0], vec![0, 1]];
        assert_eq!(permanent(&eye).unwrap(), 1);
        let ones = vec![vec![1; 3]; 3];
        assert_eq!(permanent(&ones).unwrap(), 6);
    }

    #[test]
    fn permanent_matches_naive() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for n in 2..=4usize {
            for _ in 0..5 {
                let a: Vec<Vec<u64>> =
                    (0..n).map(|_| (0..n).map(|_| rng.gen_range(0..4)).collect()).collect();
                assert_eq!(permanent(&a).unwrap(), permanent_naive(&a), "{a:?}");
            }
        }
    }
}
