//! Conjunctive queries: BCQ, CQ evaluation and #CQ (Table 1, row "#CQ").
//!
//! * BCQ — `∃x… ∧ R(…)`: FAQ over the Boolean domain, all variables bound
//!   with `∨` aggregates.
//! * CQ — free variables plus existential projections.
//! * #CQ — count the answers of a CQ: `Σ_{free} max_{bound} Π ψ` over the
//!   counting domain (the paper's Table 1 formulation: `max` over `{0,1}`
//!   plays `∃`, the outer `Σ` counts).

use faq_core::{naive_eval, Engine, FaqError, FaqQuery, VarAgg};
use faq_factor::{Domains, Factor};
use faq_hypergraph::Var;
use faq_semiring::{BoolDomain, CountDomain};

/// An atom of a conjunctive query: a relation over a variable tuple.
#[derive(Debug, Clone)]
pub struct Atom {
    /// The variables of the atom.
    pub vars: Vec<Var>,
    /// The tuples of the relation (distinct).
    pub tuples: Vec<Vec<u32>>,
}

impl Atom {
    /// Boolean factor of the atom.
    pub fn bool_factor(&self) -> Factor<bool> {
        Factor::new(self.vars.clone(), self.tuples.iter().map(|t| (t.clone(), true)).collect())
            .expect("atom tuples are distinct")
    }

    /// `{0,1}`-valued counting factor of the atom.
    pub fn count_factor(&self) -> Factor<u64> {
        Factor::new(self.vars.clone(), self.tuples.iter().map(|t| (t.clone(), 1u64)).collect())
            .expect("atom tuples are distinct")
    }
}

/// A conjunctive query with free and existentially quantified variables.
#[derive(Debug, Clone)]
pub struct ConjunctiveQuery {
    /// Per-variable domain sizes.
    pub domains: Domains,
    /// Free (output) variables.
    pub free: Vec<Var>,
    /// Existentially quantified variables.
    pub exists: Vec<Var>,
    /// The atoms.
    pub atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// The Boolean FAQ instance (CQ evaluation).
    pub fn to_bool_faq(&self) -> Result<FaqQuery<BoolDomain>, FaqError> {
        FaqQuery::new(
            BoolDomain,
            self.domains.clone(),
            self.free.clone(),
            self.exists.iter().map(|&v| (v, VarAgg::Semiring(BoolDomain::OR))).collect(),
            self.atoms.iter().map(|a| a.bool_factor()).collect(),
        )
    }

    /// Evaluate the CQ: the set of answer tuples over the free variables.
    pub fn evaluate(&self) -> Result<Factor<bool>, FaqError> {
        Ok(Engine::sequential().evaluate(&self.to_bool_faq()?)?.factor)
    }

    /// Boolean CQ: is the query non-empty? (All variables existential.)
    pub fn is_satisfiable(&self) -> Result<bool, FaqError> {
        assert!(self.free.is_empty(), "BCQ requires no free variables");
        Ok(Engine::sequential().evaluate(&self.to_bool_faq()?)?.scalar().copied().unwrap_or(false))
    }

    /// The #CQ instance: `Σ_{free} max_{exists} Π ψ` over the counting
    /// domain — a zero-free-variable FAQ whose scalar is the answer count.
    pub fn to_count_faq(&self) -> Result<FaqQuery<CountDomain>, FaqError> {
        let mut bound: Vec<(Var, VarAgg)> =
            self.free.iter().map(|&v| (v, VarAgg::Semiring(CountDomain::SUM))).collect();
        bound.extend(self.exists.iter().map(|&v| (v, VarAgg::Semiring(CountDomain::MAX))));
        FaqQuery::new(
            CountDomain,
            self.domains.clone(),
            vec![],
            bound,
            self.atoms.iter().map(|a| a.count_factor()).collect(),
        )
    }

    /// #CQ: the number of answers, via InsideOut on a width-optimized
    /// equivalent ordering.
    pub fn count_answers(&self) -> Result<u64, FaqError> {
        let q = self.to_count_faq()?;
        let shape = q.shape();
        let order = crate::width_order_or(&shape, q.ordering(), 5_000, 14)?;
        let out = Engine::sequential().evaluate_with_order(&q, &order)?;
        Ok(out.scalar().copied().unwrap_or(0))
    }

    /// #CQ by brute force (test oracle).
    pub fn count_answers_naive(&self) -> Result<u64, FaqError> {
        let q = self.to_count_faq()?;
        let out = naive_eval(&q);
        Ok(out.get(&[]).copied().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faq_hypergraph::v;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn atom(vars: &[u32], tuples: &[&[u32]]) -> Atom {
        Atom {
            vars: vars.iter().map(|&i| v(i)).collect(),
            tuples: tuples.iter().map(|t| t.to_vec()).collect(),
        }
    }

    #[test]
    fn bcq_satisfiability() {
        // ∃x0 x1: R(x0), S(x0, x1).
        let q = ConjunctiveQuery {
            domains: Domains::uniform(2, 3),
            free: vec![],
            exists: vec![v(0), v(1)],
            atoms: vec![atom(&[0], &[&[1]]), atom(&[0, 1], &[&[1, 2], &[0, 0]])],
        };
        assert!(q.is_satisfiable().unwrap());

        let q2 = ConjunctiveQuery {
            domains: Domains::uniform(2, 3),
            free: vec![],
            exists: vec![v(0), v(1)],
            atoms: vec![atom(&[0], &[&[2]]), atom(&[0, 1], &[&[1, 2], &[0, 0]])],
        };
        assert!(!q2.is_satisfiable().unwrap());
    }

    #[test]
    fn cq_projection() {
        // ϕ(x0) = ∃x1: R(x0, x1).
        let q = ConjunctiveQuery {
            domains: Domains::uniform(2, 3),
            free: vec![v(0)],
            exists: vec![v(1)],
            atoms: vec![atom(&[0, 1], &[&[0, 1], &[0, 2], &[2, 0]])],
        };
        let out = q.evaluate().unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.get(&[0]).is_some());
        assert!(out.get(&[2]).is_some());
        assert!(out.get(&[1]).is_none());
    }

    #[test]
    fn count_answers_matches_projection_size() {
        let q = ConjunctiveQuery {
            domains: Domains::uniform(3, 3),
            free: vec![v(0)],
            exists: vec![v(1), v(2)],
            atoms: vec![
                atom(&[0, 1], &[&[0, 1], &[1, 1], &[2, 0]]),
                atom(&[1, 2], &[&[1, 2], &[0, 0]]),
            ],
        };
        let eval_len = q.evaluate().unwrap().len() as u64;
        assert_eq!(q.count_answers().unwrap(), eval_len);
        assert_eq!(q.count_answers_naive().unwrap(), eval_len);
    }

    #[test]
    fn random_cq_count_vs_naive() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..15 {
            let d = 3u32;
            let mk = |rng: &mut StdRng, vars: &[u32]| {
                let mut tuples = Vec::new();
                for _ in 0..rng.gen_range(1..8) {
                    tuples.push((0..vars.len()).map(|_| rng.gen_range(0..d)).collect::<Vec<u32>>());
                }
                tuples.sort();
                tuples.dedup();
                Atom { vars: vars.iter().map(|&i| v(i)).collect(), tuples }
            };
            let q = ConjunctiveQuery {
                domains: Domains::uniform(4, d),
                free: vec![v(0), v(3)],
                exists: vec![v(1), v(2)],
                atoms: vec![mk(&mut rng, &[0, 1]), mk(&mut rng, &[1, 2]), mk(&mut rng, &[2, 3])],
            };
            assert_eq!(q.count_answers().unwrap(), q.count_answers_naive().unwrap());
        }
    }

    #[test]
    fn no_exists_pure_join_count() {
        let q = ConjunctiveQuery {
            domains: Domains::uniform(2, 2),
            free: vec![v(0), v(1)],
            exists: vec![],
            atoms: vec![atom(&[0, 1], &[&[0, 0], &[1, 1]])],
        };
        assert_eq!(q.count_answers().unwrap(), 2);
    }
}
