//! Junction-tree message passing over a tree decomposition (paper §8.4).
//!
//! Variable elimination answers one query; message passing (belief
//! propagation on the bags of a tree decomposition) is "variable elimination
//! run in all directions at once": after one calibration pass, *every*
//! single-variable (indeed every within-bag) marginal is available — the
//! output representation that "prepares the model for future queries".
//!
//! This is the classical counterpart the paper contrasts InsideOut against;
//! the per-bag computations reuse the same factor algebra and multiway join.

use faq_core::FaqError;
use faq_factor::{Domains, Factor};
use faq_hypergraph::ordering::fhtw;
use faq_hypergraph::{Hypergraph, TreeDecomposition, Var, VarSet};
use faq_join::{multiway_join, JoinInput};
use faq_semiring::Semiring;

/// A calibrated junction tree over an arbitrary commutative semiring.
pub struct JunctionTree<S: Semiring> {
    semiring: S,
    domains: Domains,
    /// Bag variable sets, in join order.
    bags: Vec<Vec<Var>>,
    /// Parent pointer per bag (root points to itself).
    parent: Vec<usize>,
    /// Calibrated beliefs: `β_i = ψ_i ⊗ Π messages into i`, one per bag.
    beliefs: Vec<Factor<S::E>>,
}

impl<S: Semiring> JunctionTree<S> {
    /// Build and calibrate a junction tree for the given potentials.
    ///
    /// `exact_limit` bounds the exact tree-decomposition search (see
    /// [`fhtw`]); larger models fall back to heuristics.
    pub fn build(
        semiring: S,
        domains: &Domains,
        potentials: &[Factor<S::E>],
        exact_limit: usize,
    ) -> Result<Self, FaqError> {
        // 1. Tree decomposition of the model hypergraph.
        let mut h = Hypergraph::new();
        for v in domains.vars() {
            h.add_vertex(v);
        }
        for p in potentials {
            h.add_edge(p.schema().iter().copied());
        }
        let ordering = fhtw(&h, exact_limit).order;
        let td = TreeDecomposition::from_ordering(&h, &ordering);
        td.validate(&h).map_err(FaqError::BadOrdering)?;

        let bags: Vec<Vec<Var>> = td.bags.iter().map(|b| b.iter().copied().collect()).collect();
        let parent = td.parent.clone();
        let n = bags.len();

        // 2. Assign each potential to some bag covering it; materialize the
        //    per-bag clique potentials (missing potentials → the constant 1
        //    over the bag, represented lazily as `None`).
        let mut assigned: Vec<Vec<&Factor<S::E>>> = vec![Vec::new(); n];
        'outer: for p in potentials {
            let pvars: VarSet = p.schema().iter().copied().collect();
            for (i, bag) in td.bags.iter().enumerate() {
                if pvars.is_subset(bag) {
                    assigned[i].push(p);
                    continue 'outer;
                }
            }
            unreachable!("tree decomposition covers every edge");
        }
        let mut clique: Vec<Option<Factor<S::E>>> = Vec::with_capacity(n);
        for i in 0..n {
            if assigned[i].is_empty() {
                clique.push(None);
            } else {
                clique.push(Some(join_over(
                    &semiring,
                    domains,
                    &bags[i],
                    &assigned[i].iter().map(|f| (*f).clone()).collect::<Vec<_>>(),
                )));
            }
        }

        // 3. Two-pass message passing. Order bags by depth (root first).
        let mut depth = vec![0usize; n];
        for (i, slot) in depth.iter_mut().enumerate() {
            let mut cur = i;
            let mut d = 0;
            while parent[cur] != cur {
                cur = parent[cur];
                d += 1;
            }
            *slot = d;
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| depth[i]);

        // Upward messages: leaves to root.
        let mut up: Vec<Option<Factor<S::E>>> = vec![None; n];
        for &i in order.iter().rev() {
            if parent[i] == i {
                continue;
            }
            let children: Vec<usize> = (0..n).filter(|&c| parent[c] == i && c != i).collect();
            let mut inputs: Vec<Factor<S::E>> = Vec::new();
            if let Some(c) = &clique[i] {
                inputs.push(c.clone());
            }
            for &c in &children {
                if let Some(m) = &up[c] {
                    inputs.push(m.clone());
                }
            }
            let sep: Vec<Var> =
                bags[i].iter().copied().filter(|v| bags[parent[i]].contains(v)).collect();
            up[i] = Some(message(&semiring, domains, &bags[i], &inputs, &sep));
        }

        // Downward messages: root to leaves.
        let mut down: Vec<Option<Factor<S::E>>> = vec![None; n];
        for &i in &order {
            let children: Vec<usize> = (0..n).filter(|&c| parent[c] == i && c != i).collect();
            for &c in &children {
                let mut inputs: Vec<Factor<S::E>> = Vec::new();
                if let Some(cp) = &clique[i] {
                    inputs.push(cp.clone());
                }
                if parent[i] != i {
                    if let Some(m) = &down[i] {
                        inputs.push(m.clone());
                    }
                }
                for &sib in &children {
                    if sib != c {
                        if let Some(m) = &up[sib] {
                            inputs.push(m.clone());
                        }
                    }
                }
                let sep: Vec<Var> =
                    bags[c].iter().copied().filter(|v| bags[i].contains(v)).collect();
                down[c] = Some(message(&semiring, domains, &bags[i], &inputs, &sep));
            }
        }

        // 4. Calibrated beliefs.
        let mut beliefs: Vec<Factor<S::E>> = Vec::with_capacity(n);
        for i in 0..n {
            let children: Vec<usize> = (0..n).filter(|&c| parent[c] == i && c != i).collect();
            let mut inputs: Vec<Factor<S::E>> = Vec::new();
            if let Some(cp) = &clique[i] {
                inputs.push(cp.clone());
            }
            if parent[i] != i {
                if let Some(m) = &down[i] {
                    inputs.push(m.clone());
                }
            }
            for &c in &children {
                if let Some(m) = &up[c] {
                    inputs.push(m.clone());
                }
            }
            beliefs.push(join_over(&semiring, domains, &bags[i], &inputs));
        }

        Ok(JunctionTree { semiring, domains: domains.clone(), bags, parent, beliefs })
    }

    /// Number of bags.
    pub fn num_bags(&self) -> usize {
        self.bags.len()
    }

    /// The calibrated belief of bag `i` (the unnormalized joint over the bag).
    pub fn belief(&self, i: usize) -> &Factor<S::E> {
        &self.beliefs[i]
    }

    /// The unnormalized marginal over `vars`, which must be contained in some
    /// single bag (the standard junction-tree query model). Returns `None`
    /// when no bag covers `vars`.
    pub fn marginal(&self, vars: &[Var]) -> Option<Factor<S::E>> {
        let want: VarSet = vars.iter().copied().collect();
        let bag = (0..self.bags.len())
            .find(|&i| want.is_subset(&self.bags[i].iter().copied().collect()))?;
        let s = &self.semiring;
        Some(self.beliefs[bag].project_combine(vars, |a, b| s.add(a, b), |e| s.is_zero(e)))
    }

    /// Calibration invariant: adjacent beliefs agree on their separator.
    /// Returns the first violation as `(bag, parent)` if any.
    pub fn check_calibration(&self, eq: impl Fn(&S::E, &S::E) -> bool) -> Option<(usize, usize)> {
        let s = &self.semiring;
        for i in 0..self.bags.len() {
            let p = self.parent[i];
            if p == i {
                continue;
            }
            let sep: Vec<Var> =
                self.bags[i].iter().copied().filter(|v| self.bags[p].contains(v)).collect();
            let a = self.beliefs[i].project_combine(&sep, |x, y| s.add(x, y), |e| s.is_zero(e));
            let b = self.beliefs[p].project_combine(&sep, |x, y| s.add(x, y), |e| s.is_zero(e));
            if a.len() != b.len() {
                return Some((i, p));
            }
            for (row, val) in a.iter() {
                match b.get(row) {
                    Some(other) if eq(val, other) => {}
                    _ => return Some((i, p)),
                }
            }
        }
        let _ = &self.domains;
        None
    }
}

/// Materialize the product of `inputs` over the bag variables.
fn join_over<S: Semiring>(
    s: &S,
    domains: &Domains,
    bag: &[Var],
    inputs: &[Factor<S::E>],
) -> Factor<S::E> {
    let join_inputs: Vec<JoinInput<'_, S::E>> = inputs.iter().map(JoinInput::value).collect();
    let mut rows: Vec<(Vec<u32>, S::E)> = Vec::new();
    multiway_join(
        domains,
        bag,
        &join_inputs,
        s.one(),
        |a, b| s.mul(a, b),
        |binding, val| {
            if !s.is_zero(&val) {
                rows.push((binding.to_vec(), val));
            }
        },
    );
    Factor::new(bag.to_vec(), rows).expect("join emits distinct rows")
}

/// Compute a message: join `inputs` over `bag`, then `⊕`-project to `sep`.
fn message<S: Semiring>(
    s: &S,
    domains: &Domains,
    bag: &[Var],
    inputs: &[Factor<S::E>],
    sep: &[Var],
) -> Factor<S::E> {
    let joint = join_over(s, domains, bag, inputs);
    joint.project_combine(sep, |a, b| s.add(a, b), |e| s.is_zero(e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pgm;
    use faq_hypergraph::v;
    use faq_semiring::F64SumProd;
    use rand::{rngs::StdRng, SeedableRng};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn all_marginals_match_variable_elimination() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..5 {
            let model = pgm::random_tree(7, 3, &mut rng);
            let jt = JunctionTree::build(F64SumProd, &model.domains, &model.potentials, 14)
                .expect("junction tree builds");
            for var in model.domains.vars() {
                let via_jt = jt.marginal(&[var]).expect("single var is in some bag");
                let via_ve = model.marginal(&[var]).unwrap();
                assert_eq!(via_jt.len(), via_ve.len(), "{var}");
                for (row, val) in via_ve.iter() {
                    let got = via_jt.get(row).unwrap();
                    assert!(close(*got, *val), "{var} at {row:?}: {got} vs {val}");
                }
            }
        }
    }

    #[test]
    fn grid_marginals_match() {
        let mut rng = StdRng::seed_from_u64(18);
        let model = pgm::random_grid(2, 3, 2, &mut rng);
        let jt = JunctionTree::build(F64SumProd, &model.domains, &model.potentials, 14).unwrap();
        for var in model.domains.vars() {
            let via_jt = jt.marginal(&[var]).unwrap();
            let via_ve = model.marginal_naive(&[var]).unwrap();
            for (row, val) in via_ve.iter() {
                assert!(close(*via_jt.get(row).unwrap(), *val));
            }
        }
    }

    #[test]
    fn calibration_invariant_holds() {
        let mut rng = StdRng::seed_from_u64(19);
        let model = pgm::random_chain(6, 3, &mut rng);
        let jt = JunctionTree::build(F64SumProd, &model.domains, &model.potentials, 14).unwrap();
        assert_eq!(jt.check_calibration(|a, b| close(*a, *b)), None);
        assert!(jt.num_bags() >= 1);
    }

    #[test]
    fn pairwise_in_bag_marginals() {
        let mut rng = StdRng::seed_from_u64(20);
        let model = pgm::random_chain(5, 2, &mut rng);
        let jt = JunctionTree::build(F64SumProd, &model.domains, &model.potentials, 14).unwrap();
        // Adjacent chain variables share a bag; their pairwise marginal must
        // match variable elimination.
        let via_jt = jt.marginal(&[v(2), v(3)]).expect("edge covered by a bag");
        let via_ve = model.marginal(&[v(2), v(3)]).unwrap();
        for (row, val) in via_ve.iter() {
            assert!(close(*via_jt.get(row).unwrap(), *val));
        }
    }

    #[test]
    fn uncovered_set_returns_none() {
        let mut rng = StdRng::seed_from_u64(21);
        let model = pgm::random_chain(6, 2, &mut rng);
        let jt = JunctionTree::build(F64SumProd, &model.domains, &model.potentials, 14).unwrap();
        // The chain endpoints never share a bag at treewidth 1.
        assert!(jt.marginal(&[v(0), v(5)]).is_none());
    }
}
