//! Brute-force SAT and model counting — the test oracles.

use crate::formula::Cnf;

/// Whether the formula is satisfiable (exhaustive search, ≤ 25 variables).
pub fn brute_force_sat(cnf: &Cnf) -> bool {
    assert!(cnf.num_vars <= 25, "brute force limited to 25 variables");
    let n = cnf.num_vars as usize;
    let mut assignment = vec![false; n];
    for mask in 0u64..(1u64 << n) {
        for (i, slot) in assignment.iter_mut().enumerate() {
            *slot = mask >> i & 1 == 1;
        }
        if cnf.eval(&assignment) {
            return true;
        }
    }
    // 0 variables: the empty assignment decides.
    if n == 0 {
        return cnf.clauses.iter().all(|c| !c.is_empty());
    }
    false
}

/// The number of satisfying assignments (exhaustive, ≤ 25 variables).
pub fn brute_force_count(cnf: &Cnf) -> u64 {
    assert!(cnf.num_vars <= 25, "brute force limited to 25 variables");
    let n = cnf.num_vars as usize;
    let mut assignment = vec![false; n];
    let mut count = 0;
    for mask in 0u64..(1u64 << n) {
        for (i, slot) in assignment.iter_mut().enumerate() {
            *slot = mask >> i & 1 == 1;
        }
        if cnf.eval(&assignment) {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{Clause, Lit};

    #[test]
    fn simple_counts() {
        // (x0 ∨ x1): 3 of 4 assignments.
        let cnf = Cnf::new(2, vec![Clause::new([Lit::pos(0), Lit::pos(1)]).unwrap()]);
        assert!(brute_force_sat(&cnf));
        assert_eq!(brute_force_count(&cnf), 3);
    }

    #[test]
    fn unsat_detected() {
        let cnf = Cnf::new(
            1,
            vec![Clause::new([Lit::pos(0)]).unwrap(), Clause::new([Lit::neg(0)]).unwrap()],
        );
        assert!(!brute_force_sat(&cnf));
        assert_eq!(brute_force_count(&cnf), 0);
    }

    #[test]
    fn unused_variables_double_count() {
        let cnf = Cnf::new(3, vec![Clause::new([Lit::pos(0)]).unwrap()]);
        assert_eq!(brute_force_count(&cnf), 4);
    }

    #[test]
    fn empty_formula_is_valid() {
        let cnf = Cnf::new(2, vec![]);
        assert_eq!(brute_force_count(&cnf), 4);
        assert!(brute_force_sat(&cnf));
    }

    #[test]
    fn empty_clause_is_unsat() {
        let cnf = Cnf::new(2, vec![Clause::empty()]);
        assert!(!brute_force_sat(&cnf));
        assert_eq!(brute_force_count(&cnf), 0);
    }
}
