//! SAT and #SAT for β-acyclic CNF via variable elimination (paper §8.3).
//!
//! CNF clauses are *box factors* (Definition 8.2): compactly represented
//! functions whose listing representation would be exponentially larger. The
//! backtracking OutsideIn is the wrong subroutine here; instead, InsideOut's
//! variable elimination runs with clause-level rewriting:
//!
//! * [`sat`] — the Davis–Putnam procedure (§8.3.1). Along a nested
//!   elimination order of a β-acyclic CNF every resolvent is subsumed or a
//!   tautology, so the clause set never grows and SAT is decided in
//!   polynomial time (Theorem 8.3, Ordyniak–Paulusma–Szeider).
//! * [`sharp`] — weighted model counting, #WSAT (§8.3.2). Eliminating the
//!   last NEO variable rewrites its clause chain into weighted clauses on the
//!   same (shrunken) supports, keeping the instance size constant and counting
//!   models in polynomial time (Theorem 8.4, Brault-Baron–Capelli–Mengel).
//!
//! [`gen`] provides random interval CNFs (always β-acyclic) and general
//! random CNFs for cross-validation against [`brute`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boxes;
pub mod brute;
pub mod formula;
pub mod gen;
pub mod sat;
pub mod sharp;

pub use boxes::{find_uncovered, is_covered, sat_via_boxes, BoxRegion, Interval};
pub use brute::{brute_force_count, brute_force_sat};
pub use formula::{Clause, Cnf, Lit};
pub use sat::{davis_putnam_sat, sat_beta_acyclic};
pub use sharp::{count_beta_acyclic, count_weighted_beta_acyclic, WClause};
