//! Random CNF generators for tests and benchmarks.

use crate::formula::{Clause, Cnf, Lit};
use rand::Rng;

/// A random *interval* CNF: every clause's variable set is a contiguous
/// interval of `{0, …, n−1}`. Interval hypergraphs are β-acyclic (any subset
/// of intervals GYO-reduces), so these formulas exercise the polynomial
/// Theorem 8.3 / 8.4 algorithms.
pub fn random_interval_cnf<R: Rng>(
    num_vars: u32,
    num_clauses: usize,
    max_width: u32,
    rng: &mut R,
) -> Cnf {
    assert!(num_vars >= 1);
    let mut clauses = Vec::with_capacity(num_clauses);
    while clauses.len() < num_clauses {
        let w = rng.gen_range(1..=max_width.min(num_vars));
        let start = rng.gen_range(0..=(num_vars - w));
        let lits =
            (start..start + w).map(|i| if rng.gen_bool(0.5) { Lit::pos(i) } else { Lit::neg(i) });
        clauses.push(Clause::new(lits).expect("interval literals are distinct"));
    }
    Cnf::new(num_vars, clauses)
}

/// A general random CNF (arbitrary supports) for cross-validation.
pub fn random_cnf<R: Rng>(num_vars: u32, num_clauses: usize, max_width: u32, rng: &mut R) -> Cnf {
    assert!(num_vars >= 1);
    let mut clauses = Vec::with_capacity(num_clauses);
    while clauses.len() < num_clauses {
        let w = rng.gen_range(1..=max_width.min(num_vars)) as usize;
        let mut vars: Vec<u32> = (0..num_vars).collect();
        // Fisher–Yates prefix shuffle.
        for i in 0..w {
            let j = rng.gen_range(i..vars.len());
            vars.swap(i, j);
        }
        let lits =
            vars[..w].iter().map(|&i| if rng.gen_bool(0.5) { Lit::pos(i) } else { Lit::neg(i) });
        clauses.push(Clause::new(lits).expect("distinct variables"));
    }
    Cnf::new(num_vars, clauses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faq_hypergraph::is_beta_acyclic;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn interval_cnfs_are_beta_acyclic() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..40 {
            let cnf = random_interval_cnf(8, 10, 4, &mut rng);
            assert!(is_beta_acyclic(&cnf.hypergraph()), "{cnf}");
        }
    }

    #[test]
    fn generators_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let cnf = random_cnf(6, 12, 3, &mut rng);
        assert_eq!(cnf.clauses.len(), 12);
        for c in &cnf.clauses {
            assert!(c.len() <= 3 && !c.is_empty());
        }
    }
}
