//! CNF formulas: literals, clauses, and the clause hypergraph.

use faq_hypergraph::{Hypergraph, Var, VarSet};
use std::fmt;

/// A literal: a variable with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit {
    /// The variable.
    pub var: Var,
    /// `true` for the positive literal `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Lit {
    /// Positive literal of variable `i`.
    pub fn pos(i: u32) -> Lit {
        Lit { var: Var(i), positive: true }
    }

    /// Negative literal of variable `i`.
    pub fn neg(i: u32) -> Lit {
        Lit { var: Var(i), positive: false }
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit { var: self.var, positive: !self.positive }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var.0)
        } else {
            write!(f, "¬x{}", self.var.0)
        }
    }
}

/// A clause: a disjunction of literals over distinct variables.
///
/// Invariant: literals sorted by variable, at most one literal per variable.
/// A clause containing both polarities of a variable is a tautology and must
/// be normalized away by the caller ([`Clause::new`] returns `None` for it).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Build a clause; returns `None` if the literal set is a tautology
    /// (contains `x` and `¬x`). Duplicate literals collapse.
    pub fn new<I: IntoIterator<Item = Lit>>(lits: I) -> Option<Clause> {
        let mut v: Vec<Lit> = lits.into_iter().collect();
        v.sort();
        v.dedup();
        for w in v.windows(2) {
            if w[0].var == w[1].var {
                return None; // complementary pair
            }
        }
        Some(Clause { lits: v })
    }

    /// The empty clause (unsatisfiable).
    pub fn empty() -> Clause {
        Clause { lits: Vec::new() }
    }

    /// The literals, sorted by variable.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Whether the clause is empty (identically false).
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// The variables of the clause.
    pub fn vars(&self) -> VarSet {
        self.lits.iter().map(|l| l.var).collect()
    }

    /// The polarity of `v` in this clause, if present.
    pub fn polarity(&self, v: Var) -> Option<bool> {
        self.lits.iter().find(|l| l.var == v).map(|l| l.positive)
    }

    /// Remove the literal on `v` (either polarity), if present.
    pub fn without(&self, v: Var) -> Clause {
        Clause { lits: self.lits.iter().copied().filter(|l| l.var != v).collect() }
    }

    /// Add a literal; `None` if it creates a tautology.
    pub fn with(&self, lit: Lit) -> Option<Clause> {
        Clause::new(self.lits.iter().copied().chain(std::iter::once(lit)))
    }

    /// Disjunction of two clauses; `None` if the result is a tautology.
    pub fn or(&self, other: &Clause) -> Option<Clause> {
        Clause::new(self.lits.iter().copied().chain(other.lits.iter().copied()))
    }

    /// Whether this clause implies `other` (its literal set is a subset).
    pub fn implies(&self, other: &Clause) -> bool {
        // lits are sorted; subset check via merge walk.
        let mut i = 0;
        for lit in &other.lits {
            if i < self.lits.len() && self.lits[i] == *lit {
                i += 1;
            }
        }
        i == self.lits.len()
    }

    /// Evaluate under a full assignment (`assignment[i]` is the value of `x_i`).
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.lits.iter().any(|l| assignment[l.var.index()] == l.positive)
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lits.is_empty() {
            return write!(f, "⊥");
        }
        let parts: Vec<String> = self.lits.iter().map(|l| l.to_string()).collect();
        write!(f, "({})", parts.join(" ∨ "))
    }
}

/// A CNF formula over variables `x_0 … x_{num_vars−1}`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cnf {
    /// Number of variables (variables outside any clause still count models).
    pub num_vars: u32,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// Build a formula.
    pub fn new(num_vars: u32, clauses: Vec<Clause>) -> Cnf {
        for c in &clauses {
            for l in c.lits() {
                assert!(l.var.0 < num_vars, "literal {l} out of range");
            }
        }
        Cnf { num_vars, clauses }
    }

    /// The clause hypergraph: one edge per clause, vertices = all variables.
    pub fn hypergraph(&self) -> Hypergraph {
        let mut h = Hypergraph::new();
        for i in 0..self.num_vars {
            h.add_vertex(Var(i));
        }
        for c in &self.clauses {
            if !c.is_empty() {
                h.add_edge(c.vars());
            }
        }
        h
    }

    /// Evaluate under a full assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| c.eval(assignment))
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "⊤");
        }
        let parts: Vec<String> = self.clauses.iter().map(|c| c.to_string()).collect();
        write!(f, "{}", parts.join(" ∧ "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clause_normalization() {
        let c = Clause::new([Lit::pos(2), Lit::neg(0), Lit::pos(2)]).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.lits()[0], Lit::neg(0));
        assert!(Clause::new([Lit::pos(1), Lit::neg(1)]).is_none());
    }

    #[test]
    fn implication_is_subset() {
        let a = Clause::new([Lit::pos(0)]).unwrap();
        let b = Clause::new([Lit::pos(0), Lit::neg(1)]).unwrap();
        assert!(a.implies(&b));
        assert!(!b.implies(&a));
        assert!(Clause::empty().implies(&a));
        // Different polarity does not imply.
        let c = Clause::new([Lit::neg(0), Lit::neg(1)]).unwrap();
        assert!(!a.implies(&c));
    }

    #[test]
    fn or_detects_tautology() {
        let a = Clause::new([Lit::pos(0)]).unwrap();
        let b = Clause::new([Lit::neg(0), Lit::pos(1)]).unwrap();
        assert!(a.or(&b).is_none());
        let c = Clause::new([Lit::pos(1)]).unwrap();
        assert_eq!(a.or(&c).unwrap().len(), 2);
    }

    #[test]
    fn eval_clause_and_cnf() {
        let cnf = Cnf::new(
            2,
            vec![
                Clause::new([Lit::pos(0), Lit::pos(1)]).unwrap(),
                Clause::new([Lit::neg(0)]).unwrap(),
            ],
        );
        assert!(cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[true, true]));
        assert!(!cnf.eval(&[false, false]));
    }

    #[test]
    fn hypergraph_shape() {
        let cnf = Cnf::new(
            3,
            vec![
                Clause::new([Lit::pos(0), Lit::pos(1)]).unwrap(),
                Clause::new([Lit::neg(1), Lit::pos(2)]).unwrap(),
            ],
        );
        let h = cnf.hypergraph();
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 2);
    }

    #[test]
    fn without_and_with() {
        let c = Clause::new([Lit::pos(0), Lit::neg(1)]).unwrap();
        assert_eq!(c.without(Var(1)), Clause::new([Lit::pos(0)]).unwrap());
        assert_eq!(c.polarity(Var(1)), Some(false));
        assert_eq!(c.polarity(Var(2)), None);
        assert!(c.with(Lit::pos(1)).is_none());
    }
}
