//! SAT by Davis–Putnam variable elimination (paper §8.3.1).
//!
//! Eliminating variable `v` replaces the clauses containing `v` by all
//! resolvents `C_i ∨ C_j − {v, ¬v}` for `C_i ∋ v`, `C_j ∋ ¬v` (tautologies
//! dropped, subsumed clauses removed). Along a nested elimination order of a
//! β-acyclic formula, every resolvent is subsumed by an existing clause or a
//! tautology (the chain property), so the clause set never grows and the
//! procedure is polynomial (Theorem 8.3).

use crate::formula::{Clause, Cnf};
use faq_hypergraph::{nested_elimination_order, Var};

/// Statistics from a Davis–Putnam run.
#[derive(Debug, Clone, Copy, Default)]
pub struct DpStats {
    /// Maximum number of live clauses at any point.
    pub max_clauses: usize,
    /// Total resolvents generated (before tautology/subsumption filtering).
    pub resolvents: u64,
}

/// Davis–Putnam elimination along the given variable order (eliminates from
/// the **back** of `order`, matching the paper's vertex-ordering convention).
///
/// Works on any CNF; runs in polynomial time when `order` is a nested
/// elimination order of a β-acyclic formula, and may blow up otherwise.
pub fn davis_putnam_sat(cnf: &Cnf, order: &[Var]) -> (bool, DpStats) {
    let mut clauses: Vec<Clause> = cnf.clauses.clone();
    let mut stats = DpStats { max_clauses: clauses.len(), resolvents: 0 };

    // Initial housekeeping: an empty clause is immediate UNSAT.
    if clauses.iter().any(|c| c.is_empty()) {
        return (false, stats);
    }
    subsume(&mut clauses);

    for &v in order.iter().rev() {
        let (pos, rest): (Vec<Clause>, Vec<Clause>) =
            clauses.into_iter().partition(|c| c.polarity(v) == Some(true));
        let (neg, mut rest): (Vec<Clause>, Vec<Clause>) =
            rest.into_iter().partition(|c| c.polarity(v) == Some(false));

        // Resolve every positive clause with every negative clause.
        for ci in &pos {
            for cj in &neg {
                stats.resolvents += 1;
                if let Some(resolvent) = ci.without(v).or(&cj.without(v)) {
                    if resolvent.is_empty() {
                        return (false, stats);
                    }
                    rest.push(resolvent);
                }
            }
        }
        // Pure-literal case (pos or neg empty): the satisfied clauses vanish.
        subsume(&mut rest);
        stats.max_clauses = stats.max_clauses.max(rest.len());
        clauses = rest;
    }

    (true, stats)
}

/// Remove duplicate and subsumed clauses.
fn subsume(clauses: &mut Vec<Clause>) {
    clauses.sort_by_key(|c| c.len());
    let mut keep: Vec<Clause> = Vec::with_capacity(clauses.len());
    'outer: for c in clauses.drain(..) {
        for k in &keep {
            if k.implies(&c) {
                continue 'outer; // subsumed (or duplicate)
            }
        }
        keep.push(c);
    }
    *clauses = std::mem::take(&mut keep);
}

/// SAT for β-acyclic CNF in polynomial time (Theorem 8.3).
///
/// Returns `None` when the clause hypergraph is not β-acyclic.
pub fn sat_beta_acyclic(cnf: &Cnf) -> Option<(bool, DpStats)> {
    let order = nested_elimination_order(&cnf.hypergraph())?;
    Some(davis_putnam_sat(cnf, &order))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_sat;
    use crate::formula::Lit;
    use crate::gen::random_interval_cnf;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn simple_sat_and_unsat() {
        let sat = Cnf::new(
            2,
            vec![
                Clause::new([Lit::pos(0), Lit::pos(1)]).unwrap(),
                Clause::new([Lit::neg(0)]).unwrap(),
            ],
        );
        let (ok, _) = sat_beta_acyclic(&sat).unwrap();
        assert!(ok);

        let unsat = Cnf::new(
            1,
            vec![Clause::new([Lit::pos(0)]).unwrap(), Clause::new([Lit::neg(0)]).unwrap()],
        );
        let (ok, _) = sat_beta_acyclic(&unsat).unwrap();
        assert!(!ok);
    }

    #[test]
    fn matches_bruteforce_on_interval_cnfs() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..60 {
            let n = rng.gen_range(2..10u32);
            let m = rng.gen_range(1..12);
            let cnf = random_interval_cnf(n, m, 4, &mut rng);
            let (got, _) = sat_beta_acyclic(&cnf).expect("interval CNFs are β-acyclic");
            let want = brute_force_sat(&cnf);
            assert_eq!(got, want, "{cnf}");
        }
    }

    #[test]
    fn matches_bruteforce_on_arbitrary_small_cnfs_any_order() {
        // Davis–Putnam is correct along ANY order (just maybe slow).
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..60 {
            let n = rng.gen_range(2..7u32);
            let m = rng.gen_range(1..8);
            let cnf = crate::gen::random_cnf(n, m, 3, &mut rng);
            let order: Vec<Var> = (0..n).map(Var).collect();
            let (got, _) = davis_putnam_sat(&cnf, &order);
            assert_eq!(got, brute_force_sat(&cnf), "{cnf}");
        }
    }

    #[test]
    fn clause_count_stays_bounded_on_neo() {
        // Theorem 8.3's mechanism: along a NEO the live clause count never
        // exceeds the input clause count.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..25 {
            let n = rng.gen_range(4..14u32);
            let m = rng.gen_range(2..16);
            let cnf = random_interval_cnf(n, m, 5, &mut rng);
            let (_, stats) = sat_beta_acyclic(&cnf).unwrap();
            assert!(
                stats.max_clauses <= cnf.clauses.len().max(1),
                "clause blow-up: {} -> {} on {cnf}",
                cnf.clauses.len(),
                stats.max_clauses
            );
        }
    }

    #[test]
    fn non_beta_acyclic_reports_none() {
        // Triangle of binary clauses + covering clause is α- but not β-acyclic.
        let cnf = Cnf::new(
            3,
            vec![
                Clause::new([Lit::pos(0), Lit::pos(1)]).unwrap(),
                Clause::new([Lit::pos(1), Lit::pos(2)]).unwrap(),
                Clause::new([Lit::pos(0), Lit::pos(2)]).unwrap(),
                Clause::new([Lit::pos(0), Lit::pos(1), Lit::pos(2)]).unwrap(),
            ],
        );
        assert!(sat_beta_acyclic(&cnf).is_none());
    }

    #[test]
    fn empty_and_trivial_formulas() {
        let top = Cnf::new(3, vec![]);
        assert!(sat_beta_acyclic(&top).unwrap().0);
        let bot = Cnf::new(2, vec![Clause::empty()]);
        assert!(!sat_beta_acyclic(&bot).unwrap().0);
    }
}
