//! #SAT / #WSAT by weighted-clause elimination (paper §8.3.2, Theorem 8.4).
//!
//! A weighted clause `(C, w)` denotes the box factor `ψ(x) = 1` if `x`
//! satisfies `C` and `w` otherwise; plain #SAT uses `w = 0`. Eliminating the
//! last variable `v` of a nested elimination order rewrites the clause chain
//! `∂(v)` (sorted by support size — nested by β-acyclicity) into:
//!
//! * `C'_0` — the empty clause of weight 2 (a scalar factor), and
//! * `C'_i = [C_i] − v` with weight
//!   `[color_{∂≤i_P}(C'_i ∨ v) + color_{∂≤i_N}(C'_i ∨ ¬v)] /
//!    [color_{∂<i_P}(C'_i ∨ v) + color_{∂<i_N}(C'_i ∨ ¬v)]`
//!   (0 when the denominator vanishes), where `color_C(D) = Π{w(C) : C ⟹ D}`.
//!
//! The supports of the new clauses are old supports minus `v`, so the
//! hypergraph remains β-acyclic and the instance size is unchanged — overall
//! polynomial time.

use crate::formula::{Clause, Cnf, Lit};
use faq_hypergraph::{nested_elimination_order, Var};

/// A weighted clause: value `1` when satisfied, `weight` otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct WClause {
    /// The clause.
    pub clause: Clause,
    /// The value taken by falsifying assignments.
    pub weight: f64,
}

impl WClause {
    /// A plain #SAT clause (weight 0).
    pub fn hard(clause: Clause) -> WClause {
        WClause { clause, weight: 0.0 }
    }
}

/// `color_C(D) = Π { weight(C) : C ∈ set, C ⟹ D }` (empty product = 1).
fn color(set: &[&WClause], d: &Clause) -> f64 {
    let mut acc = 1.0;
    for wc in set {
        if wc.clause.implies(d) {
            acc *= wc.weight;
        }
    }
    acc
}

/// Eliminate variable `v` from a weighted clause set, multiplying any scalar
/// (empty-clause) results into `scalar`.
fn eliminate(wclauses: Vec<WClause>, v: Var, scalar: &mut f64) -> Vec<WClause> {
    let (incident, mut rest): (Vec<WClause>, Vec<WClause>) =
        wclauses.into_iter().partition(|wc| wc.clause.polarity(v).is_some());

    if incident.is_empty() {
        // Σ_{x_v} of an expression without x_v: factor 2.
        *scalar *= 2.0;
        return rest;
    }

    // Sort ascending by support size; β-acyclicity + NEO makes this a chain.
    let mut sorted = incident;
    sorted.sort_by_key(|wc| wc.clause.len());

    // C'_0: empty clause of weight 2.
    *scalar *= 2.0;

    for i in 0..sorted.len() {
        let ci = &sorted[i];
        let ci_reduced = ci.clause.without(v);
        // D = C'_i ∨ v, D̄ = C'_i ∨ ¬v. Both always exist: C'_i has no v.
        let d_pos = ci_reduced.with(Lit { var: v, positive: true }).expect("no v in C'_i");
        let d_neg = ci_reduced.with(Lit { var: v, positive: false }).expect("no v in C'_i");

        let pol = |wc: &WClause, positive: bool| wc.clause.polarity(v) == Some(positive);
        let le_p: Vec<&WClause> = sorted[..=i].iter().filter(|wc| pol(wc, true)).collect();
        let le_n: Vec<&WClause> = sorted[..=i].iter().filter(|wc| pol(wc, false)).collect();
        let lt_p: Vec<&WClause> = sorted[..i].iter().filter(|wc| pol(wc, true)).collect();
        let lt_n: Vec<&WClause> = sorted[..i].iter().filter(|wc| pol(wc, false)).collect();

        let den = color(&lt_p, &d_pos) + color(&lt_n, &d_neg);
        let weight =
            if den == 0.0 { 0.0 } else { (color(&le_p, &d_pos) + color(&le_n, &d_neg)) / den };

        if ci_reduced.is_empty() {
            *scalar *= weight;
        } else {
            rest.push(WClause { clause: ci_reduced, weight });
        }
    }
    rest
}

/// #WSAT along a given elimination order (eliminates from the back).
///
/// Correct along a NEO of a β-acyclic clause hypergraph; the chain property is
/// what justifies the weight rewriting, so this function *requires* it and is
/// exposed for callers that computed the order themselves.
pub fn count_weighted_with_order(num_vars: u32, wclauses: Vec<WClause>, order: &[Var]) -> f64 {
    assert_eq!(order.len(), num_vars as usize, "order must cover all variables");
    let mut scalar = 1.0;
    let mut live = wclauses;
    for &v in order.iter().rev() {
        if scalar == 0.0 {
            return 0.0;
        }
        live = eliminate(live, v, &mut scalar);
    }
    // All variables eliminated: surviving clauses are empty-support and were
    // folded into the scalar already; anything left must be empty.
    debug_assert!(live.iter().all(|wc| wc.clause.is_empty()));
    for wc in live {
        // An empty clause at the end contributes its weight directly.
        scalar *= wc.weight;
    }
    scalar
}

/// Weighted model count of a β-acyclic weighted CNF (Theorem 8.4).
/// Returns `None` when the clause hypergraph is not β-acyclic.
pub fn count_weighted_beta_acyclic(num_vars: u32, wclauses: &[WClause]) -> Option<f64> {
    let mut h = faq_hypergraph::Hypergraph::new();
    for i in 0..num_vars {
        h.add_vertex(Var(i));
    }
    for wc in wclauses {
        if !wc.clause.is_empty() {
            h.add_edge(wc.clause.vars());
        }
    }
    let order = nested_elimination_order(&h)?;
    Some(count_weighted_with_order(num_vars, wclauses.to_vec(), &order))
}

/// #SAT of a β-acyclic CNF in polynomial time (Theorem 8.4).
/// Returns `None` when the clause hypergraph is not β-acyclic.
pub fn count_beta_acyclic(cnf: &Cnf) -> Option<f64> {
    let wclauses: Vec<WClause> = cnf.clauses.iter().map(|c| WClause::hard(c.clone())).collect();
    count_weighted_beta_acyclic(cnf.num_vars, &wclauses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_count;
    use crate::gen::random_interval_cnf;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn single_clause_counts() {
        // (x0 ∨ x1) over 2 vars: 3 models.
        let cnf = Cnf::new(2, vec![Clause::new([Lit::pos(0), Lit::pos(1)]).unwrap()]);
        let got = count_beta_acyclic(&cnf).unwrap();
        assert!(close(got, 3.0), "{got}");
    }

    #[test]
    fn unsat_counts_zero() {
        let cnf = Cnf::new(
            1,
            vec![Clause::new([Lit::pos(0)]).unwrap(), Clause::new([Lit::neg(0)]).unwrap()],
        );
        assert!(close(count_beta_acyclic(&cnf).unwrap(), 0.0));
    }

    #[test]
    fn empty_formula_counts_all() {
        let cnf = Cnf::new(4, vec![]);
        assert!(close(count_beta_acyclic(&cnf).unwrap(), 16.0));
    }

    #[test]
    fn matches_bruteforce_on_interval_cnfs() {
        let mut rng = StdRng::seed_from_u64(123);
        for _ in 0..80 {
            let n = rng.gen_range(2..10u32);
            let m = rng.gen_range(1..12);
            let cnf = random_interval_cnf(n, m, 4, &mut rng);
            let got = count_beta_acyclic(&cnf).expect("interval CNFs are β-acyclic");
            let want = brute_force_count(&cnf) as f64;
            assert!(close(got, want), "{cnf}: got {got}, want {want}");
        }
    }

    #[test]
    fn weighted_counting_matches_bruteforce() {
        // Weighted semantics: Σ_x Π_C (1 if satisfied else w_C).
        let mut rng = StdRng::seed_from_u64(321);
        for _ in 0..40 {
            let n = rng.gen_range(2..8u32);
            let m = rng.gen_range(1..8);
            let cnf = random_interval_cnf(n, m, 3, &mut rng);
            let wclauses: Vec<WClause> = cnf
                .clauses
                .iter()
                .map(|c| WClause {
                    clause: c.clone(),
                    weight: [0.0, 0.5, 1.0, 2.0][rng.gen_range(0..4)],
                })
                .collect();
            let got = count_weighted_beta_acyclic(n, &wclauses).unwrap();
            // Brute force the weighted sum.
            let mut want = 0.0;
            let mut assignment = vec![false; n as usize];
            for mask in 0u64..(1 << n) {
                for (i, slot) in assignment.iter_mut().enumerate() {
                    *slot = mask >> i & 1 == 1;
                }
                let mut prod = 1.0;
                for wc in &wclauses {
                    if !wc.clause.eval(&assignment) {
                        prod *= wc.weight;
                    }
                }
                want += prod;
            }
            assert!(close(got, want), "got {got}, want {want}");
        }
    }

    #[test]
    fn duplicate_clauses_are_independent_factors() {
        // Two copies of (x0) with weight 0 — count is still 1 (x0 = true).
        let c = Clause::new([Lit::pos(0)]).unwrap();
        let wclauses = vec![WClause::hard(c.clone()), WClause::hard(c)];
        let got = count_weighted_beta_acyclic(1, &wclauses).unwrap();
        assert!(close(got, 1.0), "{got}");
    }

    #[test]
    fn non_beta_acyclic_reports_none() {
        let cnf = Cnf::new(
            3,
            vec![
                Clause::new([Lit::pos(0), Lit::pos(1)]).unwrap(),
                Clause::new([Lit::pos(1), Lit::pos(2)]).unwrap(),
                Clause::new([Lit::pos(0), Lit::pos(2)]).unwrap(),
                Clause::new([Lit::pos(0), Lit::pos(1), Lit::pos(2)]).unwrap(),
            ],
        );
        assert!(count_beta_acyclic(&cnf).is_none());
    }
}
