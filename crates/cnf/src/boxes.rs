//! The Box Cover Problem (paper §8.3, the Minesweeper / Tetris connection).
//!
//! A *box* is a product of intervals over a subset of the variables (full
//! range on the rest) — the geometric face of a box factor (Definition 8.2).
//! The Box Cover Problem (BCP) asks whether a set of boxes covers the whole
//! space `Π_i Dom(X_i)`, and if not, to exhibit an uncovered point. SAT is
//! the special case where each CNF clause contributes the box of its
//! falsifying assignments; a comparison-based join algorithm's work is
//! likewise lower-bounded by a box cover (the Minesweeper result).
//!
//! [`find_uncovered`] runs variable elimination on the geometric
//! representation: for the chosen variable it splits its axis at the boxes'
//! interval endpoints; within one segment every box either spans the whole
//! segment or misses it, so the problem recurses on one fewer variable.
//! With β-acyclic box supports and a nested elimination order the recursion
//! stays polynomial (the Tetris/β-acyclic regime); in general BCP is NP-hard
//! and the recursion may branch exponentially.

use crate::formula::{Clause, Cnf};
use faq_hypergraph::{Var, VarSet};
use std::collections::BTreeMap;

/// A half-open interval `[lo, hi)` of domain codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower end.
    pub lo: u32,
    /// Exclusive upper end.
    pub hi: u32,
}

impl Interval {
    /// `[lo, hi)`; must be non-empty.
    pub fn new(lo: u32, hi: u32) -> Interval {
        assert!(lo < hi, "empty interval [{lo},{hi})");
        Interval { lo, hi }
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: u32) -> bool {
        self.lo <= x && x < self.hi
    }

    /// Whether this interval fully contains `other`.
    pub fn covers(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }
}

/// A box: constrained intervals per variable; unconstrained variables span
/// their full domain.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BoxRegion {
    intervals: BTreeMap<Var, Interval>,
}

impl BoxRegion {
    /// The everything-box.
    pub fn full() -> BoxRegion {
        BoxRegion::default()
    }

    /// Constrain variable `v` to `[lo, hi)`.
    pub fn with(mut self, v: Var, lo: u32, hi: u32) -> BoxRegion {
        self.intervals.insert(v, Interval::new(lo, hi));
        self
    }

    /// The constrained variables (the box's support).
    pub fn support(&self) -> VarSet {
        self.intervals.keys().copied().collect()
    }

    /// The interval on `v`, if constrained.
    pub fn interval(&self, v: Var) -> Option<&Interval> {
        self.intervals.get(&v)
    }

    /// Whether the box contains the (fully specified) point.
    pub fn contains(&self, point: &BTreeMap<Var, u32>) -> bool {
        self.intervals.iter().all(|(v, iv)| point.get(v).is_some_and(|&x| iv.contains(x)))
    }

    fn without(&self, v: Var) -> BoxRegion {
        let mut b = self.clone();
        b.intervals.remove(&v);
        b
    }
}

/// Find a point not covered by any box, or `None` if the boxes cover the
/// whole space. `dims` lists the variables with their domain sizes; the
/// elimination splits on them left to right (pass a nested elimination order
/// of the box supports for the β-acyclic guarantee).
pub fn find_uncovered(dims: &[(Var, u32)], boxes: &[BoxRegion]) -> Option<BTreeMap<Var, u32>> {
    // A box constraining no remaining dimension covers everything below.
    if boxes.iter().any(|b| b.intervals.keys().all(|&v| !dims.iter().any(|&(d, _)| d == v))) {
        return None;
    }
    let Some(&(v, size)) = dims.first() else {
        // No dimensions left and no all-covering box: the empty point is free.
        return Some(BTreeMap::new());
    };
    let rest = &dims[1..];

    // Split the v-axis at every interval endpoint.
    let mut cuts: Vec<u32> = vec![0, size];
    for b in boxes {
        if let Some(iv) = b.interval(v) {
            cuts.push(iv.lo.min(size));
            cuts.push(iv.hi.min(size));
        }
    }
    cuts.sort_unstable();
    cuts.dedup();

    for w in cuts.windows(2) {
        let seg = Interval::new(w[0], w[1]);
        // Boxes alive on this segment: unconstrained on v, or spanning the
        // whole segment (endpoint construction guarantees the dichotomy).
        let alive: Vec<BoxRegion> = boxes
            .iter()
            .filter(|b| match b.interval(v) {
                None => true,
                Some(iv) => iv.covers(&seg),
            })
            .map(|b| b.without(v))
            .collect();
        if let Some(mut point) = find_uncovered(rest, &alive) {
            point.insert(v, seg.lo);
            return Some(point);
        }
    }
    None
}

/// Whether the boxes cover the whole space.
pub fn is_covered(dims: &[(Var, u32)], boxes: &[BoxRegion]) -> bool {
    find_uncovered(dims, boxes).is_none()
}

/// The box of assignments *falsifying* a clause: each literal pins its
/// variable to the single falsifying value (Boolean domains).
pub fn clause_to_box(clause: &Clause) -> BoxRegion {
    let mut b = BoxRegion::full();
    for lit in clause.lits() {
        let bad = u32::from(!lit.positive);
        b = b.with(lit.var, bad, bad + 1);
    }
    b
}

/// SAT via box cover (paper §8.3): the formula is satisfiable iff the
/// falsifying boxes do **not** cover `{0,1}^n`. The returned point, if any,
/// is a satisfying assignment.
pub fn sat_via_boxes(cnf: &Cnf, order: &[Var]) -> Option<Vec<bool>> {
    let dims: Vec<(Var, u32)> = order.iter().map(|&v| (v, 2)).collect();
    let boxes: Vec<BoxRegion> = cnf.clauses.iter().map(clause_to_box).collect();
    let point = find_uncovered(&dims, &boxes)?;
    let mut assignment = vec![false; cnf.num_vars as usize];
    for (v, x) in point {
        assignment[v.index()] = x == 1;
    }
    Some(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_sat;
    use crate::formula::Lit;
    use crate::gen::{random_cnf, random_interval_cnf};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn dims(sizes: &[u32]) -> Vec<(Var, u32)> {
        sizes.iter().enumerate().map(|(i, &s)| (Var(i as u32), s)).collect()
    }

    #[test]
    fn single_full_box_covers() {
        let d = dims(&[4, 4]);
        assert!(is_covered(&d, &[BoxRegion::full()]));
        assert!(!is_covered(&d, &[]));
    }

    #[test]
    fn split_axis_coverage() {
        let d = dims(&[10]);
        let left = BoxRegion::full().with(Var(0), 0, 6);
        let right = BoxRegion::full().with(Var(0), 6, 10);
        assert!(is_covered(&d, &[left.clone(), right.clone()]));
        // A gap at [6,7) leaks.
        let right_short = BoxRegion::full().with(Var(0), 7, 10);
        let hole = find_uncovered(&d, &[left, right_short]).unwrap();
        assert_eq!(hole[&Var(0)], 6);
    }

    #[test]
    fn two_dimensional_l_shape() {
        // Cover [0,2)×[0,4) and [2,4)×[0,2): the quadrant [2,4)×[2,4) leaks.
        let d = dims(&[4, 4]);
        let a = BoxRegion::full().with(Var(0), 0, 2);
        let b = BoxRegion::full().with(Var(0), 2, 4).with(Var(1), 0, 2);
        let hole = find_uncovered(&d, &[a, b]).unwrap();
        assert!(hole[&Var(0)] >= 2 && hole[&Var(1)] >= 2, "{hole:?}");
    }

    #[test]
    fn witness_points_are_really_uncovered() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..40 {
            let nd = rng.gen_range(1..4usize);
            let sizes: Vec<u32> = (0..nd).map(|_| rng.gen_range(2..5)).collect();
            let d = dims(&sizes);
            let boxes: Vec<BoxRegion> = (0..rng.gen_range(0..6))
                .map(|_| {
                    let mut b = BoxRegion::full();
                    for (i, &s) in sizes.iter().enumerate() {
                        if rng.gen_bool(0.7) {
                            let lo = rng.gen_range(0..s);
                            let hi = rng.gen_range(lo + 1..=s);
                            b = b.with(Var(i as u32), lo, hi);
                        }
                    }
                    b
                })
                .collect();
            match find_uncovered(&d, &boxes) {
                Some(point) => {
                    assert!(
                        boxes.iter().all(|b| !b.contains(&point)),
                        "witness {point:?} is covered"
                    );
                }
                None => {
                    // Exhaustively verify full coverage.
                    let mut cur: Vec<u32> = vec![0; nd];
                    loop {
                        let point: BTreeMap<Var, u32> =
                            cur.iter().enumerate().map(|(i, &x)| (Var(i as u32), x)).collect();
                        assert!(
                            boxes.iter().any(|b| b.contains(&point)),
                            "claimed covered but {point:?} is free"
                        );
                        let mut i = nd;
                        let done = loop {
                            if i == 0 {
                                break true;
                            }
                            i -= 1;
                            cur[i] += 1;
                            if cur[i] < sizes[i] {
                                break false;
                            }
                            cur[i] = 0;
                        };
                        if done {
                            break;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sat_via_boxes_matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let n = rng.gen_range(2..8u32);
            let cnf = random_cnf(n, rng.gen_range(1..10), 3, &mut rng);
            let order: Vec<Var> = (0..n).map(Var).collect();
            let got = sat_via_boxes(&cnf, &order);
            assert_eq!(got.is_some(), brute_force_sat(&cnf), "{cnf}");
            if let Some(a) = got {
                assert!(cnf.eval(&a), "witness fails {cnf}");
            }
        }
    }

    #[test]
    fn sat_via_boxes_with_neo_on_beta_acyclic() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..30 {
            let n = rng.gen_range(3..10u32);
            let cnf = random_interval_cnf(n, (2 * n) as usize, 4, &mut rng);
            let neo = faq_hypergraph::nested_elimination_order(&cnf.hypergraph())
                .expect("interval CNFs are β-acyclic");
            let got = sat_via_boxes(&cnf, &neo);
            assert_eq!(got.is_some(), brute_force_sat(&cnf), "{cnf}");
        }
    }

    #[test]
    fn clause_box_falsifies_exactly() {
        // (x0 ∨ ¬x1): falsified iff x0=0 ∧ x1=1.
        let c = Clause::new([Lit::pos(0), Lit::neg(1)]).unwrap();
        let b = clause_to_box(&c);
        let mut point = BTreeMap::new();
        point.insert(Var(0), 0u32);
        point.insert(Var(1), 1u32);
        assert!(b.contains(&point));
        point.insert(Var(0), 1);
        assert!(!b.contains(&point));
    }
}
