//! A counting global allocator for allocation-budget tests.
//!
//! The InsideOut hot path claims `O(arity + chunks)` heap allocations per
//! elimination step (amortized buffer doubling aside) — a claim only a real
//! allocator can verify. Test binaries install [`CountingAllocator`] with
//! `#[global_allocator]` and assert deltas of [`allocation_count`] around the
//! code under test.
//!
//! Beyond event counts, the allocator tracks **live bytes** and their
//! high-water mark: [`current_bytes`], [`peak_bytes`], and
//! [`reset_peak_bytes`] let out-of-core tests assert that evaluating a
//! spilled factor keeps peak resident heap under a configured cap.
//!
//! This crate is the one place in the workspace allowed to use `unsafe`
//! (implementing [`GlobalAlloc`] requires it); it must stay a dev-dependency
//! of test targets only.

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static CURRENT_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

fn track_alloc(bytes: usize) {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    let now = CURRENT_BYTES.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
    PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
}

fn track_dealloc(bytes: usize) {
    CURRENT_BYTES.fetch_sub(bytes as u64, Ordering::Relaxed);
}

/// The system allocator plus global gauges: a counter of allocation events
/// (`alloc`, `alloc_zeroed`, and growth via `realloc` — frees are not
/// counted) and a live-byte gauge with a high-water mark. Install with
/// `#[global_allocator]` in a test binary.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            track_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        track_dealloc(layout.size());
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            track_alloc(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            track_dealloc(layout.size());
            let now = CURRENT_BYTES.fetch_add(new_size as u64, Ordering::Relaxed) + new_size as u64;
            PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
        }
        new_ptr
    }
}

/// Total allocation events since process start. Take a snapshot before and
/// after the code under test; the difference is its allocation count.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// Live heap bytes right now (allocated minus freed).
pub fn current_bytes() -> u64 {
    CURRENT_BYTES.load(Ordering::SeqCst)
}

/// High-water mark of [`current_bytes`] since process start (or the last
/// [`reset_peak_bytes`]).
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::SeqCst)
}

/// Restart the peak gauge from the current live-byte level, so a test can
/// measure the high-water mark of just the code under test.
pub fn reset_peak_bytes() {
    PEAK_BYTES.store(CURRENT_BYTES.load(Ordering::SeqCst), Ordering::SeqCst);
}
