//! A counting global allocator for allocation-budget tests.
//!
//! The InsideOut hot path claims `O(arity + chunks)` heap allocations per
//! elimination step (amortized buffer doubling aside) — a claim only a real
//! allocator can verify. Test binaries install [`CountingAllocator`] with
//! `#[global_allocator]` and assert deltas of [`allocation_count`] around the
//! code under test.
//!
//! This crate is the one place in the workspace allowed to use `unsafe`
//! (implementing [`GlobalAlloc`] requires it); it must stay a dev-dependency
//! of test targets only.

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// The system allocator plus a global counter of allocation events
/// (`alloc`, `alloc_zeroed`, and growth via `realloc` — frees are not
/// counted). Install with `#[global_allocator]` in a test binary.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocation events since process start. Take a snapshot before and
/// after the code under test; the difference is its allocation count.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}
