//! Baseline join algorithms: pairwise hash joins and nested loops.
//!
//! These are the comparison points for the Table 1 "Joins" row: on cyclic
//! queries such as the triangle, any pairwise join plan materializes an
//! intermediate of size `Θ(N²)` in the worst case, while the OutsideIn
//! multiway join stays within the AGM bound `O(N^{3/2})`.

use faq_factor::{Domains, Factor};
use faq_hypergraph::Var;
use faq_semiring::SemiringElem;
use std::collections::HashMap;

/// Join two factors on their common variables with a hash join, multiplying
/// values. The result schema is `left.schema ++ (right.schema − left.schema)`.
pub fn hash_join_pair<E: SemiringElem>(
    left: &Factor<E>,
    right: &Factor<E>,
    mut mul: impl FnMut(&E, &E) -> E,
    mut is_zero: impl FnMut(&E) -> bool,
) -> Factor<E> {
    let common: Vec<Var> =
        left.schema().iter().copied().filter(|v| right.schema().contains(v)).collect();
    let right_extra: Vec<usize> =
        (0..right.arity()).filter(|&i| !left.schema().contains(&right.schema()[i])).collect();
    let mut schema: Vec<Var> = left.schema().to_vec();
    schema.extend(right_extra.iter().map(|&i| right.schema()[i]));

    let l_key_pos: Vec<usize> =
        common.iter().map(|v| left.schema().iter().position(|s| s == v).unwrap()).collect();
    let r_key_pos: Vec<usize> =
        common.iter().map(|v| right.schema().iter().position(|s| s == v).unwrap()).collect();

    // Build side: hash the (smaller) right factor on the key.
    let mut table: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
    for i in 0..right.len() {
        let key: Vec<u32> = r_key_pos.iter().map(|&p| right.row(i)[p]).collect();
        table.entry(key).or_default().push(i);
    }

    let mut tuples: Vec<(Vec<u32>, E)> = Vec::new();
    for i in 0..left.len() {
        let key: Vec<u32> = l_key_pos.iter().map(|&p| left.row(i)[p]).collect();
        if let Some(matches) = table.get(&key) {
            for &j in matches {
                let mut row: Vec<u32> = left.row(i).to_vec();
                row.extend(right_extra.iter().map(|&p| right.row(j)[p]));
                let val = mul(left.value(i), right.value(j));
                if !is_zero(&val) {
                    tuples.push((row, val));
                }
            }
        }
    }
    Factor::new(schema, tuples).expect("hash join produces distinct rows")
}

/// Left-deep pairwise hash-join plan over a list of factors.
///
/// Returns the full join result as a factor over the union of the schemas.
/// Panics on an empty input list.
pub fn pairwise_hash_join<E: SemiringElem>(
    factors: &[&Factor<E>],
    mut mul: impl FnMut(&E, &E) -> E,
    mut is_zero: impl FnMut(&E) -> bool,
) -> Factor<E> {
    assert!(!factors.is_empty());
    let mut acc = factors[0].clone();
    for f in &factors[1..] {
        acc = hash_join_pair(&acc, f, &mut mul, &mut is_zero);
    }
    acc
}

/// Nested-loop join: enumerate every assignment to `order` and probe each
/// factor. Exponential in the number of variables; the naive baseline.
pub fn nested_loop_join<E: SemiringElem>(
    domains: &Domains,
    order: &[Var],
    factors: &[&Factor<E>],
    one: E,
    mut mul: impl FnMut(&E, &E) -> E,
    mut on_match: impl FnMut(&[u32], E),
) {
    let pos_of = |f: &Factor<E>| -> Vec<usize> {
        f.schema().iter().map(|v| order.iter().position(|o| o == v).unwrap()).collect()
    };
    let positions: Vec<Vec<usize>> = factors.iter().map(|f| pos_of(f)).collect();
    'outer: for assignment in domains.assignments(order) {
        let mut val = one.clone();
        for (f, pos) in factors.iter().zip(&positions) {
            let key: Vec<u32> = pos.iter().map(|&p| assignment[p]).collect();
            match f.get(&key) {
                Some(v) => val = mul(&val, v),
                None => continue 'outer,
            }
        }
        on_match(&assignment, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leapfrog::{multiway_join, JoinInput};
    use faq_hypergraph::v;

    fn fac(schema: &[u32], rows: &[(&[u32], u64)]) -> Factor<u64> {
        Factor::new(
            schema.iter().map(|&i| v(i)).collect(),
            rows.iter().map(|(r, val)| (r.to_vec(), *val)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn hash_join_pair_basic() {
        let r = fac(&[0, 1], &[(&[0, 1], 2), (&[1, 2], 3)]);
        let s = fac(&[1, 2], &[(&[1, 4], 5), (&[2, 5], 7)]);
        let j = hash_join_pair(&r, &s, |a, b| a * b, |&x| x == 0);
        assert_eq!(j.schema(), &[v(0), v(1), v(2)]);
        assert_eq!(j.len(), 2);
        assert_eq!(j.get(&[0, 1, 4]), Some(&10));
        assert_eq!(j.get(&[1, 2, 5]), Some(&21));
    }

    #[test]
    fn cartesian_product_when_disjoint() {
        let r = fac(&[0], &[(&[0], 1), (&[1], 1)]);
        let s = fac(&[1], &[(&[5], 2), (&[6], 3)]);
        let j = hash_join_pair(&r, &s, |a, b| a * b, |&x| x == 0);
        assert_eq!(j.len(), 4);
        assert_eq!(j.get(&[1, 6]), Some(&3));
    }

    #[test]
    fn all_three_join_algorithms_agree() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..20 {
            let dsize = rng.gen_range(2..5u32);
            let domains = Domains::uniform(3, dsize);
            let mk = |rng: &mut StdRng, vars: &[u32]| {
                let mut tuples = Vec::new();
                for _ in 0..rng.gen_range(1..10) {
                    tuples.push((
                        (0..vars.len()).map(|_| rng.gen_range(0..dsize)).collect::<Vec<u32>>(),
                        rng.gen_range(1..5u64),
                    ));
                }
                Factor::with_combine(
                    vars.iter().map(|&i| v(i)).collect(),
                    tuples,
                    |a, b| a + b,
                    |&x| x == 0,
                )
                .unwrap()
            };
            let f1 = mk(&mut rng, &[0, 1]);
            let f2 = mk(&mut rng, &[1, 2]);
            let f3 = mk(&mut rng, &[0, 2]);
            let order = [v(0), v(1), v(2)];

            let mut lftj = Vec::new();
            multiway_join(
                &domains,
                &order,
                &[JoinInput::value(&f1), JoinInput::value(&f2), JoinInput::value(&f3)],
                1u64,
                |a, b| a * b,
                |b, val| lftj.push((b.to_vec(), val)),
            );

            let mut nl = Vec::new();
            nested_loop_join(
                &domains,
                &order,
                &[&f1, &f2, &f3],
                1u64,
                |a, b| a * b,
                |b, val| nl.push((b.to_vec(), val)),
            );
            assert_eq!(lftj, nl);

            let hj = pairwise_hash_join(&[&f1, &f2, &f3], |a, b| a * b, |&x| x == 0);
            let mut hj_rows: Vec<(Vec<u32>, u64)> = hj
                .iter()
                .map(|(row, val)| {
                    // hj schema is (0,1,2) already by construction here.
                    (row.to_vec(), *val)
                })
                .collect();
            hj_rows.sort();
            assert_eq!(lftj, hj_rows);
        }
    }

    #[test]
    fn nested_loop_handles_empty_factors() {
        let d = Domains::uniform(1, 2);
        let f = fac(&[0], &[]);
        let mut out = Vec::new();
        nested_loop_join(
            &d,
            &[v(0)],
            &[&f],
            1u64,
            |a, b| a * b,
            |b, val| out.push((b.to_vec(), val)),
        );
        assert!(out.is_empty());
    }
}
